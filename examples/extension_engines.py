#!/usr/bin/env python3
"""Benchmark the extension engines (Heron, Samza) against the paper trio.

The paper's future work proposes plugging further systems -- "such as
Apache Samza, Heron, and Apache Apex" -- into the generic benchmark
interface.  This example does exactly that: importing
``repro.engines.ext`` registers two additional engine models
(speculatively calibrated; see their module docs), and the unchanged
driver benchmarks all five side by side.

Run:  python examples/extension_engines.py
"""

import repro.engines.ext  # noqa: F401  -- registers heron and samza

from repro import ExperimentSpec, run_experiment
from repro.workloads import WindowSpec, WindowedAggregationQuery

RATE = 0.3e6
DURATION_S = 120.0


def main() -> None:
    query = WindowedAggregationQuery(window=WindowSpec(8.0, 4.0))
    print(
        f"Windowed aggregation, 2 workers, {RATE / 1e3:.0f}k events/s "
        f"({DURATION_S:.0f}s simulated):\n"
    )
    print(f"{'engine':<8} {'avg':>7} {'p99':>7} {'max':>7}   notes")
    notes = {
        "flink": "calibrated to the paper",
        "spark": "calibrated to the paper",
        "storm": "calibrated to the paper",
        "heron": "EXTENSION (speculative model)",
        "samza": "EXTENSION (speculative model)",
    }
    for engine in ("flink", "samza", "storm", "heron", "spark"):
        result = run_experiment(
            ExperimentSpec(
                engine=engine,
                query=query,
                workers=2,
                profile=RATE,
                duration_s=DURATION_S,
                seed=19,
                monitor_resources=False,
            )
        )
        s = result.event_latency
        print(
            f"{engine:<8} {s.mean:>6.2f}s {s.p99:>6.2f}s {s.maximum:>6.2f}s"
            f"   {notes[engine]}"
        )
    print(
        "\nHeron keeps Storm's semantics with working backpressure; Samza's"
        "\ncommit interval puts it between Flink and Spark on latency."
    )


if __name__ == "__main__":
    main()
