#!/usr/bin/env python3
"""Benchmark an engine against a timeline of faults.

The paper's methodology (Section VI cites Lopez et al. on node-failure
behaviour) measures how a system *degrades*, not just how fast it goes.
This example builds a :class:`FaultSchedule` -- a repeatable timeline of
typed fault events -- runs one Flink trial through it, and prints the
driver-side recovery metrology for every injection:

- a worker slows to half speed for 20 s,
- a worker crashes outright (checkpoint restore, derived pause),
- the SUT is partitioned from the data generators for 8 s,
- one source queue becomes unreachable for 6 s (watermark stall).

The recovery pause after the crash is DERIVED from the checkpoint model
(detection timeout + process restart + state restore over the NIC +
replay of the window since the last checkpoint) rather than a
hard-coded constant; tune it via :class:`CheckpointSpec`.

Run:  PYTHONPATH=src python examples/fault_recovery.py
"""

from repro import (
    CheckpointSpec,
    ExperimentSpec,
    FaultSchedule,
    NetworkPartition,
    NodeCrash,
    QueueDisconnect,
    SlowNode,
    run_experiment,
)
from repro.core.generator import GeneratorConfig
from repro.workloads import WindowSpec, WindowedAggregationQuery


def main() -> None:
    faults = FaultSchedule(
        (
            SlowNode(at_s=40.0, factor=0.5, duration_s=20.0),
            NodeCrash(at_s=80.0),
            NetworkPartition(at_s=130.0, duration_s=8.0),
            QueueDisconnect(at_s=165.0, duration_s=6.0),
        )
    )
    spec = ExperimentSpec(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=4,
        profile=0.3e6,
        duration_s=200.0,
        seed=11,
        generator=GeneratorConfig(instances=2),
        faults=faults,
        checkpoint=CheckpointSpec(interval_s=10.0),
        monitor_resources=False,
    )

    print(f"Injecting: {faults.describe()}")
    result = run_experiment(spec)

    print()
    for m in result.recovery:
        print(f"  {m.describe()}")

    diag = result.diagnostics
    print()
    print(f"checkpoints completed: {diag['checkpoints_completed']:.0f}")
    print(f"recovery pauses:       {diag['recovery_pause_total_s']:.1f} s total")
    print(
        f"delivery guarantee:    exactly-once -- "
        f"lost {diag['lost_weight']:.0f}, "
        f"duplicated {diag['duplicated_weight']:.0f}"
    )
    print(f"workers still up:      {diag['active_workers']:.0f} of 4")


if __name__ == "__main__":
    main()
