#!/usr/bin/env python3
"""Gray failures: a flapping node under three failure detectors.

A node that flaps -- seeded up/down duty cycles, never cleanly dead --
is the canonical gray failure: each down segment is short enough that a
conservative fixed timeout hesitates, while the node's capacity keeps
dropping in and out. The same flapping-node trial (Flink, 2 workers, a
hot standby) is run under each detector the plane ships:

- **timeout**: the fixed heartbeat deadline the harness always had --
  a conviction requires a full ``detection_timeout_s`` of silence;
- **phi**: phi-accrual over the inter-arrival history -- suspicion
  grows continuously, so convictions land earlier at the same
  false-positive budget;
- **quorum**: k-of-n observer votes -- immune to a single blinded
  observer, but no faster than its members.

Every conviction is *acted on* through the reschedule policy: the
suspect's state migrates to a promoted standby, so the printed
node-second bill is real migration cost, not an annotation. A second
scenario runs a fail-slow ramp (``DegradingNode`` to 30% capacity)
where the fixed timeout never convicts at all -- heartbeats stretch but
keep arriving -- while phi's adaptive threshold catches the drift.

Run:  PYTHONPATH=src python examples/gray_failure.py
"""

from repro import ExperimentSpec, FaultSchedule, run_experiment
from repro.core.generator import GeneratorConfig
from repro.detect.plane import DETECTOR_KINDS, detector_spec
from repro.faults.schedule import DegradingNode, FlappingNode
from repro.recovery.reschedule import MODE_STANDBY, ReschedulePolicy
from repro.workloads import WindowSpec, WindowedAggregationQuery

SCENARIOS = {
    "flapping node": FlappingNode(
        at_s=12.0, duration_s=16.0, node=1, period_s=6.0, duty=0.5, seed=7
    ),
    "fail-slow ramp": DegradingNode(
        at_s=12.0, duration_s=14.0, node=1, floor_factor=0.3
    ),
}

BASE = dict(
    engine="flink",
    query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
    workers=2,
    profile=20_000.0,
    duration_s=40.0,
    seed=0,
    generator=GeneratorConfig(instances=2),
    monitor_resources=False,
    standby=1,
    reschedule=ReschedulePolicy(standby_nodes=1, mode=MODE_STANDBY),
)


def main() -> None:
    for name, fault in SCENARIOS.items():
        print(f"{name}: {fault.describe()}")
        print(
            f"  {'detector':>8}  tp  fp  fn  "
            f"{'latency(s)':>10}  actions  {'spurious(node-s)':>16}"
        )
        for kind in DETECTOR_KINDS:
            result = run_experiment(
                ExperimentSpec(
                    faults=FaultSchedule((fault,)),
                    detector=detector_spec(kind),
                    **BASE,
                )
            )
            det = result.detection
            mean = det.detection_latency_mean_s
            print(
                f"  {kind:>8}  {det.true_positives:2d}  "
                f"{det.false_positives:2d}  {det.false_negatives:2d}  "
                f"{mean if mean == mean else float('nan'):10.2f}  "
                f"{det.actions:7d}  {det.spurious_migration_node_s:16.2f}"
            )
        print()
    print(
        "phi convicts the flapping node earlier than the fixed timeout\n"
        "and is the only single-observer detector that catches the\n"
        "fail-slow ramp; benchmarks/bench_detection.py gates both claims."
    )


if __name__ == "__main__":
    main()
