#!/usr/bin/env python3
"""Plug a custom engine into the benchmark framework.

The paper's future work asks for "a generic interface that users can
plug into any stream data processing system".  This example implements
a toy engine -- "Pipey", an idealised pipelined engine with a fixed
per-event cost and perfect credit-based backpressure -- against the
:class:`~repro.engines.base.StreamingEngine` interface and benchmarks it
with the *unchanged* driver, alongside Flink.

Everything the driver does (rate-controlled generation, queueing,
event-time latency at the sink, sustainability judgement) applies to
the custom engine automatically: the framework never looks inside the
SUT.

Run:  python examples/custom_engine.py
"""

from typing import List

from repro import ExperimentSpec, run_experiment
from repro.core.records import Record
from repro.engines import ENGINES
from repro.engines.backpressure import BackpressureMechanism, CreditBased
from repro.engines.base import EngineConfig, StreamingEngine
from repro.engines.calibration import CostModel
from repro.engines.operators.aggregate import aggregation_outputs
from repro.engines.operators.window import KeyedWindowStore
from repro.workloads import WindowSpec, WindowedAggregationQuery


class PipeyEngine(StreamingEngine):
    """A minimal pipelined engine: incremental windows, no frills."""

    name = "pipey"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._backpressure_mechanism = CreditBased()
        self._store = KeyedWindowStore(self.query.window)

    def _resolve_cost_model(self) -> CostModel:
        # The built-in engines look their characterisation up in the
        # calibration registry; a custom engine supplies its own.
        return CostModel(
            engine="pipey",
            query_kind=self.query.kind,
            pipeline_cost_us=50.0,   # 2 workers -> 32e6/50 = 0.64 M/s
            keyed_cost_us=2.0,
            bulk_emit_cost_us=0.0,
            scaling_efficiency={2: 1.0, 4: 0.95, 8: 0.9},
        )

    @classmethod
    def default_config(cls) -> EngineConfig:
        return EngineConfig(gc_rate_per_s=0.0)  # an idealised, pause-free JVM

    def _backpressure(self) -> BackpressureMechanism:
        return self._backpressure_mechanism

    def _process(self, records: List[Record], dt: float) -> None:
        for record in records:
            self._store.add(record)

    def _on_tick_end(self, dt: float) -> None:
        assert self.source is not None and self.sink is not None
        for index in self._store.ready_indices(self.source.watermark):
            contents = self._store.close(index)
            emit_time = self.sim.now + self.config.pipeline_delay_s
            outputs = aggregation_outputs(contents, emit_time)
            if outputs:
                self.sim.schedule(
                    self.config.pipeline_delay_s, self.sink.emit, outputs, 48.0
                )


def main() -> None:
    # Register the custom engine under its name, then benchmark it with
    # the standard spec/runner -- no framework changes needed.
    ENGINES["pipey"] = PipeyEngine

    query = WindowedAggregationQuery(window=WindowSpec(8.0, 4.0))
    for engine in ("pipey", "flink"):
        result = run_experiment(
            ExperimentSpec(
                engine=engine,
                query=query,
                workers=2,
                profile=0.3e6,
                duration_s=120.0,
                seed=9,
                monitor_resources=False,
            )
        )
        print(result.describe())


if __name__ == "__main__":
    main()
