#!/usr/bin/env python3
"""Render the checkpoint-interval sensitivity frontier for one engine.

The central fault-tolerance trade-off (Vogel et al. 2024): a short
checkpoint interval pays a synchronous pause every interval but keeps
the post-fault replay window small; a long interval inverts both.
This example sweeps ``CheckpointSpec.interval_s`` over a log grid for
Flink (checkpoint-restore semantics, where the trade-off is live),
prints the measured frontier as an ASCII plot, and marks the
Pareto-efficient settings.

Run:  PYTHONPATH=src python examples/recovery_frontier.py
"""

from repro.analysis.ascii_plots import render_series
from repro.core.metrics import TimeSeries
from repro.recoverybench import RecoverConfig, frontier_points, run_recovery_bench

ENGINE = "flink"


def main() -> None:
    config = RecoverConfig(
        seed=0,
        engines=(ENGINE,),
        policies=("spread",),
        kinds=("restart",),
        intervals=(2.5, 5.0, 10.0, 20.0, 40.0),
    )
    print(
        f"Sweeping checkpoint intervals {config.intervals} on {ENGINE} "
        f"({config.duration_s:g}s trials, restart fault at "
        f"{config.fault_at_s:g}s)..."
    )
    report = run_recovery_bench(config)
    points = report.frontiers[ENGINE]

    print()
    print(
        render_series(
            TimeSeries(
                [p.interval_s for p in points],
                [p.recovery_time_s for p in points],
            ),
            title=f"{ENGINE}: recovery time vs. checkpoint interval",
            unit="s",
        )
    )
    print()
    print(
        render_series(
            TimeSeries(
                [p.interval_s for p in points],
                [100.0 * p.overhead_fraction for p in points],
            ),
            title=f"{ENGINE}: steady-state checkpoint overhead vs. interval",
            unit="%",
        )
    )
    print()
    print("Pareto front (minimize recovery time AND overhead):")
    for point, on_front in frontier_points(points):
        marker = "*" if on_front else " "
        recovery = (
            f"{point.recovery_time_s:6.2f}s"
            if point.recovered
            else "  never"
        )
        print(
            f"  {marker} interval {point.interval_s:5g}s: recovery "
            f"{recovery}, overhead {point.overhead_fraction:.4%} "
            f"({point.checkpoints} checkpoints)"
        )


if __name__ == "__main__":
    main()
