#!/usr/bin/env python3
"""Spike handling: the paper's fluctuating-workload experiment in small.

The offered load steps high -> low -> high with the paper's exact rates
(0.84 -> 0.28 -> 0.84 M/s) on an 8-worker deployment.  The interesting
part is the step back up: the surge can stall Storm's topology (its
backpressure is the least mature of the three), producing the biggest
latency spike, while Flink's credit-based flow control recovers
smoothly.

Run:  python examples/fluctuating_workload.py
"""

import numpy as np

from repro import ExperimentSpec, run_experiment
from repro.analysis.ascii_plots import render_panels
from repro.workloads import (
    FluctuatingRate,
    WindowSpec,
    WindowedAggregationQuery,
)

DURATION_S = 300.0
PROFILE = FluctuatingRate(
    high=0.84e6, low=0.28e6, drop_at=DURATION_S / 3, recover_at=2 * DURATION_S / 3
)


def main() -> None:
    query = WindowedAggregationQuery(window=WindowSpec(8.0, 4.0))
    panels = {}
    spikes = {}
    for engine in ("storm", "spark", "flink"):
        result = run_experiment(
            ExperimentSpec(
                engine=engine,
                query=query,
                workers=8,
                profile=PROFILE,
                duration_s=DURATION_S,
                seed=31,
                monitor_resources=False,
            )
        )
        series = result.collector.binned_series(
            bin_s=5.0, start_time=result.warmup_s
        )
        panels[engine] = series
        values = np.asarray(series.values)
        spikes[engine] = float(values.max() - np.percentile(values, 20))

    print(
        "Event-time latency under a fluctuating load "
        f"({PROFILE.high / 1e3:.0f}k -> {PROFILE.low / 1e3:.0f}k -> "
        f"{PROFILE.high / 1e3:.0f}k events/s):\n"
    )
    print(render_panels(panels, unit="s"))
    print()
    print("Spike severity (max latency above the calm-phase level):")
    for engine, spike in sorted(spikes.items(), key=lambda kv: -kv[1]):
        print(f"  {engine:<7} {spike:5.2f} s")
    print()
    print(
        "Paper Experiment 5: 'Storm is the most susceptible system for\n"
        "fluctuating workloads.'"
    )


if __name__ == "__main__":
    main()
