#!/usr/bin/env python3
"""Compare recovery policies on one faulted workload.

The same fault schedule -- a straggler, then a crash that kills three
of the four workers -- is run through three deployments of the same
Flink job offered 0.9 M/s (sustainable on 4 workers, ~50% above the
single survivor's knee):

- **backpressure only** (the legacy behaviour): the crash permanently
  removes capacity; the survivors absorb the backlog through
  backpressure alone;
- **load shedding**: the engine's recommended `DegradationPolicy`
  drops backlog beyond its latency bound at the sources and ramps
  ingest back after the recovery pause;
- **standby pool**: hot spares are promoted into the dead slots
  (paying the state-migration cost), restoring full capacity.

The printed recovery curves (mean event-time latency per 10 s bin) show
the trade each policy makes: backpressure preserves all data but holds
elevated latency until the backlog drains on reduced capacity; shedding
bounds latency by discarding weight (printed, and accounted in the
conservation ledgers); the standby pays a short migration pause and
then returns to the pre-fault band.

Run:  PYTHONPATH=src python examples/self_healing.py
"""

from repro import (
    ExperimentSpec,
    FaultSchedule,
    NodeCrash,
    SlowNode,
    run_experiment,
)
from repro.core.generator import GeneratorConfig
from repro.core.latency import EVENT_TIME
from repro.engines import engine_class
from repro.workloads import WindowSpec, WindowedAggregationQuery

FAULTS = FaultSchedule(
    (
        SlowNode(at_s=40.0, factor=0.5, duration_s=12.0),
        NodeCrash(at_s=90.0, nodes=3),
    )
)

BASE = dict(
    engine="flink",
    query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
    workers=4,
    profile=0.9e6,
    duration_s=180.0,
    seed=11,
    generator=GeneratorConfig(instances=2),
    faults=FAULTS,
    monitor_resources=False,
)

POLICIES = {
    "backpressure": {},
    "shed": {"degradation": engine_class("flink").recommended_degradation()},
    "standby": {"standby": 3},
}


def latency_curve(result, bin_s=10.0):
    series = result.collector.binned_series(
        EVENT_TIME, bin_s=bin_s, start_time=0.0
    )
    return list(zip(series.times, series.values))


def main() -> None:
    print(f"Injecting: {FAULTS.describe()}\n")
    curves = {}
    for name, overrides in POLICIES.items():
        result = run_experiment(ExperimentSpec(**{**BASE, **overrides}))
        curves[name] = latency_curve(result)
        d = result.diagnostics
        print(
            f"{name:>13}: "
            f"{'FAILED' if result.failed else 'completed':<9} "
            f"p99 {result.event_latency.p99:6.2f}s  "
            f"end-backlog {result.throughput.queue_delay_at_end():5.1f}s  "
            f"shed {d['shed_weight']:12.0f}  "
            f"promoted {d['standbys_promoted']:.0f}"
        )

    print("\nmean event-time latency by 10s bin (recovery curves):")
    times = [t for t, _ in curves["backpressure"]]
    header = "  t(s)   " + "".join(f"{name:>14}" for name in POLICIES)
    print(header)
    for i, t in enumerate(times):
        row = f"  {t:6.0f} "
        for name in POLICIES:
            curve = curves[name]
            value = curve[i][1] if i < len(curve) else float("nan")
            row += f"{value:14.2f}" if value == value else f"{'-':>14}"
        print(row)


if __name__ == "__main__":
    main()
