#!/usr/bin/env python3
"""Quickstart: benchmark one engine on the paper's aggregation query.

Runs the simulated Flink engine on a 2-worker deployment with the
(8s, 4s) windowed SUM-by-gem-pack query at 300k events/s, then prints
the driver-side measurements: ingest throughput (at the queues) and
event-/processing-time latency (at the sink).

Run:  python examples/quickstart.py
"""

from repro import ExperimentSpec, run_experiment
from repro.workloads import WindowSpec, WindowedAggregationQuery


def main() -> None:
    spec = ExperimentSpec(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=0.3e6,          # events per second, constant
        duration_s=120.0,       # simulated seconds (25% warmup)
        seed=7,
    )
    print(f"Running {spec.label()} ...")
    result = run_experiment(spec)

    print()
    print(result.describe())
    print(f"  event-time latency   : {result.event_latency.row()}")
    print(f"  processing-time lat. : {result.processing_latency.row()}")
    print(f"  mean ingest rate     : {result.mean_ingest_rate / 1e6:.3f} M events/s")
    print(f"  output tuples        : {len(result.collector)}")
    if result.resources is not None:
        print(f"  mean worker CPU load : {result.resources.mean_cpu_load():.1f}%")


if __name__ == "__main__":
    main()
