#!/usr/bin/env python3
"""Rovio-style gaming analytics: compare engines on both paper queries.

The paper's motivating scenario (Section V): a game studio monitors
in-app gem-pack purchases and the advertisements that proposed them.
Two queries run continuously:

- revenue per gem pack over a sliding window
  (``SELECT SUM(price) ... GROUP BY gemPackID``), and
- the purchases-ads windowed join that attributes purchases to the ads
  that proposed them.

This example runs both queries on all engine models at a moderate load
and prints a side-by-side comparison -- a miniature of the paper's
evaluation, runnable in under a minute.

Run:  python examples/gaming_analytics.py
"""

from repro import ExperimentSpec, run_experiment
from repro.workloads import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

WINDOW = WindowSpec(8.0, 4.0)
RATE = 0.12e6  # events/s: low enough for every engine incl. naive Storm join
DURATION_S = 120.0


def run(engine: str, query) -> str:
    result = run_experiment(
        ExperimentSpec(
            engine=engine,
            query=query,
            workers=2,
            profile=RATE,
            duration_s=DURATION_S,
            seed=21,
        )
    )
    if result.failed:
        return f"{engine:<7} FAILED: {result.failure}"
    s = result.event_latency
    return (
        f"{engine:<7} ingest {result.mean_ingest_rate / 1e3:7.1f} k/s   "
        f"latency avg {s.mean:5.2f}s  p99 {s.p99:5.2f}s  max {s.maximum:5.2f}s"
    )


def main() -> None:
    agg = WindowedAggregationQuery(window=WINDOW)
    join = WindowedJoinQuery(window=WINDOW)

    print("Gem-pack revenue (windowed aggregation, 8s window / 4s slide)")
    print(f"  query: {agg.describe()}")
    for engine in ("storm", "spark", "flink"):
        print(" ", run(engine, agg))

    print()
    print("Ad attribution (windowed join of purchases and ads)")
    print(f"  query: {join.describe()}")
    for engine in ("storm", "spark", "flink"):
        print(" ", run(engine, join))

    print()
    print(
        "Note: Storm's join is the naive implementation the paper had to\n"
        "write by hand; it only works on small deployments and fails\n"
        "beyond 2 workers (paper Experiment 2)."
    )


if __name__ == "__main__":
    main()
