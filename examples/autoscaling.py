#!/usr/bin/env python3
"""Walk one engine through a compressed diurnal day, autoscaled.

A one-worker Flink cluster is offered a sinusoidal rate swinging from
40% of one worker's capacity at the trough to 2x at the crest -- the
classic day/night curve, compressed into a three-minute trial.  The
threshold policy (hysteresis bands + cooldown) reads only obs-registry
signals on the simulated sampling clock, scales the cluster out toward
the crest and back in after it, and the driver-side metrology times
every event: detect + provision + migrate + catch-up =
``time_to_resustain``.

The printed timeline lines up, per 10-second bin:

- the offered rate (what the generators push),
- the cluster size (what the autoscaler provisioned),
- the p99 event-time latency (what the user experiences).

The closing summary prints each rescale event's decomposition and the
bill: node-seconds actually paid vs a fixed cluster provisioned for the
crest the whole time.

Run:  PYTHONPATH=src python examples/autoscaling.py
"""

import math

import numpy as np

from repro import ExperimentSpec, run_experiment
from repro.autoscale.policy import AutoscaleSpec
from repro.autoscale.scorecard import single_worker_capacity
from repro.core.generator import GeneratorConfig
from repro.core.latency import EVENT_TIME
from repro.workloads.profiles import DiurnalRate

ENGINE = "flink"
DURATION_S = 180.0
MAX_WORKERS = 6
BIN_S = 10.0


def main() -> None:
    capacity = single_worker_capacity(ENGINE)
    profile = DiurnalRate(
        low=0.4 * capacity, high=2.0 * capacity, period_s=DURATION_S
    )
    spec = ExperimentSpec(
        engine=ENGINE,
        workers=1,
        profile=profile,
        duration_s=DURATION_S,
        seed=0,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        autoscale=AutoscaleSpec(
            policy="threshold",
            min_workers=1,
            max_workers=MAX_WORKERS,
            cooldown_s=12.0,
        ),
    )
    print(
        f"== {ENGINE}: diurnal {profile.low / 1e3:.0f}k -> "
        f"{profile.high / 1e3:.0f}k events/s over {DURATION_S:.0f}s, "
        f"threshold policy, 1..{MAX_WORKERS} workers =="
    )
    result = run_experiment(spec)
    assert not result.failed, result.failure

    # Reconstruct the cluster-size staircase from the rescale events.
    steps = [(0.0, 1)]
    for m in result.autoscale:
        steps.append((m.decided_at_s, int(m.to_workers)))

    def workers_at(t: float) -> int:
        size = steps[0][1]
        for at, to in steps:
            if at <= t:
                size = to
        return size

    lag = result.observability.registry.series.get("driver.watermark_lag_s")
    series = result.collector.binned_series(
        EVENT_TIME, bin_s=BIN_S, start_time=0.0,
        agg=lambda v: float(np.percentile(v, 99)),
    )
    print(f"\n{'t':>5} {'offered':>9} {'workers':>7} {'p99':>8} {'lag':>7}")
    for t, p99 in zip(series.times, series.values):
        mid = t + BIN_S / 2.0
        lag_now = float("nan")
        if lag is not None:
            inside = [v for lt, v in zip(lag.times, lag.values) if t <= lt < t + BIN_S]
            if inside:
                lag_now = max(inside)
        print(
            f"{t:>4.0f}s {profile.rate_at(mid) / 1e3:>8.0f}k "
            f"{workers_at(mid):>7d} {p99:>7.2f}s "
            + ("" if math.isnan(lag_now) else f"{lag_now:>6.2f}s")
        )

    print("\nrescale events:")
    for m in result.autoscale:
        print(f"  {m.describe()}")

    cost = result.diagnostics["autoscale.cost_node_seconds"]
    fixed = MAX_WORKERS * DURATION_S
    print(
        f"\nbill: {cost:.0f} node-seconds autoscaled vs {fixed:.0f} fixed "
        f"at the crest size ({1.0 - cost / fixed:.0%} saved)"
    )


if __name__ == "__main__":
    main()
