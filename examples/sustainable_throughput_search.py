#!/usr/bin/env python3
"""Find a deployment's sustainable throughput (paper Definition 5).

Demonstrates the paper's headline methodology: start from "a very high
generation rate", judge each trial by whether backpressure is
*prolonged* (continuously increasing event-time latency / queue
backlog), and narrow in on the highest rate the deployment sustains.

The example searches the 2-worker Flink deployment on the aggregation
query; the discovered rate lands at the network bound (~1.2 M events/s
at 104-byte events over 1 Gb/s), exactly the paper's Table I headline.

Run:  python examples/sustainable_throughput_search.py
"""

from repro import (
    ExperimentSpec,
    SustainabilityCriteria,
    find_sustainable_throughput,
)
from repro.workloads import WindowSpec, WindowedAggregationQuery


def main() -> None:
    spec = ExperimentSpec(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        duration_s=120.0,
        seed=13,
        monitor_resources=False,
    )
    print("Searching sustainable throughput for flink / 2 workers ...")
    search = find_sustainable_throughput(
        spec,
        high_rate=1.6e6,
        rel_tol=0.05,
        criteria=SustainabilityCriteria(),
    )

    print()
    print(f"{'rate (M/s)':>11}  {'verdict':<13} reasons")
    for trial in search.trials:
        verdict = "sustainable" if trial.verdict.sustainable else "UNSUSTAINABLE"
        reason = trial.verdict.reasons[0] if trial.verdict.reasons else ""
        print(f"{trial.rate / 1e6:>11.3f}  {verdict:<13} {reason}")

    print()
    print(
        f"Sustainable throughput: {search.sustainable_rate / 1e6:.2f} M events/s "
        f"after {search.trial_count} trials (paper Table I: 1.20 M/s)"
    )
    best = search.best_trial()
    if best is not None:
        print(f"Latency at that rate:   {best.result.event_latency.row()}")


if __name__ == "__main__":
    main()
