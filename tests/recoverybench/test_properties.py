"""Property tests: recovery phase geometry under arbitrary inputs.

The detection / restore / catch-up decomposition must be a *partition*
of the measured recovery window no matter what the instruments fed in:
NaN detection, model pauses longer than the measured window, transient
faults with no pause at all.  The first class drives the pure math with
Hypothesis-drawn floats; the second checks the same geometry on real
trials under randomized fault schedules on every engine.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.faults.metrics import RecoveryMetrics
from repro.recovery.chaos import ChaosConfig, random_fault_schedule
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

ENGINES = ("flink", "storm", "spark", "heron", "samza")

finite_s = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)
maybe_nan_s = st.one_of(finite_s, st.just(float("nan")))


def assert_phase_geometry(m: RecoveryMetrics) -> None:
    det = m.detection_phase_s
    rst = m.restore_phase_s
    cat = m.catchup_phase_s
    if not m.recovered:
        assert math.isnan(det) and math.isnan(rst) and math.isnan(cat)
        return
    assert det >= 0.0 and rst >= 0.0 and cat >= 0.0
    assert det <= det + rst <= m.recovery_time_s + 1e-9
    assert det + rst + cat == pytest.approx(m.recovery_time_s, abs=1e-9)


class TestPhaseGeometryPure:
    @given(
        detection=maybe_nan_s,
        pause=maybe_nan_s,
        recovery=maybe_nan_s,
    )
    @settings(max_examples=300, deadline=None)
    def test_phases_partition_any_window(self, detection, pause, recovery):
        m = RecoveryMetrics(
            kind="crash",
            fault_time_s=10.0,
            detection_s=detection,
            injected_pause_s=pause,
            recovery_time_s=recovery,
            catchup_throughput=1e5,
            baseline_latency_s=1.0,
            baseline_p99_s=1.0,
            post_p99_s=1.0,
            lost_weight=0.0,
            duplicated_weight=0.0,
        )
        assert_phase_geometry(m)


def _spec(engine: str, schedule, duration_s: float) -> ExperimentSpec:
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=20_000.0,
        duration_s=duration_s,
        seed=11,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        faults=schedule,
    )


class TestPhaseGeometryOnTrials:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(schedule_seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_every_fault_decomposes(self, engine, schedule_seed):
        config = ChaosConfig(seed=0, rounds=1, duration_s=30.0, rate=20_000.0)
        schedule = random_fault_schedule(
            np.random.default_rng(schedule_seed), config
        )
        result = run_experiment(_spec(engine, schedule, config.duration_s))
        for metrics in result.recovery:
            assert_phase_geometry(metrics)
