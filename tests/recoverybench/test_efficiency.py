"""Unit tests for per-cell recovery-efficiency accounting."""

import json
import math

from repro.recoverybench.efficiency import (
    RecoveryEfficiency,
    efficiency_from_digest,
    recovery_cost_node_s,
)

NAN = float("nan")


def _fault(**overrides):
    base = {
        "recovered": True,
        "recovery_time_s": 9.0,
        "detection_phase_s": 2.0,
        "restore_phase_s": 3.0,
        "catchup_phase_s": 4.0,
        "catchup_throughput": 4.0e4,
        "baseline_p99_s": 2.0,
        "post_p99_s": 3.0,
        "lost_weight": 120.0,
        "duplicated_weight": 30.0,
    }
    base.update(overrides)
    return base


def _digest(**overrides):
    base = {
        "failed": False,
        "fault": _fault(),
        "violations": [],
        "guarantee": "exactly-once",
        "ingested_weight": 1200.0,
        "recovery_cost_node_s": 18.0,
    }
    base.update(overrides)
    return base


class TestRecoveryCost:
    def test_recovered_bills_the_recovery_window(self):
        cost = recovery_cost_node_s(
            billed_nodes=3, fault_time_s=24.0, recovery_time_s=9.0,
            duration_s=60.0,
        )
        assert cost == 27.0

    def test_unrecovered_bills_through_end_of_trial(self):
        cost = recovery_cost_node_s(
            billed_nodes=2, fault_time_s=24.0, recovery_time_s=NAN,
            duration_s=60.0,
        )
        assert cost == 2 * 36.0

    def test_window_is_capped_at_the_trial_duration(self):
        cost = recovery_cost_node_s(
            billed_nodes=1, fault_time_s=10.0, recovery_time_s=500.0,
            duration_s=60.0,
        )
        assert cost == 60.0

    def test_standby_nodes_cost_more(self):
        without = recovery_cost_node_s(2, 24.0, 9.0, 60.0)
        with_standby = recovery_cost_node_s(3, 24.0, 9.0, 60.0)
        assert with_standby > without


class TestEfficiencyFromDigest:
    def test_round_trips_the_fault_block(self):
        cell = efficiency_from_digest(_digest(), "flink", "spread", "crash")
        assert cell.engine == "flink"
        assert cell.policy == "spread"
        assert cell.kind == "crash"
        assert cell.guarantee == "exactly-once"
        assert cell.recovered
        assert cell.detection_s == 2.0
        assert cell.restore_s == 3.0
        assert cell.catchup_s == 4.0
        assert cell.recovery_time_s == 9.0
        assert cell.recovery_cost_node_s == 18.0
        assert cell.ok

    def test_fractions_are_normalized_by_ingested_weight(self):
        cell = efficiency_from_digest(_digest(), "flink", "none", "crash")
        assert cell.lost_fraction == 120.0 / 1200.0
        assert cell.duplicated_fraction == 30.0 / 1200.0

    def test_zero_ingested_weight_gives_zero_fractions(self):
        digest = _digest(ingested_weight=0.0)
        cell = efficiency_from_digest(digest, "flink", "none", "crash")
        assert cell.lost_fraction == 0.0
        assert cell.duplicated_fraction == 0.0

    def test_p99_inflation_is_post_over_baseline(self):
        cell = efficiency_from_digest(_digest(), "flink", "none", "crash")
        assert cell.p99_inflation == 1.5

    def test_p99_inflation_nan_guard(self):
        digest = _digest(fault=_fault(post_p99_s=None))
        cell = efficiency_from_digest(digest, "flink", "none", "crash")
        assert math.isnan(cell.p99_inflation)
        digest = _digest(fault=_fault(baseline_p99_s=0.0))
        cell = efficiency_from_digest(digest, "flink", "none", "crash")
        assert math.isnan(cell.p99_inflation)

    def test_missing_fault_block_yields_unrecovered_nan_record(self):
        digest = _digest(fault=None, failed=True)
        cell = efficiency_from_digest(digest, "storm", "none", "crash")
        assert cell.failed
        assert not cell.recovered
        assert math.isnan(cell.recovery_time_s)
        assert math.isnan(cell.detection_s)
        assert cell.lost_weight == 0.0
        assert cell.duplicated_weight == 0.0

    def test_violations_break_ok(self):
        digest = _digest(violations=["flink/none/crash: ledger broken"])
        cell = efficiency_from_digest(digest, "flink", "none", "crash")
        assert not cell.ok
        assert cell.violations == ("flink/none/crash: ledger broken",)

    def test_to_dict_is_json_safe(self):
        digest = _digest(fault=_fault(recovery_time_s=None, recovered=False))
        payload = efficiency_from_digest(
            digest, "flink", "none", "crash"
        ).to_dict()
        assert payload["recovery_time_s"] is None
        assert json.loads(json.dumps(payload)) == payload
