"""Recovery benchmark harness: grid coverage, determinism, journals."""

import json

import pytest

from repro.metrology import TrialJournal
from repro.recoverybench import (
    FAULT_KINDS,
    POLICY_NAMES,
    RecoverConfig,
    recover_fingerprint,
    run_recovery_bench,
)
from repro.recoverybench.scorecard import fault_event

SMALL = RecoverConfig(
    engines=("flink",),
    policies=("none", "spread", "standby"),
    kinds=("crash", "restart"),
    intervals=(5.0, 20.0),
    duration_s=40.0,
)


class TestConfig:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            RecoverConfig(engines=())
        with pytest.raises(ValueError):
            RecoverConfig(policies=())
        with pytest.raises(ValueError):
            RecoverConfig(policies=("teleport",))
        with pytest.raises(ValueError):
            RecoverConfig(kinds=())
        with pytest.raises(ValueError):
            RecoverConfig(kinds=("meteor",))
        with pytest.raises(ValueError):
            RecoverConfig(intervals=(0.0,))
        with pytest.raises(ValueError):
            RecoverConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            RecoverConfig(workers=0)
        with pytest.raises(ValueError):
            RecoverConfig(fault_fraction=1.0)

    def test_fault_instant_and_billing(self):
        config = RecoverConfig(duration_s=60.0, workers=2)
        assert config.fault_at_s == 24.0
        assert config.billed_nodes("none") == 2
        assert config.billed_nodes("spread") == 2
        assert config.billed_nodes("standby") == 3

    def test_every_kind_builds_an_event(self):
        for kind in FAULT_KINDS:
            event = fault_event(kind, 10.0)
            assert event.at_s == 10.0
        with pytest.raises(ValueError):
            fault_event("meteor", 10.0)

    def test_fingerprint_distinguishes_configs(self):
        assert recover_fingerprint(SMALL) != recover_fingerprint(
            RecoverConfig(
                engines=("flink",),
                policies=SMALL.policies,
                kinds=SMALL.kinds,
                intervals=SMALL.intervals,
                duration_s=40.0,
                seed=1,
            )
        )
        assert recover_fingerprint(SMALL) == recover_fingerprint(SMALL)


class TestBenchmark:
    @pytest.fixture(scope="class")
    def report(self):
        return run_recovery_bench(SMALL)

    def test_every_cell_scored(self, report):
        assert set(report.cells) == {
            ("flink", policy, kind)
            for policy in SMALL.policies
            for kind in SMALL.kinds
        }

    def test_crash_cells_fully_decomposed(self, report):
        # The acceptance bar: every crash cell recovers with a non-null
        # detect/restore/catch-up decomposition and finite cost.
        for policy in SMALL.policies:
            cell = report.cells[("flink", policy, "crash")]
            assert cell.recovered, (policy, cell)
            assert cell.detection_s == cell.detection_s
            assert cell.restore_s == cell.restore_s
            assert cell.catchup_s == cell.catchup_s
            assert cell.recovery_time_s > 0.0
            assert cell.recovery_cost_node_s > 0.0
            assert cell.guarantee == "exactly-once"

    def test_phases_sum_to_the_recovery_window(self, report):
        for cell in report.cells.values():
            if not cell.recovered:
                continue
            total = cell.detection_s + cell.restore_s + cell.catchup_s
            assert total == pytest.approx(cell.recovery_time_s, abs=1e-9)

    def test_standby_bills_more_than_spread_for_equal_windows(self, report):
        spread = report.cells[("flink", "spread", "crash")]
        standby = report.cells[("flink", "standby", "crash")]
        per_node_spread = spread.recovery_cost_node_s / 2
        per_node_standby = standby.recovery_cost_node_s / 3
        # Standby pays for 3 nodes; its faster (or equal) recovery must
        # show up per-node, not be hidden by the extra billing.
        assert standby.recovery_time_s <= spread.recovery_time_s
        assert per_node_standby <= per_node_spread

    def test_frontier_swept_per_engine(self, report):
        assert set(report.frontiers) == {"flink"}
        points = report.frontiers["flink"]
        assert [p.interval_s for p in points] == list(SMALL.intervals)
        for point in points:
            assert point.recovered
            assert point.checkpoints > 0
            assert point.overhead_fraction > 0.0

    def test_no_invariant_violations(self, report):
        assert report.ok, report.violations

    def test_json_round_trips_clean(self, report):
        payload = report.to_dict()
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload
        assert set(payload["cells"]) == {
            f"flink/{policy}/{kind}"
            for policy in SMALL.policies
            for kind in SMALL.kinds
        }
        for point in payload["frontiers"]["flink"]:
            assert isinstance(point["pareto"], bool)

    def test_byte_identical_for_equal_seeds(self, report):
        rerun = run_recovery_bench(SMALL)
        assert rerun.to_json() == report.to_json()

    def test_parallel_run_is_byte_identical(self, report):
        parallel = run_recovery_bench(SMALL, workers=3)
        assert parallel.to_json() == report.to_json()

    def test_journaled_run_resumes_byte_identical(self, report, tmp_path):
        # Kill after two journal records, resume, and require the final
        # report JSON byte-identical to the uninterrupted run.
        path = tmp_path / "recover.json"
        fingerprint = recover_fingerprint(SMALL)

        class Killed(RuntimeError):
            pass

        journal = TrialJournal(path, fingerprint=fingerprint)
        real_record, seen = journal.record, []

        def record_then_die(key, entry):
            real_record(key, entry)
            seen.append(key)
            if len(seen) == 2:
                raise Killed()

        journal.record = record_then_die
        with pytest.raises(Killed):
            run_recovery_bench(SMALL, journal=journal)

        resumed_journal = TrialJournal(
            path, fingerprint=fingerprint, resume=True
        )
        resumed = run_recovery_bench(SMALL, journal=resumed_journal)
        assert resumed_journal.hits == 2
        assert resumed_journal.misses == 6
        assert resumed.to_json() == report.to_json()

    def test_progress_reports_every_trial(self, report):
        lines = []
        rerun = run_recovery_bench(SMALL, progress=lines.append)
        assert len(lines) == 8  # 6 grid cells + 2 frontier trials
        assert any("flink/standby/crash" in line for line in lines)
        assert any("frontier/flink/20s" in line for line in lines)
        assert rerun.to_json() == report.to_json()

    def test_render_mentions_status_and_frontier(self, report):
        text = report.render()
        assert "PASS" in text
        assert "flink/standby/restart" in text
        assert "checkpoint-interval frontier: flink" in text
        assert "*" in text  # at least one Pareto-efficient interval
        assert "nan" not in text


class TestPolicyNamesAreTheRescheduleModes:
    def test_grid_covers_the_reschedule_corners(self):
        assert POLICY_NAMES == ("none", "spread", "standby")
