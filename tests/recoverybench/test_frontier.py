"""Unit tests for the checkpoint-interval sensitivity frontier."""

import json
import math

from repro.recoverybench.frontier import (
    FrontierPoint,
    frontier_points,
    point_from_digest,
)

NAN = float("nan")


def _point(interval_s, recovery, overhead, recovered=True, checkpoints=5):
    return FrontierPoint(
        engine="flink",
        interval_s=interval_s,
        recovered=recovered,
        recovery_time_s=recovery,
        overhead_fraction=overhead,
        checkpoints=checkpoints,
    )


class TestPointFromDigest:
    def test_reads_fault_and_overhead(self):
        digest = {
            "failed": False,
            "fault": {"recovered": True, "recovery_time_s": 9.05},
            "violations": [],
            "overhead_fraction": 0.008,
            "checkpoints": 18,
        }
        point = point_from_digest(digest, "flink", 2.5)
        assert point.engine == "flink"
        assert point.interval_s == 2.5
        assert point.recovered
        assert point.recovery_time_s == 9.05
        assert point.overhead_fraction == 0.008
        assert point.checkpoints == 18

    def test_missing_fault_is_unrecovered_nan(self):
        point = point_from_digest(
            {"fault": None, "overhead_fraction": 0.0, "checkpoints": 0},
            "storm",
            5.0,
        )
        assert not point.recovered
        assert math.isnan(point.recovery_time_s)

    def test_to_dict_is_json_safe(self):
        point = _point(5.0, NAN, 0.01, recovered=False)
        payload = point.to_dict()
        assert payload["recovery_time_s"] is None
        assert json.loads(json.dumps(payload)) == payload


class TestFrontierPoints:
    def test_classic_trade_off_keeps_every_point(self):
        # Strictly monotone trade-off: everything is efficient.
        points = [
            _point(2.5, 6.0, 0.08),
            _point(5.0, 8.0, 0.04),
            _point(10.0, 12.0, 0.02),
        ]
        assert [on for _, on in frontier_points(points)] == [True] * 3

    def test_tied_recovery_keeps_only_the_cheapest(self):
        # Binned latency quantizes recovery; equal recovery at higher
        # overhead is dominated (the real flink 2.5/5/10 s shape).
        points = [
            _point(2.5, 9.05, 0.008),
            _point(5.0, 9.05, 0.004),
            _point(10.0, 9.05, 0.002),
            _point(20.0, 13.05, 0.001),
        ]
        annotated = frontier_points(points)
        assert [on for _, on in annotated] == [False, False, True, True]

    def test_flat_frontier_keeps_all_ties(self):
        # Lineage recompute: interval changes nothing; no point strictly
        # beats another, so all stay efficient.
        points = [_point(i, 7.0, 0.0) for i in (2.5, 5.0, 10.0)]
        assert all(on for _, on in frontier_points(points))

    def test_unrecovered_points_are_never_efficient(self):
        points = [
            _point(2.5, NAN, 0.0, recovered=False),
            _point(5.0, 20.0, 0.05),
        ]
        annotated = frontier_points(points)
        assert [on for _, on in annotated] == [False, True]

    def test_empty_sweep(self):
        assert frontier_points([]) == []
