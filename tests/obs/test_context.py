"""Observability wiring: spec -> trial -> exported report.

End-to-end checks of the acceptance contract: a trial run with tracing
on exports complete traces whose span durations telescope to the traced
event's event-time latency within 1e-9, metrics series land in the
trial JSON, the ASCII dashboard renders, and the CLI flags switch it
all on.
"""

import json

import pytest

from repro.analysis.ascii_plots import render_obs_dashboard, render_trace
from repro.analysis.export import trial_to_dict
from repro.cli import build_parser, main as cli_main
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.faults.schedule import FaultSchedule, ProcessRestart
from repro.obs.context import ObsContext, ObsSpec
from repro.sim.simulator import Simulator

SPAN_TOL = 1e-9


def obs_spec(**overrides):
    defaults = dict(
        engine="flink",
        workers=2,
        profile=30_000.0,
        duration_s=40.0,
        seed=5,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        observability=ObsSpec(trace_sample_rate=200),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def traced_trial():
    return run_experiment(obs_spec())


class TestObsSpec:
    def test_negative_sample_rate_rejected(self):
        with pytest.raises(ValueError, match="trace_sample_rate"):
            ObsSpec(trace_sample_rate=-1)

    def test_zero_rate_disables_tracing_only(self):
        spec = ObsSpec(trace_sample_rate=0)
        assert not spec.tracing_enabled
        ctx = ObsContext.build(Simulator(), spec)
        assert ctx is not None
        assert ctx.sampler is None

    def test_none_spec_builds_no_context(self):
        assert ObsContext.build(Simulator(), None) is None


class TestTracedTrial:
    def test_exports_complete_traces(self, traced_trial):
        report = traced_trial.observability
        assert report is not None
        assert len(report.completed_traces) >= 1

    def test_span_sum_reproduces_event_time_latency(self, traced_trial):
        """The acceptance criterion: spans decompose Definition 1's
        latency exactly -- their durations telescope to emitted minus
        created within 1e-9 for every complete trace."""
        completed = traced_trial.observability.completed_traces
        assert completed
        for trace in completed:
            span_sum = sum(t1 - t0 for _, t0, t1 in trace.spans())
            assert span_sum == pytest.approx(
                trace.event_time_latency, abs=SPAN_TOL
            )

    def test_spans_ordered_and_non_overlapping(self, traced_trial):
        for trace in traced_trial.observability.trace_log.started:
            spans = trace.spans()
            for (_, t0, t1), (_, u0, u1) in zip(spans, spans[1:]):
                assert t0 <= t1
                assert t1 == u0

    def test_registry_sampled_driver_and_engine_series(self, traced_trial):
        series = traced_trial.observability.registry.series
        assert "driver.queue_depth_total" in series
        assert "engine.ingested_weight" in series
        assert "conservation.ingested" in series
        # Sampled at ~1 Hz over the whole trial.
        assert len(series["engine.ingested_weight"]) >= 35

    def test_trial_json_carries_observability(self, traced_trial):
        payload = trial_to_dict(traced_trial)
        obs = payload["observability"]
        assert obs["trace_sample_rate"] == 200
        assert obs["tracing"]["completed"] >= 1
        assert obs["metrics"]["series"]
        json.dumps(payload)  # must be serialisable end to end

    def test_identical_results_with_and_without_obs(self):
        """Observability must not perturb the simulation at all."""
        plain = run_experiment(obs_spec(observability=None))
        traced = run_experiment(obs_spec())
        assert plain.event_latency.mean == traced.event_latency.mean
        assert plain.mean_ingest_rate == traced.mean_ingest_rate
        assert len(plain.collector) == len(traced.collector)


class TestFaultAnnotations:
    def test_recovery_milestones_annotate_live_traces(self):
        result = run_experiment(
            obs_spec(
                duration_s=80.0,
                faults=FaultSchedule(events=(ProcessRestart(at_s=30.0),)),
            )
        )
        log = result.observability.trace_log
        kinds = {e["kind"] for e in log.events}
        assert "fault.restart" in kinds
        assert "recovery.detected" in kinds
        annotated = [t for t in log.started if t.annotations]
        assert annotated, "no trace overlapped the fault window"


class TestRendering:
    def test_dashboard_renders_registry_and_traces(self, traced_trial):
        text = render_obs_dashboard(traced_trial.observability)
        assert "metrics registry" in text
        assert "traces:" in text
        assert "decomposed" in text

    def test_render_trace_accepts_object_and_dict(self, traced_trial):
        trace = traced_trial.observability.completed_traces[0]
        from_obj = render_trace(trace)
        from_dict = render_trace(trace.to_dict())
        assert from_obj == from_dict
        assert "queue_wait" in from_obj


class TestCliFlags:
    def test_flags_build_obs_spec(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--trace-sample-rate", "500", "--metrics-interval", "2.5"]
        )
        assert args.trace_sample_rate == 500
        assert args.metrics_interval == 2.5

    def test_run_command_prints_dashboard(self, capsys):
        code = cli_main(
            [
                "run",
                "--engine", "flink",
                "--rate", "20000",
                "--duration", "30",
                "--generators", "1",
                "--no-resources",
                "--trace-sample-rate", "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics registry" in out

    def test_run_command_without_flags_has_no_dashboard(self, capsys):
        code = cli_main(
            [
                "run",
                "--engine", "flink",
                "--rate", "20000",
                "--duration", "30",
                "--generators", "1",
                "--no-resources",
            ]
        )
        assert code == 0
        assert "metrics registry" not in capsys.readouterr().out
