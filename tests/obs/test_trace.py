"""Unit tests for the event-lifecycle tracing primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.trace import (
    CREATED,
    EMITTED,
    EventTrace,
    TraceLog,
    TraceSampler,
)


def make_trace(**kwargs):
    defaults = dict(trace_id=0, key=1, stream="purchases", weight=2.0)
    defaults.update(kwargs)
    return EventTrace(**defaults)


class TestEventTrace:
    def test_spans_partition_lifetime(self):
        trace = make_trace()
        for name, t in [
            ("created", 0.0),
            ("enqueued", 0.1),
            ("ingested", 0.5),
            ("closed", 2.0),
            ("emitted", 2.25),
        ]:
            trace.mark(name, t)
        spans = trace.spans()
        assert [s[0] for s in spans] == [
            "enqueue", "queue_wait", "window_buffer", "emit",
        ]
        # Contiguous: each span starts where the previous ended.
        for (_, _, end), (_, start, _) in zip(spans, spans[1:]):
            assert end == start
        assert trace.complete
        assert sum(t1 - t0 for _, t0, t1 in spans) == pytest.approx(
            trace.event_time_latency, abs=1e-12
        )

    def test_non_canonical_pair_named_by_marks(self):
        trace = make_trace()
        trace.mark("created", 0.0)
        trace.mark("executor_queue", 1.0)
        assert trace.spans()[0][0] == "created->executor_queue"

    def test_mark_clamps_backwards_time(self):
        """A ulp of float jitter must never produce a negative span."""
        trace = make_trace()
        trace.mark("created", 1.0)
        trace.mark("enqueued", 1.0 - 1e-12)
        (_, t0, t1), = trace.spans()
        assert t1 == t0 == 1.0

    def test_incomplete_trace_has_nan_latency(self):
        trace = make_trace()
        trace.mark(CREATED, 0.0)
        assert not trace.complete
        assert trace.event_time_latency != trace.event_time_latency

    def test_to_dict_roundtrips_marks_and_spans(self):
        trace = make_trace()
        trace.mark(CREATED, 0.5)
        trace.mark(EMITTED, 1.5)
        payload = trace.to_dict()
        assert payload["complete"] is True
        assert payload["event_time_latency_s"] == pytest.approx(1.0)
        assert [m["name"] for m in payload["marks"]] == [CREATED, EMITTED]
        assert payload["spans"][0]["duration_s"] == pytest.approx(1.0)


class TestTraceSampler:
    def test_rate_one_traces_every_cohort(self):
        log = TraceLog()
        sampler = TraceSampler(1, log)
        traces = [
            sampler.maybe_trace(k, "purchases", 1.0, 0.0) for k in range(5)
        ]
        assert all(t is not None for t in traces)
        assert [t.trace_id for t in traces] == list(range(5))

    def test_rate_n_traces_every_nth(self):
        log = TraceLog()
        sampler = TraceSampler(3, log)
        hits = [
            sampler.maybe_trace(k, "purchases", 1.0, 0.0) is not None
            for k in range(9)
        ]
        assert hits == [False, False, True] * 3

    def test_rate_zero_rejected(self):
        with pytest.raises(ValueError, match="sample_rate"):
            TraceSampler(0, TraceLog())

    def test_started_trace_carries_created_mark(self):
        sampler = TraceSampler(1, TraceLog())
        trace = sampler.maybe_trace(7, "ads", 3.0, 12.5)
        assert trace.marks == [(CREATED, 12.5)]
        assert trace.key == 7
        assert trace.stream == "ads"
        assert trace.weight == 3.0

    @given(
        rate=st.integers(min_value=1, max_value=7),
        batches=st.lists(
            st.integers(min_value=0, max_value=11), min_size=1, max_size=8
        ),
    )
    def test_batched_countdown_equals_per_cohort_path(self, rate, batches):
        """The generator's countdown fast path (due_in/take/sync) must
        make bit-identical sampling decisions to maybe_trace, for any
        rate and any batch segmentation of the cohort sequence."""
        ref_sampler = TraceSampler(rate, TraceLog())
        fast_sampler = TraceSampler(rate, TraceLog())
        ref_hits, fast_hits = [], []
        for batch in batches:
            for i in range(batch):
                ref_hits.append(
                    ref_sampler.maybe_trace(i, "purchases", 1.0, 0.0)
                    is not None
                )
            countdown = fast_sampler.due_in()
            for i in range(batch):
                countdown -= 1
                if countdown == 0:
                    fast_sampler.take(i, "purchases", 1.0, 0.0)
                    fast_hits.append(True)
                    countdown = fast_sampler.sample_rate
                else:
                    fast_hits.append(False)
            fast_sampler.sync(countdown)
        assert fast_hits == ref_hits
        assert fast_sampler._counter == ref_sampler._counter
        assert fast_sampler._next_id == ref_sampler._next_id


class TestTraceLog:
    def test_overflow_bounds_memory(self):
        log = TraceLog(max_traces=2)
        sampler = TraceSampler(1, log)
        for k in range(5):
            sampler.maybe_trace(k, "purchases", 1.0, 0.0)
        assert len(log.started) == 2
        assert log.overflow == 3
        assert log.started_count == 5

    def test_annotate_attaches_contained_events_only(self):
        log = TraceLog()
        inside = make_trace(trace_id=0)
        inside.mark(CREATED, 1.0)
        inside.mark(EMITTED, 5.0)
        outside = make_trace(trace_id=1)
        outside.mark(CREATED, 6.0)
        outside.mark(EMITTED, 7.0)
        log.on_start(inside)
        log.on_start(outside)
        log.add_event("fault.crash", 3.0, nodes=1)
        log.annotate()
        assert [e["kind"] for e in inside.annotations] == ["fault.crash"]
        assert inside.annotations[0]["nodes"] == 1
        assert outside.annotations == []

    def test_to_dict_caps_exported_traces(self):
        log = TraceLog()
        for i in range(5):
            trace = make_trace(trace_id=i)
            trace.mark(CREATED, 0.0)
            trace.mark(EMITTED, 1.0)
            log.on_start(trace)
            log.on_complete(trace)
        payload = log.to_dict(max_export=2)
        assert payload["completed"] == 5
        assert len(payload["traces"]) == 2
