"""Unit tests for the metrics registry instruments and sampler."""

import math

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.simulator import Simulator


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.add(2.0)
        c.add(3.5)
        assert c.read() == 5.5

    def test_gauge_set_and_bind(self):
        g = Gauge("x")
        g.set(4.0)
        assert g.read() == 4.0
        g.bind(lambda: 7.0)
        assert g.read() == 7.0

    def test_histogram_mean_and_quantiles(self):
        h = Histogram("lat", lo=1e-3, hi=1e2, bins=50)
        for v in (0.01, 0.1, 1.0, 10.0):
            h.observe(v)
        assert h.total_weight == 4.0
        assert h.mean == pytest.approx(11.11 / 4.0)
        # Quantiles are bin midpoints: log-accurate, not exact.
        assert h.quantile(0.5) == pytest.approx(0.1, rel=0.2)
        assert math.isnan(Histogram("empty").quantile(0.5))

    def test_histogram_clamps_out_of_range(self):
        h = Histogram("lat", lo=1.0, hi=10.0, bins=4)
        h.observe(0.01)
        h.observe(1000.0)
        assert h.counts[0] == 1.0
        assert h.counts[-1] == 1.0

    def test_histogram_weighted_observations(self):
        h = Histogram("lat", lo=0.1, hi=10.0, bins=8)
        h.observe(1.0, weight=9.0)
        h.observe(5.0, weight=1.0)
        assert h.total_weight == 10.0
        assert h.mean == pytest.approx(1.4)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_sample_snapshots_counters_and_gauges(self):
        reg = MetricsRegistry(interval_s=0.5)
        c = reg.counter("ingested")
        g = reg.gauge("depth").bind(lambda: 3.0)
        c.add(10.0)
        reg.sample(1.0)
        c.add(5.0)
        reg.sample(2.0)
        assert reg.series["ingested"].values.tolist() == [10.0, 15.0]
        assert reg.series["depth"].values.tolist() == [3.0, 3.0]
        assert reg.series["ingested"].times.tolist() == [1.0, 2.0]
        assert reg.sample_count == 2

    def test_install_samples_at_interval(self):
        sim = Simulator()
        reg = MetricsRegistry(interval_s=1.0)
        reg.gauge("now").bind(lambda: 1.0)
        reg.install(sim)
        sim.run_until(5.0)
        assert reg.sample_count == 5

    def test_latest_reads_both_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c").add(2.0)
        reg.gauge("g").set(3.0)
        assert reg.latest("c") == 2.0
        assert reg.latest("g") == 3.0
        assert math.isnan(reg.latest("missing"))

    def test_to_dict_exports_series_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").add(1.0)
        reg.histogram("h").observe(0.5)
        reg.sample(1.0)
        payload = reg.to_dict()
        assert payload["final"]["c"] == 1.0
        assert payload["series"]["c"]["v"] == [1.0]
        assert payload["histograms"]["h"]["total_weight"] == 1.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="interval_s"):
            MetricsRegistry(interval_s=0.0)
