"""Property tests: lifecycle traces and conservation under random load.

Hypothesis drives randomized end-to-end trials -- engine, query, rate,
window geometry, disorder, and fault schedule all vary -- and checks
the invariants the observability layer is built on:

- **span geometry**: within every trace, spans are ordered, contiguous
  and non-overlapping; a complete trace's span durations sum to its
  measured event-time latency within 1e-9 (the spans *decompose* the
  paper's Definition 1, they never re-measure it);
- **conservation**: per-engine weight accounting balances -- every
  ingested event is staged, admitted, or dropped, and every admitted
  event is closed (emitted), still stored, or lost to a fault, within
  float accumulation error.

Examples are full trials, so example counts are deliberately small;
the point is the random *composition* (e.g. disorder + crash on Samza)
no hand-written scenario covers.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.faults.schedule import (
    FaultSchedule,
    NodeCrash,
    ProcessRestart,
    SlowNode,
)
from repro.obs.context import ObsSpec
from repro.workloads.disorder import DisorderSpec
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

SPAN_TOL = 1e-9
CONSERVATION_REL_TOL = 1e-9

ENGINES = ("flink", "storm", "spark", "heron", "samza")

trial_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def workloads(draw):
    """A random but bounded end-to-end trial specification."""
    engine = draw(st.sampled_from(ENGINES))
    window = draw(
        st.sampled_from([WindowSpec(4.0, 2.0), WindowSpec(6.0, 6.0),
                         WindowSpec(8.0, 4.0)])
    )
    if draw(st.booleans()):
        query = WindowedAggregationQuery(window=window)
    else:
        query = WindowedJoinQuery(window=window)
    rate = draw(st.sampled_from([5_000.0, 20_000.0, 60_000.0]))
    disorder_fraction = draw(st.sampled_from([0.0, 0.1, 0.3]))
    disorder = (
        DisorderSpec(fraction=disorder_fraction, max_delay_s=2.0)
        if disorder_fraction > 0
        else None
    )
    fault = draw(
        st.sampled_from(
            [
                None,
                FaultSchedule(events=(ProcessRestart(at_s=12.0),)),
                FaultSchedule(events=(NodeCrash(at_s=12.0),)),
                FaultSchedule(
                    events=(SlowNode(at_s=10.0, duration_s=6.0, factor=0.5),)
                ),
            ]
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return ExperimentSpec(
        engine=engine,
        query=query,
        workers=2,
        profile=rate,
        duration_s=30.0,
        seed=seed,
        generator=GeneratorConfig(instances=2, disorder=disorder),
        monitor_resources=False,
        faults=fault,
        observability=ObsSpec(trace_sample_rate=50),
    )


class TestTraceProperties:
    @trial_settings
    @given(spec=workloads())
    def test_spans_ordered_contiguous_and_telescoping(self, spec):
        result = run_experiment(spec)
        log = result.observability.trace_log
        assert log.started, "sampler produced no traces at rate 50"
        for trace in log.started:
            # Marks are non-decreasing in time.
            times = [t for _, t in trace.marks]
            assert times == sorted(times)
            # Spans are contiguous (non-overlapping, no gaps).
            spans = trace.spans()
            for (_, _, end), (_, start, _) in zip(spans, spans[1:]):
                assert end == start
        completed = log.completed
        for trace in completed:
            assert trace.marks[0][0] == "created"
            assert trace.marks[-1][0] == "emitted"
            span_sum = sum(t1 - t0 for _, t0, t1 in trace.spans())
            assert span_sum == pytest.approx(
                trace.event_time_latency, abs=SPAN_TOL
            )

    @trial_settings
    @given(spec=workloads())
    def test_dropped_traces_never_complete(self, spec):
        result = run_experiment(spec)
        for trace in result.observability.trace_log.started:
            if trace.dropped:
                assert not trace.complete


def assert_conservation(result):
    """ingested == staged + admitted + dropped and
    admitted == closed + stored + lost, within float accumulation."""
    ledger = {
        key.split(".", 1)[1]: value
        for key, value in result.diagnostics.items()
        if key.startswith("conservation.")
    }
    assert ledger["ingested"] >= 0.0
    tol = CONSERVATION_REL_TOL * max(1.0, ledger["ingested"])
    assert ledger["ingested"] == pytest.approx(
        ledger.get("staged", 0.0) + ledger["admitted"] + ledger["dropped"],
        abs=tol,
    )
    assert ledger["admitted"] == pytest.approx(
        ledger["closed"] + ledger["stored"] + ledger["lost"],
        abs=tol,
    )


class TestConservationProperties:
    @trial_settings
    @given(spec=workloads())
    def test_weight_conservation_ledger_balances(self, spec):
        """Conservation for every engine, under random disorder and
        fault schedules."""
        assert_conservation(run_experiment(spec))


@pytest.mark.slow
class TestDeepSweep:
    """The same invariants over a much larger random sample -- CI's
    dedicated slow step; excluded from the tier-1 default run."""

    deep_settings = settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )

    @deep_settings
    @given(spec=workloads())
    def test_traces_and_conservation_hold_jointly(self, spec):
        result = run_experiment(spec)
        assert_conservation(result)
        for trace in result.observability.trace_log.completed:
            span_sum = sum(t1 - t0 for _, t0, t1 in trace.spans())
            assert span_sum == pytest.approx(
                trace.event_time_latency, abs=SPAN_TOL
            )
