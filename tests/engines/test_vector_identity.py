"""Scalar <-> vector identity: the columnar tick loop is a bitwise twin.

The columnar engine path (:mod:`repro.core.batch`,
:mod:`repro.engines.operators.columnar`) re-expresses the per-record
Python loops as NumPy column kernels built from *sequential* folds
(``np.add.accumulate``), so the float operations -- and therefore every
downstream ledger, RNG draw, and emission -- happen in exactly the
scalar order.  These tests run the SAME seeded trial through both paths
(``REPRO_ENGINE_SCALAR=1`` selects the scalar reference) and assert the
results are identical: sink tables, conservation/diagnostics ledgers,
and latency summaries, exact to 1e-9 (and in practice bit-for-bit).

Hypothesis sweeps the space the refactor touches: engine x query kind
x disorder x faults x degradation shedding.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.core.batch import SCALAR_ENV, scalar_mode, vector_enabled
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.faults.schedule import FaultSchedule, NodeCrash, SlowNode
from repro.recovery.degradation import DegradationPolicy
from repro.workloads.disorder import DisorderSpec
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

TOL = 1e-9

#: Host wall-clock diagnostics -- legitimately differ between runs.
WALL_CLOCK_KEYS = frozenset(
    {"driver.summary_s", "collector.collect_s", "collector.samples_per_s"}
)


def run_mode(spec: ExperimentSpec, scalar: bool):
    saved = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if scalar else "0"
    try:
        return run_experiment(spec)
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved


def sink_table(result) -> Dict[Tuple[float, int], Tuple[float, float]]:
    table: Dict[Tuple[float, int], Tuple[float, float]] = {}
    for out in result.collector.outputs:
        key = (round(out.window_end, 9), out.key)
        value, weight = table.get(key, (0.0, 0.0))
        table[key] = (value + out.value, weight + out.weight)
    return table


def assert_identical(scalar, vector) -> None:
    """Every observable of the two trials agrees to TOL (or exactly)."""
    assert scalar.failure == vector.failure
    assert scalar.failure_time == pytest.approx(
        vector.failure_time, abs=TOL, nan_ok=True
    )

    s_table, v_table = sink_table(scalar), sink_table(vector)
    assert set(s_table) == set(v_table)
    for key in s_table:
        assert s_table[key][0] == pytest.approx(v_table[key][0], abs=TOL), key
        assert s_table[key][1] == pytest.approx(v_table[key][1], abs=TOL), key

    for kind in ("event_latency", "processing_latency"):
        s_sum, v_sum = getattr(scalar, kind), getattr(vector, kind)
        for field in ("count", "weight", "mean", "minimum", "maximum",
                      "p90", "p95", "p99", "std"):
            s, v = getattr(s_sum, field), getattr(v_sum, field)
            if s == v:  # covers nan-free exact equality fast path
                continue
            assert s == pytest.approx(v, abs=TOL, nan_ok=True), (kind, field)

    s_diag, v_diag = scalar.diagnostics, vector.diagnostics
    assert set(s_diag) == set(v_diag)
    for key, s in s_diag.items():
        if key in WALL_CLOCK_KEYS:
            continue
        assert s == pytest.approx(v_diag[key], abs=TOL), key

    assert scalar.mean_ingest_rate == pytest.approx(
        vector.mean_ingest_rate, abs=TOL, nan_ok=True
    )


def identity_spec(
    engine: str,
    query,
    *,
    seed: int = 77,
    duration_s: float = 12.0,
    rate: float = 8_000.0,
    disorder=None,
    faults=None,
    degradation=None,
) -> ExperimentSpec:
    return ExperimentSpec(
        engine=engine,
        query=query,
        workers=2,
        profile=rate,
        duration_s=duration_s,
        seed=seed,
        generator=GeneratorConfig(instances=2, disorder=disorder),
        monitor_resources=False,
        keep_outputs=True,
        faults=faults,
        degradation=degradation,
    )


ENGINES = ("flink", "storm", "spark", "heron", "samza")


@pytest.mark.skipif(
    os.environ.get(SCALAR_ENV, "") not in ("", "0"),
    reason="suite deliberately forced onto the scalar path via env",
)
def test_vector_is_the_default():
    """With the env var unset, engines take the columnar path."""
    assert os.environ.get(SCALAR_ENV, "") in ("", "0")
    assert not scalar_mode()
    assert vector_enabled()


@pytest.mark.parametrize("engine", ENGINES)
def test_deterministic_aggregation_identity(engine):
    spec = identity_spec(engine, WindowedAggregationQuery(WindowSpec(8.0, 4.0)))
    assert_identical(run_mode(spec, True), run_mode(spec, False))


@pytest.mark.parametrize("engine", ENGINES)
def test_deterministic_join_identity(engine):
    spec = identity_spec(engine, WindowedJoinQuery(WindowSpec(8.0, 4.0)))
    assert_identical(run_mode(spec, True), run_mode(spec, False))


FAULTS = {
    "none": None,
    "crash": FaultSchedule((NodeCrash(at_s=5.0),)),
    "slow": FaultSchedule((SlowNode(at_s=4.0, duration_s=3.0, nodes=1),)),
}
DEGRADATION = {
    "none": None,
    "shed-oldest": DegradationPolicy(shed="oldest", max_queue_delay_s=2.0),
    "shed-newest": DegradationPolicy(shed="newest", max_queue_delay_s=2.0),
}


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    engine=st.sampled_from(ENGINES),
    join=st.booleans(),
    seed=st.integers(min_value=1, max_value=2**31 - 1),
    disorder=st.one_of(
        st.none(),
        st.builds(
            DisorderSpec,
            fraction=st.floats(0.05, 0.5),
            max_delay_s=st.floats(0.5, 4.0),
        ),
    ),
    fault=st.sampled_from(sorted(FAULTS)),
    shed=st.sampled_from(sorted(DEGRADATION)),
)
def test_property_identity(engine, join, seed, disorder, fault, shed):
    query = (
        WindowedJoinQuery(WindowSpec(8.0, 4.0))
        if join
        else WindowedAggregationQuery(WindowSpec(8.0, 4.0))
    )
    spec = identity_spec(
        engine,
        query,
        seed=seed,
        disorder=disorder,
        faults=FAULTS[fault],
        degradation=DEGRADATION[shed],
    )
    assert_identical(run_mode(spec, True), run_mode(spec, False))
