"""Unit tests for the sink operator."""

import pytest

from repro.core.records import OutputRecord
from repro.engines.operators.sink import Sink


def out(weight=1.0):
    return OutputRecord(
        key=0,
        value=1.0,
        event_time=1.0,
        processing_time=1.5,
        emit_time=2.0,
        weight=weight,
    )


class TestSink:
    def test_forwards_to_collector(self):
        received = []
        sink = Sink(received.extend)
        sink.emit([out(), out()], bytes_per_tuple=48.0)
        assert len(received) == 2

    def test_counts_tuples_weight_bytes(self):
        sink = Sink()
        sink.emit([out(weight=2.0), out(weight=3.0)], bytes_per_tuple=10.0)
        assert sink.emitted_tuples == 2
        assert sink.emitted_weight == pytest.approx(5.0)
        assert sink.emitted_bytes == pytest.approx(50.0)

    def test_empty_emission_is_noop(self):
        received = []
        sink = Sink(received.extend)
        sink.emit([], bytes_per_tuple=10.0)
        assert received == []
        assert sink.emitted_tuples == 0

    def test_attach_replaces_collector(self):
        first, second = [], []
        sink = Sink(first.extend)
        sink.attach(second.extend)
        sink.emit([out()], bytes_per_tuple=1.0)
        assert first == []
        assert len(second) == 1

    def test_no_collector_still_counts(self):
        sink = Sink()
        sink.emit([out()], bytes_per_tuple=1.0)
        assert sink.emitted_tuples == 1
