"""Engine-level behavioural tests: each engine model on short runs."""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.engines.spark import SparkConfig
from repro.engines.storm import StormConfig
from repro.workloads.keys import SingleKey
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)


def spec(engine, **overrides):
    defaults = dict(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(4.0, 2.0)),
        workers=2,
        profile=10_000.0,
        duration_s=40.0,
        seed=11,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def run_with_recorded_outputs(experiment_spec):
    """Run an experiment while also capturing raw output tuples."""
    from dataclasses import replace

    result = run_experiment(replace(experiment_spec, keep_outputs=True))
    return result, result.collector.outputs


class TestAggregationCorrectness:
    """Window SUMs must equal (generated events in window) * price."""

    @pytest.mark.parametrize("engine", ["storm", "flink", "spark"])
    def test_window_sums_match_generated_totals(self, engine):
        from repro.workloads.events import (
            MAX_GEM_PACK_PRICE,
            MIN_GEM_PACK_PRICE,
        )

        result, outputs = run_with_recorded_outputs(spec(engine))
        assert not result.failed
        mean_price = (MIN_GEM_PACK_PRICE + MAX_GEM_PACK_PRICE) / 2.0
        rate, size = 10_000.0, 4.0
        # Interior windows (fully inside the run, all inputs ingested):
        by_window = {}
        for out in outputs:
            by_window.setdefault(out.window_end, 0.0)
            by_window[out.window_end] += out.value
        interior = {
            end: total
            for end, total in by_window.items()
            if 8.0 <= end <= result.duration_s - 10.0
        }
        assert interior, "no interior windows emitted"
        expected = rate * size * mean_price
        for end, total in interior.items():
            assert total == pytest.approx(expected, rel=0.05), f"window {end}"

    @pytest.mark.parametrize("engine", ["storm", "spark", "flink"])
    def test_outputs_cover_all_keys(self, engine):
        result = run_experiment(spec(engine))
        q = WindowedAggregationQuery(window=WindowSpec(4.0, 2.0))
        active_keys = int((q.keys.pmf() > 0).sum())
        # At least one full window of outputs: >= #keys outputs.
        assert len(result.collector) >= active_keys


class TestLatencyOrdering:
    def test_flink_latency_below_spark(self):
        flink = run_experiment(spec("flink"))
        spark = run_experiment(spec("spark", engine_config=None))
        assert flink.event_latency.mean < spark.event_latency.mean

    def test_spark_latency_floor_is_batch_scale(self):
        spark = run_experiment(spec("spark"))
        cfg = SparkConfig()
        # Mini-batching: even unloaded, latencies sit at job-duration
        # scale, well above Flink's pipeline delay.
        assert spark.event_latency.minimum > 0.2

    def test_spark_variance_tighter_than_storm(self):
        storm = run_experiment(spec("storm", profile=300_000.0))
        spark = run_experiment(spec("spark", profile=300_000.0))
        rel_storm = storm.event_latency.std / storm.event_latency.mean
        rel_spark = spark.event_latency.std / spark.event_latency.mean
        assert rel_spark < rel_storm


class TestSkewBehaviour:
    def test_flink_skew_capacity_is_slot_bound(self):
        q = WindowedAggregationQuery(
            window=WindowSpec(4.0, 2.0), keys=SingleKey()
        )
        over = run_experiment(
            spec("flink", query=q, profile=0.6e6, duration_s=60.0)
        )
        # 0.6 M/s offered > 0.48 M/s slot capacity: ingest saturates at
        # the slot rate and the backlog grows.
        assert over.mean_ingest_rate < 0.52e6
        assert over.throughput.occupancy_slope(over.warmup_s) > 0

    def test_spark_handles_skew(self):
        q = WindowedAggregationQuery(
            window=WindowSpec(4.0, 2.0), keys=SingleKey()
        )
        result = run_experiment(
            spec("spark", query=q, profile=0.3e6, duration_s=60.0)
        )
        assert not result.failed
        assert result.mean_ingest_rate == pytest.approx(0.3e6, rel=0.1)

    def test_flink_skewed_join_stalls(self):
        q = WindowedJoinQuery(window=WindowSpec(4.0, 2.0), keys=SingleKey())
        result = run_experiment(
            spec("flink", query=q, profile=0.6e6, duration_s=120.0)
        )
        assert result.failed
        assert "unresponsive" in result.failure


class TestStormFailures:
    def test_naive_join_fails_beyond_two_workers(self):
        q = WindowedJoinQuery(window=WindowSpec(4.0, 2.0))
        result = run_experiment(
            spec("storm", query=q, workers=4, profile=0.2e6, duration_s=60.0)
        )
        assert result.failed
        assert "naive" in result.failure

    def test_naive_join_works_on_two_workers(self):
        q = WindowedJoinQuery(window=WindowSpec(4.0, 2.0))
        result = run_experiment(
            spec("storm", query=q, workers=2, profile=0.1e6, duration_s=60.0)
        )
        assert not result.failed

    def test_large_window_oom_without_advanced_state(self):
        q = WindowedAggregationQuery(window=WindowSpec(60.0, 60.0))
        result = run_experiment(
            spec("storm", query=q, profile=0.4e6, duration_s=150.0)
        )
        assert result.failed
        assert "heap budget" in result.failure

    def test_large_window_survives_with_advanced_state(self):
        q = WindowedAggregationQuery(window=WindowSpec(60.0, 60.0))
        cfg = StormConfig(advanced_state=True)
        result = run_experiment(
            spec(
                "storm",
                query=q,
                profile=0.3e6,
                duration_s=150.0,
                engine_config=cfg,
            )
        )
        assert not result.failed


class TestSparkMachinery:
    def test_job_log_populated(self):
        result = run_experiment(spec("spark"))
        assert result.diagnostics["jobs_run"] > 0

    def test_inverse_reduce_config_runs(self):
        cfg = SparkConfig(inverse_reduce=True)
        result = run_experiment(spec("spark", engine_config=cfg))
        assert not result.failed

    def test_windows_emitted_counted(self):
        result = run_experiment(spec("spark"))
        assert result.diagnostics["windows_emitted"] > 0


class TestDiagnostics:
    @pytest.mark.parametrize("engine", ["storm", "spark", "flink"])
    def test_diagnostics_have_ingest_weight(self, engine):
        result = run_experiment(spec(engine))
        assert result.diagnostics["ingested_weight"] > 0
