"""Engine-specific unit tests: Flink and Spark internals."""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.engines.backpressure import CreditBased, OnOffThrottle, RateController
from repro.engines.flink import FlinkEngine
from repro.engines.spark import SparkConfig, SparkEngine
from repro.engines.storm import StormConfig, StormEngine
from repro.sim.cluster import paper_cluster
from repro.sim.network import DataPlane, NetworkSpec
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)


def build(engine_cls, query=None, workers=2, config=None):
    sim = Simulator()
    return engine_cls(
        sim=sim,
        cluster=paper_cluster(workers),
        query=query or WindowedAggregationQuery(window=WindowSpec(4, 2)),
        plane=DataPlane(sim, NetworkSpec()),
        rng=RngRegistry(0).stream("e"),
        resources=None,
        config=config,
    )


class TestFlinkConstruction:
    def test_backpressure_is_credit_based(self):
        engine = build(FlinkEngine)
        assert isinstance(engine._backpressure(), CreditBased)

    def test_supports_spill(self):
        assert FlinkEngine.supports_spill()

    def test_join_uses_join_store(self):
        from repro.engines.operators.join import JoinWindowStore

        engine = build(FlinkEngine, query=WindowedJoinQuery(window=WindowSpec(4, 2)))
        assert isinstance(engine._store, JoinWindowStore)

    def test_cost_model_resolved_by_query_kind(self):
        agg = build(FlinkEngine)
        join = build(FlinkEngine, query=WindowedJoinQuery(window=WindowSpec(4, 2)))
        assert agg.cost.query_kind == "aggregation"
        assert join.cost.query_kind == "join"


class TestStormConstruction:
    def test_backpressure_is_on_off(self):
        engine = build(StormEngine)
        assert isinstance(engine._backpressure(), OnOffThrottle)

    def test_no_spill_by_default(self):
        assert not StormEngine.supports_spill()
        engine = build(StormEngine)
        assert not engine.state.policy.can_spill

    def test_advanced_state_enables_spill(self):
        engine = build(StormEngine, config=StormConfig(advanced_state=True))
        assert engine.state.policy.can_spill

    def test_emit_jitter_sigma_grows_with_workers(self):
        import numpy as np

        small = build(StormEngine, workers=2)
        big = build(StormEngine, workers=8)
        draws_small = [small._emit_jitter() for _ in range(2000)]
        draws_big = [big._emit_jitter() for _ in range(2000)]
        assert np.std(np.log(draws_big)) > np.std(np.log(draws_small))

    def test_generic_config_upgraded_to_storm_config(self):
        from repro.engines.base import EngineConfig

        engine = build(StormEngine, config=EngineConfig())
        assert isinstance(engine.config, StormConfig)


class TestSparkConstruction:
    def test_backpressure_is_rate_controller(self):
        engine = build(SparkEngine)
        assert isinstance(engine._backpressure(), RateController)

    def test_batch_alignment(self):
        assert SparkEngine._align_up(0.0, 4.0) == pytest.approx(4.0) or (
            SparkEngine._align_up(0.0, 4.0) == pytest.approx(0.0)
        )
        assert SparkEngine._align_up(3.2, 4.0) == pytest.approx(4.0)
        assert SparkEngine._align_up(4.0, 4.0) == pytest.approx(8.0)

    def test_generic_config_upgraded_to_spark_config(self):
        from repro.engines.base import EngineConfig

        engine = build(SparkEngine, config=EngineConfig())
        assert isinstance(engine.config, SparkConfig)

    def test_partitions_bounded_by_intervals(self):
        cfg = SparkConfig(batch_interval_s=4.0, block_interval_s=0.2)
        assert cfg.batch_interval_s / cfg.block_interval_s == pytest.approx(20)


class TestSparkJobDynamics:
    def run_spark(self, rate, duration=60.0, config=None, workers=2):
        spec = ExperimentSpec(
            engine="spark",
            query=WindowedAggregationQuery(window=WindowSpec(8, 4)),
            workers=workers,
            profile=rate,
            duration_s=duration,
            generator=GeneratorConfig(instances=2),
            engine_config=config,
            monitor_resources=False,
        )
        return run_experiment(spec)

    def test_jobs_fire_per_batch(self):
        result = self.run_spark(50_000.0)
        # ~1 job per 4 s batch interval.
        assert result.diagnostics["jobs_run"] == pytest.approx(
            60.0 / 4.0, abs=2
        )

    def test_smaller_batches_cut_latency(self):
        small = self.run_spark(50_000.0, config=SparkConfig(batch_interval_s=2.0))
        large = self.run_spark(50_000.0, config=SparkConfig(batch_interval_s=8.0))
        assert small.event_latency.mean < large.event_latency.mean

    def test_inverse_reduce_cuts_job_cost_on_large_windows(self):
        q = WindowedAggregationQuery(window=WindowSpec(60, 60))
        base = ExperimentSpec(
            engine="spark",
            query=q,
            workers=2,
            profile=0.3e6,
            duration_s=180.0,
            generator=GeneratorConfig(instances=2),
            monitor_resources=False,
        )
        from dataclasses import replace

        cached = run_experiment(base)
        inverse = run_experiment(
            replace(base, engine_config=SparkConfig(inverse_reduce=True))
        )
        assert (
            inverse.event_latency.mean < cached.event_latency.mean
        )

    def test_rate_limit_converges_below_overload(self):
        result = self.run_spark(0.6e6, duration=120.0)
        # Offered 0.6 M/s >> 2-node capacity 0.38 M/s: the controller
        # must have engaged and the limit must be finite.
        assert 0 < result.diagnostics["rate_limit"] < 0.6e6
