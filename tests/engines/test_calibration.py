"""Unit tests for the cost model and its calibration."""

import pytest

from repro.engines.calibration import (
    AGGREGATION,
    JOIN,
    CostModel,
    cost_model_for,
    registered_models,
)
from repro.sim.cluster import paper_cluster


class TestRegistry:
    def test_all_six_models_registered(self):
        models = registered_models()
        for engine in ("storm", "spark", "flink"):
            for kind in (AGGREGATION, JOIN):
                assert (engine, kind) in models

    def test_lookup_case_insensitive(self):
        assert cost_model_for("FLINK", AGGREGATION).engine == "flink"

    def test_unknown_lookup_rejected(self):
        with pytest.raises(ValueError):
            cost_model_for("samza", AGGREGATION)
        with pytest.raises(ValueError):
            cost_model_for("flink", "cep")


class TestCalibratedCapacities:
    """CPU capacities must reproduce the Table I/III fits they came from."""

    @pytest.mark.parametrize(
        "engine,workers,expected",
        [
            ("storm", 2, 0.40e6),
            ("storm", 4, 0.69e6),
            ("storm", 8, 0.99e6),
            ("spark", 2, 0.38e6),
            ("spark", 4, 0.64e6),
            ("spark", 8, 0.91e6),
        ],
    )
    def test_aggregation_cpu_capacity(self, engine, workers, expected):
        model = cost_model_for(engine, AGGREGATION)
        cap = model.cpu_capacity_events_per_s(paper_cluster(workers))
        assert cap == pytest.approx(expected, rel=0.02)

    def test_flink_cpu_capacity_exceeds_network_bound(self):
        model = cost_model_for("flink", AGGREGATION)
        for workers in (2, 4, 8):
            cap = model.cpu_capacity_events_per_s(paper_cluster(workers))
            assert cap > 1.202e6  # the 1 Gb/s wire limit binds instead

    @pytest.mark.parametrize(
        "engine,workers,expected",
        [
            ("spark", 2, 0.36e6),
            ("spark", 4, 0.63e6),
            ("spark", 8, 0.94e6),
            ("flink", 2, 0.85e6),
            ("flink", 4, 1.12e6),
        ],
    )
    def test_join_cpu_capacity(self, engine, workers, expected):
        model = cost_model_for(engine, JOIN)
        cap = model.cpu_capacity_events_per_s(paper_cluster(workers))
        assert cap == pytest.approx(expected, rel=0.02)

    def test_storm_naive_join_2node(self):
        model = cost_model_for("storm", JOIN)
        cap = model.cpu_capacity_events_per_s(paper_cluster(2))
        assert cap == pytest.approx(0.14e6, rel=0.02)


class TestSkew:
    def test_flink_single_key_slot_rate(self):
        model = cost_model_for("flink", AGGREGATION)
        assert model.keyed_slot_capacity_events_per_s() == pytest.approx(
            0.48e6, rel=0.01
        )

    def test_storm_single_key_slot_rate(self):
        model = cost_model_for("storm", AGGREGATION)
        assert model.keyed_slot_capacity_events_per_s() == pytest.approx(
            0.20e6, rel=0.01
        )

    def test_flink_skew_capacity_does_not_scale(self):
        model = cost_model_for("flink", AGGREGATION)
        cap2 = model.skew_capacity_events_per_s(paper_cluster(2), 1.0)
        cap8 = model.skew_capacity_events_per_s(paper_cluster(8), 1.0)
        assert cap2 == pytest.approx(cap8)
        assert cap2 == pytest.approx(0.48e6, rel=0.01)

    def test_spark_skew_capacity_scales(self):
        model = cost_model_for("spark", AGGREGATION)
        cap4 = model.skew_capacity_events_per_s(paper_cluster(4), 1.0)
        # Paper Experiment 4: 0.53 M/s at 4 nodes (0.83 * 0.64).
        assert cap4 == pytest.approx(0.53e6, rel=0.02)
        cap8 = model.skew_capacity_events_per_s(paper_cluster(8), 1.0)
        assert cap8 > cap4

    def test_mild_skew_does_not_bind(self):
        model = cost_model_for("flink", AGGREGATION)
        base = model.cpu_capacity_events_per_s(paper_cluster(2))
        mild = model.skew_capacity_events_per_s(paper_cluster(2), 0.05)
        assert mild == pytest.approx(base)

    def test_zero_hot_fraction_is_base(self):
        model = cost_model_for("storm", AGGREGATION)
        base = model.cpu_capacity_events_per_s(paper_cluster(4))
        assert model.skew_capacity_events_per_s(paper_cluster(4), 0.0) == base


class TestInterpolation:
    def test_known_points_exact(self):
        model = cost_model_for("storm", AGGREGATION)
        assert model.efficiency(4) == 0.8625

    def test_interpolates_between_points(self):
        model = cost_model_for("storm", AGGREGATION)
        eff6 = model.efficiency(6)
        assert 0.61875 < eff6 < 0.8625

    def test_clamps_outside_range(self):
        model = cost_model_for("storm", AGGREGATION)
        assert model.efficiency(1) == 1.0
        assert model.efficiency(16) == 0.61875


class TestBulkDelay:
    def test_zero_cost_zero_delay(self):
        model = cost_model_for("flink", AGGREGATION)
        assert model.bulk_emit_delay_s(1e6, paper_cluster(2)) == 0.0

    def test_delay_proportional_to_volume(self):
        model = cost_model_for("storm", AGGREGATION)
        d1 = model.bulk_emit_delay_s(1e6, paper_cluster(2))
        d2 = model.bulk_emit_delay_s(2e6, paper_cluster(2))
        assert d2 == pytest.approx(2 * d1)

    def test_delay_shrinks_with_cluster(self):
        model = cost_model_for("flink", JOIN)
        d2 = model.bulk_emit_delay_s(1e6, paper_cluster(2))
        d8 = model.bulk_emit_delay_s(1e6, paper_cluster(8))
        assert d8 < d2
