"""Unit tests for the windowed join operator (Figure 2 semantics)."""

import pytest

from repro.core.records import ADS, PURCHASES, Record
from repro.engines.operators.join import JoinWindowStore, join_window_outputs
from repro.workloads.queries import WindowSpec


def purchase(key, price, t, weight=1.0, ingest=None):
    return Record(
        key=key,
        value=price,
        event_time=t,
        weight=weight,
        stream=PURCHASES,
        ingest_time=ingest,
    )


def ad(key, t, weight=1.0, ingest=None):
    return Record(
        key=key,
        value=0.0,
        event_time=t,
        weight=weight,
        stream=ADS,
        ingest_time=ingest,
    )


class TestRouting:
    def test_records_routed_by_stream(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 10.0, 1.0))
        store.add(ad(1, 2.0))
        closed = store.close(1)
        assert 1 in closed.purchases.by_key
        assert 1 in closed.ads.by_key

    def test_unknown_stream_rejected(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        record = purchase(1, 1.0, 1.0)
        record.stream = PURCHASES  # valid; now break it via __slots__ write
        object.__setattr__(record, "stream", "bogus")
        with pytest.raises(ValueError):
            store.add(record)

    def test_ready_union_of_sides(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0))   # window 1
        store.add(ad(2, 6.0))              # window 2
        assert store.ready_indices(8.0) == [1, 2]

    def test_stored_weight_sums_sides(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0, weight=2.0))
        store.add(ad(1, 2.0, weight=3.0))
        assert store.stored_weight() == pytest.approx(5.0)


class TestFigure2Semantics:
    def test_paper_figure2_output_event_time(self):
        """Figure 2: purchases window max time 600, ads window max time
        500 -> every join output carries event-time 600; emitted at 630
        the latency is 30."""
        store = JoinWindowStore(WindowSpec(600, 600))
        store.add(ad(12, 500.0))                    # userID=1, gemPackID=2
        store.add(purchase(12, 10.0, 580.0))
        store.add(purchase(12, 20.0, 550.0))
        store.add(purchase(12, 30.0, 600.0))
        closed = store.close(1)
        outputs = join_window_outputs(closed, selectivity=1.0, emit_time=630.0)
        assert len(outputs) == 1
        assert outputs[0].event_time == pytest.approx(600.0)
        assert outputs[0].event_time_latency == pytest.approx(30.0)

    def test_output_weight_scales_with_selectivity(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0, weight=100.0))
        store.add(ad(1, 2.0, weight=10.0))
        outputs = join_window_outputs(store.close(1), 0.016, emit_time=5.0)
        assert sum(o.weight for o in outputs) == pytest.approx(1.6)

    def test_weight_distributed_by_purchase_share(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0, weight=75.0))
        store.add(purchase(2, 1.0, 1.0, weight=25.0))
        store.add(ad(1, 2.0))
        store.add(ad(2, 2.0))
        outputs = {o.key: o for o in join_window_outputs(store.close(1), 0.1, 5.0)}
        assert outputs[1].weight == pytest.approx(7.5)
        assert outputs[2].weight == pytest.approx(2.5)

    def test_unmatched_keys_produce_no_output(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0))
        store.add(ad(2, 2.0))  # different key: no match
        assert join_window_outputs(store.close(1), 1.0, 5.0) == []

    def test_empty_sides_produce_no_output(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0))
        assert join_window_outputs(store.close(1), 1.0, 5.0) == []

    def test_zero_selectivity_produces_no_output(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0))
        store.add(ad(1, 2.0))
        assert join_window_outputs(store.close(1), 0.0, 5.0) == []

    def test_negative_selectivity_rejected(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0))
        closed = store.close(1)
        with pytest.raises(ValueError):
            join_window_outputs(closed, -0.1, 5.0)

    def test_processing_time_anchor_is_window_max(self):
        store = JoinWindowStore(WindowSpec(4, 4))
        store.add(purchase(1, 1.0, 1.0, ingest=1.5))
        store.add(ad(1, 2.0, ingest=3.5))
        (out,) = join_window_outputs(store.close(1), 1.0, 5.0)
        assert out.processing_time == pytest.approx(3.5)
        assert out.processing_time_latency == pytest.approx(1.5)
