"""Edge cases for the columnar window/join/partial stores.

The identity property suite (test_vector_identity) exercises whole
trials; these tests pin the operator-level corners down directly:
empty blocks, single-record blocks, blocks spanning a window boundary
(including already-closed windows), and a block sequence interrupted by
a mid-tick fault (``lose_fraction``).  Every case is checked against
the scalar store fed the materialized records of the same blocks --
exact equality, no tolerance.
"""

import numpy as np
import pytest

from repro.core.batch import RecordBlock, as_block
from repro.core.records import ADS, PURCHASES, Record
from repro.engines.operators.aggregate import BatchPartialAggregator
from repro.engines.operators.columnar import (
    ColumnarBatchPartials,
    ColumnarJoinStore,
    ColumnarWindowStore,
)
from repro.engines.operators.join import JoinWindowStore
from repro.engines.operators.window import KeyedWindowStore
from repro.workloads.queries import WindowSpec

WINDOW = WindowSpec(8.0, 4.0)


def block(keys, weights, event_time, value=2.0, stream=PURCHASES,
          ingest_time=None):
    b = RecordBlock(
        np.asarray(keys, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
        value=value,
        event_time=event_time,
        stream=stream,
    )
    b.ingest_time = ingest_time
    return b


def paired_stores():
    return ColumnarWindowStore(WINDOW, key_space_hint=8), KeyedWindowStore(WINDOW)


def feed_both(columnar, scalar, blk):
    """Same data through both paths; updates counts must agree."""
    records = blk.materialize()
    vec = columnar.add_block(blk)
    sca = sum(scalar.add(r) for r in records)
    assert vec == sca
    return vec


def assert_ledgers_equal(columnar, scalar):
    for attr in ("total_buffered_weight", "admitted_weight",
                 "dropped_weight", "closed_weight", "lost_weight", "updates"):
        assert getattr(columnar, attr) == getattr(scalar, attr), attr
    assert columnar.stored_weight() == scalar.stored_weight()


def assert_contents_equal(vec_contents, sca_contents):
    assert list(vec_contents.by_key) == list(sca_contents.by_key)
    for key, sca_acc in sca_contents.by_key.items():
        vec_acc = vec_contents.by_key[key]
        assert vec_acc.value == sca_acc.value
        assert vec_acc.weight == sca_acc.weight
        assert vec_acc.max_event_time == sca_acc.max_event_time
        assert vec_acc.max_processing_time == sca_acc.max_processing_time
    assert vec_contents.total_weight == sca_contents.total_weight


class TestEmptyBlock:
    def test_add_is_a_no_op(self):
        columnar, _ = paired_stores()
        empty = block([], [], event_time=1.0)
        assert columnar.add_block(empty) == 0
        assert columnar.total_buffered_weight == 0.0
        assert columnar.updates == 0
        assert columnar.stored_weight() == 0.0
        assert not list(columnar.open_indices())

    def test_partials_no_op(self):
        partials = ColumnarBatchPartials(WINDOW)
        assert partials.add_block(block([], [], event_time=1.0)) == 0
        assert partials.batch_weight == 0.0
        assert partials.drain() == {}


class TestSingleRecordBlock:
    def test_matches_scalar_add(self):
        columnar, scalar = paired_stores()
        record = Record(key=3, value=5.0, event_time=2.5, weight=4.0,
                        ingest_time=2.6)
        columnar.add(record)
        scalar.add(
            Record(key=3, value=5.0, event_time=2.5, weight=4.0,
                   ingest_time=2.6)
        )
        assert_ledgers_equal(columnar, scalar)
        for idx in scalar.open_indices():
            assert_contents_equal(columnar.close(idx), scalar.close(idx))
        assert_ledgers_equal(columnar, scalar)

    def test_as_block_moves_the_trace(self):
        record = Record(key=1, value=1.0, event_time=0.5, weight=1.0)
        blk = as_block(record)
        assert len(blk) == 1
        assert blk.traces == []
        assert float(blk.weights[0]) == 1.0


class TestWindowBoundaryBlock:
    def test_block_on_the_boundary(self):
        """Event time exactly on a slide boundary: the scalar epsilon
        logic decides the window range once per block, same as once per
        record."""
        columnar, scalar = paired_stores()
        feed_both(columnar, scalar, block([0, 1, 2], [1.0, 2.0, 3.0],
                                          event_time=4.0))
        assert_ledgers_equal(columnar, scalar)
        assert list(columnar.open_indices()) == list(scalar.open_indices())
        for idx in list(scalar.open_indices()):
            assert_contents_equal(
                columnar.close(idx, at_time=9.0),
                scalar.close(idx, at_time=9.0),
            )
        assert_ledgers_equal(columnar, scalar)

    def test_block_into_partially_closed_range(self):
        """A late block whose window range includes an already-closed
        window: the missed share lands in dropped_weight, the rest in
        the still-open window -- identically on both paths."""
        columnar, scalar = paired_stores()
        feed_both(columnar, scalar, block([0], [1.0], event_time=2.0))
        # Close the earliest open window on both, then add a block whose
        # range spans the closed window and the open one.
        first = min(scalar.open_indices())
        assert_contents_equal(
            columnar.close(first, at_time=5.0),
            scalar.close(first, at_time=5.0),
        )
        feed_both(columnar, scalar, block([5, 6], [1.5, 2.5], event_time=2.1))
        assert columnar.dropped_weight > 0.0
        assert_ledgers_equal(columnar, scalar)

    def test_fully_late_block_is_all_dropped(self):
        columnar, scalar = paired_stores()
        feed_both(columnar, scalar, block([0], [1.0], event_time=10.0))
        for idx in sorted(scalar.open_indices()):
            assert_contents_equal(columnar.close(idx), scalar.close(idx))
        updates = feed_both(columnar, scalar,
                            block([1, 2], [1.0, 1.0], event_time=1.0))
        assert updates == 0
        assert_ledgers_equal(columnar, scalar)


class TestMidTickFault:
    def test_lose_fraction_between_blocks(self):
        """A block sequence interrupted by a state-loss fault: scale,
        then keep accumulating -- ledgers and closes stay identical."""
        columnar, scalar = paired_stores()
        feed_both(columnar, scalar, block([0, 1], [2.0, 4.0], event_time=1.0))
        lost_vec = columnar.lose_fraction(0.375)
        lost_sca = scalar.lose_fraction(0.375)
        assert lost_vec == lost_sca
        feed_both(columnar, scalar, block([1, 2], [1.0, 3.0], event_time=1.5))
        assert_ledgers_equal(columnar, scalar)
        for idx in sorted(scalar.open_indices()):
            assert_contents_equal(
                columnar.close(idx, at_time=20.0),
                scalar.close(idx, at_time=20.0),
            )
        assert_ledgers_equal(columnar, scalar)

    def test_lose_everything(self):
        columnar, scalar = paired_stores()
        feed_both(columnar, scalar, block([0, 1], [2.0, 4.0], event_time=1.0))
        assert columnar.lose_fraction(1.0) == scalar.lose_fraction(1.0)
        assert columnar.stored_weight() == scalar.stored_weight() == 0.0
        assert_ledgers_equal(columnar, scalar)

    def test_fraction_out_of_range_rejected(self):
        columnar, _ = paired_stores()
        with pytest.raises(ValueError):
            columnar.lose_fraction(1.5)


class TestJoinStoreRouting:
    def test_blocks_route_by_stream(self):
        columnar = ColumnarJoinStore(WINDOW)
        scalar = JoinWindowStore(WINDOW)
        for blk in (
            block([0, 1], [1.0, 2.0], event_time=1.0, stream=PURCHASES),
            block([1, 2], [3.0, 4.0], event_time=1.2, stream=ADS),
        ):
            records = blk.materialize()
            columnar.add_block(blk)
            for r in records:
                scalar.add(r)
        assert columnar.stored_weight() == scalar.stored_weight()
        for idx in sorted(scalar.ready_indices(watermark=100.0)):
            vec = columnar.close(idx, at_time=10.0)
            sca = scalar.close(idx, at_time=10.0)
            assert_contents_equal(vec.purchases, sca.purchases)
            assert_contents_equal(vec.ads, sca.ads)

    def test_unknown_stream_rejected(self):
        columnar = ColumnarJoinStore(WINDOW)
        with pytest.raises(ValueError):
            columnar.add_block(
                block([0], [1.0], event_time=1.0, stream="clicks")
            )


class TestBatchPartials:
    def test_drain_matches_scalar(self):
        columnar = ColumnarBatchPartials(WINDOW)
        scalar = BatchPartialAggregator(WINDOW)
        for blk in (
            block([0, 1], [1.0, 2.0], event_time=1.0, ingest_time=1.1),
            block([1, 3], [0.5, 4.0], event_time=2.0, ingest_time=2.1),
        ):
            records = blk.materialize()
            columnar.add_block(blk)
            for r in records:
                scalar.add(r)
        assert columnar.batch_weight == scalar.batch_weight
        vec, sca = columnar.drain(), scalar.drain()
        assert list(vec) == list(sca)
        for idx in sca:
            assert list(vec[idx]) == list(sca[idx])
            for key in sca[idx]:
                assert vec[idx][key].value == sca[idx][key].value
                assert vec[idx][key].weight == sca[idx][key].weight
        assert columnar.batch_weight == 0.0
        assert columnar.drain() == {}
