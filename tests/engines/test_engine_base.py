"""Unit tests for the shared engine machinery (StreamingEngine)."""

import pytest

from repro.core.queues import DriverQueue, QueueSet
from repro.core.records import Record
from repro.engines.backpressure import CreditBased
from repro.engines.base import EngineConfig, StreamingEngine
from repro.engines.calibration import CostModel
from repro.engines.operators.sink import Sink
from repro.sim.cluster import paper_cluster
from repro.sim.network import DataPlane, NetworkSpec
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery


class RecordingEngine(StreamingEngine):
    """Minimal concrete engine for exercising the base machinery."""

    name = "recording"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._bp = CreditBased()
        self.processed = []

    def _resolve_cost_model(self) -> CostModel:
        return CostModel(
            engine="recording",
            query_kind=self.query.kind,
            pipeline_cost_us=100.0,  # 2 workers -> 0.32 M/s
            keyed_cost_us=0.0,
            bulk_emit_cost_us=0.0,
            scaling_efficiency={2: 1.0},
        )

    @classmethod
    def default_config(cls) -> EngineConfig:
        return EngineConfig(gc_rate_per_s=0.0)

    def _backpressure(self):
        return self._bp

    def _process(self, records, dt):
        self.processed.extend(records)


@pytest.fixture
def rig():
    sim = Simulator()
    plane = DataPlane(sim, NetworkSpec())
    engine = RecordingEngine(
        sim=sim,
        cluster=paper_cluster(2),
        query=WindowedAggregationQuery(window=WindowSpec(4, 2)),
        plane=plane,
        rng=RngRegistry(0).stream("engine"),
        resources=None,
    )
    queue = DriverQueue("q")
    queues = QueueSet([queue])
    sink = Sink()
    return sim, engine, queue, queues, sink


class TestLifecycle:
    def test_start_twice_rejected(self, rig):
        sim, engine, queue, queues, sink = rig
        engine.start(queues, sink)
        with pytest.raises(RuntimeError):
            engine.start(queues, sink)

    def test_stop_halts_ticking(self, rig):
        sim, engine, queue, queues, sink = rig
        engine.start(queues, sink)
        queue.push(Record(key=0, value=1.0, event_time=0.0, weight=10.0))
        engine.stop()
        sim.run_until(1.0)
        assert engine.ingested_weight == 0.0


class TestIngestion:
    def test_records_stamped_with_ingest_time(self, rig):
        sim, engine, queue, queues, sink = rig
        engine.start(queues, sink)
        queue.push(Record(key=0, value=1.0, event_time=0.0, weight=5.0))
        sim.run_until(0.2)
        assert engine.processed
        for record in engine.processed:
            assert record.ingest_time is not None
            assert record.ingest_time >= 0.0
            assert record.ingest_time >= record.event_time

    def test_ingest_capped_by_cpu_capacity(self, rig):
        sim, engine, queue, queues, sink = rig
        engine.start(queues, sink)
        # Offer far above the 0.32 M/s capacity for 2 simulated seconds.
        sim.every(0.1, lambda s: queue.push(
            Record(key=0, value=1.0, event_time=s.now, weight=100_000.0)
        ))
        sim.run_until(2.0)
        # Ingest rate ~ capacity * elapsed (within tick granularity).
        assert engine.ingested_weight <= 0.34e6 * 2.0

    def test_ingest_capped_by_network(self, rig):
        sim, engine, queue, queues, sink = rig
        # A CPU-cheap engine against a slow wire: 10 MB/s at 104 B/event
        # allows ~96 k events/s.
        engine.plane = DataPlane(sim, NetworkSpec(segment_gbps=0.08))
        engine.cost = CostModel(
            engine="recording",
            query_kind="aggregation",
            pipeline_cost_us=1.0,
            keyed_cost_us=0.0,
            bulk_emit_cost_us=0.0,
            scaling_efficiency={2: 1.0},
        )
        engine.start(queues, sink)
        sim.every(0.1, lambda s: queue.push(
            Record(key=0, value=1.0, event_time=s.now, weight=100_000.0)
        ))
        sim.run_until(2.0)
        rate = engine.ingested_weight / 2.0
        assert rate == pytest.approx(0.08e9 / 8 / 104, rel=0.15)


class TestGcPauses:
    def test_pauses_suspend_ingestion(self, rig):
        sim, engine, queue, queues, sink = rig
        engine.config = EngineConfig(
            gc_rate_per_s=100.0, gc_pause_mean_s=10.0, gc_pause_sigma=0.01
        )
        engine.start(queues, sink)
        sim.every(0.1, lambda s: queue.push(
            Record(key=0, value=1.0, event_time=s.now, weight=1000.0)
        ))
        sim.run_until(2.0)
        # With a guaranteed immediate 10 s pause, nothing is ingested.
        assert engine.ingested_weight == 0.0

    def test_no_pauses_when_rate_zero(self, rig):
        sim, engine, queue, queues, sink = rig
        assert engine.config.gc_rate_per_s == 0.0
        engine.start(queues, sink)
        queue.push(Record(key=0, value=1.0, event_time=0.0, weight=10.0))
        sim.run_until(0.5)
        assert engine.ingested_weight > 0.0


class TestStateReconciliation:
    def test_update_state_usage_tracks_delta(self, rig):
        sim, engine, queue, queues, sink = rig
        engine._update_state_usage(1000.0)
        first = engine.state.used_bytes
        engine._update_state_usage(500.0)
        assert engine.state.used_bytes == pytest.approx(first / 2)
        engine._update_state_usage(0.0)
        assert engine.state.used_bytes == pytest.approx(0.0)


class TestFailureHandling:
    def test_engine_failure_freezes_ticking(self, rig):
        from repro.sim.failures import TopologyStalled

        sim, engine, queue, queues, sink = rig

        def poisoned_process(records, dt):
            raise TopologyStalled("boom", at_time=sim.now)

        engine._process = poisoned_process
        engine.start(queues, sink)
        queue.push(Record(key=0, value=1.0, event_time=0.0, weight=10.0))
        sim.run_until(1.0)
        assert engine.failed
        assert "boom" in str(engine.failure)


class TestEmissionAccounting:
    def test_emission_debits_plane_and_sink(self, rig):
        sim, engine, queue, queues, sink = rig
        engine.sink = sink
        before = engine.plane.total_result_bytes
        engine._account_emission(100.0)
        assert engine.plane.total_result_bytes > before

    def test_zero_emission_is_noop(self, rig):
        sim, engine, queue, queues, sink = rig
        before = engine.plane.total_result_bytes
        engine._account_emission(0.0)
        assert engine.plane.total_result_bytes == before
