"""Unit and property tests for the keyed window store (Definitions 3/4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import Record
from repro.engines.operators.window import KeyedWindowStore, WindowAccumulator
from repro.workloads.queries import WindowSpec


def rec(key, value, event_time, weight=1.0, ingest_time=None):
    return Record(
        key=key,
        value=value,
        event_time=event_time,
        weight=weight,
        ingest_time=ingest_time,
    )


class TestAccumulator:
    def test_add_folds_weighted_value(self):
        acc = WindowAccumulator()
        acc.add(rec(0, 10.0, 1.0, weight=3.0))
        assert acc.value == pytest.approx(30.0)
        assert acc.weight == pytest.approx(3.0)

    def test_max_event_time_tracked(self):
        acc = WindowAccumulator()
        acc.add(rec(0, 1.0, 5.0))
        acc.add(rec(0, 1.0, 3.0))
        assert acc.max_event_time == 5.0

    def test_max_processing_time_tracked(self):
        acc = WindowAccumulator()
        acc.add(rec(0, 1.0, 1.0, ingest_time=7.0))
        acc.add(rec(0, 1.0, 2.0, ingest_time=6.0))
        assert acc.max_processing_time == 7.0

    def test_merge_combines(self):
        a, b = WindowAccumulator(), WindowAccumulator()
        a.add(rec(0, 2.0, 1.0))
        b.add(rec(0, 3.0, 4.0))
        a.merge(b)
        assert a.value == pytest.approx(5.0)
        assert a.max_event_time == 4.0

    def test_subtract_inverse_reduce(self):
        a, b = WindowAccumulator(), WindowAccumulator()
        a.add(rec(0, 2.0, 1.0))
        a.add(rec(0, 3.0, 2.0))
        b.add(rec(0, 2.0, 1.0))
        a.subtract(b)
        assert a.value == pytest.approx(3.0)
        assert a.weight == pytest.approx(1.0)

    @given(
        values=st.lists(
            st.tuples(st.floats(-100, 100), st.floats(0, 100)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_sequential_adds(self, values):
        # Folding all records into one accumulator equals folding into
        # two and merging (the mini-batch partials must be lossless).
        whole = WindowAccumulator()
        left, right = WindowAccumulator(), WindowAccumulator()
        for i, (v, t) in enumerate(values):
            r = rec(0, v, t)
            whole.add(rec(0, v, t))
            (left if i % 2 == 0 else right).add(r)
        left.merge(right)
        assert left.value == pytest.approx(whole.value)
        assert left.weight == pytest.approx(whole.weight)
        assert left.max_event_time == whole.max_event_time


class TestStore:
    def test_record_added_to_all_containing_windows(self):
        store = KeyedWindowStore(WindowSpec(8, 4))
        updates = store.add(rec(1, 1.0, 9.0))
        assert updates == 2  # windows ending at 12 and 16

    def test_close_returns_per_key_accumulators(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 10.0, 1.0))
        store.add(rec(2, 20.0, 2.0))
        store.add(rec(1, 5.0, 3.0))
        contents = store.close(1)
        assert contents.by_key[1].value == pytest.approx(15.0)
        assert contents.by_key[2].value == pytest.approx(20.0)
        assert contents.end_time == 4.0
        assert contents.start_time == 0.0

    def test_ready_indices_respect_watermark(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 1.0, 1.0))   # window ending 4
        store.add(rec(1, 1.0, 5.0))   # window ending 8
        assert store.ready_indices(4.0) == [1]
        assert store.ready_indices(8.0) == [1, 2]

    def test_late_adds_to_closed_window_dropped(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 1.0, 1.0))
        store.close(1)
        updates = store.add(rec(1, 1.0, 2.0))  # window 1 already closed
        assert updates == 0

    def test_late_add_still_counts_open_windows(self):
        store = KeyedWindowStore(WindowSpec(8, 4))
        store.add(rec(1, 1.0, 3.0))  # windows 1 (end 4) and 2 (end 8)
        store.close(1)
        updates = store.add(rec(1, 1.0, 3.5))  # window 1 closed, 2 open
        assert updates == 1

    def test_window_level_maxima(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 1.0, 1.0))
        store.add(rec(2, 1.0, 3.5))
        contents = store.close(1)
        assert contents.max_event_time == 3.5

    def test_total_weight(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 1.0, 1.0, weight=2.0))
        store.add(rec(2, 1.0, 2.0, weight=3.0))
        assert store.close(1).total_weight == pytest.approx(5.0)

    def test_stored_weight_counts_per_window(self):
        store = KeyedWindowStore(WindowSpec(8, 4))
        store.add(rec(1, 1.0, 9.0, weight=4.0))  # two windows
        assert store.stored_weight() == pytest.approx(8.0)

    def test_updates_counter(self):
        store = KeyedWindowStore(WindowSpec(8, 4))
        store.add(rec(1, 1.0, 9.0))
        store.add(rec(1, 1.0, 10.0))
        assert store.updates == 4

    def test_empty_window_contents(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        contents = store.close(5)
        assert contents.by_key == {}
        assert contents.total_weight == 0.0
        assert contents.max_event_time == float("-inf")


class TestStoreProperties:
    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 5),        # key
                st.floats(0.1, 100.0),    # value
                st.floats(0.01, 50.0),    # event time
                st.floats(0.1, 10.0),     # weight
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_sliding_window_sum_conservation(self, events):
        """Every event's weighted value appears in exactly
        windows_per_event windows' sums."""
        window = WindowSpec(8, 4)
        store = KeyedWindowStore(window)
        for key, value, t, w in events:
            store.add(rec(key, value, t, weight=w))
        total_in_windows = 0.0
        for idx in list(store.open_indices()):
            contents = store.close(idx)
            total_in_windows += sum(
                acc.value for acc in contents.by_key.values()
            )
        expected = sum(v * w for _, v, _, w in events) * window.windows_per_event
        assert total_in_windows == pytest.approx(expected, rel=1e-9)

    @given(
        times=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_output_event_time_is_max_contributing(self, times):
        window = WindowSpec(1000, 1000)  # everything in one window
        store = KeyedWindowStore(window)
        for t in times:
            store.add(rec(0, 1.0, t))
        contents = store.close(1)
        assert contents.by_key[0].max_event_time == pytest.approx(max(times))


class TestLoseFraction:
    """Node-failure state loss (Related Work extension)."""

    def test_fraction_of_weight_and_value_lost(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 10.0, 1.0, weight=8.0))
        lost = store.lose_fraction(0.25)
        assert lost == pytest.approx(2.0)
        contents = store.close(1)
        assert contents.by_key[1].weight == pytest.approx(6.0)
        assert contents.by_key[1].value == pytest.approx(60.0)

    def test_zero_and_full_loss(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 1.0, 1.0, weight=4.0))
        assert store.lose_fraction(0.0) == 0.0
        assert store.lose_fraction(1.0) == pytest.approx(4.0)
        assert store.close(1).by_key[1].weight == pytest.approx(0.0)

    def test_invalid_fraction_rejected(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        with pytest.raises(ValueError):
            store.lose_fraction(1.5)

    def test_dropped_weight_tracked_for_late_adds(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 1.0, 1.0))
        store.close(1)
        store.add(rec(1, 1.0, 2.0, weight=3.0))  # fully late
        assert store.dropped_weight == pytest.approx(3.0)

    def test_partially_late_records_drop_partial_weight(self):
        store = KeyedWindowStore(WindowSpec(8, 4))
        store.add(rec(1, 1.0, 3.0))  # windows 1 and 2
        store.close(1)
        store.add(rec(1, 1.0, 3.5, weight=4.0))  # window 1 closed, 2 open
        assert store.dropped_weight == pytest.approx(2.0)
