"""Tests for the extension engines (Heron, Samza -- paper future work)."""

import pytest

import repro.engines.ext  # noqa: F401  (registers the engines)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.engines import ENGINES, engine_class
from repro.engines.ext.heron import HERON_COST_FACTOR, HeronEngine
from repro.engines.ext.samza import SamzaEngine
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)


def spec(engine, **overrides):
    defaults = dict(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(4, 2)),
        workers=2,
        profile=50_000.0,
        duration_s=60.0,
        seed=3,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestRegistration:
    def test_engines_registered(self):
        assert engine_class("heron") is HeronEngine
        assert engine_class("samza") is SamzaEngine

    def test_registration_idempotent(self):
        from repro.engines.ext import register_extension_engines

        register_extension_engines()
        register_extension_engines()
        assert ENGINES["heron"] is HeronEngine


class TestHeron:
    def test_runs_and_emits(self):
        result = run_experiment(spec("heron"))
        assert not result.failed
        assert len(result.collector) > 0

    def test_cost_scaled_from_storm(self):
        from repro.engines.calibration import cost_model_for

        storm = cost_model_for("storm", "aggregation")
        result = run_experiment(spec("heron", duration_s=30.0))
        assert result.engine == "heron"
        # Lower per-tuple cost => higher capacity at the same size: a
        # rate above Storm's 2-node 0.40 M/s sustains on Heron.
        over_storm = run_experiment(
            spec("heron", profile=0.5e6, duration_s=120.0)
        )
        assert not over_storm.failed
        assert over_storm.mean_ingest_rate == pytest.approx(0.5e6, rel=0.05)

    def test_smoother_ingest_than_storm(self):
        from repro.analysis.stats import coefficient_of_variation

        def cv(engine, rate):
            r = run_experiment(spec(engine, profile=rate, duration_s=120.0))
            series = r.throughput.ingest_series.window(r.warmup_s)
            return coefficient_of_variation(series.values)

        assert cv("heron", 0.38e6) < cv("storm", 0.38e6)

    def test_naive_join_survives_on_four_workers(self):
        q = WindowedJoinQuery(window=WindowSpec(4, 2))
        result = run_experiment(
            spec("heron", query=q, workers=4, profile=0.15e6, duration_s=80.0)
        )
        assert not result.failed  # unlike Storm's naive join

    def test_cost_factor_documented_range(self):
        assert 0.4 < HERON_COST_FACTOR < 1.0


class TestSamza:
    def test_runs_and_emits(self):
        result = run_experiment(spec("samza"))
        assert not result.failed
        assert len(result.collector) > 0

    def test_latency_floor_is_commit_interval_scale(self):
        result = run_experiment(spec("samza"))
        # Commit interval 0.5 s: mean latency sits between Flink's
        # ~0.1 s and Spark's seconds.
        assert 0.1 < result.event_latency.mean < 1.2

    def test_latency_between_flink_and_spark(self):
        samza = run_experiment(spec("samza", profile=0.3e6, duration_s=120.0))
        flink = run_experiment(spec("flink", profile=0.3e6, duration_s=120.0))
        spark = run_experiment(spec("spark", profile=0.3e6, duration_s=120.0))
        assert (
            flink.event_latency.mean
            < samza.event_latency.mean
            < spark.event_latency.mean
        )

    def test_large_window_is_fine(self):
        q = WindowedAggregationQuery(window=WindowSpec(60, 60))
        result = run_experiment(
            spec("samza", query=q, profile=0.3e6, duration_s=150.0)
        )
        assert not result.failed  # RocksDB state: no OOM

    def test_single_key_serialises_on_one_task(self):
        from repro.workloads.keys import SingleKey

        q = WindowedAggregationQuery(window=WindowSpec(4, 2), keys=SingleKey())
        result = run_experiment(
            spec("samza", query=q, profile=0.5e6, duration_s=90.0)
        )
        # Keyed slot rate is 1e6/4.0 = 0.25 M/s: the 0.5 M/s offer backlogs.
        assert result.mean_ingest_rate < 0.3e6

    def test_node_failure_loses_nothing(self):
        from dataclasses import replace

        from repro.sim.nodefail import NodeFailureSpec

        s = replace(
            spec("samza", workers=4, profile=0.2e6, duration_s=120.0),
            node_failure=NodeFailureSpec(fail_at_s=50.0),
        )
        result = run_experiment(s)
        assert result.diagnostics["state_lost_weight"] == 0.0
