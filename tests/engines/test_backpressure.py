"""Unit tests for the three backpressure mechanisms."""

import numpy as np
import pytest

from repro.engines.backpressure import (
    CreditBased,
    OnOffThrottle,
    RateController,
)


class TestCreditBased:
    def test_grants_capacity_when_buffer_empty(self):
        bp = CreditBased()
        assert bp.ingest_budget(0.1, 1000.0, 0.0, 500.0) == pytest.approx(100.0)

    def test_limited_by_remaining_credit(self):
        bp = CreditBased()
        assert bp.ingest_budget(1.0, 1000.0, 450.0, 500.0) == pytest.approx(50.0)

    def test_zero_when_buffer_full(self):
        bp = CreditBased()
        assert bp.ingest_budget(1.0, 1000.0, 500.0, 500.0) == 0.0

    def test_smooth_no_hysteresis(self):
        bp = CreditBased()
        a = bp.ingest_budget(0.1, 1000.0, 499.0, 500.0)
        b = bp.ingest_budget(0.1, 1000.0, 0.0, 500.0)
        assert a == pytest.approx(1.0)
        assert b == pytest.approx(100.0)


class TestOnOffThrottle:
    def test_bursts_above_capacity_while_on(self):
        bp = OnOffThrottle(burst_factor=1.3)
        grant = bp.ingest_budget(1.0, 1000.0, 0.0, 10_000.0)
        assert grant == pytest.approx(1300.0)

    def test_stops_at_high_watermark(self):
        bp = OnOffThrottle(high_watermark=0.9, low_watermark=0.4)
        assert bp.ingest_budget(1.0, 1000.0, 9500.0, 10_000.0) == 0.0
        assert not bp.emitting

    def test_stays_off_until_low_watermark(self):
        bp = OnOffThrottle(high_watermark=0.9, low_watermark=0.4)
        bp.ingest_budget(1.0, 1000.0, 9500.0, 10_000.0)  # trips off
        assert bp.ingest_budget(1.0, 1000.0, 5000.0, 10_000.0) == 0.0
        assert bp.ingest_budget(1.0, 1000.0, 3000.0, 10_000.0) > 0.0
        assert bp.emitting

    def test_oscillation_cycle(self):
        bp = OnOffThrottle()
        buffered = 0.0
        capacity, cap_buf = 100.0, 100.0
        grants = []
        for _ in range(200):
            g = bp.ingest_budget(0.1, capacity, buffered, cap_buf)
            grants.append(g)
            buffered = max(0.0, buffered + g - capacity * 0.1)
        # The throttle alternates: some zero-grants and some burst grants.
        assert any(g == 0.0 for g in grants[50:])
        assert any(g > 0.0 for g in grants[50:])

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            OnOffThrottle(high_watermark=0.3, low_watermark=0.5)

    def test_stall_blocks_ingest(self):
        rng = np.random.default_rng(0)
        bp = OnOffThrottle(
            stall_rng=rng, stall_rate_per_s=100.0, stall_duration_s=2.0
        )
        # Force a high-watermark hit; the huge stall rate guarantees a stall.
        bp.ingest_budget(0.1, 1000.0, 9500.0, 10_000.0)
        assert bp.stalled
        assert bp.stall_count == 1
        assert bp.ingest_budget(0.1, 1000.0, 0.0, 10_000.0) == 0.0

    def test_stall_expires(self):
        rng = np.random.default_rng(0)
        bp = OnOffThrottle(
            stall_rng=rng, stall_rate_per_s=100.0, stall_duration_s=0.5
        )
        bp.ingest_budget(0.1, 1000.0, 9500.0, 10_000.0)
        for _ in range(10):  # advance internal clock past the stall
            bp.ingest_budget(0.1, 1000.0, 3000.0, 10_000.0)
        assert not bp.stalled


class TestOnOffThrottleStallAccounting:
    """Regression: stall time must be measured on the *simulated* clock.

    The throttle's clock used to advance only inside ``ingest_budget``,
    so ticks the engine skipped (JVM pauses, recovery outages) froze it
    and a stall window silently outlasted its nominal duration in
    simulated time.  Engines now sync the clock through ``on_tick_end``
    on every tick; these tests pin the invariant down at the unit level
    (the integration pin against the driver's ThroughputMonitor lives
    in tests/integration/test_stall_accounting.py).
    """

    def make_stalled(self, duration_s=2.0):
        bp = OnOffThrottle(stall_duration_s=duration_s)
        bp.ingest_budget(0.1, 1000.0, 0.0, 10_000.0)
        bp.force_stall()
        return bp

    def test_stalled_s_equals_duration_under_normal_ticking(self):
        bp = self.make_stalled(duration_s=2.0)
        for _ in range(40):
            bp.ingest_budget(0.1, 1000.0, 0.0, 10_000.0)
            bp.on_tick_end(bp._now)
        assert bp.stalled_s == pytest.approx(2.0)

    def test_skipped_ticks_do_not_stretch_the_stall(self):
        """The old bug: freeze the clock for 3 s of engine pause in the
        middle of a 2 s stall and the stall ran 5 s of simulated time.
        With the on_tick_end sync it must still account exactly 2 s."""
        bp = self.make_stalled(duration_s=2.0)
        now = bp._now
        for _ in range(10):  # 1 s of normal ticking
            now += 0.1
            bp.ingest_budget(0.1, 1000.0, 0.0, 10_000.0)
            bp.on_tick_end(now)
        for _ in range(30):  # 3 s of paused engine: no ingest_budget
            now += 0.1
            bp.on_tick_end(now)
        assert not bp.stalled  # the stall ended during the pause
        for _ in range(20):
            now += 0.1
            bp.ingest_budget(0.1, 1000.0, 0.0, 10_000.0)
            bp.on_tick_end(now)
        assert bp.stalled_s == pytest.approx(2.0)

    def test_off_time_accounted_separately_from_stall(self):
        bp = OnOffThrottle(high_watermark=0.9, low_watermark=0.4)
        bp.ingest_budget(1.0, 1000.0, 9500.0, 10_000.0)  # trips off
        bp.ingest_budget(1.0, 1000.0, 8000.0, 10_000.0)  # stays off 1 s
        bp.ingest_budget(1.0, 1000.0, 3000.0, 10_000.0)  # back on
        assert bp.off_s == pytest.approx(2.0)
        assert bp.stalled_s == 0.0

    def test_metrics_exports_all_counters(self):
        bp = self.make_stalled()
        metrics = bp.metrics()
        assert set(metrics) == {"stalled_s", "off_s", "stall_count"}
        assert metrics["stall_count"] == 1.0


class TestBackpressureMetrics:
    def test_credit_based_reports_limited_time(self):
        bp = CreditBased()
        bp.ingest_budget(1.0, 1000.0, 900.0, 1000.0)  # credit-bound
        bp.ingest_budget(1.0, 1000.0, 0.0, 1e9)  # capacity-bound
        assert bp.metrics() == {"credit_limited_s": 1.0}

    def test_rate_controller_reports_limited_time_and_finite_limit(self):
        rc = RateController(batch_interval_s=4.0, initial_rate=500.0)
        rc.ingest_budget(1.0, 1000.0, 0.0, 1e9)  # limit-bound
        metrics = rc.metrics()
        assert metrics["rate_limited_s"] == 1.0
        assert metrics["rate_limit"] == 500.0

    def test_uncapped_rate_limit_exported_as_minus_one(self):
        rc = RateController(batch_interval_s=4.0)
        assert rc.metrics()["rate_limit"] == -1.0


class TestRateController:
    def test_initial_rate_unlimited_but_receiver_capped(self):
        rc = RateController(batch_interval_s=4.0)
        grant = rc.ingest_budget(1.0, 1000.0, 0.0, 1e9)
        assert grant == pytest.approx(1050.0)  # capacity * headroom

    def test_overrun_decreases_limit(self):
        rc = RateController(batch_interval_s=4.0, initial_rate=100_000.0)
        rc.on_batch_complete(
            processing_time_s=5.0, batch_events=400_000.0, queued_jobs=0
        )
        assert rc.rate_limit < 100_000.0

    def test_queued_jobs_decrease_limit(self):
        rc = RateController(batch_interval_s=4.0, initial_rate=100_000.0)
        rc.on_batch_complete(
            processing_time_s=3.0, batch_events=400_000.0, queued_jobs=3
        )
        assert rc.rate_limit < 100_000.0

    def test_underrun_increases_limit(self):
        rc = RateController(batch_interval_s=4.0, initial_rate=100_000.0)
        rc.on_batch_complete(
            processing_time_s=2.0, batch_events=400_000.0, queued_jobs=0
        )
        assert rc.rate_limit == pytest.approx(110_000.0)

    def test_infinite_limit_untouched_by_underrun(self):
        rc = RateController(batch_interval_s=4.0)
        rc.on_batch_complete(
            processing_time_s=2.0, batch_events=100.0, queued_jobs=0
        )
        assert rc.rate_limit == float("inf")

    def test_min_rate_floor(self):
        rc = RateController(
            batch_interval_s=4.0, initial_rate=2000.0, min_rate=1500.0
        )
        for _ in range(50):
            rc.on_batch_complete(
                processing_time_s=40.0, batch_events=8000.0, queued_jobs=5
            )
        assert rc.rate_limit == 1500.0

    def test_adjustments_counted(self):
        rc = RateController(batch_interval_s=4.0, initial_rate=1000.0)
        rc.on_batch_complete(2.0, 100.0, 0)
        rc.on_batch_complete(5.0, 100.0, 0)
        assert rc.adjustments == 2

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            RateController(batch_interval_s=0.0)
