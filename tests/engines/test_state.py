"""Unit tests for operator-state memory accounting."""

import pytest

from repro.engines.state import StateBackend, StatePolicy
from repro.sim.cluster import paper_cluster
from repro.sim.failures import OutOfMemory


def backend(can_spill, heap_fraction=0.4, workers=2, slowdown=2.5):
    return StateBackend(
        paper_cluster(workers),
        StatePolicy(
            can_spill=can_spill,
            heap_fraction=heap_fraction,
            spill_slowdown=slowdown,
        ),
    )


class TestBudget:
    def test_budget_from_cluster_ram(self):
        b = backend(can_spill=True, heap_fraction=0.5, workers=2)
        assert b.budget_bytes == pytest.approx(0.5 * 2 * 16 * 1024**3)

    def test_charge_and_release(self):
        b = backend(can_spill=True)
        b.charge(1e9)
        assert b.used_bytes == pytest.approx(1e9)
        b.release(4e8)
        assert b.used_bytes == pytest.approx(6e8)

    def test_release_floors_at_zero(self):
        b = backend(can_spill=True)
        b.charge(1.0)
        b.release(5.0)
        assert b.used_bytes == 0.0

    def test_peak_tracked(self):
        b = backend(can_spill=True)
        b.charge(5e9)
        b.release(5e9)
        assert b.peak_bytes == pytest.approx(5e9)

    def test_negative_amounts_rejected(self):
        b = backend(can_spill=True)
        with pytest.raises(ValueError):
            b.charge(-1.0)
        with pytest.raises(ValueError):
            b.release(-1.0)

    def test_utilisation(self):
        b = backend(can_spill=True)
        b.charge(b.budget_bytes / 2)
        assert b.utilisation() == pytest.approx(0.5)


class TestSpilling:
    def test_spill_engages_above_budget(self):
        b = backend(can_spill=True)
        b.charge(b.budget_bytes * 1.2)
        assert b.spilling
        assert b.cost_multiplier == 2.5
        assert b.spilled_bytes == pytest.approx(b.budget_bytes * 0.2)

    def test_spill_clears_when_released(self):
        b = backend(can_spill=True)
        b.charge(b.budget_bytes * 1.2)
        b.release(b.budget_bytes * 0.5)
        assert not b.spilling
        assert b.cost_multiplier == 1.0

    def test_in_memory_bytes(self):
        b = backend(can_spill=True)
        b.charge(b.budget_bytes * 1.5)
        assert b.in_memory_bytes == pytest.approx(b.budget_bytes)


class TestOutOfMemory:
    def test_no_spill_oom_above_headroom(self):
        b = backend(can_spill=False)
        b.oom_headroom = 1.0
        with pytest.raises(OutOfMemory):
            b.charge(b.budget_bytes * 1.01, at_time=12.0)

    def test_headroom_tolerates_transients(self):
        b = backend(can_spill=False)
        b.oom_headroom = 1.35
        b.charge(b.budget_bytes * 1.2)  # pressure, not fatal
        assert b.used_bytes > b.budget_bytes

    def test_oom_carries_time(self):
        b = backend(can_spill=False)
        b.oom_headroom = 1.0
        try:
            b.charge(b.budget_bytes * 2, at_time=42.0)
        except OutOfMemory as exc:
            assert exc.at_time == 42.0
        else:  # pragma: no cover
            pytest.fail("expected OutOfMemory")

    def test_set_policy_switches_to_spillable(self):
        b = backend(can_spill=False)
        b.set_policy(StatePolicy(can_spill=True))
        b.charge(b.budget_bytes * 2)
        assert b.spilling
