"""Unit tests for aggregation strategies: outputs, partials, merger."""

import pytest

from repro.core.records import Record
from repro.engines.operators.aggregate import (
    BatchPartialAggregator,
    WindowedPartialMerger,
    aggregation_outputs,
)
from repro.engines.operators.window import KeyedWindowStore
from repro.workloads.queries import WindowSpec


def rec(key, value, event_time, weight=1.0, ingest_time=None):
    return Record(
        key=key,
        value=value,
        event_time=event_time,
        weight=weight,
        ingest_time=ingest_time,
    )


class TestAggregationOutputs:
    def test_one_output_per_key(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 10.0, 1.0))
        store.add(rec(2, 20.0, 2.0))
        outputs = aggregation_outputs(store.close(1), emit_time=5.0)
        assert len(outputs) == 2
        assert {o.key for o in outputs} == {1, 2}

    def test_latency_anchors_per_key(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 1.0, 1.0, ingest_time=1.1))
        store.add(rec(1, 1.0, 3.0, ingest_time=3.1))
        store.add(rec(2, 1.0, 2.0, ingest_time=2.1))
        outputs = {o.key: o for o in aggregation_outputs(store.close(1), 5.0)}
        assert outputs[1].event_time_latency == pytest.approx(2.0)
        assert outputs[1].processing_time_latency == pytest.approx(5.0 - 3.1)
        assert outputs[2].event_time_latency == pytest.approx(3.0)

    def test_window_end_recorded(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        store.add(rec(1, 1.0, 1.0))
        (out,) = aggregation_outputs(store.close(1), 5.0)
        assert out.window_end == 4.0

    def test_empty_window_no_outputs(self):
        store = KeyedWindowStore(WindowSpec(4, 4))
        assert aggregation_outputs(store.close(1), 5.0) == []


class TestBatchPartials:
    def test_partials_per_window_per_key(self):
        agg = BatchPartialAggregator(WindowSpec(8, 4))
        agg.add(rec(1, 10.0, 9.0))  # windows 3 (end 12) and 4 (end 16)
        partials = agg.drain()
        assert set(partials) == {3, 4}
        assert partials[3][1].value == pytest.approx(10.0)

    def test_drain_resets(self):
        agg = BatchPartialAggregator(WindowSpec(4, 4))
        agg.add(rec(1, 1.0, 1.0))
        agg.drain()
        assert agg.batch_weight == 0.0
        assert agg.drain() == {}

    def test_batch_weight_accumulates(self):
        agg = BatchPartialAggregator(WindowSpec(4, 4))
        agg.add(rec(1, 1.0, 1.0, weight=2.0))
        agg.add(rec(2, 1.0, 1.5, weight=3.0))
        assert agg.batch_weight == pytest.approx(5.0)


class TestMerger:
    def test_merged_windows_equal_direct_store(self):
        """Mini-batch execution must produce the same window results as
        direct (Flink-style) accumulation."""
        window = WindowSpec(8, 4)
        events = [
            rec(1, 10.0, 1.0),
            rec(2, 5.0, 3.0),
            rec(1, 1.0, 5.0),
            rec(2, 2.0, 9.0),
            rec(1, 4.0, 11.0),
        ]
        direct = KeyedWindowStore(window)
        for e in events:
            direct.add(
                rec(e.key, e.value, e.event_time, e.weight)
            )
        merger = WindowedPartialMerger(window)
        # Two "batches": events split by time.
        for batch_events in (events[:3], events[3:]):
            agg = BatchPartialAggregator(window)
            for e in batch_events:
                agg.add(rec(e.key, e.value, e.event_time, e.weight))
            merger.absorb(agg.drain())
        merged = {c.index: c for c in merger.pop_ready(1e9)}
        for idx in list(direct.open_indices()):
            expected = direct.close(idx)
            got = merged[idx]
            for key, acc in expected.by_key.items():
                assert got.by_key[key].value == pytest.approx(acc.value)
                assert got.by_key[key].max_event_time == acc.max_event_time

    def test_pop_ready_only_closed_windows(self):
        merger = WindowedPartialMerger(WindowSpec(4, 4))
        agg = BatchPartialAggregator(WindowSpec(4, 4))
        agg.add(rec(1, 1.0, 1.0))   # window 1 ends at 4
        agg.add(rec(1, 1.0, 5.0))   # window 2 ends at 8
        merger.absorb(agg.drain())
        ready = merger.pop_ready(4.0)
        assert [c.index for c in ready] == [1]
        assert merger.open_window_count == 1

    def test_late_partials_for_closed_windows_dropped(self):
        window = WindowSpec(4, 4)
        merger = WindowedPartialMerger(window)
        agg = BatchPartialAggregator(window)
        agg.add(rec(1, 1.0, 1.0))
        merger.absorb(agg.drain())
        merger.pop_ready(4.0)
        # A straggler for window 1 arrives after it was emitted.
        agg.add(rec(1, 99.0, 2.0))
        merger.absorb(agg.drain())
        assert merger.open_window_count == 0
        assert merger.stored_weight() == 0.0

    def test_stored_weight(self):
        merger = WindowedPartialMerger(WindowSpec(8, 4))
        agg = BatchPartialAggregator(WindowSpec(8, 4))
        agg.add(rec(1, 1.0, 9.0, weight=2.0))  # 2 windows
        merger.absorb(agg.drain())
        assert merger.stored_weight() == pytest.approx(4.0)

    def test_inverse_reduce_flag_preserves_results(self):
        window = WindowSpec(8, 4)
        for flag in (False, True):
            merger = WindowedPartialMerger(window, inverse_reduce=flag)
            agg = BatchPartialAggregator(window)
            agg.add(rec(1, 7.0, 5.0))
            merger.absorb(agg.drain())
            windows = merger.pop_ready(1e9)
            total = sum(
                acc.value for c in windows for acc in c.by_key.values()
            )
            assert total == pytest.approx(14.0)  # 2 windows x 7.0
