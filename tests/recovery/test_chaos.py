"""Chaos harness tests: schedule generation, invariants, determinism."""

import json

import numpy as np
import pytest

from repro.faults.schedule import FaultSchedule
from repro.recovery.chaos import (
    DEFAULT_POLICIES,
    ChaosConfig,
    ChaosPolicy,
    check_invariants,
    random_fault_schedule,
    run_chaos,
)

SMALL = ChaosConfig(
    seed=3, rounds=2, engines=("flink",), duration_s=30.0, rate=20_000.0
)


class TestConfig:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(rounds=0)
        with pytest.raises(ValueError):
            ChaosConfig(engines=())
        with pytest.raises(ValueError):
            ChaosConfig(policies=())
        with pytest.raises(ValueError):
            ChaosConfig(max_faults_per_round=0)

    def test_default_policies_cover_the_three_corners(self):
        names = [p.name for p in DEFAULT_POLICIES]
        assert names == ["baseline", "shed", "standby"]
        assert DEFAULT_POLICIES[0].reschedule_policy() is None
        standby = DEFAULT_POLICIES[2].reschedule_policy()
        assert standby is not None and standby.standby_nodes == 1


class TestScheduleGeneration:
    def test_schedules_are_valid_for_the_trial(self):
        # Every generated schedule must pass the fault layer's own
        # validation (times inside the trial, positive durations).
        config = ChaosConfig(seed=0, rounds=1)
        for seed in range(25):
            rng = np.random.default_rng(seed)
            schedule = random_fault_schedule(rng, config)
            assert isinstance(schedule, FaultSchedule)
            assert 1 <= len(schedule.events) <= config.max_faults_per_round
            schedule.validate_against(config.duration_s)

    def test_same_rng_state_same_schedule(self):
        config = ChaosConfig(seed=0, rounds=1)
        a = random_fault_schedule(np.random.default_rng(7), config)
        b = random_fault_schedule(np.random.default_rng(7), config)
        assert a.describe() == b.describe()


class TestSoak:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(SMALL)

    def test_all_cells_scored(self, report):
        assert set(report.scorecards) == {
            ("flink", "baseline"),
            ("flink", "shed"),
            ("flink", "standby"),
        }
        for card in report.scorecards.values():
            assert card.rounds == SMALL.rounds
            assert card.survived + card.failed == card.rounds

    def test_no_invariant_violations(self, report):
        assert report.ok, report.violations

    def test_scorecard_is_json_clean(self, report):
        payload = report.to_dict()
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == payload  # round-trips, no NaN leaks

    def test_byte_identical_for_equal_seeds(self, report):
        # The determinism contract the CI smoke step relies on: the
        # whole scorecard -- every float -- reproduces from the seed.
        rerun = run_chaos(SMALL)
        assert rerun.to_json() == report.to_json()

    def test_render_mentions_status(self, report):
        text = report.render()
        assert "PASS" in text
        assert "flink/standby" in text


class TestInvariantChecker:
    def test_flags_broken_driver_ledger(self):
        report = run_chaos(
            ChaosConfig(
                seed=1,
                rounds=1,
                engines=("flink",),
                policies=(ChaosPolicy(name="baseline"),),
                duration_s=30.0,
                rate=20_000.0,
            )
        )
        (card,) = report.scorecards.values()
        assert not card.violations

    def test_detects_guarantee_breach(self):
        # Forge a diagnostics dict that claims an exactly-once engine
        # lost weight; the checker must flag it.
        class Forged:
            engine = "flink"
            failed = True
            failure_time = 10.0
            diagnostics = {
                "conservation.ingested": 100.0,
                "driver.pushed_weight": 100.0,
                "driver.pulled_weight": 100.0,
                "driver.queued_weight": 0.0,
                "driver.shed_weight": 0.0,
                "lost_weight": 50.0,
                "duplicated_weight": 0.0,
            }

        violations = check_invariants(Forged(), SMALL, "forged")
        assert any("lost" in v for v in violations)

    def test_detects_ledger_imbalance(self):
        class Forged:
            engine = "storm"
            failed = True
            failure_time = 10.0
            diagnostics = {
                "conservation.ingested": 100.0,
                "conservation.staged": 0.0,
                "conservation.admitted": 60.0,
                "conservation.dropped": 0.0,
                "conservation.closed": 60.0,
                "conservation.stored": 0.0,
                "conservation.lost": 0.0,
                "driver.pushed_weight": 100.0,
                "driver.pulled_weight": 100.0,
                "driver.queued_weight": 0.0,
                "driver.shed_weight": 0.0,
                "lost_weight": 0.0,
                "duplicated_weight": 0.0,
            }

        violations = check_invariants(Forged(), SMALL, "forged")
        assert any("ingest ledger" in v for v in violations)
