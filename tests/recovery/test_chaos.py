"""Chaos harness tests: schedule generation, invariants, determinism."""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.schedule import FaultSchedule
from repro.metrology import TrialJournal
from repro.metrology.journal import shard_path
from repro.recovery.chaos import (
    DEFAULT_POLICIES,
    ChaosConfig,
    ChaosPolicy,
    Scorecard,
    chaos_fingerprint,
    check_invariants,
    random_fault_schedule,
    round_seed,
    run_chaos,
)

SMALL = ChaosConfig(
    seed=3, rounds=2, engines=("flink",), duration_s=30.0, rate=20_000.0
)


class TestConfig:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(rounds=0)
        with pytest.raises(ValueError):
            ChaosConfig(engines=())
        with pytest.raises(ValueError):
            ChaosConfig(policies=())
        with pytest.raises(ValueError):
            ChaosConfig(max_faults_per_round=0)

    def test_default_policies_cover_the_three_corners(self):
        names = [p.name for p in DEFAULT_POLICIES]
        assert names == ["baseline", "shed", "standby"]
        assert DEFAULT_POLICIES[0].reschedule_policy() is None
        standby = DEFAULT_POLICIES[2].reschedule_policy()
        assert standby is not None and standby.standby_nodes == 1


class TestScheduleGeneration:
    def test_schedules_are_valid_for_the_trial(self):
        # Every generated schedule must pass the fault layer's own
        # validation (times inside the trial, positive durations).
        config = ChaosConfig(seed=0, rounds=1)
        for seed in range(25):
            rng = np.random.default_rng(seed)
            schedule = random_fault_schedule(rng, config)
            assert isinstance(schedule, FaultSchedule)
            assert 1 <= len(schedule.events) <= config.max_faults_per_round
            schedule.validate_against(config.duration_s)

    def test_same_rng_state_same_schedule(self):
        config = ChaosConfig(seed=0, rounds=1)
        a = random_fault_schedule(np.random.default_rng(7), config)
        b = random_fault_schedule(np.random.default_rng(7), config)
        assert a.describe() == b.describe()

    def test_driver_faults_mixed_into_the_draw(self):
        config = ChaosConfig(seed=0, rounds=1)
        kinds = set()
        for seed in range(60):
            schedule = random_fault_schedule(
                np.random.default_rng(seed), config
            )
            kinds.update(
                event.kind for event in schedule.events if event.driver_side
            )
        assert {"gencrash", "queueloss", "driverslow"} <= kinds

    def test_driver_faults_can_be_disabled(self):
        config = ChaosConfig(seed=0, rounds=1, driver_faults=False)
        for seed in range(40):
            schedule = random_fault_schedule(
                np.random.default_rng(seed), config
            )
            assert not any(e.driver_side for e in schedule.events)


class TestSoak:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(SMALL)

    def test_all_cells_scored(self, report):
        assert set(report.scorecards) == {
            ("flink", "baseline"),
            ("flink", "shed"),
            ("flink", "standby"),
        }
        for card in report.scorecards.values():
            assert card.rounds == SMALL.rounds
            assert card.survived + card.failed == card.rounds

    def test_no_invariant_violations(self, report):
        assert report.ok, report.violations

    def test_scorecard_is_json_clean(self, report):
        payload = report.to_dict()
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == payload  # round-trips, no NaN leaks

    def test_byte_identical_for_equal_seeds(self, report):
        # The determinism contract the CI smoke step relies on: the
        # whole scorecard -- every float -- reproduces from the seed.
        rerun = run_chaos(SMALL)
        assert rerun.to_json() == report.to_json()

    def test_render_mentions_status(self, report):
        text = report.render()
        assert "PASS" in text
        assert "flink/standby" in text

    def test_scorecard_tracks_driver_faults(self, report):
        # With driver faults in the mix (the default), at least one
        # cell in a 2-round soak sees a driver-side injection, and the
        # count is exported as its own scorecard column.
        payload = report.to_dict()
        totals = sum(
            card["driver_faults_injected"]
            for card in payload["scorecards"].values()
        )
        assert totals >= 0  # column always present ...
        assert all(
            "driver_faults_injected" in card
            and "driver_lost_weight" in card
            for card in payload["scorecards"].values()
        )

    def test_journaled_soak_resumes_byte_identical(self, report, tmp_path):
        # Kill-at-trial-k for chaos: journal a prefix of the grid, then
        # resume and require the final scorecard JSON byte-identical to
        # the uninterrupted soak.
        path = tmp_path / "chaos.json"
        fingerprint = chaos_fingerprint(SMALL)

        class Killed(RuntimeError):
            pass

        journal = TrialJournal(path, fingerprint=fingerprint)
        real_record, seen = journal.record, []

        def record_then_die(key, entry):
            real_record(key, entry)
            seen.append(key)
            if len(seen) == 2:
                raise Killed()

        journal.record = record_then_die
        with pytest.raises(Killed):
            run_chaos(SMALL, journal=journal)

        resumed_journal = TrialJournal(
            path, fingerprint=fingerprint, resume=True
        )
        resumed = run_chaos(SMALL, journal=resumed_journal)
        assert resumed_journal.hits == 2
        assert resumed.to_json() == report.to_json()

    def test_parallel_soak_is_byte_identical(self, report):
        # The acceptance bar for the trial scheduler: fanning the grid
        # over worker processes must not move a single scorecard byte.
        parallel = run_chaos(SMALL, workers=3)
        assert parallel.to_json() == report.to_json()

    def test_crash_aftermath_shards_resume_byte_identical(
        self, report, tmp_path
    ):
        # Reconstruct the on-disk state of a parallel run whose parent
        # was killed: the parent journal holds a prefix of the grid,
        # one worker shard holds digests whose "done" message never
        # arrived.  --resume must replay both and only run the rest.
        fingerprint = chaos_fingerprint(SMALL)
        full_path = tmp_path / "full.json"
        run_chaos(
            SMALL, journal=TrialJournal(full_path, fingerprint=fingerprint)
        )
        entries = json.loads(full_path.read_text())["entries"]
        assert len(entries) == 6  # 1 engine x 3 policies x 2 rounds
        keys = sorted(entries)

        path = tmp_path / "crashed.json"
        parent = TrialJournal(path, fingerprint=fingerprint)
        for key in keys[:2]:
            parent.record(key, entries[key])
        shard = TrialJournal(shard_path(path, 1), fingerprint=fingerprint)
        shard.record(keys[2], entries[keys[2]])

        resumed_journal = TrialJournal(
            path, fingerprint=fingerprint, resume=True
        )
        resumed = run_chaos(SMALL, journal=resumed_journal)
        assert resumed_journal.hits == 3
        assert resumed_journal.misses == 3
        assert resumed.to_json() == report.to_json()


class TestRoundSeeds:
    def test_seed_round_pairs_do_not_collide(self):
        # Regression: seed * 1000 + round made (seed=1, round=0) and
        # (seed=0, round=1000) draw identical trials.
        assert round_seed(1, 0) != round_seed(0, 1_000)

    def test_distinct_across_a_dense_grid(self):
        grid = {
            round_seed(seed, round_index)
            for seed in range(20)
            for round_index in range(20)
        }
        assert len(grid) == 400

    def test_deterministic(self):
        assert round_seed(3, 7) == round_seed(3, 7)


class TestShardMergeProperty:
    """Merge order must never leak into the final scorecard."""

    @pytest.fixture(scope="class")
    def soak(self):
        report = run_chaos(SMALL)
        fingerprint = chaos_fingerprint(SMALL)
        # One full pass to harvest every cell digest.
        import tempfile, pathlib  # noqa: E401

        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "j.json"
            run_chaos(
                SMALL, journal=TrialJournal(path, fingerprint=fingerprint)
            )
            entries = json.loads(path.read_text())["entries"]
        return report, fingerprint, entries

    @given(data=st.data())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_shard_partition_replays_byte_identical(
        self, soak, tmp_path_factory, data
    ):
        # Scatter the digests over a random number of shards (plus an
        # arbitrary parent prefix) in a random order; the resumed soak
        # must reproduce the uninterrupted report byte for byte.
        report, fingerprint, entries = soak
        keys = data.draw(st.permutations(sorted(entries)))
        shard_count = data.draw(st.integers(min_value=1, max_value=4))
        owners = [
            data.draw(
                st.integers(min_value=0, max_value=shard_count),
                label=f"owner[{key}]",
            )
            for key in keys
        ]
        tmp_path = tmp_path_factory.mktemp("shards")
        path = tmp_path / "j.json"
        parent = TrialJournal(path, fingerprint=fingerprint)
        # The parent journal file must exist for --resume; the first
        # key always lands there (a parent that recorded nothing is
        # simply a fresh run, not a resume).
        parent.record(keys[0], entries[keys[0]])
        shards = {}
        for key, owner in zip(keys[1:], owners[1:]):
            if owner == 0:
                parent.record(key, entries[key])
            else:
                if owner not in shards:
                    shards[owner] = TrialJournal(
                        shard_path(path, owner), fingerprint=fingerprint
                    )
                shards[owner].record(key, entries[key])

        resumed_journal = TrialJournal(
            path, fingerprint=fingerprint, resume=True
        )
        resumed = run_chaos(SMALL, journal=resumed_journal)
        assert resumed_journal.hits == len(entries)
        assert resumed_journal.misses == 0
        assert resumed.to_json() == report.to_json()


class TestInvariantChecker:
    def test_flags_broken_driver_ledger(self):
        report = run_chaos(
            ChaosConfig(
                seed=1,
                rounds=1,
                engines=("flink",),
                policies=(ChaosPolicy(name="baseline"),),
                duration_s=30.0,
                rate=20_000.0,
            )
        )
        (card,) = report.scorecards.values()
        assert not card.violations

    def test_detects_guarantee_breach(self):
        # Forge a diagnostics dict that claims an exactly-once engine
        # lost weight; the checker must flag it.
        class Forged:
            engine = "flink"
            failed = True
            failure_time = 10.0
            diagnostics = {
                "conservation.ingested": 100.0,
                "driver.pushed_weight": 100.0,
                "driver.pulled_weight": 100.0,
                "driver.queued_weight": 0.0,
                "driver.shed_weight": 0.0,
                "lost_weight": 50.0,
                "duplicated_weight": 0.0,
            }

        violations = check_invariants(Forged(), SMALL, "forged")
        assert any("lost" in v for v in violations)

    def test_detects_ledger_imbalance(self):
        class Forged:
            engine = "storm"
            failed = True
            failure_time = 10.0
            diagnostics = {
                "conservation.ingested": 100.0,
                "conservation.staged": 0.0,
                "conservation.admitted": 60.0,
                "conservation.dropped": 0.0,
                "conservation.closed": 60.0,
                "conservation.stored": 0.0,
                "conservation.lost": 0.0,
                "driver.pushed_weight": 100.0,
                "driver.pulled_weight": 100.0,
                "driver.queued_weight": 0.0,
                "driver.shed_weight": 0.0,
                "lost_weight": 0.0,
                "duplicated_weight": 0.0,
            }

        violations = check_invariants(Forged(), SMALL, "forged")
        assert any("ingest ledger" in v for v in violations)


class TestRecoveryDecompositionColumns:
    """PR 9: scorecards carry the detect/restore/catch-up phase means
    and per-fault guarantee weights the recovery benchmark reads."""

    def _digest(self, recovery):
        return {
            "failed": False,
            "end_queue_delay_s": 0.0,
            "faults_injected": float(len(recovery)),
            "shed_weight": 0.0,
            "standbys_promoted": 0.0,
            "lost_weight": 0.0,
            "duplicated_weight": 0.0,
            "recovery": recovery,
            "violations": [],
        }

    def _entry(self, **overrides):
        base = {
            "detection_s": 2.0,
            "migrated_bytes": 0.0,
            "recovered": True,
            "recovery_time_s": 9.0,
            "detection_phase_s": 2.0,
            "restore_phase_s": 3.0,
            "catchup_phase_s": 4.0,
            "catchup_throughput": 1e5,
            "lost_weight": 10.0,
            "duplicated_weight": 5.0,
        }
        base.update(overrides)
        return base

    def test_phase_means_and_weights_aggregate(self):
        card = Scorecard(engine="flink", policy="baseline")
        card.absorb_digest(self._digest([self._entry()]))
        card.absorb_digest(
            self._digest(
                [
                    self._entry(
                        detection_phase_s=4.0,
                        restore_phase_s=5.0,
                        catchup_phase_s=6.0,
                        lost_weight=2.0,
                        duplicated_weight=1.0,
                    )
                ]
            )
        )
        payload = card.to_dict()
        assert payload["detect_phase_s_mean"] == 3.0
        assert payload["restore_phase_s_mean"] == 4.0
        assert payload["catchup_phase_s_mean"] == 5.0
        assert payload["fault_lost_weight"] == 12.0
        assert payload["fault_duplicated_weight"] == 6.0

    def test_unrecovered_faults_contribute_no_phases(self):
        card = Scorecard(engine="flink", policy="baseline")
        card.absorb_digest(
            self._digest(
                [
                    self._entry(
                        recovered=False,
                        recovery_time_s=None,
                        detection_phase_s=None,
                        restore_phase_s=None,
                        catchup_phase_s=None,
                    )
                ]
            )
        )
        payload = card.to_dict()
        assert payload["faults_unrecovered"] == 1
        assert payload["detect_phase_s_mean"] == 0.0
        # The unrecovered fault's exposure still counts.
        assert payload["fault_lost_weight"] == 10.0

    def test_absorbs_pre_pr9_digests_without_phase_keys(self):
        # Old journals lack the phase/weight keys; absorbing them must
        # not crash (the fingerprint bump keeps them out of *resumes*,
        # but absorb_digest stays total on old shapes).
        entry = self._entry()
        for key in (
            "detection_phase_s",
            "restore_phase_s",
            "catchup_phase_s",
            "lost_weight",
            "duplicated_weight",
        ):
            del entry[key]
        card = Scorecard(engine="flink", policy="baseline")
        card.absorb_digest(self._digest([entry]))
        payload = card.to_dict()
        assert payload["faults_recovered"] == 1
        assert payload["detect_phase_s_mean"] == 0.0
        assert payload["fault_lost_weight"] == 0.0

    def test_fingerprint_carries_the_digest_schema_version(self):
        # Resuming a pre-PR-9 (v2: phase columns) or pre-detection (v3:
        # detection section) journal must mismatch loudly, not blend
        # old digests into new scorecards.
        assert chaos_fingerprint(SMALL).startswith("chaos|v3|")

    def test_render_shows_the_decomposition(self):
        card = Scorecard(engine="flink", policy="baseline")
        card.absorb_digest(self._digest([self._entry()]))
        from repro.recovery.chaos import ChaosReport

        report = ChaosReport(
            config=SMALL,
            schedules=[],
            scorecards={("flink", "baseline"): card},
        )
        text = report.render()
        assert "det(s)" in text
        assert "rst(s)" in text
        assert "cat(s)" in text


class TestGrayDraws:
    CONFIG = ChaosConfig(seed=0, rounds=1, gray_faults=True, max_faults_per_round=5)

    def test_gray_kinds_mixed_into_the_draw(self):
        kinds = set()
        for seed in range(80):
            schedule = random_fault_schedule(
                np.random.default_rng(seed), self.CONFIG
            )
            kinds.update(event.kind for event in schedule.events)
        assert {"flap", "degrade", "asympart"} <= kinds

    def test_gray_draws_always_validate(self):
        # The deterministic node-placement pass must keep every drawn
        # schedule clear of the same-node overlap rejections.
        for seed in range(120):
            schedule = random_fault_schedule(
                np.random.default_rng(seed), self.CONFIG
            )
            schedule.validate_against(self.CONFIG.duration_s)

    def test_gray_off_by_default(self):
        config = ChaosConfig(seed=0, rounds=1, max_faults_per_round=5)
        for seed in range(40):
            schedule = random_fault_schedule(
                np.random.default_rng(seed), config
            )
            assert not any(
                e.kind in ("flap", "degrade", "asympart")
                for e in schedule.events
            )

    def test_detector_config_validated(self):
        with pytest.raises(ValueError, match="unknown detector"):
            ChaosConfig(detector="bogus")


class TestDetectorSoak:
    def test_timeout_detector_is_byte_identical_to_no_detector(self):
        # The acceptance bar for the default detector: on the legacy
        # fault mix, `--detector timeout` replicates the fixed-timeout
        # recovery semantics so faithfully that the entire scorecard
        # JSON -- every float -- matches a run without the plane.
        import dataclasses

        plain = run_chaos(SMALL)
        timed = run_chaos(dataclasses.replace(SMALL, detector="timeout"))
        assert timed.to_json() == plain.to_json()

    def test_detection_columns_default_to_zero(self):
        report = run_chaos(SMALL)
        for card in report.to_dict()["scorecards"].values():
            assert card["false_positives"] == 0
            assert card["spurious_migration_node_s"] == 0.0
            assert card["cascade_depth_max"] == 0
            assert card["metastable"] == 0

    def test_soak_invariants_hold_for_every_engine_and_detector(self):
        # The ISSUE acceptance grid: all five engines under all three
        # detectors with gray faults in the mix -- the calm-no-FP and
        # cascade-bound invariants hold on every trial (report.ok).
        for detector in ("timeout", "phi", "quorum"):
            config = ChaosConfig(
                seed=2,
                rounds=1,
                duration_s=30.0,
                rate=10_000.0,
                detector=detector,
                gray_faults=True,
            )
            report = run_chaos(config)
            assert report.ok, (detector, report.violations)


class TestChaosFingerprint:
    def test_v3_tag_and_config_separation(self):
        import dataclasses

        fingerprint = chaos_fingerprint(SMALL)
        assert fingerprint.startswith("chaos|v3|")
        assert fingerprint != chaos_fingerprint(
            dataclasses.replace(SMALL, detector="phi")
        )
        assert fingerprint != chaos_fingerprint(
            dataclasses.replace(SMALL, gray_faults=True)
        )

    def test_stale_journal_mismatches_loudly(self, tmp_path):
        # A journal written under the v2 digest schema must refuse to
        # resume under v3 -- with both fingerprints in the error, not a
        # silent partial replay.
        path = tmp_path / "stale.json"
        stale = chaos_fingerprint(SMALL).replace("chaos|v3|", "chaos|v2|", 1)
        TrialJournal(path, fingerprint=stale).record(
            "flink/baseline/round0", {"failed": False}
        )
        with pytest.raises(ValueError) as err:
            TrialJournal(
                path, fingerprint=chaos_fingerprint(SMALL), resume=True
            )
        assert "chaos|v2|" in str(err.value)
        assert "chaos|v3|" in str(err.value)
