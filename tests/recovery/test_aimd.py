"""Unit tests for the online AIMD rate controller.

The controller is driven synthetically here: a stub registry feeds it
oldest-wait readings and a stub simulator advances time, so every
decision branch (increase / backoff / bisect / drain / hold) is
exercised without running trials.  The end-to-end cross-validation
against the offline bisection lives in
``tests/integration/test_self_healing.py``.
"""

import math

import pytest

from repro.recovery.aimd import (
    OLDEST_WAIT_GAUGE,
    AimdConfig,
    AimdController,
)
from repro.workloads.profiles import AdaptiveRate


class StubRegistry:
    def __init__(self):
        self.wait = 0.0

    def latest(self, name):
        assert name == OLDEST_WAIT_GAUGE
        return self.wait


class StubSim:
    def __init__(self):
        self.now = 0.0


def make_controller(initial=1000.0, ceiling=None, **config):
    profile = AdaptiveRate(
        initial=initial, ceiling=ceiling if ceiling is not None else initial
    )
    registry = StubRegistry()
    controller = AimdController(
        profile, registry, config=AimdConfig(**config)
    )
    return controller, registry, StubSim()


def tick(controller, registry, sim, wait):
    registry.wait = wait
    sim.now += controller.config.control_interval_s
    controller._control_tick(sim)
    return controller.decisions[-1]


class TestConfigValidation:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            AimdConfig(control_interval_s=0.0)
        with pytest.raises(ValueError):
            AimdConfig(increase_fraction=0.0)
        with pytest.raises(ValueError):
            AimdConfig(decrease_factor=1.0)
        with pytest.raises(ValueError):
            AimdConfig(max_queue_delay_s=-1.0)
        with pytest.raises(ValueError):
            AimdConfig(drain_fraction=0.0)


class TestControlLoop:
    def test_healthy_increases_additively(self):
        controller, registry, sim = make_controller(
            initial=1000.0, ceiling=1e9
        )
        decision = tick(controller, registry, sim, wait=0.0)
        assert decision.action == "increase"
        assert decision.next_rate == pytest.approx(1050.0)

    def test_held_healthy_rate_becomes_floor(self):
        controller, registry, sim = make_controller(
            initial=1000.0, ceiling=1e9
        )
        tick(controller, registry, sim, wait=0.0)  # 1000 -> 1050
        assert math.isnan(controller.floor)  # 1000 was the *initial* rate
        tick(controller, registry, sim, wait=0.0)  # 1050 held and healthy
        assert controller.floor == pytest.approx(1050.0)

    def test_backoff_sets_ceiling_when_drained(self):
        controller, registry, sim = make_controller(initial=1000.0)
        decision = tick(controller, registry, sim, wait=10.0)
        assert decision.action == "backoff"
        assert controller.ceiling_rate == pytest.approx(1000.0)
        assert decision.next_rate == pytest.approx(700.0)

    def test_inherited_backlog_does_not_poison_ceiling(self):
        # The interval before this one already showed a large wait, so
        # the backlog was inherited from an earlier (higher) rate; the
        # current rate must not be recorded as a known-bad ceiling.
        controller, registry, sim = make_controller(initial=1000.0)
        tick(controller, registry, sim, wait=10.0)  # drained -> ceiling 1000
        decision = tick(controller, registry, sim, wait=9.0)
        assert decision.action == "backoff"
        assert controller.ceiling_rate == pytest.approx(1000.0)  # unchanged

    def test_bisect_instead_of_crossing_ceiling(self):
        controller, registry, sim = make_controller(initial=1000.0)
        tick(controller, registry, sim, wait=10.0)  # ceiling = 1000, -> 700
        tick(controller, registry, sim, wait=0.0)   # drain cleared, 700 held
        decision = tick(controller, registry, sim, wait=0.0)
        # 700 * 1.05 = 735 < 1000 -> plain increase first...
        assert decision.action == "increase"
        for _ in range(8):
            decision = tick(controller, registry, sim, wait=0.0)
        # ...but the additive ladder eventually hits the bracket and
        # bisects toward the midpoint instead of stepping past 1000.
        assert decision.action == "bisect"
        assert controller.profile.rate < 1000.0

    def test_drain_holds_rate(self):
        controller, registry, sim = make_controller(initial=1000.0)
        tick(controller, registry, sim, wait=10.0)  # backoff, draining
        decision = tick(controller, registry, sim, wait=2.0)
        # wait is back under the bound (healthy) but above the drain
        # threshold (2.5 * 0.5 = 1.25): hold, don't increase yet.
        assert decision.action == "drain"
        assert decision.next_rate == pytest.approx(controller.profile.rate)

    def test_positive_slope_is_unhealthy(self):
        controller, registry, sim = make_controller(initial=1000.0)
        tick(controller, registry, sim, wait=0.0)
        decision = tick(controller, registry, sim, wait=1.0)
        # wait 1.0 < bound 2.5, but it grew 0.5 s/s > max_wait_slope.
        assert not decision.healthy
        assert decision.action == "backoff"

    def test_backoff_respects_min_rate(self):
        controller, registry, sim = make_controller(
            initial=1000.0, min_rate=900.0
        )
        decision = tick(controller, registry, sim, wait=10.0)
        assert decision.next_rate == pytest.approx(900.0)


class TestEstimate:
    def test_sustained_ceiling_becomes_the_estimate(self):
        # The SUT sustains the probe ceiling itself: the controller
        # holds there and must report the ceiling, not NaN.
        controller, registry, sim = make_controller(initial=1000.0)
        decision = tick(controller, registry, sim, wait=0.0)
        assert decision.action == "hold"
        tick(controller, registry, sim, wait=0.0)
        assert controller.estimate == pytest.approx(1000.0)

    def test_nan_when_never_healthy(self):
        controller, registry, sim = make_controller(initial=1000.0)
        for _ in range(5):
            tick(controller, registry, sim, wait=10.0)
        assert math.isnan(controller.estimate)

    def test_floor_capped_by_ceiling(self):
        controller, registry, sim = make_controller(
            initial=1000.0, ceiling=1e9
        )
        tick(controller, registry, sim, wait=0.0)   # -> 1050
        tick(controller, registry, sim, wait=0.0)   # floor = 1050, -> 1102.5
        assert controller.floor == pytest.approx(1050.0)
        controller.ceiling_rate = 1040.0
        assert controller.estimate == pytest.approx(1040.0)

    def test_install_rejects_double_install(self):
        controller, registry, sim = make_controller()

        class StubProcess:
            def stop(self):
                pass

        class StubSimWithEvery:
            now = 0.0

            def every(self, interval, fn, start):
                return StubProcess()

        controller.install(StubSimWithEvery())
        with pytest.raises(RuntimeError):
            controller.install(StubSimWithEvery())
        controller.stop()
