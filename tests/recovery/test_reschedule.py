"""Unit tests for the operator-rescheduling policy layer."""

import pytest

from repro.recovery.reschedule import (
    MODE_NONE,
    MODE_SPREAD,
    MODE_STANDBY,
    ReschedulePlan,
    ReschedulePolicy,
)
from repro.sim.cluster import paper_cluster

NODE = paper_cluster(2).node


class TestPolicyValidation:
    def test_defaults(self):
        policy = ReschedulePolicy()
        assert policy.standby_nodes == 0
        assert policy.mode == MODE_STANDBY
        assert policy.detection_timeout_s == 2.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ReschedulePolicy(standby_nodes=-1)
        with pytest.raises(ValueError):
            ReschedulePolicy(mode="teleport")
        with pytest.raises(ValueError):
            ReschedulePolicy(detection_timeout_s=-1.0)
        with pytest.raises(ValueError):
            ReschedulePolicy(migration_nic_fraction=0.0)
        with pytest.raises(ValueError):
            ReschedulePolicy(migration_nic_fraction=1.5)


class TestPlanCrash:
    def test_mode_none_is_legacy(self):
        # Capacity simply vanishes: nothing promoted, nothing migrated,
        # no modelled migration cost.
        plan = ReschedulePolicy(mode=MODE_NONE).plan_crash(
            kill=1, active=4, standbys_left=3, state_bytes=1e9, node=NODE
        )
        assert plan.promoted == 0
        assert plan.survivors == 3
        assert plan.migrated_bytes == 0.0
        assert plan.migration_pause_s == 0.0
        assert not plan.fatal

    def test_mode_none_last_worker_fatal(self):
        plan = ReschedulePolicy(mode=MODE_NONE).plan_crash(
            kill=2, active=2, standbys_left=5, state_bytes=1e9, node=NODE
        )
        assert plan.fatal

    def test_standby_promotion(self):
        plan = ReschedulePolicy(
            standby_nodes=2, mode=MODE_STANDBY
        ).plan_crash(
            kill=1, active=4, standbys_left=2, state_bytes=8e8, node=NODE
        )
        assert plan.promoted == 1
        assert plan.survivors == 3
        assert plan.restored == 4
        # The dead node's share of state moves: state_bytes * kill/active.
        assert plan.migrated_bytes == pytest.approx(2e8)
        assert plan.migration_pause_s > 0

    def test_standby_rescues_last_worker(self):
        # The headline scenario: the last worker dies, but a standby
        # exists, so the job survives instead of aborting.
        plan = ReschedulePolicy(
            standby_nodes=1, mode=MODE_STANDBY
        ).plan_crash(
            kill=2, active=2, standbys_left=1, state_bytes=1e9, node=NODE
        )
        assert not plan.fatal
        assert plan.promoted == 1
        assert plan.survivors == 0
        assert plan.restored == 1

    def test_fatal_when_pool_empty(self):
        plan = ReschedulePolicy(
            standby_nodes=1, mode=MODE_STANDBY
        ).plan_crash(
            kill=2, active=2, standbys_left=0, state_bytes=1e9, node=NODE
        )
        assert plan.fatal
        assert plan.restored == 0

    def test_spread_migrates_without_promotion(self):
        plan = ReschedulePolicy(mode=MODE_SPREAD).plan_crash(
            kill=1, active=4, standbys_left=3, state_bytes=8e8, node=NODE
        )
        assert plan.promoted == 0
        assert plan.survivors == 3
        assert plan.migrated_bytes == pytest.approx(2e8)

    def test_migration_pause_scales_with_nic(self):
        policy = ReschedulePolicy(mode=MODE_SPREAD, migration_nic_fraction=0.5)
        pause = policy.migration_pause_s(1e9, NODE, receivers=2)
        # bytes / (receivers * nic * fraction)
        assert pause == pytest.approx(1e9 / (2 * NODE.nic_bytes_per_s * 0.5))
        # More receivers pull the state in parallel: shorter pause.
        assert policy.migration_pause_s(1e9, NODE, receivers=4) < pause
        assert policy.migration_pause_s(0.0, NODE, receivers=2) == 0.0

    def test_invalid_plan_inputs_rejected(self):
        with pytest.raises(ValueError):
            ReschedulePolicy().plan_crash(
                kill=0, active=2, standbys_left=0, state_bytes=0.0, node=NODE
            )
        with pytest.raises(ValueError):
            ReschedulePolicy().plan_crash(
                kill=1, active=0, standbys_left=0, state_bytes=0.0, node=NODE
            )


class TestPlanStraggler:
    POLICY = ReschedulePolicy(standby_nodes=1, mode=MODE_STANDBY)

    def kwargs(self, **overrides):
        base = dict(
            nodes=1,
            duration_s=10.0,
            standbys_left=1,
            state_bytes=8e8,
            active=2,
            node=NODE,
        )
        base.update(overrides)
        return base

    def test_short_blip_never_migrates(self):
        # Strictly below the failure detector's timeout, nobody notices
        # the straggler -- migrating state for a blip would cost more
        # than riding it out.
        plan = self.POLICY.plan_straggler(
            **self.kwargs(duration_s=self.POLICY.detection_timeout_s - 1e-9)
        )
        assert plan.promoted == 0
        assert plan.migrated_bytes == 0.0

    def test_boundary_fault_is_detected(self):
        # Regression: a fault lasting *exactly* detection_timeout_s was
        # waved through (`<=`), contradicting the detector layer's
        # inclusive conviction at elapsed == timeout.  The boundary is
        # detection, so the straggler is replaced.
        plan = self.POLICY.plan_straggler(
            **self.kwargs(duration_s=self.POLICY.detection_timeout_s)
        )
        assert plan.promoted == 1
        assert plan.migrated_bytes > 0.0

    def test_detected_straggler_is_replaced(self):
        plan = self.POLICY.plan_straggler(**self.kwargs())
        assert plan.promoted == 1
        assert plan.migrated_bytes == pytest.approx(4e8)
        assert plan.migration_pause_s > 0

    def test_no_standby_means_ride_it_out(self):
        plan = self.POLICY.plan_straggler(**self.kwargs(standbys_left=0))
        assert plan.promoted == 0

    def test_opt_out(self):
        policy = ReschedulePolicy(
            standby_nodes=1, mode=MODE_STANDBY, migrate_stragglers=False
        )
        assert policy.plan_straggler(**self.kwargs()).promoted == 0

    def test_non_standby_modes_never_replace(self):
        for mode in (MODE_NONE, MODE_SPREAD):
            policy = ReschedulePolicy(standby_nodes=1, mode=mode)
            assert policy.plan_straggler(**self.kwargs()).promoted == 0


class TestPlanSuspect:
    def kwargs(self, **overrides):
        base = dict(active=2, standbys_left=1, state_bytes=8e8, node=NODE)
        base.update(overrides)
        return base

    def test_standby_promotion_keeps_headcount(self):
        plan = ReschedulePolicy(
            standby_nodes=1, mode=MODE_STANDBY
        ).plan_suspect(**self.kwargs())
        assert plan.promoted == 1
        assert plan.survivors == 1
        # One worker's share of state moves, and the pause is real --
        # this is what a false positive costs.
        assert plan.migrated_bytes == pytest.approx(4e8)
        assert plan.migration_pause_s > 0

    def test_spread_shrinks_capacity(self):
        plan = ReschedulePolicy(mode=MODE_SPREAD).plan_suspect(
            **self.kwargs(active=3)
        )
        assert plan.promoted == 0
        assert plan.survivors == 2
        assert plan.migrated_bytes > 0

    def test_mode_none_declines(self):
        plan = ReschedulePolicy(mode=MODE_NONE).plan_suspect(**self.kwargs())
        assert plan.promoted == 0
        assert plan.survivors == 2
        assert plan.migration_pause_s == 0.0

    def test_never_kills_the_last_worker_on_a_suspicion(self):
        plan = ReschedulePolicy(mode=MODE_SPREAD).plan_suspect(
            **self.kwargs(active=1)
        )
        assert plan.survivors == 1
        assert not plan.fatal

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            ReschedulePolicy().plan_suspect(**self.kwargs(active=0))


class TestPlanValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ReschedulePlan(
                promoted=-1, survivors=2, migrated_bytes=0.0,
                migration_pause_s=0.0, fatal=False,
            )
        with pytest.raises(ValueError):
            ReschedulePlan(
                promoted=0, survivors=2, migrated_bytes=-1.0,
                migration_pause_s=0.0, fatal=False,
            )

    def test_non_fatal_plan_must_keep_a_worker(self):
        # The autoscale guard: a plan that empties the cluster without
        # declaring the job dead is rejected at construction.
        with pytest.raises(ValueError):
            ReschedulePlan(
                promoted=0, survivors=0, migrated_bytes=0.0,
                migration_pause_s=0.0, fatal=False,
            )
        # Fatal plans may legitimately leave zero workers.
        plan = ReschedulePlan(
            promoted=0, survivors=0, migrated_bytes=0.0,
            migration_pause_s=0.0, fatal=True,
        )
        assert plan.restored == 0


class TestPlanScaleIn:
    POLICY = ReschedulePolicy()

    def plan(self, **kwargs):
        merged = dict(remove=1, active=4, state_bytes=8e8, node=NODE)
        merged.update(kwargs)
        return self.POLICY.plan_scale_in(**merged)

    def test_departing_share_drains_to_survivors(self):
        plan = self.plan(remove=1, active=4, state_bytes=8e8)
        assert plan.survivors == 3
        assert plan.promoted == 0
        assert not plan.fatal
        # The victims' share of keyed state: state_bytes * remove/active.
        assert plan.migrated_bytes == pytest.approx(2e8)
        expected_pause = self.POLICY.migration_pause_s(2e8, NODE, 3)
        assert plan.migration_pause_s == pytest.approx(expected_pause)
        assert plan.migration_pause_s > 0

    def test_pause_scales_with_fewer_receivers(self):
        # Removing more workers moves more bytes onto fewer NICs: the
        # pause must grow on both axes.
        one = self.plan(remove=1, active=4)
        two = self.plan(remove=2, active=4)
        assert two.migrated_bytes > one.migrated_bytes
        assert two.migration_pause_s > one.migration_pause_s

    def test_last_worker_never_removed(self):
        with pytest.raises(ValueError):
            self.plan(remove=1, active=1)
        with pytest.raises(ValueError):
            self.plan(remove=4, active=4)
        with pytest.raises(ValueError):
            self.plan(remove=5, active=4)

    def test_remove_must_be_positive(self):
        with pytest.raises(ValueError):
            self.plan(remove=0)
        with pytest.raises(ValueError):
            self.plan(remove=-1)

    def test_stateless_scale_in_is_pause_free(self):
        plan = self.plan(state_bytes=0.0)
        assert plan.migrated_bytes == 0.0
        assert plan.migration_pause_s == 0.0
