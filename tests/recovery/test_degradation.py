"""Unit tests for load shedding and admission ramps."""

import pytest

from repro.core.queues import DriverQueue
from repro.core.records import Record
from repro.recovery.degradation import (
    SHED_NEWEST,
    SHED_NONE,
    SHED_OLDEST,
    DegradationPolicy,
)


class TestPolicyValidation:
    def test_defaults_are_inert(self):
        policy = DegradationPolicy()
        assert policy.shed == SHED_NONE
        assert not policy.sheds
        assert policy.shed_excess(1e9, 1.0) == 0.0
        assert policy.admission_fraction(10.0, 5.0) == 1.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            DegradationPolicy(shed="middle")
        with pytest.raises(ValueError):
            DegradationPolicy(max_queue_delay_s=0.0)
        with pytest.raises(ValueError):
            DegradationPolicy(readmission_ramp_s=-1.0)
        with pytest.raises(ValueError):
            DegradationPolicy(ramp_floor=1.5)


class TestShedExcess:
    POLICY = DegradationPolicy(shed=SHED_OLDEST, max_queue_delay_s=5.0)

    def test_backlog_within_bound_untouched(self):
        # 1000 ev/s capacity clears a 5000-event backlog in exactly the
        # 5 s bound: nothing to shed.
        assert self.POLICY.shed_excess(5_000.0, 1_000.0) == 0.0

    def test_excess_is_dropped(self):
        assert self.POLICY.shed_excess(7_500.0, 1_000.0) == pytest.approx(
            2_500.0
        )

    def test_no_shedding_while_paused(self):
        # Zero capacity means the engine is in a recovery pause; the
        # bound is enforced against live capacity only (shedding data a
        # recovered engine could still clear in time would be waste).
        assert self.POLICY.shed_excess(1e9, 0.0) == 0.0


class TestAdmissionFraction:
    POLICY = DegradationPolicy(
        shed=SHED_OLDEST, readmission_ramp_s=4.0, ramp_floor=0.25
    )

    def test_no_ramp_configured(self):
        assert DegradationPolicy().admission_fraction(3.0, 2.0) == 1.0

    def test_no_pause_yet(self):
        # ramp_from_s < 0 means no recovery pause has ended yet.
        assert self.POLICY.admission_fraction(100.0, -1.0) == 1.0

    def test_linear_ramp(self):
        p = self.POLICY
        assert p.admission_fraction(10.0, 10.0) == pytest.approx(0.25)
        assert p.admission_fraction(12.0, 10.0) == pytest.approx(0.625)
        assert p.admission_fraction(14.0, 10.0) == 1.0
        assert p.admission_fraction(99.0, 10.0) == 1.0


def filled_queue(weights, capacity=1e9):
    queue = DriverQueue("q0", capacity_weight=capacity)
    for i, weight in enumerate(weights):
        queue.push(
            Record(key=i, value=1.0, event_time=float(i), weight=weight),
            at_time=float(i),
        )
    return queue


class TestQueueShedding:
    def test_shed_oldest_pops_head(self):
        queue = filled_queue([10.0, 20.0, 30.0])
        dropped = queue.shed(10.0, drop_oldest=True)
        assert dropped == pytest.approx(10.0)
        assert queue.shed_weight == pytest.approx(10.0)
        # The head cohort (event_time 0) is gone.
        remaining = queue.pull(1e9)
        assert [r.event_time for r in remaining] == [1.0, 2.0]

    def test_shed_newest_pops_tail(self):
        queue = filled_queue([10.0, 20.0, 30.0])
        dropped = queue.shed(30.0, drop_oldest=False)
        assert dropped == pytest.approx(30.0)
        remaining = queue.pull(1e9)
        assert [r.event_time for r in remaining] == [0.0, 1.0]

    def test_partial_cohort_shed_splits(self):
        queue = filled_queue([10.0, 20.0])
        dropped = queue.shed(15.0, drop_oldest=True)
        assert dropped == pytest.approx(15.0)
        remaining = queue.pull(1e9)
        # First cohort fully shed, second reduced to 15.
        assert len(remaining) == 1
        assert remaining[0].weight == pytest.approx(15.0)

    def test_conservation_ledger_balances(self):
        queue = filled_queue([10.0, 20.0, 30.0])
        queue.shed(25.0)
        queue.pull(12.0)
        assert queue.pushed_weight == pytest.approx(
            queue.pulled_weight + queue.queued_weight + queue.shed_weight
        )

    def test_shed_more_than_queued(self):
        queue = filled_queue([10.0])
        assert queue.shed(1e9) == pytest.approx(10.0)
        assert queue.queued_weight == 0.0

    def test_shed_nothing(self):
        queue = filled_queue([10.0])
        assert queue.shed(0.0) == 0.0
        assert queue.shed_weight == 0.0
