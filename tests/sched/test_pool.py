"""TrialScheduler: fan-out, journal replay, crash resilience, shards."""

import json

import pytest

from repro.metrology.journal import TrialJournal, shard_path
from repro.sched import TaskFailed, TrialScheduler, TrialTask

from tests.sched import tasks as bodies

FP = "sched-test-fingerprint"


def make_tasks(n, fn=bodies.double):
    return [TrialTask(key=f"cell{i}", fn=fn, payload=i) for i in range(n)]


def expected(n):
    return {f"cell{i}": i * 2 for i in range(n)}


class TestInline:
    def test_single_worker_runs_everything(self):
        scheduler = TrialScheduler(workers=1)
        assert scheduler.run(make_tasks(5)) == expected(5)

    def test_single_pending_task_runs_inline_even_with_workers(self):
        # One pending cell never justifies a pool.
        scheduler = TrialScheduler(workers=4)
        assert scheduler.run(make_tasks(1)) == expected(1)

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError):
            TrialScheduler(workers=0)

    def test_duplicate_keys_rejected(self):
        scheduler = TrialScheduler(workers=1)
        twice = make_tasks(2) + make_tasks(1)
        with pytest.raises(ValueError):
            scheduler.run(twice)

    def test_inline_failure_propagates(self):
        scheduler = TrialScheduler(workers=1)
        with pytest.raises(RuntimeError):
            scheduler.run(make_tasks(2, fn=bodies.boom))

    def test_on_result_fires_per_live_task(self):
        seen = []
        scheduler = TrialScheduler(workers=1)
        scheduler.run(
            make_tasks(3), on_result=lambda key, digest: seen.append(key)
        )
        assert seen == ["cell0", "cell1", "cell2"]


class TestPool:
    def test_parallel_matches_inline(self):
        serial = TrialScheduler(workers=1).run(make_tasks(7))
        parallel = TrialScheduler(workers=3).run(
            make_tasks(7, fn=bodies.slow_double)
        )
        assert parallel == serial == expected(7)

    def test_worker_failure_raises_task_failed(self):
        scheduler = TrialScheduler(workers=2)
        mixed = make_tasks(3) + [
            TrialTask(key="bad", fn=bodies.boom, payload=None)
        ]
        with pytest.raises(TaskFailed, match="exploded on purpose"):
            scheduler.run(mixed)

    def test_killed_worker_cell_is_rerun(self, tmp_path):
        # One cell SIGKILLs its worker (once).  The parent must notice
        # the corpse, re-enqueue the in-flight cell, and finish the
        # whole grid on the survivors.
        marker = tmp_path / "killed"
        tasks = [
            TrialTask(
                key=f"cell{i}",
                fn=bodies.crash_worker_once,
                payload=(str(marker), i),
            )
            for i in range(6)
        ]
        results = TrialScheduler(workers=3, poll_interval_s=0.05).run(tasks)
        assert results == expected(6)
        assert marker.exists()


class TestJournalIntegration:
    def test_replay_skips_journaled_cells(self, tmp_path):
        journal = TrialJournal(tmp_path / "j.json", fingerprint=FP)
        journal.record("cell0", 0)
        journal.record("cell1", 2)
        replayed = []
        results = TrialScheduler(workers=1, journal=journal).run(
            make_tasks(4),
            on_replay=lambda key, digest: replayed.append(key),
        )
        assert results == expected(4)
        assert replayed == ["cell0", "cell1"]
        assert journal.hits == 2

    def test_fully_journaled_run_never_executes(self, tmp_path):
        journal = TrialJournal(tmp_path / "j.json", fingerprint=FP)
        for key, digest in expected(3).items():
            journal.record(key, digest)
        results = TrialScheduler(workers=2, journal=journal).run(
            make_tasks(3, fn=bodies.forbidden)
        )
        assert results == expected(3)

    def test_parallel_run_journals_everything_and_merges_shards(
        self, tmp_path
    ):
        path = tmp_path / "j.json"
        journal = TrialJournal(path, fingerprint=FP)
        TrialScheduler(workers=3, journal=journal).run(make_tasks(6))
        assert journal.shard_paths() == []  # shards folded and removed
        payload = json.loads(path.read_text())
        assert payload["entries"] == {
            key: value for key, value in expected(6).items()
        }

    def test_journal_survives_parallel_then_serial_resume(self, tmp_path):
        path = tmp_path / "j.json"
        TrialScheduler(
            workers=3, journal=TrialJournal(path, fingerprint=FP)
        ).run(make_tasks(5))
        resumed = TrialJournal(path, fingerprint=FP, resume=True)
        results = TrialScheduler(workers=1, journal=resumed).run(
            make_tasks(5, fn=bodies.forbidden)
        )
        assert results == expected(5)
        assert resumed.hits == 5

    def test_leftover_shard_from_dead_run_replays_on_resume(self, tmp_path):
        # Simulate the aftermath of a killed parent: its journal holds
        # a prefix of the grid, a worker shard holds more completed
        # cells that never reached the parent.  --resume must replay
        # *both* without re-running anything it has.
        path = tmp_path / "j.json"
        parent = TrialJournal(path, fingerprint=FP)
        parent.record("cell0", 0)
        shard = TrialJournal(shard_path(path, 1), fingerprint=FP)
        shard.record("cell1", 2)
        shard.record("cell2", 4)

        resumed = TrialJournal(path, fingerprint=FP, resume=True)
        assert resumed.shard_paths() == []  # merged and removed on resume
        tasks = make_tasks(3, fn=bodies.forbidden) + make_tasks(
            4, fn=bodies.double
        )[3:]
        results = TrialScheduler(workers=1, journal=resumed).run(tasks)
        assert results == expected(4)
        assert resumed.hits == 3
