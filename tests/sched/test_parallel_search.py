"""Parallel speculative bisection: byte-identity with the serial path."""

import json

import pytest

from repro.analysis.export import search_to_dict
from repro.core.experiment import ExperimentSpec
from repro.core.generator import GeneratorConfig
from repro.core.sustainable import (
    SustainabilityCriteria,
    find_sustainable_throughput,
    search_fingerprint,
    sweep_sustainable_rates,
)
from repro.metrology import TrialJournal
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

HIGH_RATE = 400_000.0


def _spec(engine="storm", workers=2) -> ExperimentSpec:
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=workers,
        profile=HIGH_RATE,
        duration_s=30.0,
        seed=5,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )


def _fingerprint(spec) -> str:
    return search_fingerprint(
        spec,
        high_rate=HIGH_RATE,
        low_rate=0.0,
        rel_tol=0.05,
        criteria=SustainabilityCriteria(),
        max_trials=12,
    )


def _as_bytes(search) -> str:
    return json.dumps(search_to_dict(search), indent=2, sort_keys=True)


class TestParallelSearch:
    @pytest.fixture(scope="class")
    def reference(self):
        return find_sustainable_throughput(_spec(), high_rate=HIGH_RATE)

    def test_multi_trial_reference(self, reference):
        # The byte-identity claim below is vacuous on a 1-trial search.
        assert reference.trial_count > 1

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_parallel_search_is_byte_identical(self, reference, jobs):
        parallel = find_sustainable_throughput(
            _spec(), high_rate=HIGH_RATE, workers=jobs
        )
        assert _as_bytes(parallel) == _as_bytes(reference)

    def test_parallel_journal_resumes_serially(self, reference, tmp_path):
        # A parallel run's journal is interchangeable with a serial
        # one: resume it with workers=1 and replay everything.
        path = tmp_path / "journal.json"
        spec = _spec()
        find_sustainable_throughput(
            spec,
            high_rate=HIGH_RATE,
            workers=2,
            journal=TrialJournal(path, fingerprint=_fingerprint(spec)),
        )
        resumed_journal = TrialJournal(
            path, fingerprint=_fingerprint(spec), resume=True
        )
        resumed = find_sustainable_throughput(
            spec, high_rate=HIGH_RATE, journal=resumed_journal
        )
        # Every trial on the serial bisection path must be a replay
        # (speculative extras in the journal are harmless overshoot).
        assert resumed_journal.misses == 0
        assert _as_bytes(resumed) == _as_bytes(reference)

    def test_custom_run_callable_cannot_be_parallel(self):
        with pytest.raises(ValueError):
            find_sustainable_throughput(
                _spec(),
                high_rate=HIGH_RATE,
                workers=2,
                run=lambda spec: None,
            )


class TestParallelSweep:
    def test_sweep_matches_independent_searches(self):
        cells = [
            (("storm", 2), _spec("storm", 2)),
            (("flink", 2), _spec("flink", 2)),
        ]
        serial = sweep_sustainable_rates(cells, high_rate=HIGH_RATE)
        parallel = sweep_sustainable_rates(
            cells, high_rate=HIGH_RATE, workers=2
        )
        assert list(parallel) == list(serial)  # cell order preserved
        assert parallel == serial
        for key, spec in cells:
            alone = find_sustainable_throughput(spec, high_rate=HIGH_RATE)
            assert serial[key] == alone.sustainable_rate
