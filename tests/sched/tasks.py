"""Module-level task bodies for scheduler tests.

Worker processes pickle task functions *by reference*, so anything a
:class:`~repro.sched.TrialTask` runs must live at module scope --
lambdas and closures defined inside a test would not survive the trip.
"""

import os
import pathlib
import signal
import time


def double(payload):
    return payload * 2


def slow_double(payload):
    time.sleep(0.05)
    return payload * 2


def boom(payload):
    raise RuntimeError(f"task exploded on purpose: {payload!r}")


def forbidden(payload):
    raise AssertionError("this task must have been replayed, not run")


def crash_worker_once(payload):
    """SIGKILL the hosting worker the first time any task runs this.

    ``payload`` is ``(marker_path, value)``: the marker file makes the
    kill one-shot, so the re-enqueued cell (and every later cell)
    completes on a surviving worker instead of wiping out the pool.
    """
    marker_path, value = payload
    marker = pathlib.Path(marker_path)
    if not marker.exists():
        marker.write_text("killed once")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2
