"""Unit and property tests for key distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry
from repro.workloads.keys import NormalKeys, SingleKey, UniformKeys, ZipfKeys

ALL_DISTRIBUTIONS = [
    NormalKeys(64),
    UniformKeys(64),
    SingleKey(num_keys=64, key=7),
    ZipfKeys(64, exponent=1.5),
]


@pytest.fixture
def rng():
    return RngRegistry(seed=42).stream("keys")


class TestPmfInvariants:
    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
    def test_pmf_sums_to_one(self, dist):
        assert dist.pmf().sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
    def test_pmf_nonnegative(self, dist):
        assert (dist.pmf() >= 0).all()

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
    def test_pmf_length(self, dist):
        assert len(dist.pmf()) == dist.num_keys

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
    def test_hot_fraction_is_max_pmf(self, dist):
        assert dist.hot_fraction() == pytest.approx(float(dist.pmf().max()))


class TestSampling:
    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
    def test_samples_in_range(self, dist, rng):
        keys = dist.sample(rng, 1000)
        assert keys.min() >= 0
        assert keys.max() < dist.num_keys

    def test_normal_concentrates_in_centre(self, rng):
        dist = NormalKeys(100, spread_fraction=0.1)
        keys = dist.sample(rng, 20_000)
        centre_mass = ((keys > 30) & (keys < 70)).mean()
        assert centre_mass > 0.9

    def test_single_key_constant(self, rng):
        dist = SingleKey(num_keys=10, key=3)
        assert (dist.sample(rng, 100) == 3).all()
        assert dist.hot_fraction() == 1.0

    def test_uniform_hot_fraction(self):
        assert UniformKeys(50).hot_fraction() == pytest.approx(0.02)

    def test_zipf_rank1_hottest(self):
        pmf = ZipfKeys(20, exponent=2.0).pmf()
        assert pmf[0] == pmf.max()
        assert (np.diff(pmf) <= 1e-12).all()

    def test_sample_matches_pmf_roughly(self, rng):
        dist = NormalKeys(32, spread_fraction=0.2)
        keys = dist.sample(rng, 100_000)
        empirical = np.bincount(keys, minlength=32) / 100_000
        assert np.abs(empirical - dist.pmf()).max() < 0.02


class TestValidation:
    def test_zero_keys_rejected(self):
        with pytest.raises(ValueError):
            UniformKeys(0)

    def test_bad_spread_rejected(self):
        with pytest.raises(ValueError):
            NormalKeys(10, spread_fraction=0.0)

    def test_single_key_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SingleKey(num_keys=4, key=4)

    def test_zipf_exponent_must_exceed_one(self):
        with pytest.raises(ValueError):
            ZipfKeys(10, exponent=1.0)


class TestPropertyBased:
    @given(num_keys=st.integers(1, 200), spread=st.floats(0.01, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_normal_pmf_always_valid(self, num_keys, spread):
        dist = NormalKeys(num_keys, spread_fraction=spread)
        pmf = dist.pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert (pmf >= 0).all()

    @given(num_keys=st.integers(2, 100), exponent=st.floats(1.01, 4.0))
    @settings(max_examples=50, deadline=None)
    def test_zipf_pmf_always_valid(self, num_keys, exponent):
        dist = ZipfKeys(num_keys, exponent=exponent)
        pmf = dist.pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[0] >= pmf[-1]
