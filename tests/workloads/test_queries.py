"""Unit and property tests for window and query specifications."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import ADS, PURCHASES
from repro.workloads.queries import (
    LARGE_WINDOW,
    PAPER_DEFAULT_WINDOW,
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)


class TestWindowSpec:
    def test_paper_default_is_8s_4s(self):
        assert PAPER_DEFAULT_WINDOW.size_s == 8.0
        assert PAPER_DEFAULT_WINDOW.slide_s == 4.0
        assert not PAPER_DEFAULT_WINDOW.is_tumbling

    def test_large_window_is_tumbling(self):
        assert LARGE_WINDOW.is_tumbling
        assert LARGE_WINDOW.windows_per_event == 1

    def test_windows_per_event(self):
        assert WindowSpec(8, 4).windows_per_event == 2
        assert WindowSpec(10, 3).windows_per_event == 4
        assert WindowSpec(5, 5).windows_per_event == 1

    def test_window_end_and_start(self):
        w = WindowSpec(8, 4)
        assert w.window_end(3) == 12.0
        assert w.window_start(3) == 4.0

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(0, 1)
        with pytest.raises(ValueError):
            WindowSpec(4, 0)
        with pytest.raises(ValueError):
            WindowSpec(4, 8)  # slide > size drops events

    def test_figure1_style_assignment(self):
        # A 10-minute (600 s) tumbling window: the (5, 605] window of
        # Figure 1 corresponds to event times in (5, 605] with our
        # aligned indexing: event at t=600 falls in the window ending 600.
        w = WindowSpec(600, 600)
        first, last = w.window_index_range(600.0)
        assert first == last == 1
        assert w.window_end(1) == 600.0

    def test_event_on_boundary_belongs_to_ending_window(self):
        w = WindowSpec(8, 4)
        first, last = w.window_index_range(8.0)
        # Windows (0,8] and (4,12] both contain t=8.
        assert (first, last) == (2, 3)

    def test_event_within_slide(self):
        w = WindowSpec(8, 4)
        first, last = w.window_index_range(9.0)
        # Windows ending at 12 (4,12] and 16 (8,16] contain t=9.
        assert (first, last) == (3, 4)


class TestWindowAssignmentProperties:
    @given(
        size=st.integers(1, 120),
        slide_frac=st.integers(1, 10),
        event_ms=st.integers(1, 10_000_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_containing_window_contains_event(
        self, size, slide_frac, event_ms
    ):
        slide = size / slide_frac
        w = WindowSpec(float(size), slide)
        t = event_ms / 1000.0
        first, last = w.window_index_range(t)
        assert last - first + 1 == w.windows_per_event
        for idx in range(first, last + 1):
            assert w.window_start(idx) < t <= w.window_end(idx) + 1e-9

    @given(
        size=st.floats(0.5, 100),
        event=st.floats(0.001, 10_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_tumbling_assigns_exactly_one_window(self, size, event):
        w = WindowSpec(size, size)
        first, last = w.window_index_range(event)
        assert first == last

    def test_boundary_event_float_drift_regression(self):
        # size = slide = 0.8, t = 1.6: (t + size) / slide evaluates to
        # 3.0000000000000004, so an un-guarded ceil assigned the event
        # to window 3 = (1.6, 2.4] which does not contain it.
        w = WindowSpec(0.8, 0.8)
        first, last = w.window_index_range(1.6)
        assert first == last == 2
        assert w.window_start(2) < 1.6 <= w.window_end(2) + 1e-9


class TestQueries:
    def test_aggregation_streams(self):
        q = WindowedAggregationQuery()
        assert q.streams == (PURCHASES,)
        assert q.kind == "aggregation"

    def test_join_streams(self):
        q = WindowedJoinQuery()
        assert q.streams == (PURCHASES, ADS)
        assert q.kind == "join"

    def test_join_selectivity_default_near_paper_network_bound(self):
        # selectivity * 64B result + 104B ingest => ~1.19 M/s saturation.
        q = WindowedJoinQuery()
        assert q.selectivity == pytest.approx(0.016)

    def test_join_validation(self):
        with pytest.raises(ValueError):
            WindowedJoinQuery(selectivity=-0.1)
        with pytest.raises(ValueError):
            WindowedJoinQuery(purchases_share=0.0)

    def test_describe_mentions_window(self):
        q = WindowedAggregationQuery()
        assert "8s" in q.describe()
        assert "sliding" in q.describe()

    def test_queries_are_hashable_specs(self):
        # Frozen dataclasses: usable as sweep keys.
        q1 = WindowedAggregationQuery()
        assert q1.name == "WindowedAggregationQuery"
