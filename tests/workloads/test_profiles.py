"""Unit tests for rate profiles."""

import pytest

from repro.workloads.profiles import (
    ConstantRate,
    FluctuatingRate,
    StepRate,
    fig6_profile,
)


class TestConstantRate:
    def test_constant(self):
        p = ConstantRate(5e5)
        assert p.rate_at(0) == 5e5
        assert p.rate_at(1e6) == 5e5

    def test_peak(self):
        assert ConstantRate(3.0).peak(100) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0)

    def test_scaled_for_90_percent_runs(self):
        p = ConstantRate(1.0e6).scaled(0.9)
        assert p.rate_at(5.0) == pytest.approx(0.9e6)


class TestStepRate:
    def test_steps_apply_in_order(self):
        p = StepRate([(0.0, 10.0), (5.0, 20.0), (10.0, 5.0)])
        assert p.rate_at(0.0) == 10.0
        assert p.rate_at(4.9) == 10.0
        assert p.rate_at(5.0) == 20.0
        assert p.rate_at(12.0) == 5.0

    def test_before_first_step_uses_first_rate(self):
        p = StepRate([(2.0, 7.0)])
        assert p.rate_at(0.0) == 7.0

    def test_unordered_steps_rejected(self):
        with pytest.raises(ValueError):
            StepRate([(5.0, 1.0), (0.0, 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StepRate([])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            StepRate([(0.0, -1.0)])


class TestFluctuatingRate:
    def test_high_low_high(self):
        p = FluctuatingRate(high=100.0, low=20.0, drop_at=10.0, recover_at=20.0)
        assert p.rate_at(5.0) == 100.0
        assert p.rate_at(15.0) == 20.0
        assert p.rate_at(25.0) == 100.0

    def test_peak_is_high(self):
        p = FluctuatingRate(high=100.0, low=20.0, drop_at=10.0, recover_at=20.0)
        assert p.peak(30.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FluctuatingRate(high=10, low=20, drop_at=1, recover_at=2)
        with pytest.raises(ValueError):
            FluctuatingRate(high=20, low=10, drop_at=5, recover_at=5)


class TestFig6Profile:
    def test_paper_rates(self):
        p = fig6_profile(duration_s=300.0)
        assert p.rate_at(0.0) == pytest.approx(0.84e6)
        assert p.rate_at(150.0) == pytest.approx(0.28e6)
        assert p.rate_at(250.0) == pytest.approx(0.84e6)

    def test_phase_boundaries_at_thirds(self):
        p = fig6_profile(duration_s=90.0)
        assert p.drop_at == pytest.approx(30.0)
        assert p.recover_at == pytest.approx(60.0)
