"""Unit tests for rate profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.profiles import (
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    FluctuatingRate,
    StepRate,
    fig6_profile,
)


class TestConstantRate:
    def test_constant(self):
        p = ConstantRate(5e5)
        assert p.rate_at(0) == 5e5
        assert p.rate_at(1e6) == 5e5

    def test_peak(self):
        assert ConstantRate(3.0).peak(100) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0)

    def test_scaled_for_90_percent_runs(self):
        p = ConstantRate(1.0e6).scaled(0.9)
        assert p.rate_at(5.0) == pytest.approx(0.9e6)


class TestStepRate:
    def test_steps_apply_in_order(self):
        p = StepRate([(0.0, 10.0), (5.0, 20.0), (10.0, 5.0)])
        assert p.rate_at(0.0) == 10.0
        assert p.rate_at(4.9) == 10.0
        assert p.rate_at(5.0) == 20.0
        assert p.rate_at(12.0) == 5.0

    def test_before_first_step_uses_first_rate(self):
        p = StepRate([(2.0, 7.0)])
        assert p.rate_at(0.0) == 7.0

    def test_unordered_steps_rejected(self):
        with pytest.raises(ValueError):
            StepRate([(5.0, 1.0), (0.0, 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StepRate([])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            StepRate([(0.0, -1.0)])


class TestFluctuatingRate:
    def test_high_low_high(self):
        p = FluctuatingRate(high=100.0, low=20.0, drop_at=10.0, recover_at=20.0)
        assert p.rate_at(5.0) == 100.0
        assert p.rate_at(15.0) == 20.0
        assert p.rate_at(25.0) == 100.0

    def test_peak_is_high(self):
        p = FluctuatingRate(high=100.0, low=20.0, drop_at=10.0, recover_at=20.0)
        assert p.peak(30.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FluctuatingRate(high=10, low=20, drop_at=1, recover_at=2)
        with pytest.raises(ValueError):
            FluctuatingRate(high=20, low=10, drop_at=5, recover_at=5)


class TestFig6Profile:
    def test_paper_rates(self):
        p = fig6_profile(duration_s=300.0)
        assert p.rate_at(0.0) == pytest.approx(0.84e6)
        assert p.rate_at(150.0) == pytest.approx(0.28e6)
        assert p.rate_at(250.0) == pytest.approx(0.84e6)

    def test_phase_boundaries_at_thirds(self):
        p = fig6_profile(duration_s=90.0)
        assert p.drop_at == pytest.approx(30.0)
        assert p.recover_at == pytest.approx(60.0)


class TestExactPeaks:
    """``peak`` must see features narrower than any sampling grid --
    driver queues are provisioned from it (PR 7 regression)."""

    def test_step_sub_resolution_spike_counted(self):
        # A 100 ms spike between two 1 s samples: the sampled base
        # implementation would report 10.0, the exact override must not.
        p = StepRate([(0.0, 10.0), (5.4, 500.0), (5.5, 10.0)])
        assert p.peak(20.0, resolution_s=1.0) == 500.0

    def test_step_spike_beyond_horizon_ignored(self):
        p = StepRate([(0.0, 10.0), (30.0, 500.0)])
        assert p.peak(20.0) == 10.0
        assert p.peak(30.0) == 500.0

    def test_scaled_peak_composes_with_exact_base(self):
        p = StepRate([(0.0, 10.0), (5.4, 500.0), (5.5, 10.0)]).scaled(0.5)
        assert p.peak(20.0) == 250.0


class TestDiurnalRate:
    def test_trough_and_crest(self):
        p = DiurnalRate(low=10.0, high=110.0, period_s=100.0)
        assert p.rate_at(0.0) == pytest.approx(10.0)
        assert p.rate_at(50.0) == pytest.approx(110.0)
        assert p.rate_at(100.0) == pytest.approx(10.0)

    def test_phase_shifts_the_curve(self):
        p = DiurnalRate(low=10.0, high=110.0, period_s=100.0, phase_s=50.0)
        assert p.rate_at(0.0) == pytest.approx(110.0)

    def test_peak_exact_when_crest_inside_horizon(self):
        p = DiurnalRate(low=10.0, high=110.0, period_s=100.0)
        assert p.peak(50.0) == 110.0
        assert p.peak(1000.0) == 110.0

    def test_peak_before_first_crest_uses_endpoint(self):
        p = DiurnalRate(low=10.0, high=110.0, period_s=100.0)
        # Rising edge: the maximum over [0, 20] is at t=20, far below
        # the crest -- and narrower than any grid could misreport.
        assert p.peak(20.0) == pytest.approx(p.rate_at(20.0))
        assert p.peak(20.0) < 110.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalRate(low=-1.0, high=10.0)
        with pytest.raises(ValueError):
            DiurnalRate(low=20.0, high=10.0)
        with pytest.raises(ValueError):
            DiurnalRate(low=1.0, high=2.0, period_s=0.0)


class TestFlashCrowdRate:
    def test_spike_inside_burst_base_outside(self):
        p = FlashCrowdRate(
            base=10.0, spike=100.0, horizon_s=60.0, spikes=2,
            spike_duration_s=5.0, seed=3,
        )
        assert len(p.bursts) == 2
        for start, end in p.bursts:
            assert p.rate_at((start + end) / 2.0) == 100.0
            assert end - start == pytest.approx(5.0)
        assert p.rate_at(p.bursts[0][1] + 1e-9) in (10.0, 100.0)

    def test_bursts_deterministic_per_seed(self):
        kwargs = dict(
            base=10.0, spike=100.0, horizon_s=60.0, spikes=3,
            spike_duration_s=4.0,
        )
        a = FlashCrowdRate(seed=7, **kwargs)
        b = FlashCrowdRate(seed=7, **kwargs)
        c = FlashCrowdRate(seed=8, **kwargs)
        assert a.bursts == b.bursts
        assert a.bursts != c.bursts

    def test_bursts_never_overlap(self):
        p = FlashCrowdRate(
            base=1.0, spike=2.0, horizon_s=100.0, spikes=5,
            spike_duration_s=20.0, seed=0,
        )
        for (_, end), (start, _) in zip(p.bursts, p.bursts[1:]):
            assert end <= start

    def test_peak_exact_for_sub_resolution_burst(self):
        # A 50 ms flash crowd: invisible on a 1 s sampling grid, still
        # the peak the queues must be provisioned for.
        p = FlashCrowdRate(
            base=10.0, spike=1000.0, horizon_s=60.0, spikes=1,
            spike_duration_s=0.05, seed=5,
        )
        assert p.peak(60.0, resolution_s=1.0) == 1000.0
        sampled = max(p.rate_at(float(i)) for i in range(61))
        assert sampled == 10.0  # the grid really would have missed it

    def test_peak_before_first_burst_is_base(self):
        p = FlashCrowdRate(
            base=10.0, spike=100.0, horizon_s=60.0, spikes=1,
            spike_duration_s=5.0, seed=0,
        )
        first_start = p.bursts[0][0]
        assert p.peak(first_start / 2.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdRate(base=-1.0, spike=10.0, horizon_s=10.0)
        with pytest.raises(ValueError):
            FlashCrowdRate(base=10.0, spike=5.0, horizon_s=10.0)
        with pytest.raises(ValueError):
            FlashCrowdRate(base=1.0, spike=2.0, horizon_s=0.0)
        with pytest.raises(ValueError):
            FlashCrowdRate(base=1.0, spike=2.0, horizon_s=10.0, spikes=0)
        with pytest.raises(ValueError):
            # duration longer than a segment
            FlashCrowdRate(
                base=1.0, spike=2.0, horizon_s=10.0, spikes=2,
                spike_duration_s=6.0,
            )


class TestProfileProperties:
    """Hypothesis: the invariants every autoscale workload relies on."""

    @given(
        low=st.floats(0.0, 1e6),
        span=st.floats(0.0, 1e6),
        period=st.floats(1.0, 1e5),
        phase=st.floats(0.0, 1e5),
        t=st.floats(0.0, 1e6),
    )
    @settings(max_examples=200, deadline=None)
    def test_diurnal_rate_within_band(self, low, span, period, phase, t):
        p = DiurnalRate(low=low, high=low + span, period_s=period, phase_s=phase)
        rate = p.rate_at(t)
        assert low - 1e-6 * (low + span) <= rate <= low + span + 1e-6 * (low + span)

    @given(
        low=st.floats(0.0, 1e6),
        span=st.floats(0.0, 1e6),
        period=st.floats(1.0, 1e5),
        t=st.floats(0.0, 1e5),
        horizon=st.floats(0.1, 1e5),
    )
    @settings(max_examples=200, deadline=None)
    def test_diurnal_peak_bounds_every_sample(self, low, span, period, t, horizon):
        p = DiurnalRate(low=low, high=low + span, period_s=period)
        if t <= horizon:
            assert p.rate_at(t) <= p.peak(horizon) * (1 + 1e-12) + 1e-9

    @given(
        period=st.floats(1.0, 1e4),
        t=st.floats(0.0, 1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_diurnal_is_periodic(self, period, t):
        p = DiurnalRate(low=5.0, high=15.0, period_s=period)
        assert p.rate_at(t) == pytest.approx(p.rate_at(t + period), rel=1e-6, abs=1e-6)

    @given(
        base=st.floats(0.0, 1e5),
        extra=st.floats(0.0, 1e6),
        horizon=st.floats(1.0, 1e4),
        spikes=st.integers(1, 6),
        seed=st.integers(0, 2**31 - 1),
        t=st.floats(0.0, 2e4),
    )
    @settings(max_examples=200, deadline=None)
    def test_flash_crowd_rate_is_base_or_spike(
        self, base, extra, horizon, spikes, seed, t
    ):
        duration = horizon / spikes / 2.0
        p = FlashCrowdRate(
            base=base, spike=base + extra, horizon_s=horizon,
            spikes=spikes, spike_duration_s=duration, seed=seed,
        )
        assert p.rate_at(t) in (p.base, p.spike)
        assert p.rate_at(t) >= 0.0

    @given(
        seed=st.integers(0, 2**31 - 1),
        spikes=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_flash_crowd_seed_determinism(self, seed, spikes):
        kwargs = dict(
            base=3.0, spike=9.0, horizon_s=120.0, spikes=spikes,
            spike_duration_s=5.0,
        )
        a = FlashCrowdRate(seed=seed, **kwargs)
        b = FlashCrowdRate(seed=seed, **kwargs)
        assert a.bursts == b.bursts
        for t in (0.0, 17.3, 59.9, 119.9):
            assert a.rate_at(t) == b.rate_at(t)

    @given(
        factor=st.floats(0.0, 10.0),
        t=st.floats(0.0, 200.0),
        horizon=st.floats(1.0, 200.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_scaled_composition(self, factor, t, horizon):
        base = FlashCrowdRate(
            base=10.0, spike=100.0, horizon_s=100.0, spikes=2,
            spike_duration_s=5.0, seed=1,
        )
        scaled = base.scaled(factor)
        assert scaled.rate_at(t) == pytest.approx(base.rate_at(t) * factor)
        assert scaled.peak(horizon) == pytest.approx(base.peak(horizon) * factor)
