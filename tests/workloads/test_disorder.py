"""Tests for the out-of-order event extension (paper future work)."""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.sim.rng import RngRegistry
from repro.workloads.disorder import EXPONENTIAL, UNIFORM, DisorderSpec
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery


class TestDisorderSpec:
    def test_defaults_valid(self):
        spec = DisorderSpec()
        assert 0 < spec.fraction < 1
        assert spec.max_delay_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DisorderSpec(fraction=-0.1)
        with pytest.raises(ValueError):
            DisorderSpec(fraction=1.5)
        with pytest.raises(ValueError):
            DisorderSpec(max_delay_s=0.0)
        with pytest.raises(ValueError):
            DisorderSpec(distribution="pareto")

    @pytest.mark.parametrize("dist", [UNIFORM, EXPONENTIAL])
    def test_delays_bounded(self, dist):
        spec = DisorderSpec(max_delay_s=2.0, distribution=dist)
        rng = RngRegistry(1).stream("d")
        for _ in range(500):
            delay = spec.sample_delay(rng)
            assert 0.0 <= delay <= 2.0


def run_with_disorder(lateness_s, fraction=0.2, engine="flink"):
    return run_experiment(
        ExperimentSpec(
            engine=engine,
            query=WindowedAggregationQuery(window=WindowSpec(4, 2)),
            workers=2,
            profile=20_000.0,
            duration_s=60.0,
            seed=5,
            generator=GeneratorConfig(
                instances=2,
                disorder=DisorderSpec(fraction=fraction, max_delay_s=2.0),
            ),
            engine_config=None
            if lateness_s == 0
            else _flink_config(lateness_s),
            monitor_resources=False,
        )
    )


def _flink_config(lateness_s):
    from repro.engines.flink import FlinkConfig

    return FlinkConfig(allowed_lateness_s=lateness_s)


class TestLateEventHandling:
    def test_disorder_causes_drops_without_lateness(self):
        result = run_with_disorder(lateness_s=0.0)
        assert not result.failed
        assert result.diagnostics["late_dropped_weight"] > 0

    def test_allowed_lateness_recovers_stragglers(self):
        strict = run_with_disorder(lateness_s=0.0)
        tolerant = run_with_disorder(lateness_s=2.5)
        assert (
            tolerant.diagnostics["late_dropped_weight"]
            < strict.diagnostics["late_dropped_weight"] * 0.1
        )

    def test_allowed_lateness_costs_latency(self):
        strict = run_with_disorder(lateness_s=0.0)
        tolerant = run_with_disorder(lateness_s=2.5)
        # Windows held open 2.5 s longer emit 2.5 s later.
        assert (
            tolerant.event_latency.mean
            > strict.event_latency.mean + 1.5
        )

    def test_no_disorder_no_drops(self):
        result = run_experiment(
            ExperimentSpec(
                engine="flink",
                query=WindowedAggregationQuery(window=WindowSpec(4, 2)),
                workers=2,
                profile=20_000.0,
                duration_s=60.0,
                generator=GeneratorConfig(instances=2),
                monitor_resources=False,
            )
        )
        assert result.diagnostics["late_dropped_weight"] == 0.0

    @pytest.mark.parametrize("engine", ["storm", "spark"])
    def test_other_engines_report_drop_metric(self, engine):
        result = run_with_disorder(lateness_s=0.0, engine=engine)
        assert not result.failed
        assert "late_dropped_weight" in result.diagnostics

    def test_completeness_bounded_by_fraction(self):
        # With 20% disordered by up to 2 s and a 2 s slide, at most the
        # disordered share can be lost.
        result = run_with_disorder(lateness_s=0.0, fraction=0.2)
        ingested = result.diagnostics["ingested_weight"]
        dropped = result.diagnostics["late_dropped_weight"]
        assert dropped / ingested < 0.2
