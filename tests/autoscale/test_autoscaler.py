"""End-to-end autoscaled trials: wiring, metrology, determinism."""

import json

import pytest

from repro.analysis.export import trial_to_dict
from repro.autoscale.metrics import (
    RescaleMetrics,
    compute_rescale_metrics,
    rescale_timeline_events,
)
from repro.autoscale.policy import AutoscaleSpec
from repro.autoscale.scorecard import single_worker_capacity
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.recovery.chaos import ChaosConfig, check_invariants
from repro.workloads.profiles import FlashCrowdRate


def flash_crowd_spec(engine="flink", policy="threshold", duration_s=90.0):
    """One worker hit by a burst at 2x its capacity: must scale out."""
    capacity = single_worker_capacity(engine)
    return ExperimentSpec(
        engine=engine,
        workers=1,
        profile=FlashCrowdRate(
            base=0.4 * capacity,
            spike=2.0 * capacity,
            horizon_s=duration_s / 2.0,
            spikes=1,
            spike_duration_s=20.0,
            seed=0,
        ),
        duration_s=duration_s,
        seed=0,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        autoscale=AutoscaleSpec(
            policy=policy, min_workers=1, max_workers=6, cooldown_s=12.0
        ),
    )


class TestAutoscaledTrial:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(flash_crowd_spec())

    def test_burst_forces_scale_out(self, result):
        assert not result.failed
        assert result.autoscale
        kinds = [m.kind for m in result.autoscale]
        assert "scale-out" in kinds
        assert result.diagnostics["autoscale.scale_outs"] >= 1.0

    def test_resustains_with_decomposed_legs(self, result):
        outs = [m for m in result.autoscale if m.kind == "scale-out"]
        assert any(m.resustained for m in outs)
        for m in outs:
            if not m.resustained:
                continue
            assert m.time_to_resustain_s == pytest.approx(
                m.detect_s + m.provision_s + m.migrate_s + m.catchup_s
            )
            assert m.provision_s >= 0.0
            assert m.catchup_s >= 0.0

    def test_bounds_respected(self, result):
        workers_end = result.diagnostics["cluster_workers"]
        assert 1.0 <= workers_end <= 6.0
        for m in result.autoscale:
            assert m.to_workers <= 6.0
            if m.kind == "scale-in":
                assert m.to_workers >= 1.0

    def test_ledgers_balance_through_scale_events(self, result):
        violations = check_invariants(
            result, ChaosConfig(latency_bound_s=20.0), "autoscaled"
        )
        assert violations == []

    def test_cost_billed(self, result):
        cost = result.diagnostics["autoscale.cost_node_seconds"]
        # At least the single base worker for the whole trial, at most
        # the ceiling for the whole trial.
        assert result.duration_s <= cost <= 6.0 * result.duration_s

    def test_timeline_annotated(self, result):
        assert result.observability is not None
        kinds = {
            e["kind"] for e in result.observability.trace_log.events
        }
        assert "autoscale.scale-out" in kinds
        assert "autoscale.resustained" in kinds

    def test_export_json_clean(self, result):
        payload = trial_to_dict(result)
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == payload
        assert payload["autoscale"]

    def test_deterministic_replay(self, result):
        rerun = run_experiment(flash_crowd_spec())

        def canonical(res):
            payload = trial_to_dict(res)
            # Host-performance counters measure wall-clock, not the
            # simulation; everything else must replay bit-for-bit.
            for key in (
                "collector.collect_s",
                "collector.samples_per_s",
                "driver.summary_s",
            ):
                payload["diagnostics"].pop(key, None)
            return json.dumps(payload, sort_keys=True)

        assert canonical(result) == canonical(rerun)


class TestNoAutoscale:
    def test_field_absent_without_spec(self):
        result = run_experiment(
            ExperimentSpec(
                engine="flink",
                workers=1,
                profile=1e5,
                duration_s=10.0,
                monitor_resources=False,
            )
        )
        assert result.autoscale is None
        assert "autoscale.events" not in result.diagnostics
        # No implicit observability either: autoscale is what forces it.
        assert result.observability is None


class TestRescaleMetrics:
    LOG = [
        {
            "kind": "scale-out",
            "decided_at_s": 10.0,
            "delta": 2.0,
            "from_workers": 2.0,
            "to_workers": 4.0,
            "detect_s": 1.5,
            "reason": "lag",
            "spares_used": 0.0,
            "provision_s": 17.0,
            "cutover_at_s": 27.0,
            "migrated_bytes": 1e8,
            "migration_s": 1.0,
            "style_pause_s": 0.5,
            "pause_s": 1.5,
            "online_at_s": 28.5,
        }
    ]

    def test_catchup_measured_from_lag_series(self):
        times = [float(t) for t in range(0, 60, 2)]
        values = [10.0 if t < 40 else 0.5 for t in times]
        (m,) = compute_rescale_metrics(self.LOG, times, values, 60.0)
        assert m.resustained
        assert m.catchup_s == pytest.approx(40.0 - 28.5)
        assert m.time_to_resustain_s == pytest.approx(
            1.5 + (27.0 - 10.0) + 1.5 + (40.0 - 28.5)
        )

    def test_never_settles_is_nan(self):
        times = [float(t) for t in range(0, 60, 2)]
        values = [10.0] * len(times)
        (m,) = compute_rescale_metrics(self.LOG, times, values, 60.0)
        assert not m.resustained
        assert m.to_dict()["time_to_resustain_s"] is None

    def test_settle_needs_consecutive_samples(self):
        times = [30.0, 32.0, 34.0, 36.0, 38.0]
        values = [0.5, 10.0, 0.5, 0.5, 0.5]
        (m,) = compute_rescale_metrics(
            self.LOG, times, values, 60.0, settle_samples=2
        )
        # The lone in-bound sample at 30 does not count; the streak
        # opening at 34 does.
        assert m.catchup_s == pytest.approx(34.0 - 28.5)

    def test_next_event_bounds_the_scan(self):
        log = [dict(self.LOG[0]), dict(self.LOG[0])]
        log[1]["decided_at_s"] = 35.0
        times = [30.0, 40.0, 42.0]
        values = [10.0, 0.5, 0.5]
        first, _ = compute_rescale_metrics(log, times, values, 60.0)
        # The settle at t=40 belongs to the second event's scan window.
        assert not first.resustained

    def test_timeline_events_skip_unsettled(self):
        m_ok = RescaleMetrics(
            kind="scale-out", decided_at_s=10.0, delta=2.0,
            from_workers=2.0, to_workers=4.0, reason="lag", spares=0.0,
            detect_s=1.0, provision_s=17.0, migrate_s=1.5, catchup_s=5.0,
            time_to_resustain_s=24.5, migrated_bytes=0.0, lost_weight=0.0,
            duplicated_weight=0.0,
        )
        m_bad = RescaleMetrics(
            kind="scale-out", decided_at_s=50.0, delta=2.0,
            from_workers=4.0, to_workers=6.0, reason="lag", spares=0.0,
            detect_s=1.0, provision_s=17.0, migrate_s=1.5,
            catchup_s=float("nan"), time_to_resustain_s=float("nan"),
            migrated_bytes=0.0, lost_weight=0.0, duplicated_weight=0.0,
        )
        (event,) = rescale_timeline_events([m_ok, m_bad])
        assert event["kind"] == "autoscale.resustained"
        assert event["at_time"] == pytest.approx(10.0 - 1.0 + 24.5)

    def test_describe_is_human_readable(self):
        times = [float(t) for t in range(0, 60, 2)]
        values = [0.5] * len(times)
        (m,) = compute_rescale_metrics(self.LOG, times, values, 60.0)
        text = m.describe()
        assert "scale-out" in text
        assert "resustain" in text
