"""Elasticity scorecard: grid, invariants, byte-identity, resume."""

import json

import pytest

from repro.autoscale.scorecard import (
    ElasticityConfig,
    elasticity_fingerprint,
    run_elasticity,
    single_worker_capacity,
)
from repro.metrology import TrialJournal

SMALL = ElasticityConfig(
    seed=3, engines=("flink",), policies=("threshold",), duration_s=60.0
)


class TestConfig:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ElasticityConfig(engines=())
        with pytest.raises(ValueError):
            ElasticityConfig(policies=("psychic",))
        with pytest.raises(ValueError):
            ElasticityConfig(profiles=("square-wave",))
        with pytest.raises(ValueError):
            ElasticityConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            ElasticityConfig(base_fraction=0.0)
        with pytest.raises(ValueError):
            ElasticityConfig(peak_fraction=0.9)  # never needs to scale
        with pytest.raises(ValueError):
            ElasticityConfig(spike_duration_s=500.0, duration_s=100.0)

    def test_fingerprint_covers_the_whole_config(self):
        a = elasticity_fingerprint(SMALL)
        b = elasticity_fingerprint(
            ElasticityConfig(
                seed=4, engines=("flink",), policies=("threshold",),
                duration_s=60.0,
            )
        )
        assert a != b


class TestCapacity:
    def test_pure_function_of_engine_name(self):
        assert single_worker_capacity("flink") == single_worker_capacity(
            "flink"
        )

    def test_engines_differ(self):
        assert single_worker_capacity("flink") != single_worker_capacity(
            "storm"
        )


class TestSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return run_elasticity(SMALL)

    def test_all_cells_scored(self, report):
        assert set(report.scorecards) == {("flink", "threshold")}
        card = report.scorecards[("flink", "threshold")]
        assert card.trials == len(SMALL.profiles)
        assert card.survived == card.trials

    def test_the_cluster_actually_scaled(self, report):
        card = report.scorecards[("flink", "threshold")]
        assert card.scale_outs >= 1
        assert card.resustained >= 1

    def test_no_invariant_violations(self, report):
        assert report.ok, report.violations

    def test_autoscaling_beats_fixed_provisioning(self, report):
        card = report.scorecards[("flink", "threshold")]
        assert 0.0 < card.cost_node_seconds < card.fixed_cost_node_seconds

    def test_json_clean(self, report):
        payload = report.to_dict()
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == payload

    def test_byte_identical_for_equal_seeds(self, report):
        assert run_elasticity(SMALL).to_json() == report.to_json()

    def test_parallel_sweep_is_byte_identical(self, report):
        assert (
            run_elasticity(SMALL, workers=2).to_json() == report.to_json()
        )

    def test_render_mentions_status(self, report):
        text = report.render()
        assert "PASS" in text
        assert "flink/threshold" in text

    def test_journaled_sweep_resumes_byte_identical(self, report, tmp_path):
        path = tmp_path / "elasticity.journal"
        fingerprint = elasticity_fingerprint(SMALL)
        first = run_elasticity(
            SMALL, journal=TrialJournal(path, fingerprint=fingerprint)
        )
        assert first.to_json() == report.to_json()
        replayed = []
        resumed = run_elasticity(
            SMALL,
            journal=TrialJournal(path, fingerprint=fingerprint, resume=True),
            progress=lambda line: replayed.append(line),
        )
        assert resumed.to_json() == report.to_json()
        # Every cell came from the journal, none re-ran.
        assert all("(journal)" in line for line in replayed)
        assert len(replayed) == len(SMALL.profiles)
