"""Engine-level rescale mechanics: styles, safety guards, billing."""

import pytest

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.autoscale.rescale import (
    RESCALE_STYLES,
    STYLE_MICRO_BATCH,
    STYLE_REBALANCE,
    STYLE_REPARTITION,
    STYLE_SAVEPOINT,
    RescaleSemantics,
)
from repro.engines import engine_class
from repro.recovery.reschedule import MODE_STANDBY, ReschedulePolicy
from repro.sim.cluster import paper_cluster
from repro.sim.network import DataPlane, NetworkSpec
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.workloads.queries import WindowedAggregationQuery


def make_engine(name="flink", workers=2, reschedule=None):
    sim = Simulator()
    engine = engine_class(name)(
        sim=sim,
        cluster=paper_cluster(workers),
        query=WindowedAggregationQuery(),
        plane=DataPlane(sim, NetworkSpec()),
        rng=RngRegistry(0).stream("rescale-test"),
        reschedule=reschedule,
    )
    return sim, engine


class TestRescaleSemantics:
    def test_engine_styles(self):
        assert engine_class("spark").rescale.style == STYLE_MICRO_BATCH
        assert engine_class("flink").rescale.style == STYLE_SAVEPOINT
        assert engine_class("storm").rescale.style == STYLE_REBALANCE
        assert engine_class("heron").rescale.style == STYLE_REBALANCE
        assert engine_class("samza").rescale.style == STYLE_REPARTITION

    def test_validation(self):
        with pytest.raises(ValueError):
            RescaleSemantics(style="teleport")
        with pytest.raises(ValueError):
            RescaleSemantics(provision_s=-1.0)
        with pytest.raises(ValueError):
            RescaleSemantics(warmup_s=-1.0)

    def test_hot_spares_skip_cold_boot(self):
        semantics = RescaleSemantics(provision_s=15.0, warmup_s=2.0)
        assert semantics.lead_s(cold=1) == 17.0
        assert semantics.lead_s(cold=0) == 2.0  # warm-up still paid


class TestStylePauses:
    def test_micro_batch_is_free(self):
        _, spark = make_engine("spark")
        assert spark._rescale_style_pause_s(1e9) == 0.0

    def test_savepoint_pays_whole_state_sync(self):
        _, flink = make_engine("flink")
        expected = flink.checkpoint.sync_pause_s(flink.state.used_bytes)
        assert flink._rescale_style_pause_s(1.0) == pytest.approx(expected)

    def test_repartition_pays_moved_share_only(self):
        _, samza = make_engine("samza")
        moved = 5e8
        expected = samza.checkpoint.sync_pause_s(moved)
        assert samza._rescale_style_pause_s(moved) == pytest.approx(expected)

    def test_rebalance_grows_with_topology(self):
        _, small = make_engine("storm", workers=2)
        _, large = make_engine("storm", workers=8)
        assert small._rescale_style_pause_s(0.0) > 0.0
        assert (
            large._rescale_style_pause_s(0.0)
            > small._rescale_style_pause_s(0.0)
        )


class TestScaleOut:
    def test_cold_scale_out_lifecycle(self):
        sim, engine = make_engine("flink", workers=2)
        entry = engine.request_scale_out(2, reason="test", detect_s=1.0)
        assert entry is not None
        assert entry["kind"] == "scale-out"
        assert entry["from_workers"] == 2.0
        assert entry["to_workers"] == 4.0
        assert entry["spares_used"] == 0.0
        assert entry["provision_s"] == engine.rescale.lead_s(cold=2)
        # Provisioning nodes bill immediately; capacity arrives later.
        assert engine.billed_nodes == 4
        assert engine.active_workers == 2
        assert engine.target_workers == 4
        sim.run_until(60.0)
        assert engine.active_workers == 4
        assert engine.cluster.workers == 4
        assert "online_at_s" in entry
        assert entry["online_at_s"] >= entry["cutover_at_s"]

    def test_one_rescale_in_flight(self):
        sim, engine = make_engine("flink")
        assert engine.request_scale_out(1) is not None
        assert engine.request_scale_out(1) is None
        sim.run_until(60.0)
        assert engine.request_scale_out(1) is not None

    def test_spares_first(self):
        sim, engine = make_engine(
            "flink",
            workers=2,
            reschedule=ReschedulePolicy(standby_nodes=2, mode=MODE_STANDBY),
        )
        entry = engine.request_scale_out(3)
        assert entry["spares_used"] == 2.0
        assert engine.standbys_available == 0
        # One cold node: the full provision lead still applies.
        assert entry["provision_s"] == engine.rescale.lead_s(cold=1)

    def test_all_spares_warm_lead(self):
        sim, engine = make_engine(
            "flink",
            workers=2,
            reschedule=ReschedulePolicy(standby_nodes=2, mode=MODE_STANDBY),
        )
        entry = engine.request_scale_out(2)
        assert entry["provision_s"] == engine.rescale.warmup_s

    def test_refused_when_failed(self):
        sim, engine = make_engine("flink")
        engine.inject_node_failure(engine.active_workers)  # fatal: no standbys
        assert engine.failed
        assert engine.request_scale_out(1) is None

    def test_exactly_once_exposes_nothing(self):
        sim, engine = make_engine("flink")
        entry = engine.request_scale_out(1)
        sim.run_until(60.0)
        assert entry["lost_weight"] == 0.0
        assert entry["duplicated_weight"] == 0.0


class TestScaleIn:
    def test_last_worker_never_drained(self):
        sim, engine = make_engine("flink", workers=1)
        assert engine.request_scale_in(1) is None
        assert engine.active_workers == 1

    def test_drain_keeps_one_worker(self):
        # Asking for more than available clamps to active - 1.
        sim, engine = make_engine("flink", workers=3)
        entry = engine.request_scale_in(5)
        assert entry is not None
        assert entry["delta"] == -2.0
        sim.run_until(60.0)
        assert engine.active_workers == 1
        assert engine.cluster.workers == 1

    def test_spares_returned_first_without_pause(self):
        sim, engine = make_engine(
            "flink",
            workers=2,
            reschedule=ReschedulePolicy(standby_nodes=2, mode=MODE_STANDBY),
        )
        billed_before = engine.billed_nodes
        entry = engine.request_scale_in(2)
        # Pure spare return: instant, no migration, no pause, actives
        # untouched.
        assert entry["spares_returned"] == 2.0
        assert entry["pause_s"] == 0.0
        assert entry["migrated_bytes"] == 0.0
        assert entry["online_at_s"] == entry["decided_at_s"]
        assert engine.active_workers == 2
        assert engine.billed_nodes == billed_before - 2

    def test_scale_in_blocked_mid_migration(self):
        sim, engine = make_engine("flink", workers=2)
        entry = engine.request_scale_out(1)
        sim.run_until(entry["provision_s"] + 0.001)  # just past cutover
        assert "cutover_at_s" in entry
        if sim.now < engine._migration_until:
            assert engine.request_scale_in(1) is None
        sim.run_until(120.0)
        assert engine.request_scale_in(1) is not None

    def test_victims_bill_until_departure(self):
        sim, engine = make_engine("samza", workers=4)
        # Seed some keyed state so the drain takes real time.
        engine.state.charge(5e8)
        entry = engine.request_scale_in(2)
        assert entry is not None
        assert entry["pause_s"] > 0.0
        assert engine.billed_nodes == 4  # still draining
        sim.run_until(entry["decided_at_s"] + entry["pause_s"] + 1.0)
        assert engine.active_workers == 2
        assert engine.billed_nodes == 2

    def test_refused_below_spares_and_victims(self):
        sim, engine = make_engine("flink", workers=1)
        assert engine.request_scale_in(3) is None


class TestStyleRegistry:
    def test_all_registered_styles_have_a_branch(self):
        # Guards against adding a style without pricing it.
        _, engine = make_engine("flink")
        for style in RESCALE_STYLES:
            object.__setattr__(engine.rescale, "style", style)
            assert engine._rescale_style_pause_s(1e6) >= 0.0
