"""Unit tests for scaling policies: bands, cooldown, anti-flapping."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.autoscale.policy import (
    POLICY_NAMES,
    AutoscaleSpec,
    ScalingSignals,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)

NAN = float("nan")


def signals(
    now,
    *,
    delay=NAN,
    lag=NAN,
    stall=NAN,
    offered=NAN,
    capacity=NAN,
    workers=2,
):
    return ScalingSignals(
        now=now,
        queue_delay_s=delay,
        watermark_lag_s=lag,
        backpressure_stall_s=stall,
        offered_rate=offered,
        capacity_events_per_s=capacity,
        active_workers=workers,
    )


class TestAutoscaleSpec:
    def test_defaults_build_both_policies(self):
        for name in POLICY_NAMES:
            policy = AutoscaleSpec(policy=name).build_policy()
            assert policy.cooldown_s == 20.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            AutoscaleSpec(policy="psychic")
        with pytest.raises(ValueError):
            AutoscaleSpec(min_workers=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(min_workers=4, max_workers=3)
        with pytest.raises(ValueError):
            AutoscaleSpec(cooldown_s=-1.0)
        with pytest.raises(ValueError):
            AutoscaleSpec(high_delay_s=0.0)
        with pytest.raises(ValueError):
            AutoscaleSpec(low_utilization=1.5)
        with pytest.raises(ValueError):
            AutoscaleSpec(target_utilization=0.0)
        with pytest.raises(ValueError):
            AutoscaleSpec(settle_samples=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(step_workers=0)

    def test_spec_is_picklable_key_material(self):
        # Scorecard fingerprints repr() the config; specs must be
        # hashable value objects.
        assert AutoscaleSpec() == AutoscaleSpec()
        assert hash(AutoscaleSpec()) == hash(AutoscaleSpec())


class TestScalingSignals:
    def test_utilization(self):
        s = signals(0.0, offered=50.0, capacity=100.0)
        assert s.utilization == pytest.approx(0.5)

    def test_utilization_nan_safe(self):
        assert math.isnan(signals(0.0).utilization)
        assert math.isnan(signals(0.0, offered=1.0, capacity=0.0).utilization)


class TestThresholdPolicy:
    def make(self, **kwargs):
        defaults = dict(
            high_delay_s=4.0,
            low_utilization=0.4,
            cooldown_s=10.0,
            settle_samples=2,
            step_workers=2,
        )
        defaults.update(kwargs)
        return ThresholdPolicy(**defaults)

    def test_scale_out_on_first_hot_sample(self):
        policy = self.make()
        decision = policy.decide(signals(1.0, delay=5.0))
        assert decision is not None
        assert decision.delta == 2
        assert decision.reason == "lag"
        assert decision.detect_s == 0.0

    def test_watermark_lag_also_triggers(self):
        decision = self.make().decide(signals(1.0, lag=9.0))
        assert decision is not None and decision.delta > 0

    def test_cooldown_blocks_second_decision(self):
        policy = self.make(cooldown_s=10.0)
        assert policy.decide(signals(1.0, delay=5.0)) is not None
        assert policy.decide(signals(2.0, delay=50.0)) is None
        assert policy.decide(signals(10.9, delay=50.0)) is None
        late = policy.decide(signals(11.1, delay=50.0))
        assert late is not None
        # The wait inside the cooldown is charged to detection.
        assert late.detect_s == pytest.approx(11.1 - 2.0)

    def test_stall_duty_cycle_triggers(self):
        policy = self.make()
        # Cumulative stall seconds: 0.9 s stalled out of a 1 s interval.
        assert policy.decide(signals(1.0, stall=0.0)) is None
        decision = policy.decide(signals(2.0, stall=0.9))
        assert decision is not None
        assert decision.reason == "stall"

    def test_scale_in_requires_settle_streak(self):
        policy = self.make(settle_samples=3, cooldown_s=0.0)
        idle = dict(delay=0.1, lag=0.1, offered=10.0, capacity=100.0)
        assert policy.decide(signals(1.0, **idle)) is None
        assert policy.decide(signals(2.0, **idle)) is None
        decision = policy.decide(signals(3.0, **idle))
        assert decision is not None
        assert decision.delta == -2
        assert decision.reason == "idle"
        assert decision.detect_s == pytest.approx(2.0)

    def test_scale_in_blocked_outside_calm_band(self):
        # Low utilization but queue delay above the calm band (half the
        # high threshold): the backlog drain must not be starved.
        policy = self.make(settle_samples=1, cooldown_s=0.0)
        busy = dict(delay=3.0, offered=10.0, capacity=100.0)
        assert policy.decide(signals(1.0, **busy)) is None
        assert policy.decide(signals(2.0, **busy)) is None

    def test_no_evidence_no_decision(self):
        policy = self.make(cooldown_s=0.0, settle_samples=1)
        for t in range(1, 20):
            assert policy.decide(signals(float(t))) is None


class TestTargetUtilizationPolicy:
    def make(self, **kwargs):
        defaults = dict(
            target=0.75, cooldown_s=10.0, settle_samples=2, max_step=2,
            calm_delay_s=2.0,
        )
        defaults.update(kwargs)
        return TargetUtilizationPolicy(**defaults)

    def test_above_target_scales_out(self):
        policy = self.make()
        hot = dict(offered=150.0, capacity=100.0, workers=2)
        decision = policy.decide(signals(1.0, **hot))
        assert decision is not None
        assert decision.delta > 0
        assert decision.reason == "above-target"
        # Second breach lands inside the cooldown.
        assert policy.decide(signals(2.0, **hot)) is None

    def test_step_clamped(self):
        policy = self.make(max_step=2)
        # Error of 10x target on 8 workers asks for far more than 2.
        hot = dict(offered=1000.0, capacity=100.0, workers=8)
        decision = policy.decide(signals(1.0, **hot))
        assert decision is not None
        assert decision.delta == 2

    def test_below_target_debounced_then_scales_in(self):
        policy = self.make(cooldown_s=0.0, settle_samples=3)
        cold = dict(offered=10.0, capacity=100.0, workers=4, delay=0.0, lag=0.0)
        assert policy.decide(signals(1.0, **cold)) is None
        assert policy.decide(signals(2.0, **cold)) is None
        decision = policy.decide(signals(3.0, **cold))
        assert decision is not None
        assert decision.delta < 0
        assert decision.reason == "below-target"

    def test_scale_in_blocked_while_backlogged(self):
        # The flash-crowd aftermath: offered rate collapsed, queues
        # still deep.  Utilization alone says shrink; the calm gate
        # must veto it.
        policy = self.make(cooldown_s=0.0, settle_samples=1)
        draining = dict(offered=10.0, capacity=100.0, workers=4, delay=9.0)
        for t in range(1, 10):
            assert policy.decide(signals(float(t), **draining)) is None
        # Backlog clears: now the shrink goes through.
        calm = dict(offered=10.0, capacity=100.0, workers=4, delay=0.1)
        assert policy.decide(signals(10.0, **calm)) is not None

    def test_deadband_holds(self):
        policy = self.make(cooldown_s=0.0, settle_samples=1)
        near = dict(offered=74.0, capacity=100.0, workers=2, delay=0.0)
        for t in range(1, 10):
            assert policy.decide(signals(float(t), **near)) is None

    def test_unknown_utilization_holds(self):
        policy = self.make(cooldown_s=0.0)
        assert policy.decide(signals(1.0, delay=50.0)) is None


def _signal_strategy():
    maybe_nan = st.one_of(st.just(NAN), st.floats(0.0, 50.0))
    return st.tuples(
        maybe_nan,                     # queue delay
        maybe_nan,                     # watermark lag
        st.floats(0.0, 100.0),         # cumulative stall
        st.floats(0.0, 1e6),           # offered
        st.floats(1.0, 1e6),           # capacity
        st.integers(1, 16),            # workers
    )


class TestNoFlapping:
    """The contract both policies advertise: consecutive decisions are
    separated by >= cooldown_s of simulated time, whatever the signals
    do -- in particular a hostile series cannot make the policy thrash
    out/in/out within one cooldown window."""

    @given(
        series=st.lists(_signal_strategy(), min_size=4, max_size=40),
        cooldown=st.floats(1.0, 30.0),
        dt=st.floats(0.25, 5.0),
        threshold=st.booleans(),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_decisions_respect_cooldown(self, series, cooldown, dt, threshold):
        if threshold:
            policy = ThresholdPolicy(cooldown_s=cooldown, settle_samples=1)
        else:
            policy = TargetUtilizationPolicy(
                cooldown_s=cooldown, settle_samples=1
            )
        decided_at = []
        for i, (delay, lag, stall, offered, capacity, workers) in enumerate(
            series
        ):
            now = (i + 1) * dt
            decision = policy.decide(
                signals(
                    now,
                    delay=delay,
                    lag=lag,
                    stall=stall,
                    offered=offered,
                    capacity=capacity,
                    workers=workers,
                )
            )
            if decision is not None:
                assert decision.delta != 0
                decided_at.append(now)
        for earlier, later in zip(decided_at, decided_at[1:]):
            assert later - earlier >= cooldown - 1e-9

    @given(
        cooldown=st.floats(0.0, 5.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_threshold_oscillating_signal_cannot_reverse_quickly(
        self, cooldown, seed
    ):
        # Alternate overload/idle every sample: opposite-signed
        # decisions must still be >= cooldown apart.
        policy = ThresholdPolicy(cooldown_s=cooldown, settle_samples=1)
        last = None
        for i in range(40):
            now = float(i)
            if i % 2 == (seed % 2):
                s = signals(now, delay=50.0)
            else:
                s = signals(now, delay=0.0, offered=1.0, capacity=100.0)
            decision = policy.decide(s)
            if decision is None:
                continue
            if last is not None and decision.delta * last[1] < 0:
                assert now - last[0] >= cooldown - 1e-9
            last = (now, decision.delta)
