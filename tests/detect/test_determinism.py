"""Determinism properties for the detection plane.

The plane rides the simulated clock and a dedicated seeded RNG stream,
so its verdict stream is part of the experiment's deterministic output:
the same spec must yield byte-identical detection metrics whether the
soak runs serially, fanned over worker processes, or resumed from a
journal -- and whether the engine hot path runs the columnar kernels or
the scalar reference path (``REPRO_ENGINE_SCALAR=1``).
"""

import dataclasses
import json
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.detect.plane import DETECTOR_KINDS, detector_spec
from repro.faults.schedule import (
    AsymmetricPartition,
    DegradingNode,
    FaultSchedule,
    FlappingNode,
)
from repro.metrology import TrialJournal
from repro.recovery.chaos import ChaosConfig, chaos_fingerprint, run_chaos
from repro.recovery.reschedule import MODE_STANDBY, ReschedulePolicy
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

FAULTS = {
    "flap": FlappingNode(
        at_s=12.0, duration_s=16.0, node=1, period_s=6.0, duty=0.5, seed=7
    ),
    "degrade": DegradingNode(
        at_s=12.0, duration_s=14.0, node=1, floor_factor=0.25
    ),
    "asympart": AsymmetricPartition(
        at_s=15.0, duration_s=8.0, node=1, direction="heartbeat"
    ),
}


def _detection_dict(detector, fault_name, seed):
    spec = ExperimentSpec(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=20_000.0,
        duration_s=40.0,
        seed=seed,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        faults=FaultSchedule((FAULTS[fault_name],)),
        standby=1,
        reschedule=ReschedulePolicy(standby_nodes=1, mode=MODE_STANDBY),
        detector=detector_spec(detector),
    )
    return run_experiment(spec).detection.to_dict()


class TestScalarColumnarIdentity:
    @given(
        detector=st.sampled_from(DETECTOR_KINDS),
        fault=st.sampled_from(sorted(FAULTS)),
    )
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_detection_identical_under_scalar_engine(self, detector, fault):
        # The columnar tick loop is bitwise-identical to the scalar
        # path (PR 8); the heartbeat plane hangs off the same simulated
        # clock, so every verdict -- time, node, classification -- must
        # survive the kernel swap unchanged.
        columnar = _detection_dict(detector, fault, seed=3)
        previous = os.environ.get("REPRO_ENGINE_SCALAR")
        os.environ["REPRO_ENGINE_SCALAR"] = "1"
        try:
            scalar = _detection_dict(detector, fault, seed=3)
        finally:
            if previous is None:
                del os.environ["REPRO_ENGINE_SCALAR"]
            else:
                os.environ["REPRO_ENGINE_SCALAR"] = previous
        assert scalar == columnar


SOAK = ChaosConfig(
    seed=11,
    rounds=1,
    engines=("flink",),
    duration_s=30.0,
    rate=10_000.0,
    detector="phi",
    gray_faults=True,
)


class TestSoakIdentity:
    @given(detector=st.sampled_from(DETECTOR_KINDS))
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_serial_parallel_resumed_byte_identical(
        self, detector, tmp_path_factory
    ):
        # Three executions of one soak -- serial, fanned over worker
        # processes, and replayed from a journal -- must agree on every
        # byte of both the scorecard JSON *and* the per-trial digests
        # (which embed the full verdict stream, not just the scorecard
        # roll-up).
        config = dataclasses.replace(SOAK, detector=detector)
        tmp = tmp_path_factory.mktemp(f"soak-{detector}")
        fingerprint = chaos_fingerprint(config)

        serial_journal = TrialJournal(
            tmp / "serial.json", fingerprint=fingerprint
        )
        serial = run_chaos(config, journal=serial_journal)

        parallel_journal = TrialJournal(
            tmp / "parallel.json", fingerprint=fingerprint
        )
        parallel = run_chaos(config, journal=parallel_journal, workers=2)

        resumed_journal = TrialJournal(
            tmp / "serial.json", fingerprint=fingerprint, resume=True
        )
        resumed = run_chaos(config, journal=resumed_journal)

        assert parallel.to_json() == serial.to_json()
        assert resumed.to_json() == serial.to_json()
        assert resumed_journal.hits == 3  # every cell replayed, none live

        serial_entries = json.loads(
            (tmp / "serial.json").read_text()
        )["entries"]
        parallel_entries = json.loads(
            (tmp / "parallel.json").read_text()
        )["entries"]
        assert parallel_entries == serial_entries
        assert any(
            digest.get("detection") is not None
            for digest in serial_entries.values()
        )
