"""Detection-plane scenario tests: the behaviour matrix the gray fault
family was built to expose, pinned end to end through run_experiment.

Each test runs a real trial; the scenarios are the canonical ones from
the module contract in :mod:`repro.detect.plane`:

- a flapping node is detected and migrated away (true positive);
- a heartbeat-direction asymmetric partition baits single-observer
  detectors into a *false* positive that costs a real migration pause,
  while the quorum detector stays unsplit;
- a data-direction asymmetric partition is a guaranteed false negative
  (real outage, healthy heartbeats);
- a calm trial yields no suspicion from any detector;
- with no detector configured, the trial is byte-identical to a build
  that has never heard of the detection plane.
"""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.detect.plane import DETECTOR_KINDS, DetectorSpec, detector_spec
from repro.faults.schedule import (
    AsymmetricPartition,
    DegradingNode,
    FaultSchedule,
    FlappingNode,
    NodeCrash,
)
from repro.recovery.reschedule import MODE_STANDBY, ReschedulePolicy
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery


def _trial(detector, faults=None, **overrides):
    kwargs = dict(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=20_000.0,
        duration_s=40.0,
        seed=0,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        faults=FaultSchedule(tuple(faults)) if faults else None,
        standby=1,
        reschedule=ReschedulePolicy(standby_nodes=1, mode=MODE_STANDBY),
        detector=(
            detector if isinstance(detector, (DetectorSpec, type(None)))
            else detector_spec(detector)
        ),
    )
    kwargs.update(overrides)
    return run_experiment(ExperimentSpec(**kwargs))


FLAP = FlappingNode(
    at_s=12.0, duration_s=16.0, node=1, period_s=6.0, duty=0.5, seed=7
)


class TestSpec:
    def test_detector_spec_shim(self):
        assert detector_spec(None) is None
        for kind in DETECTOR_KINDS:
            assert detector_spec(kind).kind == kind
        with pytest.raises(ValueError):
            detector_spec("bogus")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DetectorSpec(kind="bogus")
        with pytest.raises(ValueError):
            DetectorSpec(heartbeat_interval_s=0.0)
        with pytest.raises(ValueError):
            DetectorSpec(observers=3, quorum_k=4)


class TestFlapScenario:
    def test_flap_is_detected_and_migrated(self):
        result = _trial("phi", [FLAP])
        det = result.detection
        assert not result.failed
        assert det.episodes == 1
        assert det.true_positives >= 1
        assert det.false_positives == 0
        assert det.false_negatives == 0
        assert det.detection_latencies_s
        assert det.actions >= 1
        # A true-positive migration is *not* spurious: the node-second
        # bill for wrong verdicts stays zero.
        assert det.spurious_migration_node_s == 0.0
        assert result.diagnostics["detect.actions"] >= 1

    def test_phi_beats_timeout_on_gray_faults(self):
        # The headline claim (gated for real in bench_detection.py):
        # at zero false positives, phi convicts earlier than the fixed
        # timeout on a flapping node, and still convicts a fail-slow
        # ramp shallow enough that the timeout never fires at all.
        flap_timeout = _trial("timeout", [FLAP]).detection
        flap_phi = _trial("phi", [FLAP]).detection
        assert flap_timeout.false_positives == flap_phi.false_positives == 0
        assert (
            flap_phi.detection_latency_mean_s
            < flap_timeout.detection_latency_mean_s
        )
        ramp = DegradingNode(
            at_s=12.0, duration_s=14.0, node=1, floor_factor=0.3
        )
        ramp_timeout = _trial("timeout", [ramp]).detection
        ramp_phi = _trial("phi", [ramp]).detection
        assert ramp_timeout.false_negatives == 1
        assert ramp_phi.true_positives == 1
        assert ramp_phi.false_negatives == 0

    def test_cascade_depth_is_bounded(self):
        for kind in DETECTOR_KINDS:
            det = _trial(kind, [FLAP]).detection
            assert det.cascade_depth_max <= 2  # cluster size


class TestAsymmetricPartition:
    HB = AsymmetricPartition(
        at_s=15.0, duration_s=8.0, node=1, direction="heartbeat"
    )
    DATA = AsymmetricPartition(
        at_s=15.0, duration_s=8.0, node=1, direction="data"
    )

    def test_heartbeat_split_baits_single_observer_detectors(self):
        det = _trial("timeout", [self.HB]).detection
        assert det.false_positives >= 1
        # The false conviction costs a real migration pause, billed in
        # node-seconds -- spurious detection is not free.
        assert det.spurious_migrations >= 1
        assert det.spurious_migration_node_s > 0.0

    def test_quorum_stays_unsplit(self):
        # Only observer 0 is blinded (observers_affected=1 < k=2), so
        # the quorum never convicts the healthy node.
        det = _trial("quorum", [self.HB]).detection
        assert det.false_positives == 0
        assert det.actions == 0

    def test_data_direction_is_a_guaranteed_false_negative(self):
        det = _trial("phi", [self.DATA]).detection
        assert det.episodes == 1
        assert det.false_negatives == 1
        assert det.true_positives == 0
        assert det.false_positives == 0


class TestCalm:
    @pytest.mark.parametrize("kind", DETECTOR_KINDS)
    def test_no_false_positives_under_calm(self, kind):
        det = _trial(kind).detection
        assert det.calm
        assert det.suspicions == 0
        assert det.false_positives == 0
        assert det.actions == 0
        assert not det.metastable


class TestByteIdentity:
    def test_no_detector_leaves_the_trial_untouched(self):
        # spec.detector=None must not even construct the plane: the
        # result carries no detection record and no detect diagnostics.
        result = _trial(None, [FLAP])
        assert result.detection is None
        assert not any(k.startswith("detect.") for k in result.diagnostics)

    def test_timeout_detector_is_inert_on_legacy_faults(self):
        # The acceptance bar: on a fail-stop schedule the default
        # TimeoutDetector observes (and records verdicts) but never
        # *acts* -- crash victims are already dead -- so every
        # pre-existing measurement is bit-for-bit unchanged.
        faults = [NodeCrash(at_s=20.0, nodes=1)]
        plain = _trial(None, faults)
        timed = _trial("timeout", faults)
        assert timed.detection.actions == 0
        assert timed.detection.spurious_migration_node_s == 0.0

        def measured(diag):
            # Drop the harness' wall-clock self-instrumentation (it
            # differs between any two runs) and the detect.* keys the
            # plane itself adds; everything *simulated* must match.
            return {
                k: v
                for k, v in diag.items()
                if not k.startswith(("detect.", "collector."))
                and k != "driver.summary_s"
            }

        assert measured(timed.diagnostics) == measured(plain.diagnostics)
        assert timed.event_latency.row() == plain.event_latency.row()
        assert (
            timed.processing_latency.row() == plain.processing_latency.row()
        )
        assert [m.to_dict() for m in timed.recovery or []] == [
            m.to_dict() for m in plain.recovery or []
        ]
