"""Unit tests for the three failure-detector contracts."""

import pytest

from repro.detect import (
    PhiAccrualDetector,
    QuorumDetector,
    TimeoutDetector,
)


class TestTimeoutDetector:
    def test_boundary_is_inclusive(self):
        # A silence of *exactly* timeout_s convicts -- the same boundary
        # plan_straggler uses, so the two layers agree on what
        # "detected" means.
        det = TimeoutDetector(timeout_s=2.0)
        det.observe(0, 0, 10.0)
        assert not det.suspect(0, 11.999)
        assert det.suspect(0, 12.0)
        assert det.suspect(0, 12.001)

    def test_never_observed_is_never_suspected(self):
        # A node the plane has not started tracking yet must not be
        # convicted for having no history.
        det = TimeoutDetector(timeout_s=2.0)
        assert not det.suspect(5, 100.0)

    def test_fresh_heartbeat_clears(self):
        det = TimeoutDetector(timeout_s=2.0)
        det.observe(0, 0, 10.0)
        assert det.suspect(0, 12.5)
        det.observe(0, 0, 12.4)
        assert not det.suspect(0, 12.5)

    def test_single_observer_only(self):
        # The fixed-timeout contract is one control-plane observer;
        # other observers' deliveries must not refresh it.
        det = TimeoutDetector(timeout_s=2.0)
        det.observe(0, 0, 10.0)
        det.observe(0, 1, 13.0)
        assert det.suspect(0, 13.0)

    def test_stale_arrival_does_not_rewind(self):
        det = TimeoutDetector(timeout_s=2.0)
        det.observe(0, 0, 10.0)
        det.observe(0, 0, 9.0)  # reordered delivery
        assert det.suspect(0, 12.0)

    def test_forget_drops_state(self):
        det = TimeoutDetector(timeout_s=2.0)
        det.observe(0, 0, 10.0)
        det.forget(0)
        assert not det.suspect(0, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeoutDetector(timeout_s=0.0)


class TestPhiAccrualDetector:
    def _warm(self, det, node=0, beats=10, interval=0.5, start=0.0):
        for i in range(beats):
            det.observe(node, 0, start + i * interval)
        return start + (beats - 1) * interval

    def test_cold_detector_stays_silent(self):
        det = PhiAccrualDetector(min_history=3)
        det.observe(0, 0, 0.0)
        det.observe(0, 0, 0.5)
        # Two arrivals = one interval < min_history: no verdict however
        # long the silence.
        assert not det.suspect(0, 1_000.0)

    def test_regular_stream_not_suspected(self):
        det = PhiAccrualDetector()
        last = self._warm(det)
        assert not det.suspect(0, last + 0.5)

    def test_long_silence_convicts(self):
        det = PhiAccrualDetector()
        last = self._warm(det)
        assert det.suspect(0, last + 5.0)

    def test_phi_grows_with_silence(self):
        det = PhiAccrualDetector()
        last = self._warm(det)
        assert det.phi(0, last + 0.6) < det.phi(0, last + 1.2) < det.phi(
            0, last + 3.0
        )

    def test_max_std_caps_variance_adaptation(self):
        # A degrading stream stretches its intervals; without the
        # max_std_s cap the model's variance inflates with them and the
        # effective threshold converges to a fixed timeout's (the
        # documented fail-slow blindness).  With the cap, the stretched
        # tail still convicts.
        capped = PhiAccrualDetector(max_std_s=0.1)
        t = 0.0
        interval = 0.5
        for _ in range(20):
            capped.observe(0, 0, t)
            t += interval
            interval *= 1.15  # fail-slow ramp
        assert capped.suspect(0, t + 3.0 * interval)

    def test_forget_drops_history(self):
        det = PhiAccrualDetector()
        last = self._warm(det)
        det.forget(0)
        assert det.phi(0, last + 10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PhiAccrualDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PhiAccrualDetector(window=1)
        with pytest.raises(ValueError):
            PhiAccrualDetector(min_std_s=0.0)
        with pytest.raises(ValueError):
            PhiAccrualDetector(min_std_s=0.2, max_std_s=0.1)
        with pytest.raises(ValueError):
            PhiAccrualDetector(min_history=1)


class TestQuorumDetector:
    def test_k_of_n_agreement(self):
        det = QuorumDetector(timeout_s=2.0, observers=3, k=2)
        for obs in range(3):
            det.observe(0, obs, 10.0)
        assert det.suspect(0, 12.5)

    def test_single_blinded_observer_cannot_split(self):
        # The asymmetric-partition scenario: observer 0 stops seeing
        # the node but observers 1 and 2 keep hearing it -- one stale
        # vote is below k, so no conviction.
        det = QuorumDetector(timeout_s=2.0, observers=3, k=2)
        for obs in range(3):
            det.observe(0, obs, 10.0)
        det.observe(0, 1, 12.4)
        det.observe(0, 2, 12.4)
        assert not det.suspect(0, 12.5)

    def test_k_blinded_observers_do_split(self):
        det = QuorumDetector(timeout_s=2.0, observers=3, k=2)
        for obs in range(3):
            det.observe(0, obs, 10.0)
        det.observe(0, 2, 12.4)
        assert det.suspect(0, 12.5)

    def test_out_of_range_observers_ignored(self):
        det = QuorumDetector(timeout_s=2.0, observers=2, k=2)
        det.observe(0, 0, 10.0)
        det.observe(0, 1, 10.0)
        det.observe(0, 7, 12.4)  # not a registered observer
        assert det.suspect(0, 12.5)

    def test_forget_drops_all_observers(self):
        det = QuorumDetector(timeout_s=2.0, observers=3, k=1)
        for obs in range(3):
            det.observe(0, obs, 10.0)
        det.forget(0)
        assert not det.suspect(0, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuorumDetector(timeout_s=0.0)
        with pytest.raises(ValueError):
            QuorumDetector(timeout_s=2.0, observers=0)
        with pytest.raises(ValueError):
            QuorumDetector(timeout_s=2.0, observers=3, k=4)
        with pytest.raises(ValueError):
            QuorumDetector(timeout_s=2.0, observers=3, k=0)
