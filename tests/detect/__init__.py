"""Detection subsystem tests."""
