"""Detection metrology: metrics record and the metastability band."""

import json
import math

from repro.detect.metrics import (
    DetectionMetrics,
    VerdictEvent,
    latency_band_reentered,
)


class TestDetectionMetrics:
    def test_latency_stats_empty(self):
        m = DetectionMetrics(
            detector="timeout", heartbeat_interval_s=0.5, calm=True
        )
        assert math.isnan(m.detection_latency_mean_s)
        assert math.isnan(m.detection_latency_max_s)

    def test_latency_stats(self):
        m = DetectionMetrics(
            detector="phi",
            heartbeat_interval_s=0.5,
            calm=False,
            detection_latencies_s=(1.0, 3.0),
        )
        assert m.detection_latency_mean_s == 2.0
        assert m.detection_latency_max_s == 3.0

    def test_to_dict_is_json_clean(self):
        m = DetectionMetrics(
            detector="quorum",
            heartbeat_interval_s=0.5,
            calm=False,
            episodes=1,
            true_positives=1,
            detection_latencies_s=(2.5,),
            verdicts=(VerdictEvent(12.5, 1, True, True),),
        )
        payload = m.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["detection_latency_mean_s"] == 2.5
        assert payload["verdicts"] == [[12.5, 1, True, True]]

    def test_to_dict_nan_becomes_none(self):
        m = DetectionMetrics(
            detector="timeout", heartbeat_interval_s=0.5, calm=True
        )
        payload = m.to_dict()
        assert payload["detection_latency_mean_s"] is None
        assert payload["detection_latency_max_s"] is None


class TestLatencyBandReentered:
    def test_no_baseline_is_unjudgeable(self):
        assert (
            latency_band_reentered(
                [50.0], [1.0], baseline_end_s=10.0, clear_s=40.0
            )
            is None
        )

    def test_no_post_clear_data_is_unjudgeable(self):
        assert (
            latency_band_reentered(
                [5.0, 8.0], [1.0, 1.0], baseline_end_s=10.0, clear_s=40.0
            )
            is None
        )

    def test_settled_latency_reenters(self):
        times = [5.0, 8.0, 41.0, 42.0, 43.0]
        lat = [1.0, 1.0, 1.1, 1.0, 1.0]
        assert (
            latency_band_reentered(
                times, lat, baseline_end_s=10.0, clear_s=40.0
            )
            is True
        )

    def test_diverged_latency_does_not(self):
        times = [5.0, 8.0, 41.0, 42.0, 43.0, 44.0]
        lat = [1.0, 1.0, 8.0, 9.0, 10.0, 11.0]
        assert (
            latency_band_reentered(
                times, lat, baseline_end_s=10.0, clear_s=40.0
            )
            is False
        )

    def test_single_good_bin_is_not_settled(self):
        # Re-entry must be *sustained* (settle_bins consecutive bins);
        # one lucky bin inside the band does not count.
        times = [5.0, 8.0, 41.0, 42.0, 43.0]
        lat = [1.0, 1.0, 1.0, 9.0, 10.0]
        assert (
            latency_band_reentered(
                times, lat, baseline_end_s=10.0, clear_s=40.0
            )
            is False
        )
