"""Pareto-front extraction over minimize-everything objective tuples."""

import pytest

from repro.analysis.pareto import pareto_front

NAN = float("nan")


class TestParetoFront:
    def test_empty_input_gives_empty_front(self):
        assert pareto_front([]) == []

    def test_single_point_is_on_the_front(self):
        assert pareto_front([(1.0, 2.0)]) == [0]

    def test_dominated_points_are_excluded(self):
        # (1, 1) beats (2, 2) on both axes; (0, 3) and (3, 0) trade off.
        points = [(1.0, 1.0), (2.0, 2.0), (0.0, 3.0), (3.0, 0.0)]
        assert pareto_front(points) == [0, 2, 3]

    def test_strict_improvement_on_one_axis_is_required(self):
        # Equal on one axis, better on the other still dominates.
        assert pareto_front([(1.0, 1.0), (1.0, 2.0)]) == [0]

    def test_duplicates_are_all_kept(self):
        # Neither twin strictly beats the other.
        assert pareto_front([(1.0, 1.0), (1.0, 1.0)]) == [0, 1]

    def test_result_is_sorted_by_index(self):
        points = [(3.0, 0.0), (0.0, 3.0), (1.0, 1.0)]
        front = pareto_front(points)
        assert front == sorted(front)

    def test_nan_points_never_join_the_front(self):
        assert pareto_front([(NAN, 0.0), (1.0, 1.0)]) == [1]

    def test_nan_points_never_dominate(self):
        # The NaN point would dominate on the finite axis if NaN were
        # treated as small; it must not knock out the measured point.
        assert pareto_front([(NAN, NAN), (5.0, 5.0)]) == [1]

    def test_all_nan_gives_empty_front(self):
        assert pareto_front([(NAN, 1.0), (2.0, NAN)]) == []

    def test_mixed_objective_counts_raise(self):
        with pytest.raises(ValueError):
            pareto_front([(1.0, 2.0), (1.0,)])

    def test_three_objectives(self):
        points = [(1.0, 1.0, 1.0), (2.0, 0.5, 2.0), (2.0, 2.0, 2.0)]
        assert pareto_front(points) == [0, 1]
