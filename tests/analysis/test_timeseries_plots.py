"""Unit tests for time-series helpers and ASCII rendering."""

import pytest

from repro.analysis.ascii_plots import render_panels, render_series, sparkline
from repro.analysis.timeseries import (
    align_series,
    moving_average,
    normalise_time,
    resample,
)
from repro.core.metrics import TimeSeries


class TestResample:
    def test_step_interpolation(self):
        ts = TimeSeries(times=[0.0, 2.0], values=[1.0, 5.0])
        out = resample(ts, 1.0)
        assert out.times.tolist() == [0.0, 1.0, 2.0]
        assert out.values.tolist() == [1.0, 1.0, 5.0]

    def test_empty(self):
        assert len(resample(TimeSeries(), 1.0)) == 0

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            resample(TimeSeries(), 0.0)

    def test_custom_start(self):
        ts = TimeSeries(times=[1.0, 3.0], values=[1.0, 3.0])
        out = resample(ts, 1.0, start=0.0)
        assert out.times[0] == 0.0
        assert out.values[0] == 1.0  # clamped to first sample


class TestAlign:
    def test_shared_grid(self):
        a = TimeSeries(times=[0.0, 4.0], values=[1.0, 2.0])
        b = TimeSeries(times=[2.0, 6.0], values=[3.0, 4.0])
        aligned = align_series({"a": a, "b": b}, step_s=2.0)
        assert aligned["a"].times[0] == 0.0
        assert aligned["b"].times[0] == 0.0

    def test_empty_member_kept_empty(self):
        aligned = align_series(
            {"a": TimeSeries(times=[0.0], values=[1.0]), "b": TimeSeries()},
            step_s=1.0,
        )
        assert len(aligned["b"]) == 0


class TestNormalise:
    def test_starts_at_zero(self):
        ts = TimeSeries(times=[5.0, 7.0], values=[1.0, 2.0])
        out = normalise_time(ts)
        assert out.times.tolist() == [0.0, 2.0]


class TestMovingAverage:
    def test_smoothing(self):
        ts = TimeSeries(times=[0.0, 1.0, 2.0], values=[0.0, 10.0, 0.0])
        out = moving_average(ts, window=3)
        assert out.values[1] == pytest.approx(10.0 / 3)

    def test_window_one_identity(self):
        ts = TimeSeries(times=[0.0, 1.0], values=[1.0, 2.0])
        assert moving_average(ts, 1).values.tolist() == [1.0, 2.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(TimeSeries(), 0)


class TestSparkline:
    def test_length_bounded(self):
        line = sparkline(list(range(500)), width=40)
        assert len(line) <= 40

    def test_empty(self):
        assert sparkline([]) == "(empty)"

    def test_flat_series(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(set(line)) == 1

    def test_monotone_shape(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7], width=8)
        assert line[0] <= line[-1]


class TestRenderSeries:
    def test_contains_bounds_and_samples(self):
        ts = TimeSeries(times=[0.0, 10.0], values=[1.0, 9.0])
        text = render_series(ts, title="latency")
        assert "latency" in text
        assert "9.000" in text
        assert "2 samples" in text

    def test_empty_series(self):
        assert "(empty series)" in render_series(TimeSeries())


class TestRenderPanels:
    def test_one_line_per_panel(self):
        panels = {
            "storm 2w": TimeSeries(times=[0.0, 1.0], values=[1.0, 2.0]),
            "flink 2w": TimeSeries(times=[0.0, 1.0], values=[0.1, 0.2]),
        }
        text = render_panels(panels)
        assert len(text.splitlines()) == 2
        assert "storm 2w" in text
