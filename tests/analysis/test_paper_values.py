"""Sanity checks on the transcribed paper values."""

import pytest

from repro.analysis.paper_values import (
    PAPER_EXP4_FLINK_SKEW_THROUGHPUT,
    PAPER_EXP4_SPARK_SKEW_THROUGHPUT_4NODE,
    PAPER_EXP4_STORM_SKEW_THROUGHPUT,
    PAPER_TABLE1_AGG_THROUGHPUT,
    PAPER_TABLE2_AGG_LATENCY,
    PAPER_TABLE3_JOIN_THROUGHPUT,
    PAPER_TABLE4_JOIN_LATENCY,
)


class TestTableCompleteness:
    def test_table1_has_all_nine_cells(self):
        assert len(PAPER_TABLE1_AGG_THROUGHPUT) == 9
        for engine in ("storm", "spark", "flink"):
            for workers in (2, 4, 8):
                assert (engine, workers) in PAPER_TABLE1_AGG_THROUGHPUT

    def test_table2_has_max_and_90pct_rows(self):
        assert len(PAPER_TABLE2_AGG_LATENCY) == 18
        assert ("flink(90%)", 2) in PAPER_TABLE2_AGG_LATENCY

    def test_table3_covers_spark_and_flink(self):
        assert len(PAPER_TABLE3_JOIN_THROUGHPUT) == 6
        assert ("storm", 2) not in PAPER_TABLE3_JOIN_THROUGHPUT

    def test_table4_has_12_rows(self):
        assert len(PAPER_TABLE4_JOIN_LATENCY) == 12


class TestInternalConsistency:
    def test_latency_tuples_ordered(self):
        for table in (PAPER_TABLE2_AGG_LATENCY, PAPER_TABLE4_JOIN_LATENCY):
            for key, (avg, mn, mx, q90, q95, q99) in table.items():
                assert mn <= avg <= mx, key
                assert q90 <= q95 <= q99, key
                assert q99 <= mx, key

    def test_flink_agg_is_network_bound_flat(self):
        rates = [
            PAPER_TABLE1_AGG_THROUGHPUT[("flink", w)] for w in (2, 4, 8)
        ]
        assert len(set(rates)) == 1

    def test_storm_beats_spark_by_about_8_percent(self):
        for workers in (2, 4, 8):
            storm = PAPER_TABLE1_AGG_THROUGHPUT[("storm", workers)]
            spark = PAPER_TABLE1_AGG_THROUGHPUT[("spark", workers)]
            assert storm / spark == pytest.approx(1.07, abs=0.04)

    def test_90pct_latencies_not_above_max_load(self):
        for (label, workers), stats in PAPER_TABLE2_AGG_LATENCY.items():
            if "(90%)" not in label:
                continue
            full = PAPER_TABLE2_AGG_LATENCY[(label.replace("(90%)", ""), workers)]
            assert stats[0] <= full[0], (label, workers)

    def test_skew_throughputs_below_unskewed(self):
        assert (
            PAPER_EXP4_FLINK_SKEW_THROUGHPUT
            < PAPER_TABLE1_AGG_THROUGHPUT[("flink", 2)]
        )
        assert (
            PAPER_EXP4_STORM_SKEW_THROUGHPUT
            < PAPER_TABLE1_AGG_THROUGHPUT[("storm", 2)]
        )
        assert (
            PAPER_EXP4_SPARK_SKEW_THROUGHPUT_4NODE
            < PAPER_TABLE1_AGG_THROUGHPUT[("spark", 4)]
        )
