"""Unit tests for analysis statistics helpers."""

import pytest

from repro.analysis.stats import (
    DECREASING,
    FLAT,
    INCREASING,
    coefficient_of_variation,
    crossover_time,
    iqr,
    relative_error,
    trend_classification,
    within_factor,
)
from repro.core.metrics import TimeSeries


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert relative_error(1.0, 0.0) == float("inf")
        assert relative_error(0.0, 0.0) == 0.0


class TestWithinFactor:
    def test_inside(self):
        assert within_factor(1.5, 1.0, 2.0)
        assert within_factor(0.6, 1.0, 2.0)

    def test_outside(self):
        assert not within_factor(2.5, 1.0, 2.0)
        assert not within_factor(0.4, 1.0, 2.0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, 0.5)

    def test_nonpositive_values(self):
        assert within_factor(0.0, 0.0, 2.0)
        assert not within_factor(0.0, 1.0, 2.0)


class TestTrendClassification:
    def test_increasing(self):
        ts = TimeSeries(times=[0.0, 1.0, 2.0], values=[0.0, 1.0, 2.0])
        assert trend_classification(ts) == INCREASING

    def test_decreasing(self):
        ts = TimeSeries(times=[0.0, 1.0, 2.0], values=[2.0, 1.0, 0.0])
        assert trend_classification(ts) == DECREASING

    def test_flat(self):
        ts = TimeSeries(times=[0.0, 1.0, 2.0], values=[1.0, 1.0, 1.0])
        assert trend_classification(ts) == FLAT


class TestDispersion:
    def test_cv(self):
        assert coefficient_of_variation([1.0, 1.0]) == 0.0
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_cv_empty_nan(self):
        import math

        assert math.isnan(coefficient_of_variation([]))

    def test_iqr(self):
        values = list(range(101))
        assert iqr(values) == pytest.approx(50.0)


class TestCrossover:
    def test_crossover_found(self):
        a = TimeSeries(times=[0.0, 10.0, 20.0], values=[5.0, 3.0, 1.0])
        b = TimeSeries(times=[0.0, 10.0, 20.0], values=[2.0, 2.0, 2.0])
        found, t = crossover_time(a, b, bin_s=10.0)
        assert found
        assert t == 20.0

    def test_no_crossover(self):
        a = TimeSeries(times=[0.0, 10.0], values=[5.0, 5.0])
        b = TimeSeries(times=[0.0, 10.0], values=[1.0, 1.0])
        found, _ = crossover_time(a, b, bin_s=10.0)
        assert not found
