"""The checkpoint model's derived pauses."""

import pytest

from repro.faults.checkpoint import CheckpointSpec, RecoverySemantics
from repro.faults.guarantees import DeliveryGuarantee
from repro.sim.cluster import paper_cluster


@pytest.fixture
def node():
    return paper_cluster(4).node


class TestValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointSpec(interval_s=0.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CheckpointSpec(detection_timeout_s=-1.0)
        with pytest.raises(ValueError):
            CheckpointSpec(replay_cost_factor=-0.1)

    def test_nic_fraction_bounds(self):
        with pytest.raises(ValueError):
            CheckpointSpec(restore_nic_fraction=0.0)
        with pytest.raises(ValueError):
            CheckpointSpec(restore_nic_fraction=1.5)
        CheckpointSpec(restore_nic_fraction=1.0)  # ok

    def test_guarantee_override_field(self):
        spec = CheckpointSpec(guarantee=DeliveryGuarantee.AT_LEAST_ONCE)
        assert spec.guarantee is DeliveryGuarantee.AT_LEAST_ONCE


class TestSteadyState:
    def test_sync_pause_scales_with_state(self):
        spec = CheckpointSpec(sync_pause_base_s=0.02, sync_pause_s_per_gb=0.1)
        assert spec.sync_pause_s(0.0) == pytest.approx(0.02)
        assert spec.sync_pause_s(2e9) == pytest.approx(0.02 + 0.2)


class TestRecoveryPause:
    def test_restore_time_proportional_to_state_over_nic(self, node):
        spec = CheckpointSpec(restore_nic_fraction=0.8)
        # 3 surviving workers, 1 Gbit NICs at 80%: 300 MB/s aggregate.
        bandwidth = 3 * node.nic_bytes_per_s * 0.8
        assert spec.restore_s(600e6, node, 3) == pytest.approx(
            600e6 / bandwidth
        )

    def test_checkpoint_restore_includes_replay_window(self, node):
        spec = CheckpointSpec()
        short = spec.recovery_pause_s(
            RecoverySemantics.CHECKPOINT_RESTORE,
            state_bytes=0.0, node=node, active_workers=3, workers=4,
            replay_span_s=2.0, lost_fraction=0.25,
        )
        long = spec.recovery_pause_s(
            RecoverySemantics.CHECKPOINT_RESTORE,
            state_bytes=0.0, node=node, active_workers=3, workers=4,
            replay_span_s=10.0, lost_fraction=0.25,
        )
        assert long - short == pytest.approx(8.0 * spec.replay_cost_factor)

    def test_lineage_recompute_scales_with_lost_state_only(self, node):
        spec = CheckpointSpec()
        base = spec.recovery_pause_s(
            RecoverySemantics.LINEAGE_RECOMPUTE,
            state_bytes=8e9, node=node, active_workers=4, workers=4,
            replay_span_s=10.0, lost_fraction=0.0,
        )
        half_lost = spec.recovery_pause_s(
            RecoverySemantics.LINEAGE_RECOMPUTE,
            state_bytes=8e9, node=node, active_workers=4, workers=4,
            replay_span_s=10.0, lost_fraction=0.5,
        )
        # No replay term; only the lost partitions are recomputed.
        assert base == pytest.approx(
            spec.detection_timeout_s + spec.restart_base_s
        )
        assert half_lost > base

    def test_tuple_replay_grows_with_cluster_size(self, node):
        spec = CheckpointSpec()
        kwargs = dict(
            state_bytes=1e9, node=node, replay_span_s=5.0, lost_fraction=0.5
        )
        small = spec.recovery_pause_s(
            RecoverySemantics.TUPLE_REPLAY,
            active_workers=1, workers=2, **kwargs
        )
        large = spec.recovery_pause_s(
            RecoverySemantics.TUPLE_REPLAY,
            active_workers=7, workers=8, **kwargs
        )
        assert large == pytest.approx(
            spec.detection_timeout_s + spec.rebalance_base_s * 2.0
        )
        assert large > small

    def test_tuple_replay_ignores_state_bytes(self, node):
        spec = CheckpointSpec()
        kwargs = dict(
            node=node, active_workers=3, workers=4,
            replay_span_s=5.0, lost_fraction=0.25,
        )
        a = spec.recovery_pause_s(
            RecoverySemantics.TUPLE_REPLAY, state_bytes=0.0, **kwargs
        )
        b = spec.recovery_pause_s(
            RecoverySemantics.TUPLE_REPLAY, state_bytes=100e9, **kwargs
        )
        assert a == b
