"""Fault-event and schedule validation."""

import pytest

from repro.faults.schedule import (
    AsymmetricPartition,
    DegradingNode,
    FaultSchedule,
    FlappingNode,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    SlowNode,
)
from repro.sim.nodefail import NodeFailureSpec


class TestEvents:
    def test_at_s_must_be_positive(self):
        with pytest.raises(ValueError):
            NodeCrash(at_s=0.0)
        with pytest.raises(ValueError):
            SlowNode(at_s=-1.0)

    def test_nodes_must_be_positive(self):
        with pytest.raises(ValueError):
            NodeCrash(at_s=10.0, nodes=0)
        with pytest.raises(ValueError):
            ProcessRestart(at_s=10.0, nodes=-1)

    def test_slow_factor_bounds(self):
        with pytest.raises(ValueError):
            SlowNode(at_s=10.0, factor=0.0)
        with pytest.raises(ValueError):
            SlowNode(at_s=10.0, factor=1.0)
        SlowNode(at_s=10.0, factor=0.5)  # ok

    def test_transient_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            NetworkPartition(at_s=10.0, duration_s=0.0)
        with pytest.raises(ValueError):
            QueueDisconnect(at_s=10.0, duration_s=-5.0)

    def test_end_s(self):
        assert NodeCrash(at_s=10.0).end_s == 10.0
        assert NetworkPartition(at_s=10.0, duration_s=5.0).end_s == 15.0

    def test_describe_carries_kind_and_time(self):
        assert NodeCrash(at_s=60.0).describe() == "crash@60s"
        assert "slow@30s for 20s" == SlowNode(
            at_s=30.0, duration_s=20.0
        ).describe()


class TestSchedule:
    def test_ordered_sorts_by_time(self):
        schedule = FaultSchedule(
            (NodeCrash(at_s=90.0), SlowNode(at_s=30.0), NodeCrash(at_s=60.0))
        )
        assert [e.at_s for e in schedule.ordered()] == [30.0, 60.0, 90.0]
        assert [e.at_s for e in schedule] == [30.0, 60.0, 90.0]

    def test_repeated_events_allowed(self):
        schedule = FaultSchedule(
            (NodeCrash(at_s=30.0), NodeCrash(at_s=60.0), NodeCrash(at_s=90.0))
        )
        assert len(schedule) == 3

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule(("crash@60",))

    def test_validate_against_rejects_late_events(self):
        schedule = FaultSchedule((NodeCrash(at_s=50.0), NodeCrash(at_s=120.0)))
        with pytest.raises(ValueError, match="never fire"):
            schedule.validate_against(100.0)
        with pytest.raises(ValueError, match="crash@120s"):
            schedule.validate_against(120.0)  # at the boundary: too late
        schedule.validate_against(121.0)  # ok

    def test_from_node_failure_shim(self):
        shim = FaultSchedule.from_node_failure(
            NodeFailureSpec(fail_at_s=45.0, nodes=2)
        )
        assert len(shim) == 1
        (event,) = shim.events
        assert isinstance(event, NodeCrash)
        assert event.at_s == 45.0
        assert event.nodes == 2

    def test_describe(self):
        assert FaultSchedule().describe() == "no faults"
        text = FaultSchedule(
            (NodeCrash(at_s=60.0), NetworkPartition(at_s=30.0, duration_s=10.0))
        ).describe()
        assert text == "partition@30s for 10s; crash@60s"


class TestGrayEvents:
    def test_flap_down_segments_are_deterministic_and_bounded(self):
        flap = FlappingNode(at_s=10.0, duration_s=20.0, seed=3)
        segments = flap.down_segments()
        assert segments == flap.down_segments()  # pure function of fields
        assert segments  # a 20s window at period ~6s always flaps
        previous_end = flap.at_s
        for start, end in segments:
            assert flap.at_s <= start < end <= flap.end_s
            assert start >= previous_end  # non-overlapping, ordered
            previous_end = end

    def test_flap_seed_changes_segments(self):
        base = FlappingNode(at_s=10.0, duration_s=20.0, seed=0)
        other = FlappingNode(at_s=10.0, duration_s=20.0, seed=1)
        assert base.down_segments() != other.down_segments()

    def test_degrade_ramp_reaches_the_floor(self):
        ramp = DegradingNode(
            at_s=10.0, duration_s=8.0, floor_factor=0.25, steps=4
        )
        segments = ramp.segments()
        assert len(segments) == 4
        factors = [factor for _, _, factor in segments]
        assert factors == sorted(factors, reverse=True)  # monotone ramp
        assert factors[-1] == pytest.approx(0.25)
        assert ramp.factor_at(9.9) == 1.0
        assert ramp.factor_at(10.0) < 1.0
        assert ramp.factor_at(17.9) == pytest.approx(0.25)
        assert ramp.factor_at(18.0) == 1.0

    def test_gray_validation(self):
        with pytest.raises(ValueError):
            FlappingNode(at_s=10.0, duration_s=5.0, node=-1)
        with pytest.raises(ValueError):
            FlappingNode(at_s=10.0, duration_s=5.0, duty=1.0)
        with pytest.raises(ValueError):
            FlappingNode(at_s=10.0, duration_s=5.0, period_s=0.0)
        with pytest.raises(ValueError):
            DegradingNode(at_s=10.0, duration_s=5.0, floor_factor=0.0)
        with pytest.raises(ValueError):
            DegradingNode(at_s=10.0, duration_s=5.0, steps=0)
        with pytest.raises(ValueError):
            AsymmetricPartition(at_s=10.0, duration_s=5.0, direction="up")
        with pytest.raises(ValueError):
            AsymmetricPartition(
                at_s=10.0, duration_s=5.0, observers_affected=0
            )

    def test_describe_names_the_node(self):
        assert "node 1" in FlappingNode(
            at_s=10.0, duration_s=5.0, node=1
        ).describe()
        text = AsymmetricPartition(
            at_s=10.0, duration_s=5.0, node=1, direction="data"
        ).describe()
        assert "node 1" in text and "data" in text


class TestGrayOverlapContract:
    def test_same_node_gray_overlap_rejected(self):
        schedule = FaultSchedule((
            FlappingNode(at_s=10.0, duration_s=10.0, node=0),
            DegradingNode(at_s=15.0, duration_s=10.0, node=0),
        ))
        with pytest.raises(ValueError, match="do not compose"):
            schedule.validate_against(60.0)

    def test_different_nodes_may_overlap(self):
        FaultSchedule((
            FlappingNode(at_s=10.0, duration_s=10.0, node=0),
            DegradingNode(at_s=15.0, duration_s=10.0, node=1),
        )).validate_against(60.0)

    def test_disjoint_windows_on_one_node_allowed(self):
        FaultSchedule((
            FlappingNode(at_s=10.0, duration_s=5.0, node=0),
            DegradingNode(at_s=15.0, duration_s=5.0, node=0),
        )).validate_against(60.0)

    def test_gray_overlapping_slow_target_range_rejected(self):
        schedule = FaultSchedule((
            SlowNode(at_s=10.0, nodes=2, duration_s=10.0),
            DegradingNode(at_s=15.0, duration_s=10.0, node=1),
        ))
        with pytest.raises(ValueError, match="target range"):
            schedule.validate_against(60.0)

    def test_gray_outside_slow_target_range_allowed(self):
        FaultSchedule((
            SlowNode(at_s=10.0, nodes=1, duration_s=10.0),
            DegradingNode(at_s=15.0, duration_s=10.0, node=1),
        )).validate_against(60.0)

    def test_asympart_carries_no_capacity_overlap_constraint(self):
        # The heartbeat direction touches no capacity at all, so it may
        # coexist with any capacity fault on the same node.
        FaultSchedule((
            FlappingNode(at_s=10.0, duration_s=10.0, node=0),
            AsymmetricPartition(at_s=12.0, duration_s=5.0, node=0),
        )).validate_against(60.0)

    def test_legacy_slow_composition_still_allowed(self):
        # Pinned: overlapping SlowNodes compose (multiplicative stack,
        # injection-frozen multipliers) and stay accepted.
        FaultSchedule((
            SlowNode(at_s=10.0, nodes=1, duration_s=10.0),
            SlowNode(at_s=15.0, nodes=1, duration_s=10.0),
        )).validate_against(60.0)
