"""Fault-event and schedule validation."""

import pytest

from repro.faults.schedule import (
    FaultSchedule,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    SlowNode,
)
from repro.sim.nodefail import NodeFailureSpec


class TestEvents:
    def test_at_s_must_be_positive(self):
        with pytest.raises(ValueError):
            NodeCrash(at_s=0.0)
        with pytest.raises(ValueError):
            SlowNode(at_s=-1.0)

    def test_nodes_must_be_positive(self):
        with pytest.raises(ValueError):
            NodeCrash(at_s=10.0, nodes=0)
        with pytest.raises(ValueError):
            ProcessRestart(at_s=10.0, nodes=-1)

    def test_slow_factor_bounds(self):
        with pytest.raises(ValueError):
            SlowNode(at_s=10.0, factor=0.0)
        with pytest.raises(ValueError):
            SlowNode(at_s=10.0, factor=1.0)
        SlowNode(at_s=10.0, factor=0.5)  # ok

    def test_transient_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            NetworkPartition(at_s=10.0, duration_s=0.0)
        with pytest.raises(ValueError):
            QueueDisconnect(at_s=10.0, duration_s=-5.0)

    def test_end_s(self):
        assert NodeCrash(at_s=10.0).end_s == 10.0
        assert NetworkPartition(at_s=10.0, duration_s=5.0).end_s == 15.0

    def test_describe_carries_kind_and_time(self):
        assert NodeCrash(at_s=60.0).describe() == "crash@60s"
        assert "slow@30s for 20s" == SlowNode(
            at_s=30.0, duration_s=20.0
        ).describe()


class TestSchedule:
    def test_ordered_sorts_by_time(self):
        schedule = FaultSchedule(
            (NodeCrash(at_s=90.0), SlowNode(at_s=30.0), NodeCrash(at_s=60.0))
        )
        assert [e.at_s for e in schedule.ordered()] == [30.0, 60.0, 90.0]
        assert [e.at_s for e in schedule] == [30.0, 60.0, 90.0]

    def test_repeated_events_allowed(self):
        schedule = FaultSchedule(
            (NodeCrash(at_s=30.0), NodeCrash(at_s=60.0), NodeCrash(at_s=90.0))
        )
        assert len(schedule) == 3

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule(("crash@60",))

    def test_validate_against_rejects_late_events(self):
        schedule = FaultSchedule((NodeCrash(at_s=50.0), NodeCrash(at_s=120.0)))
        with pytest.raises(ValueError, match="never fire"):
            schedule.validate_against(100.0)
        with pytest.raises(ValueError, match="crash@120s"):
            schedule.validate_against(120.0)  # at the boundary: too late
        schedule.validate_against(121.0)  # ok

    def test_from_node_failure_shim(self):
        shim = FaultSchedule.from_node_failure(
            NodeFailureSpec(fail_at_s=45.0, nodes=2)
        )
        assert len(shim) == 1
        (event,) = shim.events
        assert isinstance(event, NodeCrash)
        assert event.at_s == 45.0
        assert event.nodes == 2

    def test_describe(self):
        assert FaultSchedule().describe() == "no faults"
        text = FaultSchedule(
            (NodeCrash(at_s=60.0), NetworkPartition(at_s=30.0, duration_s=10.0))
        ).describe()
        assert text == "partition@30s for 10s; crash@60s"
