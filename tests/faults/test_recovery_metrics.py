"""Driver-side recovery metrology over synthetic latency series."""

import math

import numpy as np
import pytest

from repro.core.metrics import TimeSeries
from repro.faults.metrics import RecoveryMetrics, compute_recovery_metrics


class _StubCollector:
    """Collector facade: a known raw event-time latency series."""

    def __init__(self, times, values):
        self._series = TimeSeries(times, values)

    def binned_series(self, kind, bin_s, start_time=0.0, agg=None):
        return self._series.binned(bin_s)

    def series(self, kind, start_time=0.0):
        return self._series


class _StubThroughput:
    def __init__(self, times, values):
        self.ingest_series = TimeSeries(times, values)


class _StubResult:
    def __init__(self, latency, ingest, duration_s):
        self.collector = _StubCollector(*latency)
        self.throughput = _StubThroughput(*ingest)
        self.duration_s = duration_s


def synthetic_trial(fault_t=60.0, spike_s=10.0, duration=160.0, spike=9.0):
    """1 Hz latency samples: flat 1.0 s baseline, a spike of ``spike``
    seconds decaying back to baseline ``spike_s`` seconds after the
    fault; ingest flat at 1e5 with a catch-up burst to 3e5."""
    times = np.arange(0.0, duration, 1.0)
    values = np.full_like(times, 1.0)
    in_spike = (times >= fault_t) & (times < fault_t + spike_s)
    values[in_spike] = spike
    ingest_v = np.full_like(times, 1e5)
    catchup = (times >= fault_t + spike_s) & (times < fault_t + spike_s + 5.0)
    ingest_v[catchup] = 3e5
    return _StubResult((times, values), (times, ingest_v), duration)


class TestComputeRecoveryMetrics:
    def test_empty_log_gives_no_metrics(self):
        assert compute_recovery_metrics(synthetic_trial(), []) == []

    def test_validates_parameters(self):
        trial = synthetic_trial()
        log = [{"kind": "crash", "at_s": 60.0}]
        with pytest.raises(ValueError):
            compute_recovery_metrics(trial, log, bin_s=0.0)
        with pytest.raises(ValueError):
            compute_recovery_metrics(trial, log, settle_bins=0)

    def test_recovery_time_matches_spike_span(self):
        trial = synthetic_trial(fault_t=60.0, spike_s=10.0)
        (m,) = compute_recovery_metrics(
            trial, [{"kind": "crash", "at_s": 60.0, "pause_s": 8.0}]
        )
        assert m.kind == "crash"
        assert m.recovered
        # Latency returns to the band 10 s after the fault (+-1 bin).
        assert m.recovery_time_s == pytest.approx(10.0, abs=1.5)
        assert m.injected_pause_s == 8.0
        assert m.baseline_latency_s == pytest.approx(1.0, abs=0.05)

    def test_catchup_throughput_is_peak_drain(self):
        trial = synthetic_trial()
        (m,) = compute_recovery_metrics(
            trial, [{"kind": "crash", "at_s": 60.0}]
        )
        # The burst falls after the latency recovers, so the peak within
        # the recovery window is the steady rate; widen the window by
        # moving the burst inside the spike to see it.
        assert m.catchup_throughput >= 1e5

    def test_never_recovered_is_nan(self):
        # Latency keeps climbing after the fault: no recovery.
        times = np.arange(0.0, 120.0, 1.0)
        values = np.where(times < 60.0, 1.0, 1.0 + (times - 59.0))
        ingest = np.full_like(times, 1e5)
        trial = _StubResult((times, values), (times, ingest), 120.0)
        (m,) = compute_recovery_metrics(
            trial, [{"kind": "crash", "at_s": 60.0}]
        )
        assert not m.recovered
        assert math.isnan(m.recovery_time_s)
        assert math.isnan(m.post_p99_s)

    def test_multi_fault_horizons_do_not_overlap(self):
        # Two spikes; each fault's scan stops at the next injection.
        times = np.arange(0.0, 200.0, 1.0)
        values = np.full_like(times, 1.0)
        values[(times >= 60.0) & (times < 68.0)] = 9.0
        values[(times >= 120.0) & (times < 132.0)] = 9.0
        ingest = np.full_like(times, 1e5)
        trial = _StubResult((times, values), (times, ingest), 200.0)
        first, second = compute_recovery_metrics(
            trial,
            [
                {"kind": "crash", "at_s": 120.0},
                {"kind": "crash", "at_s": 60.0},
            ],
        )
        # Sorted by injection time regardless of log order.
        assert first.fault_time_s == 60.0
        assert second.fault_time_s == 120.0
        assert first.recovery_time_s == pytest.approx(8.0, abs=1.5)
        assert second.recovery_time_s == pytest.approx(12.0, abs=1.5)

    def test_guarantee_weights_pass_through(self):
        trial = synthetic_trial()
        (m,) = compute_recovery_metrics(
            trial,
            [
                {
                    "kind": "crash",
                    "at_s": 60.0,
                    "lost_weight": 123.0,
                    "duplicated_weight": 7.0,
                }
            ],
        )
        assert m.lost_weight == 123.0
        assert m.duplicated_weight == 7.0

    def test_to_dict_cleans_nans(self):
        m = RecoveryMetrics(
            kind="crash",
            fault_time_s=60.0,
            detection_s=float("nan"),
            injected_pause_s=8.0,
            recovery_time_s=float("nan"),
            catchup_throughput=1e5,
            baseline_latency_s=1.0,
            baseline_p99_s=1.0,
            post_p99_s=float("nan"),
            lost_weight=0.0,
            duplicated_weight=0.0,
        )
        payload = m.to_dict()
        assert payload["detection_s"] is None
        assert payload["recovery_time_s"] is None
        assert payload["injected_pause_s"] == 8.0
        assert not m.recovered
        assert "never" in m.describe()


def _metrics(**overrides):
    base = dict(
        kind="crash",
        fault_time_s=60.0,
        detection_s=2.0,
        injected_pause_s=6.0,
        recovery_time_s=10.0,
        catchup_throughput=3e5,
        baseline_latency_s=1.0,
        baseline_p99_s=1.2,
        post_p99_s=1.1,
        lost_weight=0.0,
        duplicated_weight=0.0,
    )
    base.update(overrides)
    return RecoveryMetrics(**base)


class TestPhaseDecomposition:
    def test_phases_partition_the_recovery_window(self):
        m = _metrics()
        assert m.detection_phase_s == 2.0
        assert m.restore_phase_s == 4.0
        assert m.catchup_phase_s == 4.0
        total = m.detection_phase_s + m.restore_phase_s + m.catchup_phase_s
        assert total == pytest.approx(m.recovery_time_s, abs=1e-12)

    def test_model_outage_longer_than_measured_window_is_clamped(self):
        # The outage is model-derived, the recovery time read off binned
        # latency; when they disagree the phases clamp into the window.
        m = _metrics(injected_pause_s=50.0, recovery_time_s=10.0)
        assert m.detection_phase_s == 2.0
        assert m.restore_phase_s == 8.0
        assert m.catchup_phase_s == 0.0

    def test_nan_detection_and_pause_count_as_zero(self):
        # Transient faults log no detection and no derived pause; the
        # whole window is catch-up, never NaN.
        m = _metrics(
            detection_s=float("nan"), injected_pause_s=float("nan")
        )
        assert m.detection_phase_s == 0.0
        assert m.restore_phase_s == 0.0
        assert m.catchup_phase_s == m.recovery_time_s

    def test_unrecovered_has_no_decomposition(self):
        m = _metrics(recovery_time_s=float("nan"))
        assert math.isnan(m.detection_phase_s)
        assert math.isnan(m.restore_phase_s)
        assert math.isnan(m.catchup_phase_s)


class TestExportRegression:
    """Never-recovered trials must export ``recovered: false`` with
    explicit null phases -- not silently drop keys or print NaN."""

    def test_unrecovered_exports_recovered_false_and_null_phases(self):
        payload = _metrics(
            recovery_time_s=float("nan"),
            catchup_throughput=float("nan"),
            post_p99_s=float("nan"),
        ).to_dict()
        assert payload["recovered"] is False
        assert payload["detection_phase_s"] is None
        assert payload["restore_phase_s"] is None
        assert payload["catchup_phase_s"] is None
        assert payload["recovery_time_s"] is None

    def test_recovered_exports_numeric_phases(self):
        payload = _metrics().to_dict()
        assert payload["recovered"] is True
        assert payload["detection_phase_s"] == 2.0
        assert payload["restore_phase_s"] == 4.0
        assert payload["catchup_phase_s"] == 4.0

    def test_export_is_json_round_trippable(self):
        import json

        payload = _metrics(recovery_time_s=float("nan")).to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_describe_never_prints_nan(self):
        text = _metrics(
            recovery_time_s=float("nan"), catchup_throughput=float("nan")
        ).describe()
        assert "nan" not in text
        assert "never" in text
        assert "n/a" in text
