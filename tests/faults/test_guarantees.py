"""Delivery-guarantee accounting invariants (property-tested)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults.guarantees import DeliveryGuarantee, GuaranteeAccounting

exposures = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False), max_size=20
)


class TestParse:
    @pytest.mark.parametrize("guarantee", list(DeliveryGuarantee))
    def test_roundtrip(self, guarantee):
        assert DeliveryGuarantee.parse(guarantee.value) is guarantee

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown guarantee"):
            DeliveryGuarantee.parse("maybe-once")


class TestAccounting:
    def test_negative_exposure_rejected(self):
        ledger = GuaranteeAccounting(DeliveryGuarantee.EXACTLY_ONCE)
        with pytest.raises(ValueError):
            ledger.on_fault(-1.0)

    @given(exposures)
    def test_exactly_once_loses_and_duplicates_nothing(self, weights):
        ledger = GuaranteeAccounting(DeliveryGuarantee.EXACTLY_ONCE)
        for w in weights:
            ledger.on_fault(w)
        assert ledger.lost_weight == 0.0
        assert ledger.duplicated_weight == 0.0
        assert ledger.exposed_weight == pytest.approx(sum(weights))
        assert ledger.fault_count == len(weights)

    @given(exposures)
    def test_at_least_once_never_loses(self, weights):
        ledger = GuaranteeAccounting(DeliveryGuarantee.AT_LEAST_ONCE)
        for w in weights:
            ledger.on_fault(w)
        assert ledger.lost_weight == 0.0
        assert ledger.duplicated_weight == pytest.approx(sum(weights))

    @given(exposures)
    def test_at_most_once_never_duplicates(self, weights):
        ledger = GuaranteeAccounting(DeliveryGuarantee.AT_MOST_ONCE)
        for w in weights:
            ledger.on_fault(w)
        assert ledger.duplicated_weight == 0.0
        assert ledger.lost_weight == pytest.approx(sum(weights))

    @given(exposures, st.sampled_from(list(DeliveryGuarantee)))
    def test_conservation(self, weights, guarantee):
        # Every exposed event is accounted exactly once: lost, duplicated,
        # or recovered -- lost + duplicated never exceeds exposure.
        ledger = GuaranteeAccounting(guarantee)
        per_event = [ledger.on_fault(w) for w in weights]
        assert ledger.lost_weight + ledger.duplicated_weight <= (
            ledger.exposed_weight + 1e-6
        )
        assert ledger.lost_weight == pytest.approx(
            sum(lost for lost, _ in per_event)
        )
        assert ledger.duplicated_weight == pytest.approx(
            sum(dup for _, dup in per_event)
        )
