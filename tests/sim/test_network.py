"""Unit tests for the data-plane model."""

import pytest

from repro.sim.network import DataPlane, NetworkSpec
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def plane(sim):
    return DataPlane(sim, NetworkSpec(segment_gbps=1.0, burst_seconds=0.1))


class TestSpec:
    def test_segment_bytes_per_s(self):
        assert NetworkSpec(segment_gbps=1.0).segment_bytes_per_s == pytest.approx(
            125e6
        )

    def test_events_capacity_at_104_bytes_is_about_1_2M(self, plane):
        cap = plane.events_capacity_per_s(104)
        assert cap == pytest.approx(1.202e6, rel=0.01)

    def test_events_capacity_rejects_nonpositive(self, plane):
        with pytest.raises(ValueError):
            plane.events_capacity_per_s(0)


class TestTokenBucket:
    def test_initial_burst_available(self, plane):
        # burst_seconds * rate banked at t=0.
        assert plane.available_bytes == pytest.approx(12.5e6)

    def test_allocate_grants_up_to_available(self, plane):
        granted = plane.allocate(5e6)
        assert granted == pytest.approx(5e6)
        assert plane.available_bytes == pytest.approx(7.5e6)

    def test_allocate_caps_at_available(self, plane):
        granted = plane.allocate(100e6)
        assert granted == pytest.approx(12.5e6)
        assert plane.allocate(1.0) == 0.0

    def test_refill_over_time(self, sim, plane):
        plane.allocate(12.5e6)
        sim.schedule(0.05, lambda: None)
        sim.run()
        # 0.05 s at 125 MB/s = 6.25 MB banked.
        assert plane.available_bytes == pytest.approx(6.25e6, rel=1e-6)

    def test_bank_is_capped_at_burst(self, sim, plane):
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert plane.available_bytes == pytest.approx(12.5e6)

    def test_steady_state_rate_is_link_rate(self, sim, plane):
        plane.allocate(12.5e6)  # drain the initial bank
        total = 0.0
        for i in range(100):
            sim.schedule_at((i + 1) * 0.01, lambda: None)
            sim.run()
            total += plane.allocate(10e9)
        # 1 second of link time at 125 MB/s.
        assert total == pytest.approx(125e6, rel=0.01)

    def test_negative_request_rejected(self, plane):
        with pytest.raises(ValueError):
            plane.allocate(-1.0)


class TestAccounting:
    def test_ingest_and_result_tracked_separately(self, plane):
        plane.allocate(1e6, kind="ingest")
        plane.allocate(2e6, kind="result")
        assert plane.total_ingest_bytes == pytest.approx(1e6)
        assert plane.total_result_bytes == pytest.approx(2e6)

    def test_shared_capacity_between_kinds(self, plane):
        plane.allocate(10e6, kind="result")
        granted = plane.allocate(10e6, kind="ingest")
        assert granted == pytest.approx(2.5e6)
