"""Unit tests for CPU/network resource sampling (Figure 10 substrate)."""

import pytest

from repro.sim.cluster import paper_cluster
from repro.sim.resources import ResourceMonitor
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def monitor(sim):
    return ResourceMonitor(sim, paper_cluster(2), sample_interval_s=5.0)


class TestSampling:
    def test_samples_emitted_per_interval_per_node(self, sim, monitor):
        sim.run_until(10.0)
        # 2 intervals * 2 worker nodes.
        assert len(monitor.samples) == 4
        assert {s.node for s in monitor.samples} == {0, 1}

    def test_cpu_load_percentage(self, sim, monitor):
        # 16 core-seconds over a 5 s interval on a 16-core node = 20%.
        monitor.add_cpu(16.0, node=0)
        sim.run_until(5.0)
        node0 = monitor.node_series(0)[0]
        assert node0.cpu_load_pct == pytest.approx(20.0)

    def test_cpu_load_capped_at_100(self, sim, monitor):
        monitor.add_cpu(1e6, node=0)
        sim.run_until(5.0)
        assert monitor.node_series(0)[0].cpu_load_pct == 100.0

    def test_spread_attribution(self, sim, monitor):
        monitor.add_cpu(32.0)  # spread over 2 nodes -> 16 each -> 20%
        sim.run_until(5.0)
        assert monitor.node_series(0)[0].cpu_load_pct == pytest.approx(20.0)
        assert monitor.node_series(1)[0].cpu_load_pct == pytest.approx(20.0)

    def test_network_mb(self, sim, monitor):
        monitor.add_network(50e6, node=1)
        sim.run_until(5.0)
        assert monitor.node_series(1)[0].network_mb == pytest.approx(50.0)

    def test_accumulators_reset_each_interval(self, sim, monitor):
        monitor.add_cpu(16.0, node=0)
        sim.run_until(5.0)
        sim.run_until(10.0)
        series = monitor.node_series(0)
        assert series[0].cpu_load_pct > 0
        assert series[1].cpu_load_pct == 0.0

    def test_node_wraps_modulo_workers(self, sim, monitor):
        monitor.add_cpu(16.0, node=2)  # wraps to node 0
        sim.run_until(5.0)
        assert monitor.node_series(0)[0].cpu_load_pct > 0

    def test_negative_rejected(self, monitor):
        with pytest.raises(ValueError):
            monitor.add_cpu(-1.0)
        with pytest.raises(ValueError):
            monitor.add_network(-1.0)

    def test_mean_cpu_load(self, sim, monitor):
        monitor.add_cpu(16.0, node=0)
        sim.run_until(5.0)
        # Node 0 at 20%, node 1 at 0% -> mean 10%.
        assert monitor.mean_cpu_load() == pytest.approx(10.0)

    def test_stop_halts_sampling(self, sim, monitor):
        sim.run_until(5.0)
        monitor.stop()
        sim.run_until(20.0)
        assert len(monitor.samples) == 2
