"""Unit tests for node/cluster specifications."""

import pytest

from repro.sim.cluster import (
    PAPER_CLUSTER_SIZES,
    ClusterSpec,
    NodeSpec,
    paper_cluster,
)


class TestNodeSpec:
    def test_paper_node_defaults(self):
        node = NodeSpec()
        assert node.cores == 16
        assert node.ram_gb == 16.0
        assert node.nic_gbps == 1.0

    def test_nic_bytes_per_s(self):
        assert NodeSpec(nic_gbps=1.0).nic_bytes_per_s == pytest.approx(125e6)

    def test_ram_bytes(self):
        assert NodeSpec(ram_gb=16).ram_bytes == 16 * 1024**3


class TestClusterSpec:
    def test_paper_cluster_layout(self):
        cluster = paper_cluster(4)
        assert cluster.workers == 4
        assert cluster.drivers == 4
        assert cluster.has_dedicated_master
        assert cluster.total_nodes == 9

    def test_worker_cores(self):
        assert paper_cluster(2).worker_cores == 32
        assert paper_cluster(8).worker_cores == 128

    def test_worker_ram(self):
        assert paper_cluster(2).worker_ram_bytes == 2 * 16 * 1024**3

    def test_ingress_capacity_scales_with_workers(self):
        assert paper_cluster(4).sut_ingress_bytes_per_s == pytest.approx(500e6)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(workers=0, drivers=1)

    def test_zero_drivers_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(workers=1, drivers=0)

    def test_describe_mentions_size(self):
        text = paper_cluster(8).describe()
        assert "8-node" in text
        assert "16 cores" in text

    def test_paper_sizes(self):
        assert PAPER_CLUSTER_SIZES == [2, 4, 8]

    def test_no_master_reduces_total(self):
        cluster = ClusterSpec(workers=2, drivers=2, has_dedicated_master=False)
        assert cluster.total_nodes == 4
