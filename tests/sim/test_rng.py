"""Unit tests for the named RNG registry."""

import numpy as np

from repro.sim.rng import RngRegistry


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=7).stream("gen").random(5)
        b = RngRegistry(seed=7).stream("gen").random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=7).stream("gen").random(5)
        b = RngRegistry(seed=8).stream("gen").random(5)
        assert not np.array_equal(a, b)

    def test_different_names_differ(self):
        reg = RngRegistry(seed=7)
        a = reg.stream("gen-a").random(5)
        b = reg.stream("gen-b").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_stateful_singleton(self):
        reg = RngRegistry(seed=1)
        s1 = reg.stream("x")
        s1.random(3)
        s2 = reg.stream("x")
        assert s1 is s2

    def test_creation_order_does_not_matter(self):
        reg1 = RngRegistry(seed=3)
        reg1.stream("a")
        val1 = reg1.stream("b").random(4)
        reg2 = RngRegistry(seed=3)
        val2 = reg2.stream("b").random(4)
        assert np.array_equal(val1, val2)


class TestFork:
    def test_fork_is_reproducible(self):
        a = RngRegistry(seed=5).fork(2).stream("x").random(3)
        b = RngRegistry(seed=5).fork(2).stream("x").random(3)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(seed=5)
        child = parent.fork(1)
        assert not np.array_equal(
            parent.stream("x").random(3), child.stream("x").random(3)
        )

    def test_forks_with_different_salts_differ(self):
        reg = RngRegistry(seed=5)
        a = reg.fork(1).stream("x").random(3)
        b = reg.fork(2).stream("x").random(3)
        assert not np.array_equal(a, b)

    def test_names_lists_created_streams(self):
        reg = RngRegistry(seed=0)
        reg.stream("b")
        reg.stream("a")
        assert reg.names() == ["a", "b"]
