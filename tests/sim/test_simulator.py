"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim.simulator import (
    EventHandle,
    PeriodicProcess,
    SimulationError,
    Simulator,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(1.5, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in ["a", "b", "c"]:
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 12.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.9, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_callback_args_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "two")
        sim.run()
        assert got == [(1, "two")]


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        assert sim.cancel(handle) is True
        sim.run()
        assert fired == []

    def test_cancel_twice_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert sim.cancel(handle) is True
        assert sim.cancel(handle) is False

    def test_cancel_none_is_noop(self):
        sim = Simulator()
        assert sim.cancel(None) is False

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.cancel(handle) is False

    def test_pending_counts_live_events(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.cancel(h1)
        assert sim.pending == 1


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(5.0, fired.append, "out")
        sim.run_until(2.0)
        assert fired == ["in"]
        assert sim.now == 2.0

    def test_run_until_includes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run_until(2.0)
        assert fired == ["edge"]

    def test_run_until_past_is_rejected(self):
        sim = Simulator(start_time=3.0)
        with pytest.raises(SimulationError):
            sim.run_until(2.0)

    def test_remaining_events_fire_on_next_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "later")
        sim.run_until(1.0)
        assert fired == []
        sim.run()
        assert fired == ["later"]

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run_until(10.0)
        assert fired == [1]
        # The clock does not jump to the horizon after an explicit stop
        # mid-run; it stays at the stopping event... run_until clamps to
        # max(now, time) after the loop, so the remaining event is intact.
        sim.run()
        assert 2 in fired


class TestPeriodicProcess:
    def test_fires_at_interval(self):
        sim = Simulator()
        times = []
        sim.every(1.0, lambda s: times.append(s.now))
        sim.run_until(3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_custom_start(self):
        sim = Simulator()
        times = []
        sim.every(2.0, lambda s: times.append(s.now), start=0.5)
        sim.run_until(5.0)
        assert times == [0.5, 2.5, 4.5]

    def test_stop_halts_future_firings(self):
        sim = Simulator()
        times = []
        proc = sim.every(1.0, lambda s: times.append(s.now))
        sim.run_until(2.0)
        proc.stop()
        sim.run_until(5.0)
        assert times == [1.0, 2.0]
        assert proc.stopped

    def test_stop_from_within_callback(self):
        sim = Simulator()
        count = []
        proc = sim.every(1.0, lambda s: (count.append(1), proc.stop()))
        sim.run_until(10.0)
        assert len(count) == 1

    def test_interval_change_applies_after_next_firing(self):
        # The next firing was already scheduled with the old interval
        # when the change happens; subsequent gaps use the new one.
        sim = Simulator()
        times = []
        proc = sim.every(1.0, lambda s: times.append(s.now))
        sim.run_until(1.0)
        proc.interval = 3.0
        sim.run_until(8.0)
        assert times == [1.0, 2.0, 5.0, 8.0]

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda s: None)

    def test_fire_count(self):
        sim = Simulator()
        proc = sim.every(1.0, lambda s: None)
        sim.run_until(4.2)
        assert proc.fire_count == 4

    def test_double_start_rejected(self):
        sim = Simulator()
        proc = sim.every(1.0, lambda s: None)
        with pytest.raises(SimulationError):
            proc.start_at(2.0)
