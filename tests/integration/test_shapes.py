"""Cross-engine shape invariants from the paper's discussion section.

Short runs (fast enough for CI) asserting the qualitative findings:
who wins, which metric dominates, and how the two latency definitions
diverge under overload (the coordinated-omission argument).
"""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.latency import EVENT_TIME, PROCESSING_TIME
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)


def spec(engine, rate, **overrides):
    defaults = dict(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=rate,
        duration_s=100.0,
        seed=5,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def near_capacity_runs():
    """One run per engine at ~90% of its paper 2-node aggregation
    capacity -- pressed, but clear of the saturation edge where queue
    drift dominates every engine's statistics."""
    return {
        "storm": run_experiment(spec("storm", 0.36e6)),
        "spark": run_experiment(spec("spark", 0.34e6)),
        "flink": run_experiment(spec("flink", 1.08e6)),
    }


class TestLatencyRanking:
    def test_flink_lowest_average_latency(self, near_capacity_runs):
        flink = near_capacity_runs["flink"].event_latency.mean
        storm = near_capacity_runs["storm"].event_latency.mean
        spark = near_capacity_runs["spark"].event_latency.mean
        assert flink < storm < spark

    def test_spark_bounds_latency_best(self, near_capacity_runs):
        """'Even with higher average latency, Spark manages to bound
        latency better than others' -- relative spread is smallest."""
        spreads = {
            name: run.event_latency.std / run.event_latency.mean
            for name, run in near_capacity_runs.items()
        }
        assert spreads["spark"] < spreads["storm"]
        assert spreads["spark"] < spreads["flink"]

    def test_all_completed(self, near_capacity_runs):
        for name, run in near_capacity_runs.items():
            assert not run.failed, f"{name}: {run.failure}"


class TestThroughputRanking:
    def test_flink_highest_ingest(self, near_capacity_runs):
        rates = {
            name: run.mean_ingest_rate for name, run in near_capacity_runs.items()
        }
        assert rates["flink"] > rates["storm"] > 0
        assert rates["flink"] > rates["spark"] > 0


class TestEventVsProcessingTime:
    def test_processing_included_in_event_latency(self, near_capacity_runs):
        for name, run in near_capacity_runs.items():
            assert (
                run.event_latency.mean >= run.processing_latency.mean - 0.15
            ), name

    def test_overload_divergence(self):
        """Figure 7: under overload, processing-time latency stays
        bounded while event-time latency keeps growing."""
        run = run_experiment(
            spec(
                "spark",
                0.6e6,  # far above 2-node Spark capacity
                duration_s=120.0,
                generator=GeneratorConfig(
                    instances=2, queue_capacity_seconds=600.0
                ),
            )
        )
        event_slope = run.collector.trend_slope(EVENT_TIME, run.warmup_s)
        proc_slope = run.collector.trend_slope(PROCESSING_TIME, run.warmup_s)
        assert event_slope > 0.2
        assert proc_slope < event_slope / 3
        assert run.event_latency.mean > 3 * run.processing_latency.mean


class TestIngestFluctuation:
    def test_storm_pull_rate_fluctuates_more_than_flink(
        self, near_capacity_runs
    ):
        """Figure 9: Storm's data pull rate oscillates; Flink's is smooth."""
        from repro.analysis.stats import coefficient_of_variation

        def cv(run):
            series = run.throughput.ingest_series.window(run.warmup_s)
            return coefficient_of_variation(series.values)

        assert cv(near_capacity_runs["storm"]) > 2 * cv(
            near_capacity_runs["flink"]
        )


class TestJoinVsAggregation:
    def test_join_latency_exceeds_aggregation_for_flink(self):
        agg = run_experiment(spec("flink", 0.8e6))
        join = run_experiment(
            spec("flink", 0.8e6, query=WindowedJoinQuery())
        )
        assert not join.failed
        assert join.event_latency.mean > 2 * agg.event_latency.mean
