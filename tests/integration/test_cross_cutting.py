"""Cross-cutting integration tests: features composed together.

Each test exercises an interaction between subsystems that no unit test
covers on its own (broker + join, disorder + Spark, failure + search,
CLI sweep end to end, extension engine + framework extension).
"""

import pytest

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.cli import main as cli_main
from repro.core.broker import BrokerSpec
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.sustainable import assess, find_sustainable_throughput
from repro.sim.nodefail import NodeFailureSpec
from repro.workloads.disorder import DisorderSpec
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

SMALL_WINDOW = WindowSpec(4.0, 2.0)


def spec(**overrides):
    defaults = dict(
        engine="flink",
        query=WindowedAggregationQuery(window=SMALL_WINDOW),
        workers=2,
        profile=30_000.0,
        duration_s=60.0,
        seed=23,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestBrokerComposition:
    def test_brokered_join_preserves_semantics(self):
        """The mediator delays both streams; join outputs still appear
        and latency carries the broker delay."""
        direct = run_experiment(
            spec(query=WindowedJoinQuery(window=SMALL_WINDOW))
        )
        brokered = run_experiment(
            spec(
                query=WindowedJoinQuery(window=SMALL_WINDOW),
                broker=BrokerSpec(
                    forward_capacity_events_per_s=1e6,
                    persistence_delay_s=0.2,
                ),
            )
        )
        assert not brokered.failed
        assert len(brokered.collector) > 0
        assert (
            brokered.event_latency.mean
            > direct.event_latency.mean + 0.1
        )

    def test_broker_under_capacity_is_transparent_to_throughput(self):
        brokered = run_experiment(
            spec(broker=BrokerSpec(forward_capacity_events_per_s=1e6))
        )
        assert brokered.mean_ingest_rate == pytest.approx(30_000.0, rel=0.1)


class TestDisorderComposition:
    def test_spark_drops_stragglers_beyond_slack(self):
        result = run_experiment(
            spec(
                engine="spark",
                generator=GeneratorConfig(
                    instances=2,
                    disorder=DisorderSpec(fraction=0.3, max_delay_s=3.0),
                ),
            )
        )
        assert not result.failed
        assert result.diagnostics["late_dropped_weight"] > 0

    def test_disordered_join_still_matches(self):
        result = run_experiment(
            spec(
                query=WindowedJoinQuery(window=SMALL_WINDOW),
                generator=GeneratorConfig(
                    instances=2,
                    disorder=DisorderSpec(fraction=0.1, max_delay_s=1.0),
                ),
            )
        )
        assert not result.failed
        assert len(result.collector) > 0


class TestFailureComposition:
    def test_search_accounts_for_mid_trial_failure(self):
        """A node failure during every trial lowers the sustainable rate
        the search finds (capacity is judged on the degraded cluster)."""
        healthy = find_sustainable_throughput(
            spec(engine="storm", workers=2, duration_s=80.0),
            high_rate=0.6e6,
            rel_tol=0.1,
            max_trials=6,
        )
        degraded = find_sustainable_throughput(
            spec(
                engine="storm",
                workers=2,
                duration_s=80.0,
                node_failure=NodeFailureSpec(fail_at_s=10.0),
            ),
            high_rate=0.6e6,
            rel_tol=0.1,
            max_trials=6,
        )
        assert degraded.sustainable_rate < healthy.sustainable_rate

    def test_extension_engine_with_node_failure(self):
        result = run_experiment(
            spec(
                engine="heron",
                workers=4,
                profile=0.2e6,
                duration_s=100.0,
                node_failure=NodeFailureSpec(fail_at_s=40.0),
            )
        )
        assert not result.failed
        assert result.diagnostics["active_workers"] == 3.0
        # Heron inherits Storm's window-state semantics: state is lost.
        assert result.diagnostics["state_lost_weight"] > 0


class TestCliComposition:
    def test_sweep_command_end_to_end(self, capsys, tmp_path):
        code = cli_main(
            [
                "sweep",
                "--engines", "flink",
                "--worker-counts", "2",
                "--high-rate", "30000",
                "--duration", "30",
                "--generators", "1",
                "--no-resources",
                "--output", str(tmp_path / "sweep.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flink/2w" in out
        assert (tmp_path / "sweep.json").exists()

    def test_run_command_accepts_extension_engine(self, capsys):
        code = cli_main(
            [
                "run",
                "--engine", "samza",
                "--rate", "20000",
                "--duration", "30",
                "--generators", "1",
                "--no-resources",
            ]
        )
        assert code == 0

    def test_run_command_single_key_skew(self, capsys):
        code = cli_main(
            [
                "run",
                "--engine", "flink",
                "--keys", "single",
                "--rate", "20000",
                "--duration", "30",
                "--generators", "1",
                "--no-resources",
            ]
        )
        assert code == 0


class TestDeterminismAcrossExtensions:
    def test_disorder_and_failure_runs_are_reproducible(self):
        build = lambda: spec(
            engine="storm",
            workers=2,
            duration_s=60.0,
            generator=GeneratorConfig(
                instances=2,
                disorder=DisorderSpec(fraction=0.2, max_delay_s=1.5),
            ),
            node_failure=NodeFailureSpec(fail_at_s=25.0),
        )
        a = run_experiment(build())
        b = run_experiment(build())
        assert a.event_latency.mean == b.event_latency.mean
        assert (
            a.diagnostics["late_dropped_weight"]
            == b.diagnostics["late_dropped_weight"]
        )
        assert (
            a.diagnostics["state_lost_weight"]
            == b.diagnostics["state_lost_weight"]
        )
