"""Node-failure robustness (Related Work extension, Lopez et al.)."""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.sim.nodefail import NodeFailureSpec
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery


def run_with_failure(engine, rate, workers=4, fail_at=60.0, duration=160.0):
    return run_experiment(
        ExperimentSpec(
            engine=engine,
            query=WindowedAggregationQuery(window=WindowSpec(8, 4)),
            workers=workers,
            profile=rate,
            duration_s=duration,
            seed=8,
            generator=GeneratorConfig(instances=2),
            node_failure=NodeFailureSpec(fail_at_s=fail_at),
            monitor_resources=False,
        )
    )


class TestSpecValidation:
    def test_defaults(self):
        spec = NodeFailureSpec()
        assert spec.fail_at_s == 60.0
        assert spec.nodes == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            NodeFailureSpec(fail_at_s=0.0)
        with pytest.raises(ValueError):
            NodeFailureSpec(nodes=0)


class TestCapacityLoss:
    def test_active_workers_reported(self):
        result = run_with_failure("flink", 0.3e6)
        assert result.diagnostics["active_workers"] == 3.0

    def test_capacity_drops_after_failure(self):
        # Offered at ~90% of the 4-node Storm capacity: fine before the
        # failure, unsustainable on 3 workers afterwards.
        result = run_with_failure("storm", 0.6e6)
        occupancy = result.throughput.occupancy_series
        before = occupancy.window(30.0, 55.0).mean()
        after = occupancy.window(100.0, 160.0).mean()
        assert after > before + 0.5e6

    def test_killing_all_workers_fails_the_trial(self):
        # Losing every worker is not survivable: no recovery protocol
        # applies, so the trial is reported failed (it used to clamp to
        # one surviving worker, silently under-injecting the fault).
        result = run_experiment(
            ExperimentSpec(
                engine="flink",
                query=WindowedAggregationQuery(window=WindowSpec(8, 4)),
                workers=2,
                profile=0.1e6,
                duration_s=80.0,
                generator=GeneratorConfig(instances=2),
                node_failure=NodeFailureSpec(fail_at_s=30.0, nodes=5),
                monitor_resources=False,
            )
        )
        assert result.failed
        assert "killed all" in result.failure
        assert result.failure_time == pytest.approx(30.0, abs=1.5)


class TestRecoverySemantics:
    def test_storm_loses_window_state(self):
        result = run_with_failure("storm", 0.3e6)
        assert result.diagnostics["state_lost_weight"] > 0

    @pytest.mark.parametrize("engine", ["spark", "flink"])
    def test_checkpoint_lineage_engines_lose_nothing(self, engine):
        result = run_with_failure(engine, 0.3e6)
        assert result.diagnostics["state_lost_weight"] == 0.0

    def test_failure_causes_latency_spike(self):
        result = run_with_failure("flink", 0.3e6)
        series = result.collector.binned_series(
            bin_s=5.0, start_time=result.warmup_s
        )
        spike = max(series.values)
        calm = min(series.values)
        assert spike > calm + 4.0  # the recovery pause shows up

    def test_spark_recovers_fastest(self):
        """Lopez et al.: Spark is the most robust to node failures --
        its post-failure latency excess is the smallest (short lineage
        recomputation vs. Storm's topology rebalancing and replay)."""

        def excess_latency(result):
            series = result.collector.binned_series(bin_s=5.0, start_time=0.0)
            before = series.window(30.0, 58.0).mean()
            after = series.window(66.0, result.duration_s).mean()
            return after - before

        spark = excess_latency(run_with_failure("spark", 0.4e6))
        storm = excess_latency(run_with_failure("storm", 0.4e6))
        assert spark < storm
