"""Stall accounting vs. the driver's observed throughput dip.

The satellite bugfix this pins: backpressure state used to be invisible
outside the engine, so the throttle's internal stall clock could drift
from simulated time (it only advanced inside ``ingest_budget``) and
nothing could notice.  Now the throttle reports ``bp.stalled_s`` to the
metrics registry/diagnostics, and this test cross-checks it against a
*driver-side* measurement the SUT cannot influence: the longest run of
zero-ingest intervals in the ThroughputMonitor's series.  A topology
stall is exactly a zero-ingest window, so the two must agree to bin
quantisation.
"""

import numpy as np
import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.engines.storm import StormConfig

MONITOR_INTERVAL_S = 1.0


def stalled_storm_result(stall_duration_s=10.0):
    return run_experiment(
        ExperimentSpec(
            engine="storm",
            workers=2,
            profile=0.6e6,
            duration_s=120.0,
            seed=11,
            generator=GeneratorConfig(instances=2),
            monitor_resources=False,
            engine_config=StormConfig(stall_duration_s=stall_duration_s),
            throughput_interval_s=MONITOR_INTERVAL_S,
        )
    )


def longest_zero_run(series) -> int:
    """Longest consecutive run of zero-ingest monitor intervals."""
    best = current = 0
    for value in np.asarray(series.values):
        current = current + 1 if value <= 1e-9 else 0
        best = max(best, current)
    return best


@pytest.fixture(scope="module")
def result():
    return stalled_storm_result()


class TestStallMatchesObservedDip:
    def test_overload_triggers_a_stall(self, result):
        assert result.diagnostics["bp.stall_count"] >= 1.0
        assert result.diagnostics["bp.stalled_s"] > 0.0

    def test_stalled_s_matches_monitor_zero_run(self, result):
        """The throttle's own stall accounting must match the dip the
        driver observes at the queues, within bin quantisation (the
        stall can straddle up to two partial monitor intervals)."""
        stalled_s = result.diagnostics["bp.stalled_s"]
        dip_s = longest_zero_run(result.throughput.ingest_series)
        dip_s *= MONITOR_INTERVAL_S
        assert dip_s == pytest.approx(stalled_s, abs=2.0 * MONITOR_INTERVAL_S)

    def test_stalled_s_equals_configured_duration(self, result):
        """One stall at 2 workers runs exactly the configured duration
        in simulated seconds -- the clock-drift regression: before the
        on_tick_end sync, skipped ticks (JVM pauses) stretched this."""
        per_stall = result.diagnostics["bp.stalled_s"] / result.diagnostics[
            "bp.stall_count"
        ]
        assert per_stall == pytest.approx(10.0, abs=1e-9)

    def test_off_time_exceeds_stall_time_under_overload(self, result):
        """At 2x overload the on/off throttle spends far longer *off*
        (watermark oscillation) than stalled; both are reported."""
        assert result.diagnostics["bp.off_s"] > result.diagnostics[
            "bp.stalled_s"
        ]
