"""End-to-end determinism: identical seeds give identical measurements.

Reproducibility is a first-class requirement for a benchmark framework;
these tests pin it down across every engine and both query kinds.
"""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)


def spec(engine, query, seed):
    return ExperimentSpec(
        engine=engine,
        query=query,
        workers=2,
        profile=30_000.0,
        duration_s=40.0,
        seed=seed,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )


QUERIES = {
    "aggregation": WindowedAggregationQuery(window=WindowSpec(4, 2)),
    "join": WindowedJoinQuery(window=WindowSpec(4, 2)),
}


class TestDeterminism:
    @pytest.mark.parametrize("engine", ["storm", "spark", "flink"])
    @pytest.mark.parametrize("kind", ["aggregation", "join"])
    def test_bitwise_repeatability(self, engine, kind):
        a = run_experiment(spec(engine, QUERIES[kind], seed=99))
        b = run_experiment(spec(engine, QUERIES[kind], seed=99))
        assert a.failure == b.failure
        assert a.mean_ingest_rate == b.mean_ingest_rate
        assert a.event_latency.mean == b.event_latency.mean
        assert a.event_latency.maximum == b.event_latency.maximum
        assert a.processing_latency.mean == b.processing_latency.mean
        assert len(a.collector) == len(b.collector)
        assert a.throughput.ingest_series.values.tolist() == (
            b.throughput.ingest_series.values.tolist()
        )

    def test_different_engines_share_generator_stream(self):
        """The generated workload is a function of the seed only: the
        offered series must be identical whatever the SUT (driver/SUT
        separation extends to randomness)."""
        runs = {
            engine: run_experiment(spec(engine, QUERIES["aggregation"], 7))
            for engine in ("storm", "spark", "flink")
        }
        offered = {
            engine: tuple(r.throughput.offered_series.values)
            for engine, r in runs.items()
        }
        assert offered["storm"] == offered["spark"] == offered["flink"]
