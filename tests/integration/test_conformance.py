"""Cross-engine conformance: five engines, one seeded workload.

The engine models differ in *dynamics* (backpressure, batching, emit
timing) but must agree on *query semantics*: the same seeded workload
pushed through every engine has to produce the same windowed results.
This suite runs one seeded trial per query kind (windowed aggregation,
windowed join) through all five engines and asserts:

- identical sink contents where semantics coincide -- every engine
  emits the same ``(window_end, key)`` set with the same summed values
  and weights (the record-at-a-time engines agree bit-for-bit; Spark
  agrees up to float re-association from its tree aggregation);
- the *documented* divergences, explicitly: Spark's micro-batch
  execution delays every window emission behind batch scheduling, so
  its emit delays are strictly separated from Flink's pipelined ones
  and its worst case exceeds a full batch interval;
- golden checksums committed under ``tests/golden/`` -- a canonical
  serialisation of each engine's sink table is hashed and compared, so
  a semantics change cannot slip through as a plausible-looking value
  shift.  Regenerate after an *intentional* change with::

      REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
          tests/integration/test_conformance.py

The workload is pinned to 2 workers: Storm's windowed join splits
cohorts across executors, so worker count is part of the workload
identity the goldens hash.
"""

import hashlib
import json
import os
import pathlib

import pytest

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.engines.spark import SparkConfig
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

ENGINES = ("flink", "storm", "spark", "heron", "samza")
PIPELINED = ("flink", "storm", "heron", "samza")
"""Record-at-a-time engines whose sink tables agree exactly."""

QUERIES = {
    "aggregation": WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
    "join": WindowedJoinQuery(window=WindowSpec(8.0, 4.0)),
}

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "golden" / "conformance.json"
REL_TOL = 1e-9


def conformance_spec(engine: str, query) -> ExperimentSpec:
    return ExperimentSpec(
        engine=engine,
        query=query,
        workers=2,
        profile=30_000.0,
        duration_s=60.0,
        seed=1234,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        keep_outputs=True,
    )


def sink_table(result):
    """Canonical sink contents: ``(window_end, key) -> (value, weight)``.

    Summing per (window, key) folds away emission granularity (Storm
    may emit a window's outputs across several sink batches) without
    touching semantics.
    """
    table = {}
    for out in result.collector.outputs:
        key = (round(out.window_end, 9), out.key)
        value, weight = table.get(key, (0.0, 0.0))
        table[key] = (value + out.value, weight + out.weight)
    return table


def emit_delays(result):
    """Per-output emission delay behind the window close time."""
    return [o.emit_time - o.window_end for o in result.collector.outputs]


def checksum(table) -> str:
    """SHA-256 over the canonical serialisation of a sink table.

    Values are rounded to 9 significant digits so the hash pins
    semantics, not summation order; the full-precision cross-engine
    comparison lives in the agreement tests.
    """
    lines = [
        f"{we:.6f}|{key}|{value:.9e}|{weight:.9e}"
        for (we, key), (value, weight) in sorted(table.items())
    ]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def runs():
    """All ten trials (5 engines x 2 queries), run once per session."""
    return {
        (engine, kind): run_experiment(conformance_spec(engine, query))
        for engine in ENGINES
        for kind, query in QUERIES.items()
    }


class TestCompletion:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kind", sorted(QUERIES))
    def test_trial_completes_with_outputs(self, runs, engine, kind):
        result = runs[(engine, kind)]
        assert not result.failed, result.failure
        assert len(result.collector.outputs) > 0


class TestSinkAgreement:
    @pytest.mark.parametrize("kind", sorted(QUERIES))
    def test_window_key_sets_identical(self, runs, kind):
        """Every engine closes and emits exactly the same windows."""
        reference = set(sink_table(runs[("flink", kind)]))
        for engine in ENGINES[1:]:
            table = sink_table(runs[(engine, kind)])
            assert set(table) == reference, engine

    @pytest.mark.parametrize("kind", sorted(QUERIES))
    def test_values_and_weights_agree(self, runs, kind):
        """Summed values/weights per (window, key) match across all
        five engines to 1e-9 relative."""
        reference = sink_table(runs[("flink", kind)])
        for engine in ENGINES[1:]:
            table = sink_table(runs[(engine, kind)])
            for cell, (value, weight) in table.items():
                ref_value, ref_weight = reference[cell]
                assert value == pytest.approx(ref_value, rel=REL_TOL), (
                    engine, cell,
                )
                assert weight == pytest.approx(ref_weight, rel=REL_TOL), (
                    engine, cell,
                )

    @pytest.mark.parametrize("kind", sorted(QUERIES))
    @pytest.mark.parametrize("engine", PIPELINED[1:])
    def test_record_at_a_time_engines_agree_exactly(self, runs, kind, engine):
        """Storm/Heron/Samza accumulate windows in the same cohort
        order as Flink, so where semantics coincide the summed *values*
        are bit-for-bit identical -- only Spark is allowed value
        re-association (its tree aggregation, asserted separately).
        Join weights may differ by float re-association (backpressure
        splits cohorts at different boundaries per engine), bounded to
        1e-12 relative."""
        reference = sink_table(runs[("flink", kind)])
        table = sink_table(runs[(engine, kind)])
        for cell, (value, weight) in table.items():
            ref_value, ref_weight = reference[cell]
            assert value == ref_value, (engine, cell)
            assert weight == pytest.approx(ref_weight, rel=1e-12), (
                engine, cell,
            )


class TestSparkDivergence:
    """The documented divergence: micro-batch boundaries.

    Spark closes windows only when a batch job fires and completes, so
    every emission trails the window end by at least the scheduling
    pipeline, while Flink emits within operator latency of the close.
    """

    @pytest.mark.parametrize("kind", sorted(QUERIES))
    def test_emit_delays_strictly_separated_from_flink(self, runs, kind):
        spark_delays = emit_delays(runs[("spark", kind)])
        flink_delays = emit_delays(runs[("flink", kind)])
        assert min(spark_delays) > max(flink_delays)

    @pytest.mark.parametrize("kind", sorted(QUERIES))
    def test_worst_emit_delay_exceeds_batch_interval(self, runs, kind):
        """A window closing just after a batch fires waits out the whole
        next batch: the worst emit delay must exceed the interval."""
        batch_interval = SparkConfig().batch_interval_s
        assert max(emit_delays(runs[("spark", kind)])) > batch_interval


class TestGoldenChecksums:
    def test_sink_checksums_match_goldens(self, runs):
        actual = {
            kind: {
                engine: checksum(sink_table(runs[(engine, kind)]))
                for engine in ENGINES
            }
            for kind in sorted(QUERIES)
        }
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(actual, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip(f"regenerated goldens at {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"missing golden file {GOLDEN_PATH}; generate with "
            "REGEN_GOLDEN=1 (see module docstring)"
        )
        golden = json.loads(GOLDEN_PATH.read_text())
        assert actual == golden, (
            "sink contents diverged from committed goldens; if the "
            "change is intentional, regenerate with REGEN_GOLDEN=1"
        )
