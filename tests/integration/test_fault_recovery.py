"""The fault-recovery benchmark layer, end to end.

Multi-fault timelines, derived recovery pauses, delivery-guarantee
accounting, and the under-faults sustainability criteria -- everything
above the one-shot node-failure shim covered by test_node_failures.py.
"""

import pytest

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.sustainable import (
    SustainabilityCriteria,
    assess,
    find_sustainable_throughput_under_faults,
)
from repro.engines.base import EngineConfig
from repro.faults import (
    CheckpointSpec,
    DeliveryGuarantee,
    FaultSchedule,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    SlowNode,
)
from repro.sim.nodefail import NodeFailureSpec
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery


def fault_spec(engine="flink", faults=(), rate=0.25e6, duration=160.0, **kw):
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8, 4)),
        workers=4,
        profile=rate,
        duration_s=duration,
        seed=23,
        generator=GeneratorConfig(instances=2),
        faults=FaultSchedule(tuple(faults)),
        monitor_resources=False,
        **kw,
    )


class TestSpecWiring:
    def test_late_fault_rejected(self):
        spec = fault_spec(faults=[NodeCrash(at_s=500.0)], duration=160.0)
        with pytest.raises(ValueError, match="never fire"):
            run_experiment(spec)

    def test_late_legacy_node_failure_rejected(self):
        # The old silent no-op: fail_at_s past the end simply never fired
        # and the "failure trial" ran as a healthy baseline.
        spec = ExperimentSpec(
            engine="flink",
            duration_s=80.0,
            profile=0.1e6,
            node_failure=NodeFailureSpec(fail_at_s=90.0),
            monitor_resources=False,
        )
        with pytest.raises(ValueError, match="never fire"):
            run_experiment(spec)

    def test_faults_and_node_failure_both_set_is_ambiguous(self):
        spec = ExperimentSpec(
            faults=FaultSchedule((NodeCrash(at_s=30.0),)),
            node_failure=NodeFailureSpec(fail_at_s=30.0),
        )
        with pytest.raises(ValueError, match="not both"):
            spec.resolved_faults()

    def test_fault_free_trial_has_no_recovery_metrics(self):
        result = run_experiment(
            ExperimentSpec(
                engine="flink",
                duration_s=60.0,
                profile=0.1e6,
                monitor_resources=False,
            )
        )
        assert result.recovery is None

    @pytest.mark.parametrize("engine", ["flink", "spark", "storm"])
    def test_recovery_counters_present_as_zeros_without_faults(self, engine):
        result = run_experiment(
            ExperimentSpec(
                engine=engine,
                duration_s=60.0,
                profile=0.1e6,
                monitor_resources=False,
            )
        )
        for key in (
            "faults_injected",
            "lost_weight",
            "duplicated_weight",
            "checkpoints_completed",
            "recovery_pause_total_s",
            "state_lost_weight",
        ):
            assert result.diagnostics[key] == 0.0, (engine, key)


class TestDeterminism:
    def test_same_seed_bit_identical_recovery(self):
        spec = fault_spec(
            faults=[
                SlowNode(at_s=40.0, factor=0.5, duration_s=15.0),
                NodeCrash(at_s=70.0),
                NetworkPartition(at_s=110.0, duration_s=8.0),
            ]
        )
        a = run_experiment(spec)
        b = run_experiment(spec)
        assert [m.recovery_time_s for m in a.recovery] == [
            m.recovery_time_s for m in b.recovery
        ]
        assert [m.injected_pause_s for m in a.recovery] == [
            m.injected_pause_s for m in b.recovery
        ]
        assert a.diagnostics["lost_weight"] == b.diagnostics["lost_weight"]
        assert a.mean_ingest_rate == b.mean_ingest_rate

    def test_different_seed_differs(self):
        spec = fault_spec(faults=[NodeCrash(at_s=70.0)])
        a = run_experiment(spec)
        b = run_experiment(spec.with_seed(99))
        # Ingest below capacity is seed-invariant; latency is not.
        assert a.recovery[0].baseline_p99_s != b.recovery[0].baseline_p99_s


class TestGuaranteesEndToEnd:
    def test_exactly_once_engines_lose_nothing(self):
        for engine in ("flink", "spark"):
            result = run_experiment(
                fault_spec(engine=engine, faults=[NodeCrash(at_s=70.0)])
            )
            assert result.diagnostics["lost_weight"] == 0.0, engine
            assert result.diagnostics["duplicated_weight"] == 0.0, engine

    def test_at_most_once_storm_loses_but_never_duplicates(self):
        result = run_experiment(
            fault_spec(engine="storm", faults=[NodeCrash(at_s=70.0)])
        )
        assert result.diagnostics["lost_weight"] > 0.0
        assert result.diagnostics["duplicated_weight"] == 0.0
        assert result.diagnostics["state_lost_weight"] == (
            result.diagnostics["lost_weight"]
        )

    def test_guarantee_override_turns_storm_lossless(self):
        # Acking enabled: at-least-once replay -- duplicates, no loss.
        result = run_experiment(
            fault_spec(
                engine="storm",
                faults=[NodeCrash(at_s=70.0)],
                checkpoint=CheckpointSpec(
                    guarantee=DeliveryGuarantee.AT_LEAST_ONCE
                ),
            )
        )
        assert result.diagnostics["lost_weight"] == 0.0
        assert result.diagnostics["duplicated_weight"] > 0.0

    def test_at_least_once_samza_duplicates(self):
        result = run_experiment(
            fault_spec(engine="samza", faults=[NodeCrash(at_s=70.0)])
        )
        assert result.diagnostics["lost_weight"] == 0.0
        assert result.diagnostics["duplicated_weight"] > 0.0


class TestFaultKinds:
    def test_restart_returns_capacity(self):
        result = run_experiment(
            fault_spec(faults=[ProcessRestart(at_s=70.0)])
        )
        # The bounced worker comes back after the recovery pause.
        assert result.diagnostics["active_workers"] == 4.0
        assert result.diagnostics["faults_injected"] == 1.0
        (m,) = result.recovery
        assert m.kind == "restart"
        assert m.recovered

    def test_crash_capacity_stays_lost(self):
        result = run_experiment(fault_spec(faults=[NodeCrash(at_s=70.0)]))
        assert result.diagnostics["active_workers"] == 3.0

    def test_partition_stalls_ingest_then_catches_up(self):
        result = run_experiment(
            fault_spec(faults=[NetworkPartition(at_s=70.0, duration_s=10.0)])
        )
        ingest = result.throughput.ingest_series
        during = ingest.window(71.0, 79.0).mean()
        before = ingest.window(50.0, 69.0).mean()
        assert during < 0.1 * before
        (m,) = result.recovery
        assert m.recovered
        # Catch-up drains the stranded backlog above the offered rate.
        assert m.catchup_throughput > before

    def test_slow_node_degrades_without_data_loss(self):
        result = run_experiment(
            fault_spec(
                faults=[SlowNode(at_s=70.0, factor=0.3, duration_s=20.0)],
                rate=0.5e6,
            )
        )
        assert result.diagnostics["lost_weight"] == 0.0
        (m,) = result.recovery
        assert m.kind == "slow"

    def test_queue_disconnect_stalls_watermark(self):
        result = run_experiment(
            fault_spec(
                faults=[QueueDisconnect(at_s=70.0, duration_s=8.0)]
            )
        )
        (m,) = result.recovery
        # Windows cannot close while one queue is unreachable: the
        # event-time latency excursion lasts at least the outage.
        assert m.recovered
        assert m.recovery_time_s >= 8.0

    def test_repeated_crashes_accumulate(self):
        result = run_experiment(
            fault_spec(
                faults=[NodeCrash(at_s=60.0), NodeCrash(at_s=110.0)],
                duration=200.0,
            )
        )
        assert result.diagnostics["active_workers"] == 2.0
        assert result.diagnostics["faults_injected"] == 2.0
        assert len(result.recovery) == 2


class TestDerivedPause:
    def test_explicit_override_wins(self):
        result = run_experiment(
            fault_spec(
                faults=[NodeCrash(at_s=70.0)],
                engine_config=EngineConfig(recovery_pause_s=4.5),
            )
        )
        (m,) = result.recovery
        assert m.injected_pause_s == 4.5

    def test_longer_checkpoint_interval_longer_outage(self):
        # Crash just before the next checkpoint: the replay window (and
        # with it the derived pause) scales with the interval.
        def pause(interval):
            result = run_experiment(
                fault_spec(
                    faults=[NodeCrash(at_s=59.0)],
                    checkpoint=CheckpointSpec(interval_s=interval),
                )
            )
            return result.recovery[0].injected_pause_s

        assert pause(30.0) > pause(10.0) + 5.0

    def test_detection_time_recorded(self):
        result = run_experiment(fault_spec(faults=[NodeCrash(at_s=70.0)]))
        (m,) = result.recovery
        assert m.detection_s == CheckpointSpec().detection_timeout_s

    def test_checkpoints_pause_only_checkpointing_engines(self):
        flink = run_experiment(fault_spec(faults=[NodeCrash(at_s=70.0)]))
        storm = run_experiment(
            fault_spec(engine="storm", faults=[NodeCrash(at_s=70.0)])
        )
        assert flink.diagnostics["checkpoints_completed"] > 0
        # Tuple-replay engines take no periodic checkpoint pauses.
        assert storm.diagnostics["checkpoints_completed"] == 0.0


class TestUnderFaultsCriteria:
    def test_wrapper_requires_faults(self):
        with pytest.raises(ValueError, match="no fault schedule"):
            find_sustainable_throughput_under_faults(
                ExperimentSpec(engine="flink"), high_rate=1e6
            )

    def test_recovered_trial_passes_recovery_bound(self):
        result = run_experiment(fault_spec(faults=[NodeCrash(at_s=70.0)]))
        criteria = SustainabilityCriteria(
            max_recovery_time_s=60.0, max_lost_weight=0.0
        )
        verdict = assess(result, criteria)
        recovery_reasons = [
            r for r in verdict.reasons if "recover" in r or "lost" in r
        ]
        assert not recovery_reasons

    def test_slow_recovery_flagged(self):
        result = run_experiment(fault_spec(faults=[NodeCrash(at_s=70.0)]))
        criteria = SustainabilityCriteria(max_recovery_time_s=1.0)
        verdict = assess(result, criteria)
        assert not verdict.sustainable
        assert any("recover" in r for r in verdict.reasons)

    def test_data_loss_flagged(self):
        result = run_experiment(
            fault_spec(engine="storm", faults=[NodeCrash(at_s=70.0)])
        )
        criteria = SustainabilityCriteria(max_lost_weight=0.0)
        verdict = assess(result, criteria)
        assert any("lost" in r for r in verdict.reasons)
