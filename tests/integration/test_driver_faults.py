"""Driver-side fault injection end to end.

The measurement plane is a fault domain too: these tests injure the
*instrument* (generators, driver queues) and check that the benchmark
stays honest -- the driver ledger balances with the new ``lost`` term,
a dead generator's share is re-attained by the survivors within the
detection window, and the SUT never sees any of it.
"""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.faults.schedule import (
    DriverNodeSlow,
    DriverQueueLoss,
    FaultSchedule,
    GeneratorCrash,
)
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

RATE = 24_000.0
CRASH_AT = 20.0
DETECTION_S = 2.0


def _spec(events, instances=4, duration_s=60.0, **cfg) -> ExperimentSpec:
    return ExperimentSpec(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=RATE,
        duration_s=duration_s,
        seed=9,
        generator=GeneratorConfig(
            instances=instances, rebalance_detection_s=DETECTION_S, **cfg
        ),
        monitor_resources=False,
        faults=FaultSchedule(tuple(events)),
    )


def ledger_residual(diagnostics) -> float:
    return (
        diagnostics["driver.pushed_weight"]
        - diagnostics["driver.pulled_weight"]
        - diagnostics["driver.queued_weight"]
        - diagnostics["driver.shed_weight"]
        - diagnostics["driver.lost_weight"]
    )


class TestGeneratorCrash:
    @pytest.fixture(scope="class")
    def crashed(self):
        captured = {}
        result = run_experiment(
            _spec([GeneratorCrash(at_s=CRASH_AT, instance=1)]),
            driver_hook=lambda d: captured.update(driver=d),
        )
        return result, captured["driver"]

    def test_trial_survives_and_ledger_balances(self, crashed):
        result, _ = crashed
        assert not result.failed
        scale = max(1.0, result.diagnostics["driver.pushed_weight"])
        assert abs(ledger_residual(result.diagnostics)) <= 1e-6 * scale

    def test_offered_rate_reattained_within_detection_window(self, crashed):
        result, driver = crashed
        # Ingest settles back to the full offered rate once the fleet
        # rebalances (detection window + one throughput bin of slack).
        series = result.throughput.ingest_series
        recovered = [
            v
            for t, v in zip(series.times, series.values)
            if t > CRASH_AT + DETECTION_S + 2.0
        ]
        assert recovered
        assert min(recovered) == pytest.approx(RATE, rel=0.02)
        assert result.diagnostics["driver.rebalances"] == 1.0
        assert result.diagnostics["driver.offered_shortfall_frac"] == 0.0
        # During the detection window the fleet really was degraded.
        degraded = [
            v
            for t, v in zip(series.times, series.values)
            if CRASH_AT < t <= CRASH_AT + DETECTION_S
        ]
        assert degraded and min(degraded) < 0.9 * RATE

    def test_crash_and_rebalance_are_logged(self, crashed):
        _, driver = crashed
        kinds = [entry["kind"] for entry in driver.fault_log]
        assert kinds == ["gencrash", "rebalance"]
        rebalance = driver.fault_log[1]
        assert rebalance["at_s"] == pytest.approx(CRASH_AT + DETECTION_S)
        assert rebalance["survivors"] == 3.0
        assert rebalance["share"] == pytest.approx(1.0 / 3.0)

    def test_dead_queue_does_not_wedge_the_watermark(self, crashed):
        result, _ = crashed
        # Windows keep closing after the crash: outputs exist whose
        # emit time is well past the crash + window span.
        from repro.core.latency import EVENT_TIME

        series = result.collector.series(EVENT_TIME)
        assert series.times.max() > CRASH_AT + 20.0

    def test_overprovision_shortfall_is_first_class(self):
        # Kill 3 of 4 instances: the survivor is capped at
        # overprovision/instances = 0.5 of the profile, so half the
        # offered load is unservable -- and the diagnostics must say so.
        events = [
            GeneratorCrash(at_s=CRASH_AT + i, instance=i) for i in range(3)
        ]
        result = run_experiment(_spec(events, duration_s=50.0))
        assert not result.failed
        assert result.diagnostics["driver.offered_shortfall_frac"] == (
            pytest.approx(0.5)
        )
        scale = max(1.0, result.diagnostics["driver.pushed_weight"])
        assert abs(ledger_residual(result.diagnostics)) <= 1e-6 * scale

    def test_whole_fleet_death_keeps_ledger_balanced(self):
        events = [
            GeneratorCrash(at_s=CRASH_AT + i, instance=i) for i in range(4)
        ]
        result = run_experiment(_spec(events, duration_s=40.0))
        scale = max(1.0, result.diagnostics["driver.pushed_weight"])
        assert abs(ledger_residual(result.diagnostics)) <= 1e-6 * scale


class TestDriverQueueLoss:
    def test_lost_weight_enters_the_ledger(self):
        # Inject mid-tick (off the pull boundary) so the queue holds
        # freshly pushed, not-yet-pulled weight to lose.
        captured = {}
        result = run_experiment(
            _spec([DriverQueueLoss(at_s=20.025, queue_index=0)]),
            driver_hook=lambda d: captured.update(driver=d),
        )
        assert not result.failed
        d = result.diagnostics
        scale = max(1.0, d["driver.pushed_weight"])
        assert abs(ledger_residual(d)) <= 1e-6 * scale
        (entry,) = [
            e for e in captured["driver"].fault_log if e["kind"] == "queueloss"
        ]
        assert entry["lost_weight"] == d["driver.lost_weight"]
        assert d["driver.lost_weight"] > 0

    def test_sut_is_never_told(self):
        result = run_experiment(
            _spec([DriverQueueLoss(at_s=20.025, queue_index=0)])
        )
        # Engine-side fault accounting stays empty: the fault lives
        # entirely in the measurement plane.
        assert result.diagnostics.get("faults_injected", 0.0) == 0.0


class TestDriverNodeSlow:
    def test_rate_dips_then_recovers(self):
        result = run_experiment(
            _spec(
                [
                    DriverNodeSlow(
                        at_s=20.0, instance=0, factor=0.4, duration_s=10.0
                    )
                ]
            )
        )
        assert not result.failed
        series = result.throughput.ingest_series
        during = [
            v
            for t, v in zip(series.times, series.values)
            if 21.0 < t <= 29.0
        ]
        after = [
            v
            for t, v in zip(series.times, series.values)
            if t > 32.0
        ]
        # One of four instances at 0.4x: fleet rate ~ 0.85x offered.
        assert during and max(during) < 0.95 * RATE
        assert after and min(after) == pytest.approx(RATE, rel=0.02)


class TestRecoveryMetrology:
    def test_driver_faults_get_recovery_entries(self):
        result = run_experiment(
            _spec([GeneratorCrash(at_s=CRASH_AT, instance=0)])
        )
        assert result.recovery is not None
        kinds = {entry.kind for entry in result.recovery}
        assert "gencrash" in kinds
