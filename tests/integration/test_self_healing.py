"""Self-healing acceptance tests (PR 4).

The headline scenarios from the issue:

- a NodeCrash that kills the *last* worker fails the trial when no
  standby exists (flagged on the TrialResult with diagnostics intact --
  the satellite-1 regression) and completes with bounded post-recovery
  latency when ``standby=1``;
- shed weight is first-class in the conservation ledgers;
- transient faults below the failure detector's timeout never trigger a
  migration; network partitions never touch the standby pool;
- the online AIMD probe lands within one probe-step of the offline
  bisection, and both searches pin the same NaN edge behaviour when no
  rate is ever sustainable.
"""

import math

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.sustainable import (
    find_sustainable_throughput,
    find_sustainable_throughput_online,
    find_sustainable_throughput_under_faults,
)
from repro.engines import engine_class
from repro.faults.schedule import (
    FaultSchedule,
    NetworkPartition,
    NodeCrash,
    SlowNode,
)
from repro.recovery.reschedule import MODE_SPREAD, ReschedulePolicy
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery


def make_spec(**overrides):
    base = dict(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(8, 4)),
        workers=2,
        profile=0.2e6,
        duration_s=60.0,
        seed=5,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def crash_all_workers(**overrides):
    return make_spec(
        faults=FaultSchedule((NodeCrash(at_s=30.0, nodes=2),)), **overrides
    )


class TestLastWorkerCrash:
    """The acceptance criterion: standby pools turn a fatal crash into a
    survivable one, and the fatal case degrades gracefully."""

    def test_no_standby_fails_with_diagnostics_preserved(self):
        # Satellite 1: SutFailure mid-run must leave a *failed* trial
        # with partial diagnostics, not a half-empty result.
        result = run_experiment(crash_all_workers())
        assert result.failed
        assert "standby" in (result.failure or "")
        assert result.failure_time == pytest.approx(30.0, abs=2.0)
        # Diagnostics survive: the fault was logged before the abort.
        assert result.diagnostics["faults_injected"] == 1.0
        assert result.diagnostics["active_workers"] == 0.0
        assert "conservation.ingested" in result.diagnostics
        assert result.recovery is not None and len(result.recovery) == 1

    def test_one_standby_survives_with_bounded_latency(self):
        result = run_experiment(crash_all_workers(standby=1))
        assert not result.failed
        assert result.diagnostics["standbys_promoted"] == 1.0
        # Post-recovery the SUT caught up: the backlog at trial end is
        # bounded, not diverging.
        assert result.throughput.queue_delay_at_end() < 10.0
        assert result.event_latency.p99 < 30.0

    def test_partial_crash_with_spread_pays_migration(self):
        # MODE_SPREAD migrates the dead node's state share over the
        # survivors: same survivor count as legacy, but a real pause.
        legacy = run_experiment(
            make_spec(
                faults=FaultSchedule((NodeCrash(at_s=30.0, nodes=1),)),
                workers=4,
            )
        )
        spread = run_experiment(
            make_spec(
                faults=FaultSchedule((NodeCrash(at_s=30.0, nodes=1),)),
                workers=4,
                reschedule=ReschedulePolicy(mode=MODE_SPREAD),
            )
        )
        assert not legacy.failed and not spread.failed
        assert (
            spread.diagnostics["recovery_pause_total_s"]
            > legacy.diagnostics["recovery_pause_total_s"]
        )


class TestTransientFaultsAndStandbys:
    def test_short_slowdown_never_migrates(self):
        # 1.5 s straggler < 2 s detection timeout: the fault clears
        # before the detector fires, so the standby stays in the pool.
        result = run_experiment(
            make_spec(
                faults=FaultSchedule(
                    (SlowNode(at_s=30.0, nodes=1, factor=0.5, duration_s=1.5),)
                ),
                standby=1,
            )
        )
        assert not result.failed
        assert result.diagnostics["standbys_promoted"] == 0.0
        assert result.diagnostics["standbys_available"] == 1.0

    def test_detected_straggler_is_replaced(self):
        result = run_experiment(
            make_spec(
                faults=FaultSchedule(
                    (SlowNode(at_s=30.0, nodes=1, factor=0.5, duration_s=15.0),)
                ),
                standby=1,
            )
        )
        assert not result.failed
        assert result.diagnostics["standbys_promoted"] == 1.0
        assert result.diagnostics["standbys_available"] == 0.0

    def test_network_partition_never_touches_the_pool(self):
        # A partition is nobody's fault: no node died, nothing to
        # reschedule, the pool must be untouched.
        result = run_experiment(
            make_spec(
                faults=FaultSchedule(
                    (NetworkPartition(at_s=30.0, duration_s=5.0),)
                ),
                standby=1,
            )
        )
        assert not result.failed
        assert result.diagnostics["standbys_promoted"] == 0.0
        assert result.diagnostics["standbys_available"] == 1.0


class TestLoadShedding:
    def test_shed_bounds_latency_and_balances_ledgers(self):
        baseline = run_experiment(make_spec(profile=2.5e6, duration_s=40.0))
        shed = run_experiment(
            make_spec(
                profile=2.5e6,
                duration_s=40.0,
                degradation=engine_class("flink").recommended_degradation(),
            )
        )
        # Shedding holds the queueing delay inside the policy bound
        # where the baseline backlog grows without limit.
        assert baseline.throughput.queue_delay_at_end() > 10.0
        assert shed.throughput.queue_delay_at_end() < 5.0
        d = shed.diagnostics
        assert d["shed_weight"] > 0.0
        # Driver-side ledger: pushed == pulled + queued + shed.
        assert d["driver.pushed_weight"] == pytest.approx(
            d["driver.pulled_weight"]
            + d["driver.queued_weight"]
            + d["driver.shed_weight"],
            rel=1e-9,
        )
        # The engine's shed term mirrors the driver's (same events).
        assert d["conservation.shed"] == pytest.approx(
            d["driver.shed_weight"], rel=1e-9
        )

    def test_inert_policy_sheds_nothing(self):
        result = run_experiment(make_spec(duration_s=40.0))
        assert result.diagnostics["shed_weight"] == 0.0
        assert result.diagnostics["driver.shed_weight"] == 0.0


class TestOnlineSearch:
    def test_online_lands_within_one_probe_step_of_offline(self):
        # The acceptance criterion: single-trial AIMD vs full offline
        # bisection at rel_tol=0.05 -- the two must agree within one
        # probe step (5%).
        spec = make_spec(duration_s=120.0, seed=7)
        online = find_sustainable_throughput_online(spec, high_rate=2.0e6)
        offline = find_sustainable_throughput(
            spec, high_rate=2.0e6, rel_tol=0.05
        )
        assert online.found and offline.found
        rel_diff = (
            abs(online.sustainable_rate - offline.sustainable_rate)
            / offline.sustainable_rate
        )
        assert rel_diff < 0.05, (
            f"online {online.sustainable_rate:.0f} vs "
            f"offline {offline.sustainable_rate:.0f}"
        )
        # And it really was a single trial steered by many decisions.
        assert online.decision_count > 10
        assert len(online.trajectory) > 0

    def test_nan_edge_pinned_across_both_searches(self):
        # Satellite 2: when no probed rate is ever sustainable, the
        # plain and under-faults searches must agree on the NaN "not
        # found" contract (not report an unprobed floor as measured).
        failed = run_experiment(crash_all_workers(duration_s=40.0))
        assert failed.failed

        def always_fails(spec):
            return failed

        plain = find_sustainable_throughput(
            make_spec(), high_rate=1e6, max_trials=3, run=always_fails
        )
        under_faults = find_sustainable_throughput_under_faults(
            crash_all_workers(),
            high_rate=1e6,
            max_trials=3,
            run=always_fails,
        )
        assert math.isnan(plain.sustainable_rate)
        assert math.isnan(under_faults.sustainable_rate)
        assert not plain.found and not under_faults.found
        # Both actually probed (trials recorded, all unsustainable).
        assert plain.trial_count == 3
        assert under_faults.trial_count == 3
        assert all(not t.verdict.sustainable for t in plain.trials)
