"""The paper's worked examples (Figures 1 and 2) as end-to-end tests.

These are the strongest fidelity tests in the suite: the paper gives
concrete numbers for its latency semantics, and the operator stack must
reproduce them exactly.
"""

import pytest

from repro.core.records import ADS, PURCHASES, Record
from repro.engines.operators.aggregate import aggregation_outputs
from repro.engines.operators.join import JoinWindowStore, join_window_outputs
from repro.engines.operators.window import KeyedWindowStore
from repro.workloads.queries import WindowSpec

# Keys standing in for the country names of Figure 1.
GER, US, JPN = 1, 2, 3


class TestFigure1Aggregation:
    """Figure 1: a 10-minute window (5, 605], SUM by key, emitted at 610.

    Events (key, time, price):
      Ger: (595, 20), (590, 20), (580, 43)  -> sum 83, max time 595
      US:  (580, 12), (590, 20), (600, 10)  -> sum 42, max time 600
      Jpn: (580, 33), (590, 20), (599, 77)  -> sum 130, max time 599
    Output latencies at emission time 610: Ger 15, US 10, Jpn 11.
    """

    EVENTS = [
        (GER, 595.0, 20.0),
        (GER, 590.0, 20.0),
        (GER, 580.0, 43.0),
        (US, 580.0, 12.0),
        (US, 590.0, 20.0),
        (US, 600.0, 10.0),
        (JPN, 580.0, 33.0),
        (JPN, 590.0, 20.0),
        (JPN, 599.0, 77.0),
    ]

    def build_window(self):
        # A 600-second tumbling window whose first window ends at 605 is
        # approximated by aligning indices: use (5, 605] via a 600 s
        # window with events shifted by -5 (alignment does not affect
        # sums or maxima).  Simpler: a 605-second window ending at 605.
        store = KeyedWindowStore(WindowSpec(605.0, 605.0))
        for key, time, price in self.EVENTS:
            store.add(
                Record(
                    key=key,
                    value=price,
                    event_time=time,
                    ingest_time=601.0,
                )
            )
        return store.close(1)

    def test_sums_match_figure(self):
        contents = self.build_window()
        assert contents.by_key[GER].value == pytest.approx(83.0)
        assert contents.by_key[US].value == pytest.approx(42.0)
        assert contents.by_key[JPN].value == pytest.approx(130.0)

    def test_output_event_times_are_per_key_maxima(self):
        contents = self.build_window()
        assert contents.by_key[GER].max_event_time == 595.0
        assert contents.by_key[US].max_event_time == 600.0
        assert contents.by_key[JPN].max_event_time == 599.0

    def test_latencies_at_emission_610(self):
        outputs = {
            o.key: o for o in aggregation_outputs(self.build_window(), 610.0)
        }
        assert outputs[GER].event_time_latency == pytest.approx(15.0)
        assert outputs[US].event_time_latency == pytest.approx(10.0)
        assert outputs[JPN].event_time_latency == pytest.approx(11.0)

    def test_processing_latency_uses_ingest_time(self):
        outputs = {
            o.key: o for o in aggregation_outputs(self.build_window(), 610.0)
        }
        # All events ingested at 601 -> processing latency 9 for all keys.
        for out in outputs.values():
            assert out.processing_time_latency == pytest.approx(9.0)


class TestFigure2Join:
    """Figure 2: ads and purchases joined over a 10-minute window.

    Ads window max_time = 500 (one ad at 500 for user 1 / gem pack 2);
    purchases window max_time = 600 (purchases at 580, 550, 600).
    Join outputs carry event-time max(600, 500) = 600; emitted at 630
    the latency is 30.
    """

    KEY = 12  # composite (userID=1, gemPackID=2)

    def build_store(self):
        store = JoinWindowStore(WindowSpec(605.0, 605.0))
        store.add(
            Record(
                key=self.KEY,
                value=0.0,
                event_time=500.0,
                stream=ADS,
                ingest_time=601.0,
            )
        )
        for time, price in [(580.0, 10.0), (550.0, 20.0), (600.0, 30.0)]:
            store.add(
                Record(
                    key=self.KEY,
                    value=price,
                    event_time=time,
                    stream=PURCHASES,
                    ingest_time=601.0,
                )
            )
        return store

    def test_window_maxima(self):
        closed = self.build_store().close(1)
        assert closed.purchases.max_event_time == 600.0
        assert closed.ads.max_event_time == 500.0
        assert closed.max_event_time == 600.0

    def test_join_output_latency_30_at_630(self):
        closed = self.build_store().close(1)
        outputs = join_window_outputs(closed, selectivity=1.0, emit_time=630.0)
        assert outputs, "expected a join match"
        for out in outputs:
            assert out.event_time == pytest.approx(600.0)
            assert out.event_time_latency == pytest.approx(30.0)
