"""Trial watchdog: stall/timeout detection, retry with backoff."""

import pytest

from repro.core.experiment import (
    ExperimentSpec,
    run_experiment,
    run_experiment_with_watchdog,
)
from repro.core.generator import GeneratorConfig
from repro.faults.schedule import FaultSchedule, GeneratorCrash
from repro.metrology import TrialWatchdog, WatchdogSpec
from repro.sim.failures import MeasurementFault, SutFailure
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery


def _spec(faults=None, duration_s=50.0, seed=3) -> ExperimentSpec:
    return ExperimentSpec(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=20_000.0,
        duration_s=duration_s,
        seed=seed,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        faults=faults,
    )


#: Kills the whole 2-instance fleet: no pushes after t=21, so the
#: driver progress tuple freezes and a stall watchdog must trip.
FLEET_DEATH = FaultSchedule(
    (GeneratorCrash(at_s=20.0, instance=0), GeneratorCrash(at_s=21.0, instance=1))
)


class TestWatchdogSpec:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            WatchdogSpec(stall_s=0.0)
        with pytest.raises(ValueError):
            WatchdogSpec(timeout_s=-1.0)
        with pytest.raises(ValueError):
            WatchdogSpec(max_attempts=0)
        with pytest.raises(ValueError):
            WatchdogSpec(backoff_factor=0.5)

    def test_backoff_is_capped_exponential(self):
        spec = WatchdogSpec(
            backoff_base_s=1.0, backoff_factor=3.0, backoff_cap_s=5.0
        )
        assert spec.backoff_s(0) == 1.0
        assert spec.backoff_s(1) == 3.0
        assert spec.backoff_s(2) == 5.0  # capped, not 9


class TestStallDetection:
    def test_dead_fleet_trips_the_stall_check(self):
        dog = TrialWatchdog(WatchdogSpec(stall_s=5.0))
        result = run_experiment(_spec(FLEET_DEATH), driver_hook=dog.install)
        assert isinstance(dog.tripped, MeasurementFault)
        assert result.failed
        assert "no driver progress" in result.failure
        # Partial diagnostics survive the abort (like any SutFailure).
        assert result.diagnostics["driver.pushed_weight"] > 0
        assert dog.outcome(result) == "stalled"

    def test_healthy_trial_never_trips(self):
        dog = TrialWatchdog(WatchdogSpec(stall_s=5.0, timeout_s=600.0))
        result = run_experiment(_spec(), driver_hook=dog.install)
        assert dog.tripped is None
        assert not result.failed
        assert dog.outcome(result) == "completed"

    def test_watchdog_abort_is_logged_as_fatal_fault(self):
        dog = TrialWatchdog(WatchdogSpec(stall_s=5.0))
        captured = {}

        def hook(driver):
            captured["driver"] = driver
            dog.install(driver)

        run_experiment(_spec(FLEET_DEATH), driver_hook=hook)
        fatal = [e for e in captured["driver"].fault_log if e.get("fatal")]
        assert fatal and fatal[0]["kind"] == "watchdog"


class TestRetry:
    def test_stalled_trial_retried_with_fresh_seed_and_backoff(self):
        sleeps = []
        wd = WatchdogSpec(stall_s=5.0, max_attempts=3, backoff_base_s=0.2)
        result = run_experiment_with_watchdog(
            _spec(FLEET_DEATH), wd, sleep=sleeps.append
        )
        # The fleet is dead on every attempt: all three stall.
        assert [a.outcome for a in result.attempts] == ["stalled"] * 3
        assert [a.seed for a in result.attempts] == [3, 4, 5]
        assert sleeps == [0.2, 0.4]
        assert result.diagnostics["watchdog.attempts"] == 3.0
        assert result.diagnostics["watchdog.retries"] == 2.0
        assert result.diagnostics["watchdog.tripped"] == 1.0

    def test_clean_trial_runs_once(self):
        result = run_experiment_with_watchdog(
            _spec(), WatchdogSpec(stall_s=5.0), sleep=lambda s: None
        )
        assert not result.failed
        assert [a.outcome for a in result.attempts] == ["completed"]
        assert result.diagnostics["watchdog.retries"] == 0.0
        assert result.diagnostics["watchdog.tripped"] == 0.0

    def test_non_watchdog_failure_is_not_retried(self):
        # An overloaded trial fails on its own; the watchdog must not
        # mistake a legitimate SUT failure for a measurement problem.
        spec = ExperimentSpec(
            engine="flink",
            query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
            workers=2,
            profile=3e6,
            duration_s=40.0,
            seed=2,
            generator=GeneratorConfig(
                instances=2, queue_capacity_seconds=2.0
            ),
            monitor_resources=False,
        )
        result = run_experiment_with_watchdog(
            spec, WatchdogSpec(stall_s=10.0), sleep=lambda s: None
        )
        assert result.failed
        assert [a.outcome for a in result.attempts] == ["failed"]

    def test_attempts_survive_into_the_export(self):
        from repro.analysis.export import trial_to_dict

        result = run_experiment_with_watchdog(
            _spec(FLEET_DEATH),
            WatchdogSpec(stall_s=5.0, max_attempts=2, backoff_base_s=0.0),
            sleep=lambda s: None,
        )
        payload = trial_to_dict(result)
        assert [a["outcome"] for a in payload["attempts"]] == [
            "stalled",
            "stalled",
        ]


class TestFailureTaxonomy:
    def test_measurement_fault_is_a_sut_failure(self):
        # Deliberate: the driver's existing failure path converts any
        # SutFailure into a failed TrialResult with partial diagnostics.
        assert issubclass(MeasurementFault, SutFailure)
