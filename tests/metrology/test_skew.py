"""Skew-aware correction layer: regression against skew-free goldens.

The whole point of the measurement-plane clock model is a *quantified*
promise: with NTP-style correction the reported event-time latency is
within the exported bound of what a perfectly-clocked driver would
report, while an uncorrected cluster demonstrably violates that bound.
The same-seed skew-free run is a legitimate golden because the clock
model never touches SUT dynamics -- only the measurement plane reads
skewed clocks.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.engines.ext  # noqa: F401  (registers heron/samza)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.sim.clock import ClockSkewSpec
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

ENGINES = ("flink", "storm", "spark", "heron", "samza")

QUANTILES = ("mean", "p90", "p95", "p99")


def _spec(engine: str, clock_skew=None) -> ExperimentSpec:
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=20_000.0,
        duration_s=32.0,
        seed=11,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
        clock_skew=clock_skew,
    )


#: Same-seed skew-free goldens, one trial per engine (cached: the
#: property test compares many clock configs against the same golden).
_GOLDEN: dict = {}


def golden(engine: str):
    if engine not in _GOLDEN:
        _GOLDEN[engine] = run_experiment(_spec(engine))
    return _GOLDEN[engine]


def quantiles(result):
    summary = result.event_latency
    return {q: getattr(summary, q) for q in QUANTILES}


class TestSkewRegression:
    #: Paper-realistic magnitudes: tens of ms offsets, tens of ppm
    #: drift, sub-ms NTP residual.
    SKEW = ClockSkewSpec(
        offset_s=0.020, drift_ppm=40.0, ntp_interval_s=20.0,
        ntp_residual_s=0.0005,
    )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_corrected_latency_within_exported_bound(self, engine):
        base = golden(engine)
        skewed = run_experiment(_spec(engine, clock_skew=self.SKEW))
        bound = skewed.diagnostics["metrology.skew_bound_s"]
        assert bound > 0
        for q, value in quantiles(skewed).items():
            assert abs(value - quantiles(base)[q]) <= bound, q
        assert (
            skewed.diagnostics["metrology.skew_max_error_s"] <= bound
        )
        assert skewed.diagnostics["metrology.skew_within_bound"] == 1.0
        assert skewed.diagnostics["metrology.skew_corrected"] == 1.0

    @pytest.mark.parametrize("engine", ("flink", "samza"))
    def test_uncorrected_clocks_violate_the_bound(self, engine):
        uncorrected = ClockSkewSpec(
            offset_s=self.SKEW.offset_s,
            drift_ppm=self.SKEW.drift_ppm,
            ntp_interval_s=self.SKEW.ntp_interval_s,
            ntp_residual_s=self.SKEW.ntp_residual_s,
            corrected=False,
        )
        result = run_experiment(_spec(engine, clock_skew=uncorrected))
        bound = result.diagnostics["metrology.skew_bound_s"]
        # The raw 20 ms offsets dwarf the ~1.3 ms disciplined bound.
        assert result.diagnostics["metrology.skew_max_error_s"] > bound
        assert result.diagnostics["metrology.skew_within_bound"] == 0.0
        assert result.diagnostics["metrology.skew_corrected"] == 0.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_skew_never_touches_sut_dynamics(self, engine):
        base = golden(engine)
        skewed = run_experiment(_spec(engine, clock_skew=self.SKEW))
        assert skewed.mean_ingest_rate == base.mean_ingest_rate
        assert len(skewed.collector) == len(base.collector)
        for key in ("driver.pushed_weight", "driver.pulled_weight"):
            assert skewed.diagnostics[key] == base.diagnostics[key]


clock_specs = st.builds(
    ClockSkewSpec,
    offset_s=st.floats(0.0, 0.1),
    drift_ppm=st.floats(0.0, 200.0),
    ntp_interval_s=st.floats(5.0, 60.0),
    ntp_residual_s=st.floats(0.0, 0.002),
)


class TestSkewProperty:
    """Hypothesis: the bound holds for *any* in-range clock config."""

    @pytest.mark.parametrize("engine", ENGINES)
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(skew=clock_specs)
    def test_corrected_latency_within_bound(self, engine, skew):
        base = golden(engine)
        skewed = run_experiment(_spec(engine, clock_skew=skew))
        bound = skewed.diagnostics["metrology.skew_bound_s"]
        assert (
            skewed.diagnostics["metrology.skew_max_error_s"] <= bound
        )
        for q, value in quantiles(skewed).items():
            assert abs(value - quantiles(base)[q]) <= bound, q
