"""Unit tests for the per-node clock model (`repro.sim.clock`)."""

import numpy as np
import pytest

from repro.sim.clock import ClockSkewSpec, NodeClock


class TestClockSkewSpec:
    def test_defaults_are_paper_realistic(self):
        spec = ClockSkewSpec()
        assert spec.offset_s == pytest.approx(0.005)
        assert spec.drift_ppm == pytest.approx(20.0)
        assert spec.corrected

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ClockSkewSpec(offset_s=-0.001)
        with pytest.raises(ValueError):
            ClockSkewSpec(drift_ppm=-1.0)
        with pytest.raises(ValueError):
            ClockSkewSpec(ntp_interval_s=0.0)
        with pytest.raises(ValueError):
            ClockSkewSpec(ntp_residual_s=-0.1)

    def test_disciplined_error_bound(self):
        # Between syncs the estimate ages at the drift rate: the bound
        # is the residual plus a full interval of drift.
        spec = ClockSkewSpec(
            drift_ppm=50.0, ntp_interval_s=10.0, ntp_residual_s=0.001
        )
        assert spec.disciplined_error_bound_s == pytest.approx(
            0.001 + 50e-6 * 10.0
        )

    def test_fleet_is_deterministic_in_the_rng(self):
        spec = ClockSkewSpec()
        a = spec.build_fleet(np.random.default_rng(5), count=4)
        b = spec.build_fleet(np.random.default_rng(5), count=4)
        assert [c.offset_s for c in a] == [c.offset_s for c in b]
        assert [c.drift_rate for c in a] == [c.drift_rate for c in b]

    def test_fleet_respects_spec_magnitudes(self):
        spec = ClockSkewSpec(offset_s=0.002, drift_ppm=10.0)
        for clock in spec.build_fleet(np.random.default_rng(0), count=32):
            assert abs(clock.offset_s) <= 0.002
            assert abs(clock.drift_rate) <= 10e-6


class TestNodeClock:
    def _clock(self, **spec_kw) -> NodeClock:
        spec = ClockSkewSpec(**spec_kw)
        (clock,) = spec.build_fleet(np.random.default_rng(3), count=1)
        return clock

    def test_raw_error_is_offset_plus_drift(self):
        clock = self._clock(corrected=False)
        t = 100.0
        assert clock.error(t) == pytest.approx(
            clock.offset_s + clock.drift_rate * t
        )
        assert clock.measurement_error(t) == clock.error(t)

    def test_read_applies_the_error(self):
        clock = self._clock()
        assert clock.read(50.0) == pytest.approx(
            50.0 + clock.measurement_error(50.0)
        )

    def test_disciplined_error_within_bound_everywhere(self):
        clock = self._clock(
            offset_s=0.050, drift_ppm=100.0, ntp_interval_s=15.0,
            ntp_residual_s=0.0005,
        )
        for t in np.linspace(0.0, 600.0, 4001):
            assert abs(clock.disciplined_error(float(t))) <= clock.error_bound_s

    def test_discipline_beats_raw_error_at_late_times(self):
        # A 50 ms offset never decays raw, but one NTP sync removes it.
        clock = self._clock(offset_s=0.050, drift_ppm=20.0)
        t = 400.0
        assert abs(clock.disciplined_error(t)) < abs(clock.error(t))

    def test_sync_residuals_are_deterministic(self):
        clock = self._clock()
        assert clock.disciplined_error(95.0) == clock.disciplined_error(95.0)
        # Different epochs draw independent residuals.
        epochs = {round(clock.disciplined_error(30.0 * k + 1.0), 12)
                  for k in range(1, 9)}
        assert len(epochs) > 1
