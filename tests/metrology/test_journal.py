"""Checkpoint/resume journals: kill-at-trial-k resume byte-identity."""

import json
import os

import pytest

from repro.analysis.export import search_to_dict
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.sustainable import (
    SustainabilityCriteria,
    find_sustainable_throughput,
    search_fingerprint,
)
from repro.metrology import JournalMismatch, TrialJournal
from repro.metrology.journal import MISSING, shard_path
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

HIGH_RATE = 400_000.0


def _spec() -> ExperimentSpec:
    return ExperimentSpec(
        engine="storm",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=HIGH_RATE,
        duration_s=30.0,
        seed=5,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )


def _fingerprint(spec) -> str:
    return search_fingerprint(
        spec,
        high_rate=HIGH_RATE,
        low_rate=0.0,
        rel_tol=0.05,
        criteria=SustainabilityCriteria(),
        max_trials=12,
    )


class TestJournalBasics:
    def test_get_miss_then_record_then_hit(self, tmp_path):
        journal = TrialJournal(tmp_path / "j.json", fingerprint="fp")
        assert journal.get("k") is None
        journal.record("k", {"x": 1.5})
        assert journal.get("k") == {"x": 1.5}
        # The file is flushed immediately: a crash right now loses
        # nothing already recorded.
        reopened = TrialJournal(
            tmp_path / "j.json", fingerprint="fp", resume=True
        )
        assert reopened.get("k") == {"x": 1.5}

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TrialJournal(tmp_path / "missing.json", fingerprint="fp", resume=True)

    def test_fingerprint_mismatch_refuses_to_resume(self, tmp_path):
        TrialJournal(tmp_path / "j.json", fingerprint="fp-a").record("k", {})
        with pytest.raises(JournalMismatch):
            TrialJournal(tmp_path / "j.json", fingerprint="fp-b", resume=True)

    def test_fresh_journal_overwrites_stale_file(self, tmp_path):
        path = tmp_path / "j.json"
        TrialJournal(path, fingerprint="fp-a").record("k", {"x": 1.0})
        fresh = TrialJournal(path, fingerprint="fp-b")
        assert fresh.get("k") is None

    def test_journaled_none_is_a_hit_not_a_miss(self, tmp_path):
        # A trial can legitimately export null; replaying it must not
        # be mistaken for "never ran" (which would re-run the trial and
        # count the lookup as a miss).
        journal = TrialJournal(tmp_path / "j.json", fingerprint="fp")
        journal.record("null-trial", None)
        assert "null-trial" in journal
        assert journal.get("null-trial", MISSING) is None
        assert (journal.hits, journal.misses) == (1, 0)
        assert journal.get("absent", MISSING) is MISSING
        assert (journal.hits, journal.misses) == (1, 1)

    def test_contains_does_not_touch_counters(self, tmp_path):
        journal = TrialJournal(tmp_path / "j.json", fingerprint="fp")
        journal.record("k", 1)
        assert "k" in journal and "other" not in journal
        assert (journal.hits, journal.misses) == (0, 0)


class TestAtomicity:
    def test_flush_uses_per_process_temp_and_fsyncs(
        self, tmp_path, monkeypatch
    ):
        # Concurrent writers (parent journal + worker shards in one
        # directory) must never share a temp name, and the data must be
        # durable before the rename publishes it.
        replaced, synced = [], []
        real_replace, real_fsync = os.replace, os.fsync
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (replaced.append(str(src)),
                              real_replace(src, dst)),
        )
        monkeypatch.setattr(
            os, "fsync",
            lambda fd: (synced.append(fd), real_fsync(fd)),
        )
        journal = TrialJournal(tmp_path / "j.json", fingerprint="fp")
        journal.record("k", {"x": 1.0})
        assert replaced and replaced[0].endswith(f".tmp.{os.getpid()}")
        # One fsync for the temp file's data, one for the directory
        # entry after the rename.
        assert len(synced) >= 2
        assert not list(tmp_path.glob("*.tmp.*"))  # temp file gone


class TestShards:
    def test_shard_path_naming(self, tmp_path):
        path = tmp_path / "journal.json"
        assert shard_path(path, 3).name == "journal.json.shard-w3"
        assert shard_path(path, 3).parent == path.parent

    def test_merge_shards_folds_and_removes(self, tmp_path):
        path = tmp_path / "j.json"
        parent = TrialJournal(path, fingerprint="fp")
        parent.record("a", 1)
        for index, key in enumerate(["b", "c"]):
            TrialJournal(shard_path(path, index), fingerprint="fp").record(
                key, index
            )
        added = parent.merge_shards()
        assert added == 2
        assert parent.shard_paths() == []
        # The merged state is flushed: a reopened journal sees it all.
        reopened = TrialJournal(path, fingerprint="fp", resume=True)
        assert len(reopened) == 3

    def test_absorb_existing_keys_win(self, tmp_path):
        path = tmp_path / "j.json"
        parent = TrialJournal(path, fingerprint="fp")
        parent.record("a", "parent")
        shard = TrialJournal(shard_path(path, 0), fingerprint="fp")
        shard.record("a", "shard")
        shard.record("b", "shard")
        assert parent.merge_shards() == 1
        assert parent.get("a") == "parent"

    def test_absorb_refuses_foreign_fingerprint(self, tmp_path):
        path = tmp_path / "j.json"
        parent = TrialJournal(path, fingerprint="fp-a")
        TrialJournal(shard_path(path, 0), fingerprint="fp-b").record("k", 1)
        with pytest.raises(JournalMismatch):
            parent.merge_shards()

    def test_fresh_journal_deletes_stale_shards(self, tmp_path):
        path = tmp_path / "j.json"
        TrialJournal(shard_path(path, 0), fingerprint="fp-old").record("k", 1)
        fresh = TrialJournal(path, fingerprint="fp-new")
        assert fresh.shard_paths() == []

    def test_resume_merges_leftover_shards(self, tmp_path):
        path = tmp_path / "j.json"
        TrialJournal(path, fingerprint="fp").record("a", 1)
        TrialJournal(shard_path(path, 2), fingerprint="fp").record("b", 2)
        resumed = TrialJournal(path, fingerprint="fp", resume=True)
        assert resumed.get("b") == 2
        assert resumed.shard_paths() == []


class TestSearchResume:
    class Killed(RuntimeError):
        pass

    def _killing_run(self, live_budget):
        """A run callable that dies after ``live_budget`` live trials --
        the moral equivalent of kill -9 at trial k."""
        remaining = [live_budget]

        def run(spec):
            if remaining[0] <= 0:
                raise self.Killed()
            remaining[0] -= 1
            return run_experiment(spec)

        return run

    @pytest.mark.parametrize("kill_after", [1, 2])
    def test_killed_then_resumed_search_is_byte_identical(
        self, tmp_path, kill_after
    ):
        spec = _spec()
        reference = find_sustainable_throughput(spec, high_rate=HIGH_RATE)
        reference_json = json.dumps(
            search_to_dict(reference), indent=2, sort_keys=True
        )

        path = tmp_path / "journal.json"
        journal = TrialJournal(path, fingerprint=_fingerprint(spec))
        with pytest.raises(self.Killed):
            find_sustainable_throughput(
                spec,
                high_rate=HIGH_RATE,
                run=self._killing_run(kill_after),
                journal=journal,
            )

        resumed_journal = TrialJournal(
            path, fingerprint=_fingerprint(spec), resume=True
        )
        resumed = find_sustainable_throughput(
            spec, high_rate=HIGH_RATE, journal=resumed_journal
        )
        assert resumed_journal.hits == kill_after
        assert resumed_journal.misses == reference.trial_count - kill_after
        resumed_json = json.dumps(
            search_to_dict(resumed), indent=2, sort_keys=True
        )
        assert resumed_json == reference_json

    def test_fully_journaled_search_runs_zero_trials(self, tmp_path):
        spec = _spec()
        path = tmp_path / "journal.json"
        first = find_sustainable_throughput(
            spec,
            high_rate=HIGH_RATE,
            journal=TrialJournal(path, fingerprint=_fingerprint(spec)),
        )
        replay_journal = TrialJournal(
            path, fingerprint=_fingerprint(spec), resume=True
        )

        def forbidden_run(spec):
            raise AssertionError("journaled search must not re-run trials")

        replay = find_sustainable_throughput(
            spec,
            high_rate=HIGH_RATE,
            run=forbidden_run,
            journal=replay_journal,
        )
        assert replay_journal.misses == 0
        assert replay.sustainable_rate == first.sustainable_rate
