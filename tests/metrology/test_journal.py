"""Checkpoint/resume journals: kill-at-trial-k resume byte-identity."""

import json

import pytest

from repro.analysis.export import search_to_dict
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.sustainable import (
    SustainabilityCriteria,
    find_sustainable_throughput,
    search_fingerprint,
)
from repro.metrology import JournalMismatch, TrialJournal
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

HIGH_RATE = 400_000.0


def _spec() -> ExperimentSpec:
    return ExperimentSpec(
        engine="storm",
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=2,
        profile=HIGH_RATE,
        duration_s=30.0,
        seed=5,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )


def _fingerprint(spec) -> str:
    return search_fingerprint(
        spec,
        high_rate=HIGH_RATE,
        low_rate=0.0,
        rel_tol=0.05,
        criteria=SustainabilityCriteria(),
        max_trials=12,
    )


class TestJournalBasics:
    def test_get_miss_then_record_then_hit(self, tmp_path):
        journal = TrialJournal(tmp_path / "j.json", fingerprint="fp")
        assert journal.get("k") is None
        journal.record("k", {"x": 1.5})
        assert journal.get("k") == {"x": 1.5}
        # The file is flushed immediately: a crash right now loses
        # nothing already recorded.
        reopened = TrialJournal(
            tmp_path / "j.json", fingerprint="fp", resume=True
        )
        assert reopened.get("k") == {"x": 1.5}

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TrialJournal(tmp_path / "missing.json", fingerprint="fp", resume=True)

    def test_fingerprint_mismatch_refuses_to_resume(self, tmp_path):
        TrialJournal(tmp_path / "j.json", fingerprint="fp-a").record("k", {})
        with pytest.raises(JournalMismatch):
            TrialJournal(tmp_path / "j.json", fingerprint="fp-b", resume=True)

    def test_fresh_journal_overwrites_stale_file(self, tmp_path):
        path = tmp_path / "j.json"
        TrialJournal(path, fingerprint="fp-a").record("k", {"x": 1.0})
        fresh = TrialJournal(path, fingerprint="fp-b")
        assert fresh.get("k") is None


class TestSearchResume:
    class Killed(RuntimeError):
        pass

    def _killing_run(self, live_budget):
        """A run callable that dies after ``live_budget`` live trials --
        the moral equivalent of kill -9 at trial k."""
        remaining = [live_budget]

        def run(spec):
            if remaining[0] <= 0:
                raise self.Killed()
            remaining[0] -= 1
            return run_experiment(spec)

        return run

    @pytest.mark.parametrize("kill_after", [1, 2])
    def test_killed_then_resumed_search_is_byte_identical(
        self, tmp_path, kill_after
    ):
        spec = _spec()
        reference = find_sustainable_throughput(spec, high_rate=HIGH_RATE)
        reference_json = json.dumps(
            search_to_dict(reference), indent=2, sort_keys=True
        )

        path = tmp_path / "journal.json"
        journal = TrialJournal(path, fingerprint=_fingerprint(spec))
        with pytest.raises(self.Killed):
            find_sustainable_throughput(
                spec,
                high_rate=HIGH_RATE,
                run=self._killing_run(kill_after),
                journal=journal,
            )

        resumed_journal = TrialJournal(
            path, fingerprint=_fingerprint(spec), resume=True
        )
        resumed = find_sustainable_throughput(
            spec, high_rate=HIGH_RATE, journal=resumed_journal
        )
        assert resumed_journal.hits == kill_after
        assert resumed_journal.misses == reference.trial_count - kill_after
        resumed_json = json.dumps(
            search_to_dict(resumed), indent=2, sort_keys=True
        )
        assert resumed_json == reference_json

    def test_fully_journaled_search_runs_zero_trials(self, tmp_path):
        spec = _spec()
        path = tmp_path / "journal.json"
        first = find_sustainable_throughput(
            spec,
            high_rate=HIGH_RATE,
            journal=TrialJournal(path, fingerprint=_fingerprint(spec)),
        )
        replay_journal = TrialJournal(
            path, fingerprint=_fingerprint(spec), resume=True
        )

        def forbidden_run(spec):
            raise AssertionError("journaled search must not re-run trials")

        replay = find_sustainable_throughput(
            spec,
            high_rate=HIGH_RATE,
            run=forbidden_run,
            journal=replay_journal,
        )
        assert replay_journal.misses == 0
        assert replay.sustainable_rate == first.sustainable_rate
