"""Unit tests for the on-the-fly data generator."""

import pytest

from repro.core.generator import (
    DENSE,
    SAMPLED,
    DataGenerator,
    GeneratorConfig,
    build_generator_fleet,
)
from repro.core.queues import DriverQueue
from repro.core.records import ADS, PURCHASES
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.workloads.keys import SingleKey
from repro.workloads.profiles import ConstantRate
from repro.workloads.queries import WindowedAggregationQuery, WindowedJoinQuery


def make_generator(sim, query=None, rate=1000.0, mode=DENSE, share=1.0, **cfg):
    query = query or WindowedAggregationQuery()
    config = GeneratorConfig(instances=1, mode=mode, **cfg)
    queue = DriverQueue("q", capacity_weight=float("inf"))
    gen = DataGenerator(
        sim=sim,
        queue=queue,
        profile=ConstantRate(rate),
        query=query,
        rng=RngRegistry(0).stream("g"),
        config=config,
        share=share,
    )
    return gen, queue


class TestRates:
    def test_generated_weight_matches_rate(self):
        sim = Simulator()
        gen, queue = make_generator(sim, rate=1000.0)
        gen.start()
        sim.run_until(10.0)
        assert gen.generated_weight == pytest.approx(10.0 * 1000.0, rel=0.02)
        assert queue.pushed_weight == pytest.approx(gen.generated_weight)

    def test_share_scales_rate(self):
        sim = Simulator()
        gen, queue = make_generator(sim, rate=1000.0, share=0.25)
        gen.start()
        sim.run_until(10.0)
        assert gen.generated_weight == pytest.approx(2500.0, rel=0.02)

    def test_zero_rate_produces_nothing(self):
        sim = Simulator()
        gen, queue = make_generator(sim, rate=0.0)
        gen.start()
        sim.run_until(5.0)
        assert queue.pushed_weight == 0.0

    def test_events_timestamped_at_generation(self):
        sim = Simulator()
        gen, queue = make_generator(sim, rate=100.0)
        gen.start()
        sim.run_until(1.0)
        records = queue.pull(1e9)
        times = {r.event_time for r in records}
        # All event times are generation tick times within the run
        # (generation starts immediately at t=0).
        assert all(0 <= t <= 1.0 for t in times)
        assert len(times) > 1


class TestDenseMode:
    def test_dense_covers_all_keys_each_tick(self):
        sim = Simulator()
        query = WindowedAggregationQuery()
        gen, queue = make_generator(sim, query=query, rate=6400.0)
        gen.start()
        sim.run_until(gen.config.tick_interval_s)
        records = queue.pull(1e9)
        keys = {r.key for r in records}
        positive_mass_keys = {
            i for i, m in enumerate(query.keys.pmf()) if m > 0
        }
        assert keys == positive_mass_keys

    def test_dense_weights_follow_pmf(self):
        sim = Simulator()
        query = WindowedAggregationQuery()
        gen, queue = make_generator(sim, query=query, rate=6400.0)
        gen.start()
        sim.run_until(gen.config.tick_interval_s)
        records = queue.pull(1e9)
        pmf = query.keys.pmf()
        tick_weight = 6400.0 * gen.config.tick_interval_s
        for r in records:
            assert r.weight == pytest.approx(tick_weight * pmf[r.key])

    def test_single_key_dense_emits_one_record_per_tick(self):
        sim = Simulator()
        query = WindowedAggregationQuery(keys=SingleKey())
        gen, queue = make_generator(sim, query=query, rate=100.0)
        gen.start()
        sim.run_until(gen.config.tick_interval_s * 0.5)
        records = queue.pull(1e9)
        assert len(records) == 1
        assert records[0].key == 0


class TestSampledMode:
    def test_sampled_emits_k_records_per_tick(self):
        sim = Simulator()
        gen, queue = make_generator(
            sim, rate=100.0, mode=SAMPLED, keys_per_cohort=5
        )
        gen.start()
        sim.run_until(gen.config.tick_interval_s * 0.5)
        records = queue.pull(1e9)
        assert len(records) == 5

    def test_sampled_weight_split_evenly(self):
        sim = Simulator()
        gen, queue = make_generator(
            sim, rate=100.0, mode=SAMPLED, keys_per_cohort=4
        )
        gen.start()
        sim.run_until(gen.config.tick_interval_s)
        records = queue.pull(1e9)
        tick_weight = 100.0 * gen.config.tick_interval_s
        for r in records:
            assert r.weight == pytest.approx(tick_weight / 4)


class TestJoinStreams:
    def test_join_emits_both_streams(self):
        sim = Simulator()
        query = WindowedJoinQuery(purchases_share=0.5)
        gen, queue = make_generator(sim, query=query, rate=1000.0)
        gen.start()
        sim.run_until(1.0)
        records = queue.pull(1e9)
        by_stream = {}
        for r in records:
            by_stream[r.stream] = by_stream.get(r.stream, 0.0) + r.weight
        assert by_stream[PURCHASES] == pytest.approx(by_stream[ADS], rel=0.01)

    def test_purchases_share_respected(self):
        sim = Simulator()
        query = WindowedJoinQuery(purchases_share=0.75)
        gen, queue = make_generator(sim, query=query, rate=1000.0)
        gen.start()
        sim.run_until(1.0)
        records = queue.pull(1e9)
        purchases = sum(r.weight for r in records if r.stream == PURCHASES)
        total = sum(r.weight for r in records)
        assert purchases / total == pytest.approx(0.75, rel=0.01)

    def test_ads_have_zero_value(self):
        sim = Simulator()
        gen, queue = make_generator(sim, query=WindowedJoinQuery(), rate=100.0)
        gen.start()
        sim.run_until(0.5)
        for r in queue.pull(1e9):
            if r.stream == ADS:
                assert r.value == 0.0


class TestFleet:
    def test_fleet_shares_sum_to_one(self):
        sim = Simulator()
        rng = RngRegistry(0)
        config = GeneratorConfig(instances=4)
        fleet = build_generator_fleet(
            sim=sim,
            profile=ConstantRate(4000.0),
            query=WindowedAggregationQuery(),
            rng_streams=[rng.stream(f"g{i}") for i in range(4)],
            config=config,
            horizon_s=10.0,
        )
        for gen in fleet:
            gen.start()
        sim.run_until(5.0)
        total = sum(g.generated_weight for g in fleet)
        assert total == pytest.approx(5.0 * 4000.0, rel=0.02)

    def test_fleet_queue_capacity_from_peak(self):
        sim = Simulator()
        rng = RngRegistry(0)
        config = GeneratorConfig(instances=2, queue_capacity_seconds=10.0)
        fleet = build_generator_fleet(
            sim=sim,
            profile=ConstantRate(100.0),
            query=WindowedAggregationQuery(),
            rng_streams=[rng.stream(f"g{i}") for i in range(2)],
            config=config,
            horizon_s=10.0,
        )
        # Per-instance peak 50 events/s * 10 s = 500 events capacity.
        assert fleet[0].queue.capacity_weight == pytest.approx(500.0)

    def test_fleet_rng_count_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_generator_fleet(
                sim=sim,
                profile=ConstantRate(1.0),
                query=WindowedAggregationQuery(),
                rng_streams=[],
                config=GeneratorConfig(instances=2),
                horizon_s=1.0,
            )


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(instances=0)
        with pytest.raises(ValueError):
            GeneratorConfig(instances=-2)
        with pytest.raises(ValueError):
            GeneratorConfig(tick_interval_s=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(tick_interval_s=-1.0)
        with pytest.raises(ValueError):
            GeneratorConfig(queue_capacity_seconds=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(queue_capacity_seconds=-5.0)
        with pytest.raises(ValueError):
            GeneratorConfig(mode="other")
        with pytest.raises(ValueError):
            GeneratorConfig(keys_per_cohort=0)
        with pytest.raises(ValueError):
            GeneratorConfig(overprovision_factor=0.5)
        with pytest.raises(ValueError):
            GeneratorConfig(rebalance_detection_s=0.0)

    def test_validation_messages_name_the_value(self):
        # The CLI surfaces these messages verbatim as argument errors;
        # they must say what was wrong, not just that something was.
        with pytest.raises(ValueError, match="-3"):
            GeneratorConfig(instances=-3)
        with pytest.raises(ValueError, match="other"):
            GeneratorConfig(mode="other")

    def test_max_share_capped_by_overprovision(self):
        assert GeneratorConfig(
            instances=4, overprovision_factor=2.0
        ).max_share == pytest.approx(0.5)
        # A single instance can always serve the whole profile.
        assert GeneratorConfig(instances=1).max_share == 1.0

    def test_bad_share_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_generator(sim, share=0.0)

    def test_double_start_rejected(self):
        sim = Simulator()
        gen, _ = make_generator(sim)
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()
