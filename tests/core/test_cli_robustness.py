"""CLI surface of the measurement-plane hardening (PR 5).

Bad argument *values* must exit 2 with a one-line error (never a
traceback), and the new flags -- --clock-skew, --driver-fault,
--trial-timeout/--trial-stall, --journal/--resume -- must round-trip
through the real commands.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.faults.schedule import DriverNodeSlow, GeneratorCrash
from repro.sim.clock import ClockSkewSpec


class TestParsing:
    def test_clock_skew_full_form(self):
        args = build_parser().parse_args(
            ["run", "--clock-skew", "5:40:0.5:15"]
        )
        spec = args.clock_skew
        assert isinstance(spec, ClockSkewSpec)
        assert spec.offset_s == pytest.approx(0.005)
        assert spec.drift_ppm == pytest.approx(40.0)
        assert spec.ntp_residual_s == pytest.approx(0.0005)
        assert spec.ntp_interval_s == pytest.approx(15.0)

    def test_clock_skew_short_form_uses_defaults(self):
        spec = build_parser().parse_args(
            ["run", "--clock-skew", "10"]
        ).clock_skew
        assert spec.offset_s == pytest.approx(0.010)
        assert spec.drift_ppm == pytest.approx(20.0)

    def test_malformed_clock_skew_is_an_argument_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--clock-skew", "abc"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--clock-skew", "1:2:3:4:5"])

    def test_driver_fault_kinds(self):
        args = build_parser().parse_args(
            [
                "run",
                "--driver-fault", "gencrash@20",
                "--driver-fault", "driverslow@30:5",
            ]
        )
        crash, slow = args.driver_fault
        assert isinstance(crash, GeneratorCrash) and crash.at_s == 20.0
        assert isinstance(slow, DriverNodeSlow) and slow.duration_s == 5.0

    def test_unknown_driver_fault_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--driver-fault", "crash@20"])


class TestArgumentValueErrors:
    def run_cli(self, argv):
        return main(argv)

    def test_bad_generator_count_exits_2(self, capsys):
        code = self.run_cli(
            ["run", "--generators", "0", "--duration", "10", "--no-resources"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "instances" in err

    def test_uncorrected_without_skew_exits_2(self, capsys):
        code = self.run_cli(
            ["run", "--uncorrected-clocks", "--duration", "10",
             "--no-resources"]
        )
        assert code == 2
        assert "--clock-skew" in capsys.readouterr().err

    def test_resume_without_journal_exits_2(self, capsys):
        code = self.run_cli(
            ["search", "--resume", "--duration", "10", "--no-resources"]
        )
        assert code == 2
        assert "--journal" in capsys.readouterr().err


class TestExecution:
    def run_cli(self, argv):
        return main(argv)

    def test_run_with_skew_and_watchdog(self, capsys, tmp_path):
        out = tmp_path / "trial.json"
        code = self.run_cli(
            [
                "run",
                "--rate", "10000",
                "--duration", "30",
                "--generators", "2",
                "--no-resources",
                "--clock-skew", "5:20:0.5:30",
                "--trial-stall", "10",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert "clock-skew bound" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["diagnostics"]["metrology.skew_within_bound"] == 1.0
        assert payload["diagnostics"]["watchdog.attempts"] == 1.0
        assert [a["outcome"] for a in payload["attempts"]] == ["completed"]

    def test_run_with_driver_fault(self, capsys):
        code = self.run_cli(
            [
                "run",
                "--rate", "10000",
                "--duration", "40",
                "--generators", "2",
                "--no-resources",
                "--driver-fault", "gencrash@20",
            ]
        )
        assert code == 0
        assert "gencrash" in capsys.readouterr().out

    def test_search_journal_resume_round_trip(self, capsys, tmp_path):
        journal = tmp_path / "journal.json"
        argv = [
            "search",
            "--engine", "flink",
            "--high-rate", "20000",
            "--duration", "30",
            "--generators", "1",
            "--no-resources",
            "--journal", str(journal),
        ]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert self.run_cli(argv + ["--output", str(first)]) == 0
        assert (
            self.run_cli(argv + ["--resume", "--output", str(second)]) == 0
        )
        assert "replayed" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()
