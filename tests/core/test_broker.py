"""Unit tests for the message-broker mediator (the design the paper
argues against; kept for the ablation that reproduces its bottleneck)."""

import pytest

from repro.core.broker import BrokerSpec, BrokerStage
from repro.core.queues import DriverQueue
from repro.core.records import Record
from repro.sim.simulator import Simulator


def record(event_time=0.0, weight=100.0):
    return Record(key=0, value=1.0, event_time=event_time, weight=weight)


@pytest.fixture
def rig():
    sim = Simulator()
    downstream = DriverQueue("q")
    stage = BrokerStage(
        sim,
        downstream,
        BrokerSpec(
            forward_capacity_events_per_s=1000.0,
            persistence_delay_s=0.1,
            repartition_fraction=0.5,
            repartition_delay_s=0.2,
        ),
    )
    return sim, downstream, stage


class TestForwarding:
    def test_events_arrive_after_persistence_delay(self, rig):
        sim, downstream, stage = rig
        stage.push(record(event_time=0.0, weight=10.0))
        sim.run_until(0.1)
        assert downstream.queued_weight == 0.0  # still persisting
        sim.run_until(0.5)
        assert downstream.queued_weight == pytest.approx(10.0)

    def test_repartitioned_share_arrives_later(self, rig):
        sim, downstream, stage = rig
        stage.push(record(weight=10.0))
        # After persistence (0.1 s past the first forward tick) only the
        # direct half is there; the rerouted half needs +0.2 s more.
        sim.run_until(0.2)
        assert downstream.queued_weight == pytest.approx(5.0)
        sim.run_until(0.5)
        assert downstream.queued_weight == pytest.approx(10.0)

    def test_event_time_preserved(self, rig):
        sim, downstream, stage = rig
        stage.push(record(event_time=0.33, weight=4.0))
        sim.run_until(1.0)
        pulled = downstream.pull(1e9)
        assert all(r.event_time == pytest.approx(0.33) for r in pulled)

    def test_forward_capacity_caps_rate(self, rig):
        sim, downstream, stage = rig
        # Push 10k events at once; capacity is 1000/s.
        stage.push(record(weight=10_000.0))
        sim.run_until(5.0)
        assert downstream.pushed_weight == pytest.approx(5000.0, rel=0.05)
        assert stage.staged_weight == pytest.approx(5000.0, rel=0.05)

    def test_weight_conserved_end_to_end(self, rig):
        sim, downstream, stage = rig
        total = 0.0
        for i in range(5):
            stage.push(record(event_time=i * 0.1, weight=50.0))
            total += 50.0
        sim.run_until(3.0)
        assert downstream.pushed_weight == pytest.approx(total)
        assert stage.forwarded_weight == pytest.approx(total)

    def test_stop_halts_forwarding(self, rig):
        sim, downstream, stage = rig
        stage.push(record(weight=10.0))
        stage.stop()
        sim.run_until(2.0)
        assert downstream.pushed_weight == 0.0

    def test_invalid_share_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BrokerStage(sim, DriverQueue("q"), BrokerSpec(), share=0.0)


class TestBrokeredExperiment:
    def test_broker_caps_sut_ingest(self):
        from repro.core.broker import BrokerSpec
        from repro.core.experiment import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            engine="flink",
            profile=0.9e6,
            workers=2,
            duration_s=60.0,
            broker=BrokerSpec(forward_capacity_events_per_s=0.5e6),
            monitor_resources=False,
        )
        result = run_experiment(spec)
        assert result.mean_ingest_rate < 0.55e6
