"""Unit and property tests for records, cohorts, and output tuples."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import (
    ADS,
    PURCHASES,
    OutputRecord,
    Record,
    split_cohort,
    total_weight,
)


class TestRecord:
    def test_defaults(self):
        r = Record(key=3, value=9.5, event_time=1.0)
        assert r.weight == 1.0
        assert r.stream == PURCHASES
        assert r.ingest_time is None

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Record(key=0, value=0.0, event_time=0.0, weight=0.0)
        with pytest.raises(ValueError):
            Record(key=0, value=0.0, event_time=0.0, weight=-1.0)

    def test_unknown_stream_rejected(self):
        with pytest.raises(ValueError):
            Record(key=0, value=0.0, event_time=0.0, stream="clicks")

    def test_slots_prevent_arbitrary_attrs(self):
        r = Record(key=0, value=0.0, event_time=0.0)
        with pytest.raises(AttributeError):
            r.extra = 1

    def test_total_weight(self):
        records = [
            Record(key=0, value=0.0, event_time=0.0, weight=2.5),
            Record(key=1, value=0.0, event_time=0.0, weight=0.5),
        ]
        assert total_weight(records) == pytest.approx(3.0)


class TestOutputRecord:
    def test_event_time_latency(self):
        out = OutputRecord(
            key=1,
            value=42.0,
            event_time=600.0,
            processing_time=601.0,
            emit_time=610.0,
        )
        assert out.event_time_latency == pytest.approx(10.0)
        assert out.processing_time_latency == pytest.approx(9.0)

    def test_paper_figure1_latencies(self):
        # Figure 1: window outputs at time 610 with per-key max event
        # times 600 (US), 599 (Jpn), 595 (Ger) -> latencies 10, 11, 15.
        per_key = {"US": 600.0, "Jpn": 599.0, "Ger": 595.0}
        expected = {"US": 10.0, "Jpn": 11.0, "Ger": 15.0}
        for name, max_event_time in per_key.items():
            out = OutputRecord(
                key=hash(name),
                value=0.0,
                event_time=max_event_time,
                processing_time=601.0,
                emit_time=610.0,
            )
            assert out.event_time_latency == pytest.approx(expected[name])


class TestSplitCohort:
    def test_split_preserves_weight(self):
        r = Record(key=1, value=2.0, event_time=3.0, weight=10.0, stream=ADS)
        parts = split_cohort(r, 4)
        assert len(parts) == 4
        assert total_weight(parts) == pytest.approx(10.0)
        for p in parts:
            assert p.key == 1
            assert p.event_time == 3.0
            assert p.stream == ADS

    def test_split_one_is_copy(self):
        r = Record(key=1, value=2.0, event_time=3.0, weight=5.0)
        (part,) = split_cohort(r, 1)
        assert part.weight == pytest.approx(5.0)
        assert part is not r

    def test_invalid_parts_rejected(self):
        r = Record(key=1, value=2.0, event_time=3.0)
        with pytest.raises(ValueError):
            split_cohort(r, 0)

    @given(weight=st.floats(0.001, 1e6), parts=st.integers(1, 50))
    @settings(max_examples=100, deadline=None)
    def test_split_conservation_property(self, weight, parts):
        r = Record(key=0, value=1.0, event_time=0.0, weight=weight)
        assert total_weight(split_cohort(r, parts)) == pytest.approx(weight)
