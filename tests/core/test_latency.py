"""Unit tests for the driver-side latency collector."""

import pytest

from repro.core.latency import EVENT_TIME, PROCESSING_TIME, LatencyCollector
from repro.core.records import OutputRecord


def out(emit, event, proc, weight=1.0):
    return OutputRecord(
        key=0,
        value=0.0,
        event_time=event,
        processing_time=proc,
        emit_time=emit,
        weight=weight,
    )


class TestCollection:
    def test_collect_counts(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.5), out(11.0, 9.0, 10.0)])
        assert len(c) == 2

    def test_event_summary(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.5)])  # event latency 1.0
        c.collect([out(20.0, 17.0, 19.0)])  # event latency 3.0
        s = c.summary(EVENT_TIME)
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == pytest.approx(1.0)
        assert s.maximum == pytest.approx(3.0)

    def test_processing_summary_differs(self):
        c = LatencyCollector()
        c.collect([out(10.0, 5.0, 9.5)])
        assert c.summary(EVENT_TIME).mean == pytest.approx(5.0)
        assert c.summary(PROCESSING_TIME).mean == pytest.approx(0.5)

    def test_unknown_kind_rejected(self):
        c = LatencyCollector()
        with pytest.raises(ValueError):
            c.summary("wall_clock")

    def test_warmup_exclusion(self):
        c = LatencyCollector()
        c.collect([out(5.0, 0.0, 0.0)])  # during warmup
        c.collect([out(50.0, 49.0, 49.0)])  # after warmup
        s = c.summary(EVENT_TIME, start_time=10.0)
        assert s.count == 1
        assert s.mean == pytest.approx(1.0)

    def test_weighted_samples(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.0, weight=9.0), out(10.0, 0.0, 0.0, weight=1.0)])
        s = c.summary(EVENT_TIME)
        assert s.mean == pytest.approx(0.9 * 1.0 + 0.1 * 10.0)


class TestSeries:
    def test_series_ordered_by_emit_time(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.0)])
        c.collect([out(20.0, 15.0, 15.0)])
        series = c.series(EVENT_TIME)
        assert series.times == [10.0, 20.0]
        assert series.values == [1.0, 5.0]

    def test_binned_series(self):
        c = LatencyCollector()
        c.collect([out(1.0, 0.0, 0.0), out(2.0, 0.0, 0.0)])
        c.collect([out(11.0, 10.0, 10.0)])
        binned = c.binned_series(EVENT_TIME, bin_s=10.0)
        assert len(binned) == 2

    def test_trend_slope_detects_growth(self):
        c = LatencyCollector()
        # Latency grows 1 second per second of emission time: overload.
        for t in range(0, 100, 5):
            c.collect([out(float(t), 0.0, 0.0)])
        assert c.trend_slope(EVENT_TIME) == pytest.approx(1.0, rel=0.05)

    def test_trend_slope_flat_when_stable(self):
        c = LatencyCollector()
        for t in range(0, 100, 5):
            c.collect([out(float(t), t - 2.0, t - 1.0)])
        assert abs(c.trend_slope(EVENT_TIME)) < 0.01
