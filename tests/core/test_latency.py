"""Unit tests for the driver-side latency collector."""

import pytest

from repro.core.latency import EVENT_TIME, PROCESSING_TIME, LatencyCollector
from repro.core.records import OutputRecord


def out(emit, event, proc, weight=1.0):
    return OutputRecord(
        key=0,
        value=0.0,
        event_time=event,
        processing_time=proc,
        emit_time=emit,
        weight=weight,
    )


class TestCollection:
    def test_collect_counts(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.5), out(11.0, 9.0, 10.0)])
        assert len(c) == 2

    def test_event_summary(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.5)])  # event latency 1.0
        c.collect([out(20.0, 17.0, 19.0)])  # event latency 3.0
        s = c.summary(EVENT_TIME)
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == pytest.approx(1.0)
        assert s.maximum == pytest.approx(3.0)

    def test_processing_summary_differs(self):
        c = LatencyCollector()
        c.collect([out(10.0, 5.0, 9.5)])
        assert c.summary(EVENT_TIME).mean == pytest.approx(5.0)
        assert c.summary(PROCESSING_TIME).mean == pytest.approx(0.5)

    def test_unknown_kind_rejected(self):
        c = LatencyCollector()
        with pytest.raises(ValueError):
            c.summary("wall_clock")

    def test_warmup_exclusion(self):
        c = LatencyCollector()
        c.collect([out(5.0, 0.0, 0.0)])  # during warmup
        c.collect([out(50.0, 49.0, 49.0)])  # after warmup
        s = c.summary(EVENT_TIME, start_time=10.0)
        assert s.count == 1
        assert s.mean == pytest.approx(1.0)

    def test_weighted_samples(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.0, weight=9.0), out(10.0, 0.0, 0.0, weight=1.0)])
        s = c.summary(EVENT_TIME)
        assert s.mean == pytest.approx(0.9 * 1.0 + 0.1 * 10.0)


class TestSeries:
    def test_series_ordered_by_emit_time(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.0)])
        c.collect([out(20.0, 15.0, 15.0)])
        series = c.series(EVENT_TIME)
        assert series.times.tolist() == [10.0, 20.0]
        assert series.values.tolist() == [1.0, 5.0]

    def test_binned_series(self):
        c = LatencyCollector()
        c.collect([out(1.0, 0.0, 0.0), out(2.0, 0.0, 0.0)])
        c.collect([out(11.0, 10.0, 10.0)])
        binned = c.binned_series(EVENT_TIME, bin_s=10.0)
        assert len(binned) == 2

    def test_trend_slope_detects_growth(self):
        c = LatencyCollector()
        # Latency grows 1 second per second of emission time: overload.
        for t in range(0, 100, 5):
            c.collect([out(float(t), 0.0, 0.0)])
        assert c.trend_slope(EVENT_TIME) == pytest.approx(1.0, rel=0.05)

    def test_trend_slope_flat_when_stable(self):
        c = LatencyCollector()
        for t in range(0, 100, 5):
            c.collect([out(float(t), t - 2.0, t - 1.0)])
        assert abs(c.trend_slope(EVENT_TIME)) < 0.01

    def test_binned_series_is_weight_aware(self):
        """Regression: a heavy join cohort must dominate its bin's mean,
        consistent with the weight-aware summary()."""
        c = LatencyCollector()
        # Same bin: latency 1.0 with weight 9, latency 11.0 with weight 1.
        c.collect(
            [out(10.0, 9.0, 9.0, weight=9.0), out(11.0, 0.0, 0.0, weight=1.0)]
        )
        binned = c.binned_series(EVENT_TIME, bin_s=5.0)
        assert len(binned) == 1
        # Weighted mean (9*1 + 1*11)/10 = 2.0; the old unweighted mean
        # was (1 + 11)/2 = 6.0.
        assert binned.values[0] == pytest.approx(2.0)
        assert binned.values[0] == pytest.approx(
            c.summary(EVENT_TIME).mean
        )

    def test_binned_series_max_agg_still_supported(self):
        import numpy as np

        c = LatencyCollector()
        c.collect([out(1.0, 0.0, 0.0), out(2.0, 0.5, 0.5)])
        binned = c.binned_series(EVENT_TIME, bin_s=5.0, agg=np.max)
        assert binned.values[0] == pytest.approx(1.5)

    def test_non_monotonic_emit_times_still_correct(self):
        c = LatencyCollector()
        c.collect([out(20.0, 19.0, 19.0)])
        c.collect([out(10.0, 9.0, 9.0)])  # out-of-order emission
        s = c.summary(EVENT_TIME, start_time=15.0)
        assert s.count == 1
        assert s.mean == pytest.approx(1.0)


class TestHotPath:
    def test_summary_cached_until_new_samples(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.0)])
        first = c.summary(EVENT_TIME)
        assert c.summary(EVENT_TIME) is first  # cache hit
        c.collect([out(20.0, 15.0, 15.0)])
        second = c.summary(EVENT_TIME)
        assert second is not first
        assert second.count == 2

    def test_chunk_rollover_preserves_all_samples(self):
        c = LatencyCollector(chunk_rows=8)
        for t in range(30):
            c.collect([out(float(t), float(t) - 1.0, float(t) - 0.5)])
        assert len(c) == 30
        s = c.summary(EVENT_TIME)
        assert s.count == 30
        assert s.mean == pytest.approx(1.0)
        series = c.series(EVENT_TIME)
        assert series.times.tolist() == [float(t) for t in range(30)]

    def test_perf_counters_exposed(self):
        c = LatencyCollector()
        c.collect([out(10.0, 9.0, 9.0), out(11.0, 9.0, 10.0)])
        c.summary(EVENT_TIME)
        counters = c.perf_counters()
        assert counters["collector.samples"] == 2.0
        assert counters["collector.collect_calls"] == 1.0
        assert counters["collector.collect_s"] >= 0.0
        assert counters["collector.samples_per_s"] > 0.0
        assert counters["collector.memory_bytes"] > 0.0
        assert counters["collector.consolidations"] >= 1.0

    def test_invalid_chunk_rows_rejected(self):
        with pytest.raises(ValueError):
            LatencyCollector(chunk_rows=0)
