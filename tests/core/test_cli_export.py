"""Tests for the CLI and the JSON export layer."""

import json

import pytest

from repro.analysis.export import (
    search_to_dict,
    summary_to_dict,
    trial_to_dict,
    write_json,
)
from repro.cli import build_parser, main
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.core.metrics import StatSummary, weighted_summary
from repro.core.sustainable import find_sustainable_throughput
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery


@pytest.fixture(scope="module")
def small_trial():
    return run_experiment(
        ExperimentSpec(
            engine="flink",
            query=WindowedAggregationQuery(window=WindowSpec(4, 2)),
            workers=2,
            profile=10_000.0,
            duration_s=30.0,
            generator=GeneratorConfig(instances=1),
            monitor_resources=False,
        )
    )


class TestExport:
    def test_summary_round_trip(self):
        d = summary_to_dict(weighted_summary([1.0, 2.0, 3.0]))
        assert d["count"] == 3
        assert d["mean"] == pytest.approx(2.0)

    def test_nan_becomes_none(self):
        d = summary_to_dict(StatSummary.empty())
        assert d["mean"] is None

    def test_trial_dict_fields(self, small_trial):
        d = trial_to_dict(small_trial)
        assert d["engine"] == "flink"
        assert d["failure"] is None
        assert d["event_latency"]["count"] > 0
        assert "series" not in d

    def test_trial_dict_with_series(self, small_trial):
        d = trial_to_dict(small_trial, include_series=True)
        assert len(d["series"]["ingest_rate"]["t"]) > 0
        assert len(d["series"]["event_latency"]["t"]) > 0

    def test_trial_dict_is_json_serialisable(self, small_trial):
        text = json.dumps(trial_to_dict(small_trial, include_series=True))
        assert "flink" in text

    def test_write_json_creates_parents(self, tmp_path, small_trial):
        target = tmp_path / "a" / "b" / "trial.json"
        path = write_json(trial_to_dict(small_trial), target)
        assert path.exists()
        assert json.loads(path.read_text())["engine"] == "flink"

    def test_search_dict(self):
        spec = ExperimentSpec(
            engine="flink",
            query=WindowedAggregationQuery(window=WindowSpec(4, 2)),
            workers=2,
            duration_s=30.0,
            generator=GeneratorConfig(instances=1),
            monitor_resources=False,
        )
        search = find_sustainable_throughput(
            spec, high_rate=20_000.0, max_trials=2
        )
        d = search_to_dict(search)
        assert d["trial_count"] == len(d["trials"])
        assert all("rate" in t for t in d["trials"])


class TestCliParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("engines", "chaos"):
            args = parser.parse_args([command])
            assert args.command == command
        for command in ("run", "search", "sweep"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.engine == "flink"
        assert args.query == "aggregation"
        assert args.workers == 2

    def test_unknown_engine_rejected(self, capsys):
        # "apex" is named in the paper's future work but has no model
        # here (heron/samza may be registered by the extension package).
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "apex"])

    def test_key_distribution_choices(self):
        args = build_parser().parse_args(["run", "--keys", "zipf"])
        assert args.keys == "zipf"


class TestCliExecution:
    def run_cli(self, argv):
        return main(argv)

    def test_engines_command(self, capsys):
        assert self.run_cli(["engines"]) == 0
        out = capsys.readouterr().out
        assert "flink" in out and "storm" in out and "spark" in out

    def test_run_command_small(self, capsys, tmp_path):
        code = self.run_cli(
            [
                "run",
                "--engine", "flink",
                "--rate", "10000",
                "--duration", "30",
                "--generators", "1",
                "--no-resources",
                "--output", str(tmp_path / "out.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "event-time latency" in out
        assert (tmp_path / "out.json").exists()

    def test_search_command_small(self, capsys):
        code = self.run_cli(
            [
                "search",
                "--engine", "flink",
                "--high-rate", "20000",
                "--duration", "30",
                "--generators", "1",
                "--no-resources",
            ]
        )
        assert code == 0
        assert "sustainable throughput" in capsys.readouterr().out

    def test_run_with_recovery_knobs(self, capsys):
        # Standby pool + recommended shedding through the CLI: the
        # crash of both workers survives via promotion.
        code = self.run_cli(
            [
                "run",
                "--engine", "flink",
                "--rate", "10000",
                "--duration", "40",
                "--workers", "2",
                "--generators", "1",
                "--no-resources",
                "--fault", "crash@20",
                "--standby", "1",
                "--reschedule", "standby",
                "--shed", "recommended",
            ]
        )
        assert code == 0
        assert "fault recovery" in capsys.readouterr().out

    def test_search_online(self, capsys):
        code = self.run_cli(
            [
                "search",
                "--engine", "flink",
                "--high-rate", "20000",
                "--duration", "40",
                "--generators", "1",
                "--no-resources",
                "--online",
            ]
        )
        assert code == 0
        assert "online AIMD" in capsys.readouterr().out

    def test_chaos_command_small(self, capsys, tmp_path):
        code = self.run_cli(
            [
                "chaos",
                "--seed", "2",
                "--rounds", "1",
                "--engines", "flink",
                "--duration", "30",
                "--rate", "20000",
                "--verbose",
                "--output", str(tmp_path / "chaos.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        payload = json.loads((tmp_path / "chaos.json").read_text())
        assert "flink/standby" in payload["scorecards"]
        assert payload["violations"] == []

    def test_chaos_parallel_matches_serial_output(self, capsys, tmp_path):
        # The CLI surface of the scheduler invariant: --workers N only
        # changes wall-clock, never a byte of the scorecard.
        base = [
            "chaos",
            "--seed", "2",
            "--rounds", "1",
            "--engines", "flink",
            "--duration", "30",
            "--rate", "20000",
        ]
        serial, parallel = tmp_path / "serial.json", tmp_path / "par.json"
        assert self.run_cli(base + ["--output", str(serial)]) == 0
        assert (
            self.run_cli(base + ["--workers", "3", "--output", str(parallel)])
            == 0
        )
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()

    def test_search_jobs_conflicts_with_online(self, capsys):
        code = self.run_cli(
            [
                "search",
                "--engine", "flink",
                "--high-rate", "20000",
                "--online",
                "--jobs", "2",
            ]
        )
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_run_failure_exit_code(self, capsys):
        # Grossly overloaded with a tiny queue: the trial fails and the
        # CLI signals it through the exit code.
        code = self.run_cli(
            [
                "run",
                "--engine", "storm",
                "--rate", "5000000",
                "--duration", "60",
                "--generators", "1",
                "--no-resources",
            ]
        )
        assert code == 1
