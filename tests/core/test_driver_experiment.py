"""Unit/integration tests for the driver wiring and experiment runner."""

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.workloads.profiles import ConstantRate
from repro.workloads.queries import WindowedAggregationQuery, WindowSpec


def small_spec(**overrides):
    defaults = dict(
        engine="flink",
        query=WindowedAggregationQuery(window=WindowSpec(4.0, 2.0)),
        workers=2,
        profile=5_000.0,
        duration_s=30.0,
        seed=3,
        generator=GeneratorConfig(instances=2),
        monitor_resources=False,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSpec:
    def test_with_rate_returns_new_spec(self):
        spec = small_spec()
        other = spec.with_rate(123.0)
        assert other.rate_profile().rate_at(0) == 123.0
        assert spec.rate_profile().rate_at(0) == 5_000.0

    def test_rate_profile_from_float(self):
        assert isinstance(small_spec().rate_profile(), ConstantRate)

    def test_label_mentions_engine_and_load(self):
        label = small_spec().label()
        assert "flink" in label
        assert "2w" in label

    def test_cluster_matches_workers(self):
        assert small_spec(workers=4).cluster().workers == 4

    def test_with_seed(self):
        assert small_spec().with_seed(9).seed == 9


class TestRunExperiment:
    def test_trial_completes_and_reports(self):
        result = run_experiment(small_spec())
        assert not result.failed
        assert result.engine == "flink"
        assert result.workers == 2
        assert len(result.collector) > 0
        assert result.mean_ingest_rate == pytest.approx(5_000.0, rel=0.1)

    def test_warmup_excluded_from_summary(self):
        result = run_experiment(small_spec())
        assert result.warmup_s == pytest.approx(7.5)
        series = result.collector.series(start_time=0.0)
        assert min(series.times) < result.warmup_s  # outputs exist in warmup
        post = result.collector.series(start_time=result.warmup_s)
        assert min(post.times) >= result.warmup_s

    def test_deterministic_given_seed(self):
        a = run_experiment(small_spec())
        b = run_experiment(small_spec())
        assert a.event_latency.mean == b.event_latency.mean
        assert a.mean_ingest_rate == b.mean_ingest_rate

    def test_seed_changes_result(self):
        a = run_experiment(small_spec(seed=1))
        b = run_experiment(small_spec(seed=2))
        # Stochastic components (GC pauses) differ across seeds.
        assert a.event_latency.maximum != b.event_latency.maximum

    def test_all_engines_run(self):
        for engine in ["storm", "spark", "flink"]:
            result = run_experiment(small_spec(engine=engine))
            assert not result.failed, f"{engine}: {result.failure}"
            assert len(result.collector) > 0, engine

    def test_resources_monitored_when_enabled(self):
        result = run_experiment(small_spec(monitor_resources=True))
        assert result.resources is not None
        assert len(result.resources.samples) > 0

    def test_overload_marks_unsustainable_but_completes(self):
        # Offered far above 2-node Flink capacity: connection drops or a
        # growing queue, but the driver returns a result either way.
        spec = small_spec(
            profile=3e6,
            generator=GeneratorConfig(instances=2, queue_capacity_seconds=5.0),
        )
        result = run_experiment(spec)
        assert result.failed
        assert "queue" in result.failure

    def test_describe_contains_status(self):
        result = run_experiment(small_spec())
        assert "completed" in result.describe()

    def test_diagnostics_include_driver_metrology_counters(self):
        result = run_experiment(small_spec())
        diag = result.diagnostics
        assert diag["collector.samples"] == float(len(result.collector))
        assert diag["collector.collect_calls"] >= 1.0
        assert diag["collector.memory_bytes"] > 0.0
        assert diag["monitor.samples"] == float(
            result.throughput.sample_count
        )
        assert diag["driver.summary_s"] >= 0.0

    def test_event_latency_at_least_processing_latency(self):
        result = run_experiment(small_spec())
        assert (
            result.event_latency.mean
            >= result.processing_latency.mean - 1e-9
        )
