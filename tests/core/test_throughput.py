"""Unit tests for the queue-side throughput monitor."""

import pytest

from repro.core.queues import DriverQueue, QueueSet
from repro.core.records import Record
from repro.core.throughput import ThroughputMonitor
from repro.sim.simulator import Simulator


def make_record(event_time, weight=1.0):
    return Record(key=0, value=1.0, event_time=event_time, weight=weight)


@pytest.fixture
def rig():
    sim = Simulator()
    queue = DriverQueue("q")
    queues = QueueSet([queue])
    monitor = ThroughputMonitor(sim, queues, interval_s=1.0)
    return sim, queue, monitor


class TestSampling:
    def test_ingest_rate_per_interval(self, rig):
        sim, queue, monitor = rig

        def produce_and_consume(s):
            queue.push(make_record(event_time=s.now, weight=100.0))
            queue.pull(100.0)

        sim.every(0.5, produce_and_consume)
        sim.run_until(3.0)
        # 200 events pushed+pulled per 1 s interval.
        assert monitor.ingest_series.values[-1] == pytest.approx(200.0)
        assert monitor.offered_series.values[-1] == pytest.approx(200.0)

    def test_occupancy_tracks_backlog(self, rig):
        sim, queue, monitor = rig
        sim.every(0.5, lambda s: queue.push(make_record(s.now, weight=10.0)))
        sim.run_until(2.0)
        # Pushes at 0.5/1.0/1.5/2.0; the monitor's 2.0 sample fires
        # before the co-timed push (it was scheduled earlier), so the
        # last sample sees the three earlier pushes.
        assert monitor.occupancy_series.values[-1] == pytest.approx(30.0)
        assert queue.queued_weight == pytest.approx(40.0)

    def test_queue_delay_series(self, rig):
        sim, queue, monitor = rig
        queue.push(make_record(event_time=0.0))
        sim.run_until(3.0)
        assert monitor.queue_delay_series.values[-1] == pytest.approx(3.0)

    def test_queue_delay_ignores_event_time_disorder(self, rig):
        """Regression: late (disordered) records pushed freshly must not
        inflate the queue-delay signal.  Before the fix, a record with
        event_time = now - 100 looked 100 s 'old' the moment it was
        enqueued, and sustainability trials falsely failed."""
        sim, queue, monitor = rig

        def push_late(s):
            queue.push(
                make_record(event_time=s.now - 100.0), at_time=s.now
            )

        sim.every(0.5, push_late)
        sim.run_until(3.0)
        # Oldest cohort was enqueued at t=0.5; at the t=3 sample it has
        # waited 2.5 s -- not 100+ s of event-time lag.
        assert monitor.queue_delay_series.values[-1] == pytest.approx(2.5)

    def test_mean_ingest_rate_with_warmup_cut(self, rig):
        sim, queue, monitor = rig

        def consume(s):
            queue.push(make_record(s.now, weight=50.0))
            queue.pull(50.0)

        sim.every(1.0, consume, start=0.2)
        sim.run_until(10.0)
        rate = monitor.mean_ingest_rate(start_time=5.0)
        assert rate == pytest.approx(50.0, rel=0.05)

    def test_occupancy_slope_positive_under_overload(self, rig):
        sim, queue, monitor = rig
        sim.every(1.0, lambda s: queue.push(make_record(s.now, weight=30.0)))
        sim.run_until(10.0)
        assert monitor.occupancy_slope() == pytest.approx(30.0, rel=0.1)

    def test_stop_halts_sampling(self, rig):
        sim, queue, monitor = rig
        sim.run_until(2.0)
        monitor.stop()
        sim.run_until(10.0)
        assert len(monitor.ingest_series) == 2

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        queues = QueueSet([DriverQueue("q")])
        with pytest.raises(ValueError):
            ThroughputMonitor(sim, queues, interval_s=0.0)

    def test_queue_delay_at_end_uses_tail(self, rig):
        sim, queue, monitor = rig
        queue.push(make_record(event_time=0.0))
        sim.run_until(10.0)
        # Oldest event is 10 s old at the end; tail mean is close to that.
        assert monitor.queue_delay_at_end() > 8.0
