"""Unit and property tests for weighted statistics and time series."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    StatSummary,
    TimeSeries,
    weighted_quantile,
    weighted_quantiles,
    weighted_summary,
)


class TestWeightedSummary:
    def test_unit_weights_match_numpy(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        s = weighted_summary(values)
        assert s.mean == pytest.approx(np.mean(values))
        assert s.minimum == 1.0
        assert s.maximum == 5.0
        assert s.count == 5
        assert s.weight == 5.0

    def test_weights_scale_contribution(self):
        # One sample of weight 3 behaves like three unit samples.
        a = weighted_summary([1.0, 10.0], weights=[3.0, 1.0])
        b = weighted_summary([1.0, 1.0, 1.0, 10.0])
        assert a.mean == pytest.approx(b.mean)
        assert a.p90 == b.p90

    def test_empty_summary(self):
        s = weighted_summary([])
        assert s.count == 0
        assert np.isnan(s.mean)
        assert "no samples" in s.row()

    def test_zero_weights_give_empty(self):
        s = weighted_summary([1.0, 2.0], weights=[0.0, 0.0])
        assert s.count == 0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            weighted_summary([1.0, 2.0], weights=[1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_summary([1.0], weights=[-1.0])

    def test_row_format(self):
        s = weighted_summary([1.0, 2.0, 3.0])
        row = s.row()
        assert "2.00" in row  # mean
        assert "(" in row and ")" in row

    def test_std(self):
        s = weighted_summary([2.0, 4.0])
        assert s.std == pytest.approx(1.0)


class TestWeightedQuantile:
    def test_median_of_units(self):
        v = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        w = np.ones(5)
        assert weighted_quantile(v, w, 0.5) == 3.0

    def test_heavy_weight_dominates(self):
        v = np.array([1.0, 100.0])
        w = np.array([99.0, 1.0])
        assert weighted_quantile(v, w, 0.9) == 1.0
        assert weighted_quantile(v, w, 0.995) == 100.0

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0]), np.array([1.0]), 1.5)

    def test_empty_is_nan(self):
        assert np.isnan(weighted_quantile(np.array([]), np.array([]), 0.5))

    @given(
        values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
        q=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_quantile_is_a_sample_value(self, values, q):
        v = np.asarray(values)
        w = np.ones_like(v)
        result = weighted_quantile(v, w, q)
        assert result in v

    @given(values=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_quantiles_monotone(self, values):
        v = np.asarray(values)
        w = np.ones_like(v)
        q50 = weighted_quantile(v, w, 0.5)
        q90 = weighted_quantile(v, w, 0.9)
        q99 = weighted_quantile(v, w, 0.99)
        assert q50 <= q90 <= q99

    @given(
        values=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=60),
        weights=st.lists(st.floats(0.1, 50.0), min_size=60, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_fused_quantiles_match_single_calls(self, values, weights):
        """The single-sort batch path must agree exactly with computing
        each quantile independently."""
        v = np.asarray(values)
        w = np.asarray(weights[: v.size])
        qs = (0.1, 0.5, 0.90, 0.95, 0.99)
        batch = weighted_quantiles(v, w, qs)
        singles = [weighted_quantile(v, w, q) for q in qs]
        assert batch.tolist() == singles

    def test_fused_quantiles_empty_is_nan(self):
        out = weighted_quantiles(np.array([]), np.array([]), (0.5, 0.9))
        assert np.isnan(out).all()

    def test_fused_quantiles_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            weighted_quantiles(np.array([1.0]), np.array([1.0]), (0.5, 1.5))


class TestTimeSeries:
    def test_append_and_iter(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert list(ts) == [(1.0, 10.0), (2.0, 20.0)]
        assert len(ts) == 2

    def test_non_monotone_append_rejected(self):
        ts = TimeSeries()
        ts.append(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(1.0, 1.0)

    def test_window(self):
        ts = TimeSeries(times=[0.0, 1.0, 2.0, 3.0], values=[0, 1, 2, 3])
        w = ts.window(1.0, 3.0)
        assert w.times.tolist() == [1.0, 2.0]

    def test_slope_on_linear_data(self):
        ts = TimeSeries(times=[0.0, 1.0, 2.0, 3.0], values=[0.0, 2.0, 4.0, 6.0])
        assert ts.slope_per_s() == pytest.approx(2.0)

    def test_slope_on_flat_data(self):
        ts = TimeSeries(times=[0.0, 1.0, 2.0], values=[5.0, 5.0, 5.0])
        assert ts.slope_per_s() == pytest.approx(0.0)

    def test_slope_needs_two_points(self):
        assert TimeSeries(times=[1.0], values=[1.0]).slope_per_s() == 0.0

    def test_binned_mean(self):
        ts = TimeSeries(
            times=[0.0, 1.0, 5.0, 6.0], values=[1.0, 3.0, 10.0, 20.0]
        )
        binned = ts.binned(5.0)
        assert binned.times.tolist() == [0.0, 5.0]
        assert binned.values.tolist() == [2.0, 15.0]

    def test_binned_max(self):
        ts = TimeSeries(times=[0.0, 1.0], values=[1.0, 3.0])
        assert ts.binned(5.0, agg=np.max).values == [3.0]

    def test_binned_invalid_bin_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().binned(0.0)

    def test_mean_max(self):
        ts = TimeSeries(times=[0.0, 1.0], values=[2.0, 6.0])
        assert ts.mean() == 4.0
        assert ts.max() == 6.0
        assert np.isnan(TimeSeries().mean())

    @given(
        slope=st.floats(-100, 100),
        intercept=st.floats(-100, 100),
        n=st.integers(3, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_slope_recovers_linear_trend(self, slope, intercept, n):
        ts = TimeSeries()
        for i in range(n):
            ts.append(float(i), slope * i + intercept)
        assert ts.slope_per_s() == pytest.approx(slope, abs=1e-6, rel=1e-6)


class TestTimeSeriesNumpyBackend:
    def test_from_arrays_round_trip(self):
        t = np.array([1.0, 2.0, 3.0])
        v = np.array([4.0, 5.0, 6.0])
        ts = TimeSeries.from_arrays(t, v)
        assert ts.times.tolist() == [1.0, 2.0, 3.0]
        assert ts.values.tolist() == [4.0, 5.0, 6.0]
        # Defensive copy: mutating the source must not alias the series.
        t[0] = 99.0
        assert ts.times[0] == 1.0

    def test_from_arrays_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries.from_arrays(np.array([1.0]), np.array([1.0, 2.0]))

    def test_constructor_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(times=[1.0, 2.0], values=[1.0])

    def test_times_are_read_only_views(self):
        ts = TimeSeries(times=[1.0], values=[2.0])
        with pytest.raises(ValueError):
            ts.times[0] = 5.0

    def test_append_after_from_arrays_view(self):
        base = np.array([1.0, 2.0])
        ts = TimeSeries.from_arrays(base, base, copy=False)
        ts.append(3.0, 3.0)  # triggers copy-on-append
        assert ts.times.tolist() == [1.0, 2.0, 3.0]
        assert base.tolist() == [1.0, 2.0]

    def test_window_on_unsorted_series_preserves_order(self):
        ts = TimeSeries(times=[5.0, 1.0, 3.0], values=[50.0, 10.0, 30.0])
        w = ts.window(1.0, 4.0)
        assert w.times.tolist() == [1.0, 3.0]
        assert w.values.tolist() == [10.0, 30.0]

    def test_window_sorted_uses_half_open_interval(self):
        ts = TimeSeries(times=[0.0, 1.0, 2.0, 3.0], values=[0.0, 1.0, 2.0, 3.0])
        assert ts.window(1.0, 3.0).times.tolist() == [1.0, 2.0]
        assert ts.window(1.0).times.tolist() == [1.0, 2.0, 3.0]

    def test_binned_weighted_mean(self):
        ts = TimeSeries(times=[0.0, 1.0, 6.0], values=[1.0, 11.0, 4.0])
        binned = ts.binned(5.0, weights=np.array([9.0, 1.0, 2.0]))
        assert binned.times.tolist() == [0.0, 5.0]
        assert binned.values.tolist() == [pytest.approx(2.0), 4.0]

    def test_binned_weighted_sum(self):
        ts = TimeSeries(times=[0.0, 1.0], values=[2.0, 3.0])
        binned = ts.binned(5.0, agg=np.sum, weights=np.array([2.0, 4.0]))
        assert binned.values.tolist() == [16.0]

    def test_binned_weights_shape_mismatch_rejected(self):
        ts = TimeSeries(times=[0.0, 1.0], values=[1.0, 2.0])
        with pytest.raises(ValueError):
            ts.binned(5.0, weights=np.array([1.0]))

    def test_binned_weighted_unsupported_agg_rejected(self):
        ts = TimeSeries(times=[0.0], values=[1.0])
        with pytest.raises(ValueError):
            ts.binned(5.0, agg=np.median, weights=np.array([1.0]))

    def test_binned_min_and_generic_agg(self):
        ts = TimeSeries(
            times=[0.0, 1.0, 5.0, 6.0], values=[4.0, 2.0, 10.0, 20.0]
        )
        assert ts.binned(5.0, agg=np.min).values.tolist() == [2.0, 10.0]
        assert ts.binned(5.0, agg=np.median).values.tolist() == [3.0, 15.0]
        assert ts.binned(5.0, agg=len).values.tolist() == [2.0, 2.0]

    @given(
        data=st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(-50.0, 50.0)),
            min_size=1,
            max_size=80,
        ),
        bin_s=st.floats(0.5, 20.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_vectorized_binning_matches_mask_loop(self, data, bin_s):
        """Property: np.bincount binning == the per-bin boolean-mask
        reference (the seed implementation)."""
        times = sorted(t for t, _ in data)
        values = [v for _, v in data]
        ts = TimeSeries(times=times, values=values)
        binned = ts.binned(bin_s)
        # Reference: per-bin boolean masks over fresh arrays.
        t = np.asarray(times)
        v = np.asarray(values)
        bins = np.floor((t - t[0]) / bin_s).astype(int)
        ref_times, ref_values = [], []
        for b in np.unique(bins):
            mask = bins == b
            ref_times.append(t[0] + float(b) * bin_s)
            ref_values.append(float(np.mean(v[mask])))
        assert binned.times.tolist() == pytest.approx(ref_times)
        assert binned.values.tolist() == pytest.approx(ref_values, abs=1e-9)
