"""Unit tests for the sustainability judgement and throughput search."""

import math

import pytest

from repro.core.experiment import ExperimentSpec
from repro.core.generator import GeneratorConfig
from repro.core.sustainable import (
    SustainabilityCriteria,
    SustainableSearchResult,
    assess,
    find_sustainable_throughput,
)
from repro.core.driver import TrialResult
from repro.core.latency import LatencyCollector
from repro.core.metrics import weighted_summary
from repro.core.queues import DriverQueue, QueueSet
from repro.core.records import OutputRecord, Record
from repro.core.throughput import ThroughputMonitor
from repro.sim.simulator import Simulator
from repro.workloads.profiles import ConstantRate
from repro.workloads.queries import WindowedAggregationQuery, WindowSpec


def synthetic_result(
    offered=1000.0,
    backlog_growth=0.0,
    latency_slope=0.0,
    failure=None,
    duration=100.0,
    outputs=True,
    disorder_lag=0.0,
):
    """Build a TrialResult with scripted queue/latency dynamics.

    ``disorder_lag`` shifts every generated event's event-time into the
    past (late arrival) while the *push* still happens now -- the
    disorder workload as seen by the driver queues.
    """
    sim = Simulator()
    queue = DriverQueue("q")
    queues = QueueSet([queue])
    monitor = ThroughputMonitor(sim, queues, interval_s=1.0)

    def step(s):
        t = s.now
        queue.push(
            Record(
                key=0,
                value=1.0,
                event_time=t - disorder_lag,
                weight=offered,
            ),
            at_time=t,
        )
        keep = backlog_growth
        queue.pull(max(0.0, offered - keep))

    sim.every(1.0, step)
    sim.run_until(duration)
    monitor.stop()
    collector = LatencyCollector()
    base = 1.0
    for t in range(0, int(duration), 2):
        lat = base + latency_slope * t
        collector.collect(
            [
                OutputRecord(
                    key=0,
                    value=0.0,
                    event_time=float(t) - lat,
                    processing_time=float(t) - lat / 2,
                    emit_time=float(t),
                )
            ]
            if outputs
            else []
        )
    warmup = duration * 0.25
    return TrialResult(
        engine="fake",
        workers=2,
        query_kind="aggregation",
        offered_profile=ConstantRate(offered),
        duration_s=duration,
        warmup_s=warmup,
        failure=failure,
        failure_time=float("nan"),
        event_latency=collector.summary("event_time", warmup),
        processing_latency=collector.summary("processing_time", warmup),
        mean_ingest_rate=monitor.mean_ingest_rate(warmup),
        collector=collector,
        throughput=monitor,
        resources=None,
    )


class TestAssess:
    def test_stable_trial_is_sustainable(self):
        verdict = assess(synthetic_result())
        assert verdict.sustainable
        assert verdict.reasons == []

    def test_failure_is_unsustainable(self):
        verdict = assess(synthetic_result(failure="connection dropped"))
        assert not verdict.sustainable
        assert any("failure" in r.lower() for r in verdict.reasons)

    def test_growing_backlog_is_unsustainable(self):
        verdict = assess(synthetic_result(offered=1000.0, backlog_growth=100.0))
        assert not verdict.sustainable
        assert any("backlog" in r for r in verdict.reasons)

    def test_small_fluctuation_allowed(self):
        verdict = assess(synthetic_result(offered=1000.0, backlog_growth=2.0))
        assert verdict.sustainable

    def test_latency_growth_is_unsustainable(self):
        verdict = assess(synthetic_result(latency_slope=0.5))
        assert not verdict.sustainable
        assert any("latency" in r for r in verdict.reasons)

    def test_no_outputs_is_unsustainable(self):
        verdict = assess(synthetic_result(outputs=False))
        assert not verdict.sustainable

    def test_criteria_tolerances_respected(self):
        loose = SustainabilityCriteria(max_latency_slope=1.0)
        verdict = assess(synthetic_result(latency_slope=0.5), loose)
        assert verdict.sustainable

    def test_disordered_but_keeping_up_trial_is_sustainable(self):
        """Regression: events arriving 50 s late (event-time disorder)
        while the SUT fully keeps up must not trip the
        ``max_queue_delay_s`` rule -- queueing wait is measured from the
        enqueue clock, not the event-time anchor."""
        result = synthetic_result(disorder_lag=50.0)
        assert result.throughput.queue_delay_at_end() < 1.0
        verdict = assess(result)
        assert verdict.sustainable, verdict.reasons

    def test_disordered_overloaded_trial_still_fails(self):
        """Disorder must not mask a genuinely growing backlog."""
        verdict = assess(
            synthetic_result(disorder_lag=50.0, backlog_growth=100.0)
        )
        assert not verdict.sustainable


class TestSearch:
    def make_fake_run(self, capacity):
        """A fake experiment: sustainable iff rate <= capacity."""

        def run(spec):
            rate = spec.rate_profile().rate_at(0.0)
            growth = max(0.0, (rate - capacity)) + 0.0
            return synthetic_result(offered=rate, backlog_growth=growth)

        return run

    def spec(self):
        return ExperimentSpec(
            engine="flink",
            query=WindowedAggregationQuery(window=WindowSpec(4, 2)),
            duration_s=20.0,
            generator=GeneratorConfig(instances=1),
        )

    def test_returns_high_when_sustainable(self):
        result = find_sustainable_throughput(
            self.spec(), high_rate=500.0, run=self.make_fake_run(1000.0)
        )
        assert result.sustainable_rate == 500.0
        assert result.trial_count == 1

    def test_bisection_converges_to_capacity(self):
        result = find_sustainable_throughput(
            self.spec(),
            high_rate=2000.0,
            run=self.make_fake_run(1000.0),
            rel_tol=0.02,
        )
        assert result.sustainable_rate == pytest.approx(1000.0, rel=0.1)

    def test_trials_recorded(self):
        result = find_sustainable_throughput(
            self.spec(), high_rate=2000.0, run=self.make_fake_run(900.0)
        )
        assert result.trial_count >= 3
        assert result.best_trial() is not None
        assert result.best_trial().rate == result.sustainable_rate

    def test_all_unsustainable_returns_nan(self):
        """Regression: a search where every probe fails must NOT report
        the (never-run) low_rate floor as sustainable -- it returns NaN."""
        result = find_sustainable_throughput(
            self.spec(),
            high_rate=2000.0,
            low_rate=0.0,
            run=self.make_fake_run(-1.0),
            max_trials=4,
        )
        assert math.isnan(result.sustainable_rate)
        assert not result.found
        assert result.best_trial() is None
        # Every reported trial was actually run at a positive rate.
        assert all(t.rate > 0.0 for t in result.trials)

    def test_found_flag_set_when_sustainable(self):
        result = find_sustainable_throughput(
            self.spec(), high_rate=500.0, run=self.make_fake_run(1000.0)
        )
        assert result.found

    def test_invalid_bracket_rejected(self):
        with pytest.raises(ValueError):
            find_sustainable_throughput(
                self.spec(), high_rate=1.0, low_rate=2.0
            )

    def test_max_trials_bounds_work(self):
        result = find_sustainable_throughput(
            self.spec(),
            high_rate=2000.0,
            run=self.make_fake_run(1000.0),
            max_trials=3,
            rel_tol=1e-6,
        )
        assert result.trial_count <= 3
