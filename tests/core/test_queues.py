"""Unit and property tests for the driver queues."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queues import DriverQueue, QueueSet
from repro.core.records import Record
from repro.sim.failures import ConnectionDropped


def make_record(event_time=0.0, weight=1.0, key=0):
    return Record(key=key, value=1.0, event_time=event_time, weight=weight)


class TestFifo:
    def test_pull_order_is_fifo(self):
        q = DriverQueue("q")
        q.push(make_record(event_time=1.0, key=1))
        q.push(make_record(event_time=2.0, key=2))
        pulled = q.pull(10.0)
        assert [r.key for r in pulled] == [1, 2]

    def test_pull_respects_budget(self):
        q = DriverQueue("q")
        for t in range(5):
            q.push(make_record(event_time=float(t)))
        pulled = q.pull(3.0)
        assert sum(r.weight for r in pulled) == pytest.approx(3.0)
        assert q.queued_weight == pytest.approx(2.0)

    def test_head_cohort_split_on_partial_pull(self):
        q = DriverQueue("q")
        q.push(make_record(event_time=1.0, weight=10.0))
        pulled = q.pull(4.0)
        assert len(pulled) == 1
        assert pulled[0].weight == pytest.approx(4.0)
        assert q.queued_weight == pytest.approx(6.0)
        rest = q.pull(100.0)
        assert rest[0].weight == pytest.approx(6.0)

    def test_pull_zero_budget_returns_nothing(self):
        q = DriverQueue("q")
        q.push(make_record())
        assert q.pull(0.0) == []

    def test_weight_conservation(self):
        q = DriverQueue("q")
        total = 0.0
        for t in range(10):
            q.push(make_record(event_time=float(t), weight=1.7))
            total += 1.7
        pulled_weight = 0.0
        while q.queued_weight > 0:
            batch = q.pull(2.3)
            pulled_weight += sum(r.weight for r in batch)
        assert pulled_weight == pytest.approx(total)
        assert q.pulled_weight == pytest.approx(total)
        assert q.pushed_weight == pytest.approx(total)


class TestWatermark:
    def test_watermark_tracks_last_pull(self):
        q = DriverQueue("q")
        q.push(make_record(event_time=1.0))
        q.push(make_record(event_time=2.0))
        q.pull(1.0)
        assert q.watermark == pytest.approx(1.0)

    def test_empty_queue_watermark_advances_to_frontier(self):
        q = DriverQueue("q")
        q.push(make_record(event_time=5.0))
        q.pull(10.0)
        q_frontier = q.watermark
        assert q_frontier == pytest.approx(5.0)

    def test_frontier_tracks_pushes(self):
        q = DriverQueue("q")
        q.push(make_record(event_time=3.0))
        assert q.frontier_event_time == pytest.approx(3.0)

    def test_oldest_wait(self):
        q = DriverQueue("q")
        q.push(make_record(event_time=2.0))
        assert q.oldest_wait(now=10.0) == pytest.approx(8.0)
        q.pull(10.0)
        assert q.oldest_wait(now=10.0) == 0.0

    def test_oldest_wait_uses_push_time_not_event_time(self):
        """Regression: a late (disordered) record pushed just now must
        not look 'old' to the queue-delay signal."""
        q = DriverQueue("q")
        # Event generated at t=2 but delivered late, enqueued at t=10.
        q.push(make_record(event_time=2.0), at_time=10.0)
        assert q.oldest_wait(now=10.5) == pytest.approx(0.5)
        assert q.head_push_time() == pytest.approx(10.0)
        # Event-time is still visible for watermark purposes.
        assert q.head_event_time() == pytest.approx(2.0)

    def test_oldest_wait_falls_back_to_event_time_without_clock(self):
        q = DriverQueue("q")
        q.push(make_record(event_time=3.0))  # no at_time supplied
        assert q.oldest_wait(now=5.0) == pytest.approx(2.0)

    def test_split_cohort_keeps_original_push_time(self):
        q = DriverQueue("q")
        q.push(make_record(event_time=0.0, weight=10.0), at_time=1.0)
        q.pull(4.0)  # splits the head; remainder waited since t=1
        assert q.head_push_time() == pytest.approx(1.0)
        assert q.oldest_wait(now=6.0) == pytest.approx(5.0)

    def test_head_event_time(self):
        q = DriverQueue("q")
        assert q.head_event_time() is None
        q.push(make_record(event_time=4.0))
        assert q.head_event_time() == pytest.approx(4.0)


class TestConnectionDrop:
    def test_overflow_raises_connection_dropped(self):
        q = DriverQueue("q", capacity_weight=2.0)
        q.push(make_record(weight=1.5))
        with pytest.raises(ConnectionDropped):
            q.push(make_record(weight=1.0))
        assert q.dropped

    def test_dropped_queue_rejects_further_pushes(self):
        q = DriverQueue("q", capacity_weight=1.0)
        with pytest.raises(ConnectionDropped):
            q.push(make_record(weight=2.0))
        with pytest.raises(ConnectionDropped):
            q.push(make_record(weight=0.1))

    def test_capacity_boundary_is_inclusive(self):
        q = DriverQueue("q", capacity_weight=2.0)
        q.push(make_record(weight=2.0))  # exactly at capacity: fine
        assert not q.dropped


class TestQueueSet:
    def make_set(self):
        q1, q2 = DriverQueue("a"), DriverQueue("b")
        q1.push(make_record(event_time=1.0, weight=2.0))
        q2.push(make_record(event_time=3.0, weight=4.0))
        return QueueSet([q1, q2]), q1, q2

    def test_aggregates(self):
        qs, q1, q2 = self.make_set()
        assert qs.total_queued_weight == pytest.approx(6.0)
        assert qs.total_pushed_weight == pytest.approx(6.0)
        assert len(qs) == 2

    def test_watermark_is_minimum(self):
        qs, q1, q2 = self.make_set()
        q1.pull(10.0)
        q2.pull(10.0)
        assert qs.watermark == pytest.approx(1.0)

    def test_any_dropped(self):
        qs, q1, q2 = self.make_set()
        assert not qs.any_dropped
        q1.dropped = True
        assert qs.any_dropped

    def test_max_oldest_wait(self):
        qs, q1, q2 = self.make_set()
        assert qs.max_oldest_wait(now=10.0) == pytest.approx(9.0)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            QueueSet([])


class TestQueueProperties:
    @given(
        weights=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30),
        budget=st.floats(0.1, 50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_pull_never_exceeds_budget(self, weights, budget):
        q = DriverQueue("q")
        for i, w in enumerate(weights):
            q.push(make_record(event_time=float(i), weight=w))
        pulled = q.pull(budget)
        assert sum(r.weight for r in pulled) <= budget + 1e-6

    @given(weights=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_total_weight_conserved_across_pulls(self, weights):
        q = DriverQueue("q")
        for i, w in enumerate(weights):
            q.push(make_record(event_time=float(i), weight=w))
        drained = 0.0
        for _ in range(1000):
            batch = q.pull(7.3)
            if not batch:
                break
            drained += sum(r.weight for r in batch)
        assert drained == pytest.approx(sum(weights))

    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.floats(0.1, 50.0)),
                st.tuples(st.just("pull"), st.floats(0.05, 20.0)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_push_pull_conserves_weight_across_cohort_splits(self, ops):
        """Property: at every step, pushed == pulled + queued, even when
        pulls split cohorts into fractional-weight pieces."""
        q = DriverQueue("q")
        pushed = 0.0
        pulled = 0.0
        for step, (op, amount) in enumerate(ops):
            if op == "push":
                q.push(
                    make_record(event_time=float(step), weight=amount),
                    at_time=float(step),
                )
                pushed += amount
            else:
                batch = q.pull(amount)
                pulled += sum(r.weight for r in batch)
            assert q.pushed_weight == pytest.approx(pushed)
            assert q.pulled_weight == pytest.approx(pulled)
            assert q.queued_weight == pytest.approx(pushed - pulled, abs=1e-6)
            # The push-time ledger stays aligned with the cohort deque.
            assert (q.head_push_time() is None) == (q.head_event_time() is None)
        remainder = sum(r.weight for r in q.pull(float("inf")))
        assert pulled + remainder == pytest.approx(pushed)
