"""Unit tests for paper-style table rendering."""

from repro.core.metrics import TimeSeries, weighted_summary
from repro.core.report import (
    latency_table,
    series_table,
    shape_check,
    throughput_table,
)


class TestThroughputTable:
    def test_contains_engines_and_rates(self):
        table = throughput_table(
            "Table I",
            measured={("flink", 2): 1.18e6, ("storm", 2): 0.39e6},
            workers=(2,),
        )
        assert "Table I" in table
        assert "flink" in table and "storm" in table
        assert "1.18 M/s" in table
        assert "0.39 M/s" in table

    def test_paper_columns_rendered(self):
        table = throughput_table(
            "T",
            measured={("flink", 2): 1.18e6},
            paper={("flink", 2): 1.20e6},
            workers=(2,),
        )
        assert "paper" in table
        assert "1.20 M/s" in table

    def test_missing_cells_rendered_as_dashes(self):
        table = throughput_table(
            "T", measured={("flink", 2): 1.0e6}, workers=(2, 4)
        )
        assert "--" in table


class TestLatencyTable:
    def test_rows_rendered(self):
        summary = weighted_summary([1.0, 2.0, 3.0])
        table = latency_table(
            "Table II",
            measured={("flink", 2): summary, ("flink(90%)", 2): summary},
            workers=(2,),
        )
        assert "flink" in table
        assert "flink(90%)" in table
        assert "2.00" in table

    def test_paper_reference_appended(self):
        summary = weighted_summary([1.0])
        table = latency_table(
            "T",
            measured={("flink", 2): summary},
            paper={("flink", 2): (0.5, 0.004, 12.3, 1.4, 2.2, 5.2)},
            workers=(2,),
        )
        assert "paper:" in table
        assert "12" in table


class TestSeriesTable:
    def test_columns_per_label(self):
        a = TimeSeries(times=[0.0, 5.0], values=[1.0, 2.0])
        b = TimeSeries(times=[0.0, 5.0], values=[3.0, 4.0])
        table = series_table("Fig", {"storm": a, "flink": b})
        assert "storm" in table and "flink" in table
        assert "time(s)" in table

    def test_row_count_capped(self):
        long_series = TimeSeries(
            times=[float(i) for i in range(1000)],
            values=[0.0] * 1000,
        )
        table = series_table("Fig", {"x": long_series}, max_rows=20)
        assert len(table.splitlines()) <= 25


class TestShapeCheck:
    def test_ok_and_miss(self):
        ok, line = shape_check("flink wins", True)
        assert ok and "[OK ]" in line
        ok, line = shape_check("spark wins", False, detail="it did not")
        assert not ok and "[MISS]" in line and "it did not" in line
