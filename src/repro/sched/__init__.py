"""repro.sched -- the parallel trial scheduler.

Every multi-trial orchestration in the repo (the sustainable-throughput
bisection, the chaos soak grid, the benchmark-suite searches) is a set
of independent, seeded, deterministic trials.  This package fans those
trial cells out over a pool of worker processes:

- :class:`~repro.sched.pool.TrialScheduler` -- a work-stealing process
  pool: idle workers pull (steal) the next unclaimed cell from the
  parent's bag on demand, so heterogeneous trial costs balance
  automatically and the parent always knows which cell a dead worker
  took with it.
- :class:`~repro.sched.pool.TrialTask` -- one keyed trial cell: a
  picklable module-level runner function plus its payload, returning a
  JSON-safe digest.
- Crash-safe journaling: each worker writes its own
  :class:`~repro.metrology.journal.TrialJournal` shard under the parent
  journal's fingerprint; the parent folds completed digests into the
  main journal as they arrive and merges leftover shards on resume, so
  a killed worker (or a killed run) costs only in-flight trials.

The scheduler only reorders *execution*.  Per-trial seeds, journal
keys, and the deterministic order in which callers absorb results are
all derived before fan-out, so a parallel run's final report is
byte-identical to the serial run's (pinned by tests and a CI ``cmp``).
"""

from repro.sched.pool import TaskFailed, TrialScheduler, TrialTask

__all__ = ["TaskFailed", "TrialScheduler", "TrialTask"]
