"""Work-stealing process-pool trial scheduler with crash-safe shards.

Design
------
Trial cells are embarrassingly parallel: each is a pure function of a
picklable payload (an :class:`~repro.core.experiment.ExperimentSpec`
plus a little context) returning a JSON-safe digest.  The parent holds
the bag of unclaimed cells; each worker process pulls work on demand --
it announces ``ready``, the parent hands it the next cell, it runs the
cell, journals the digest to its own shard file, and reports the digest
back.  Dynamic self-scheduling means a slow cell (an engine that
survives a long recovery) never serialises the grid behind it.

The handshake (rather than a shared task queue the workers drain
directly) is what makes crash recovery exact: the parent records every
assignment before the cell leaves its hands, so when a worker dies the
parent knows precisely which cell was in flight.  A shared-bag design
cannot know that -- a ``claimed`` message from the worker rides a
buffered queue and can be lost with the process.

Crash model
-----------
- *A worker dies* (OOM-killed, SIGKILL): the parent notices the dead
  process during its poll, re-enqueues the worker's assigned cell for
  the survivors, and carries on.  Cells the dead worker already
  finished are safe twice over -- in its shard on disk and in the
  parent's journal (the parent records each digest as it arrives).
- *Every worker dies*: the parent finishes the remaining cells inline.
- *The parent dies*: worker shards remain on disk; the next run with
  ``--resume`` merges them under the journal fingerprint and replays,
  so the crash costs only trials that were in flight.

Determinism
-----------
The scheduler never invents order: results are returned as a
``{key: digest}`` mapping and the caller absorbs them in its own
deterministic order.  Seeds and journal keys are computed by the caller
*before* fan-out.  Parallel and serial runs of the same grid therefore
produce byte-identical reports -- the property the chaos CI smoke
``cmp``s.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.metrology.journal import MISSING, TrialJournal, shard_path


class TaskFailed(RuntimeError):
    """A trial task raised inside a worker (carries the remote traceback)."""


@dataclass(frozen=True)
class TrialTask:
    """One independent trial cell.

    ``fn`` must be a module-level function (pickled by reference) taking
    ``payload`` and returning a JSON-safe digest; ``key`` identifies the
    cell in journals and in the returned result mapping.
    """

    key: str
    fn: Callable[[Any], Any]
    payload: Any = None


def _preferred_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (fast start, no re-import); else spawn."""
    method = os.environ.get("REPRO_SCHED_START")
    if method is None:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
    return multiprocessing.get_context(method)


def _worker_main(
    index: int,
    task_queue,
    result_queue,
    shard: Optional[str],
    fingerprint: Optional[str],
) -> None:  # pragma: no cover - runs in a child process
    """Pull cells from the parent until the shutdown sentinel."""
    journal = (
        TrialJournal(shard, fingerprint) if shard is not None else None
    )
    while True:
        result_queue.put(("ready", index, None, None))
        task = task_queue.get()
        if task is None:
            return
        key, fn, payload = task
        try:
            digest = fn(payload)
        except BaseException:
            result_queue.put(("error", index, key, traceback.format_exc()))
            continue
        if journal is not None:
            # Shard first, then report: the digest is durable on disk
            # before the parent ever counts it done.
            journal.record(key, digest)
        result_queue.put(("done", index, key, digest))


class _Worker:
    """Parent-side view of one worker: process, private task queue,
    and the cell currently assigned to it (None when idle)."""

    def __init__(self, process, task_queue) -> None:
        self.process = process
        self.task_queue = task_queue
        self.assigned: Optional[TrialTask] = None
        self.dead = False


class TrialScheduler:
    """Fan independent trial cells over ``workers`` processes.

    With ``workers <= 1`` (or one pending cell) everything runs inline
    in the parent -- the serial path and the parallel path share the
    journal-lookup, record, and result-shape semantics exactly.
    """

    def __init__(
        self,
        workers: int = 1,
        journal: Optional[TrialJournal] = None,
        poll_interval_s: float = 0.1,
        join_timeout_s: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.journal = journal
        self.poll_interval_s = float(poll_interval_s)
        self.join_timeout_s = float(join_timeout_s)

    def run(
        self,
        tasks: Sequence[TrialTask],
        on_result: Optional[Callable[[str, Any], None]] = None,
        on_replay: Optional[Callable[[str, Any], None]] = None,
    ) -> Dict[str, Any]:
        """Run every task; return ``{key: digest}`` for all of them.

        Journaled keys are replayed without running (``on_replay`` fires
        per replay, ``on_result`` per live completion).  Raises
        :class:`TaskFailed` if any task raised in a worker.
        """
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate task keys in one scheduler run")
        results: Dict[str, Any] = {}
        pending: List[TrialTask] = []
        for task in tasks:
            if self.journal is not None:
                cached = self.journal.get(task.key, MISSING)
                if cached is not MISSING:
                    results[task.key] = cached
                    if on_replay is not None:
                        on_replay(task.key, cached)
                    continue
            pending.append(task)
        if self.workers <= 1 or len(pending) <= 1:
            for task in pending:
                self._commit(task.key, task.fn(task.payload), results, on_result)
            return results
        self._run_pool(pending, results, on_result)
        return results

    def _commit(
        self,
        key: str,
        digest: Any,
        results: Dict[str, Any],
        on_result: Optional[Callable[[str, Any], None]],
    ) -> None:
        results[key] = digest
        if self.journal is not None:
            self.journal.record(key, digest)
        if on_result is not None:
            on_result(key, digest)

    # -- the pool ------------------------------------------------------------

    def _run_pool(
        self,
        pending: List[TrialTask],
        results: Dict[str, Any],
        on_result: Optional[Callable[[str, Any], None]],
    ) -> None:
        context = _preferred_context()
        count = min(self.workers, len(pending))
        result_queue = context.Queue()
        todo = deque(pending)
        outstanding: Set[str] = {task.key for task in pending}
        fingerprint = (
            self.journal.fingerprint if self.journal is not None else None
        )
        pool: List[_Worker] = []
        for index in range(count):
            shard = (
                str(shard_path(self.journal.path, index))
                if self.journal is not None
                else None
            )
            task_queue = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(index, task_queue, result_queue, shard, fingerprint),
                daemon=True,
            )
            process.start()
            pool.append(_Worker(process, task_queue))
        idle: List[int] = []
        failure: Optional[TaskFailed] = None

        def assign(index: int) -> None:
            task = todo.popleft()
            pool[index].assigned = task
            pool[index].task_queue.put((task.key, task.fn, task.payload))

        try:
            while outstanding:
                try:
                    kind, index, key, value = result_queue.get(
                        timeout=self.poll_interval_s
                    )
                except queue_module.Empty:
                    self._reap(pool, todo, idle)
                    while todo and idle:
                        assign(idle.pop())
                    if all(worker.dead for worker in pool) and outstanding:
                        # The whole pool is gone; finish the tail inline
                        # so the run still completes deterministically.
                        for task in pending:
                            if task.key in outstanding:
                                self._commit(
                                    task.key, task.fn(task.payload),
                                    results, on_result,
                                )
                                outstanding.discard(task.key)
                    continue
                if kind == "ready":
                    if todo:
                        assign(index)
                    else:
                        idle.append(index)
                elif kind == "done":
                    pool[index].assigned = None
                    if key in outstanding:
                        outstanding.discard(key)
                        self._commit(key, value, results, on_result)
                elif kind == "error":
                    pool[index].assigned = None
                    failure = TaskFailed(
                        f"trial task {key!r} failed in worker {index}:\n"
                        f"{value}"
                    )
                    break
        finally:
            self._shutdown(pool, result_queue, failure)
            if self.journal is not None:
                # Fold worker shards into the parent journal (digests
                # whose "done" message never arrived included), then
                # drop them -- the parent journal is authoritative.
                self.journal.merge_shards()
        if failure is not None:
            raise failure

    def _reap(
        self,
        pool: List[_Worker],
        todo,
        idle: List[int],
    ) -> None:
        """Detect dead workers; put their assigned cells back in the bag.

        The parent recorded the assignment before sending it, so a
        SIGKILLed worker can never take the identity of its in-flight
        cell to the grave -- the cell goes back to the front of the bag
        for the survivors.
        """
        for index, worker in enumerate(pool):
            if worker.dead or worker.process.is_alive():
                continue
            worker.dead = True
            if index in idle:
                idle.remove(index)
            task = worker.assigned
            worker.assigned = None
            if task is not None:
                todo.appendleft(task)

    def _shutdown(self, pool: List[_Worker], result_queue, failure) -> None:
        if failure is not None:
            # Fail fast: no point letting workers grind through the
            # rest of a grid whose run is already doomed.
            for worker in pool:
                if worker.process.is_alive():
                    worker.process.terminate()
        else:
            for worker in pool:
                worker.task_queue.put(None)
        for worker in pool:
            worker.process.join(timeout=self.join_timeout_s)
        for worker in pool:
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=self.join_timeout_s)
        for worker in pool:
            worker.task_queue.close()
            worker.task_queue.cancel_join_thread()
        result_queue.close()
        result_queue.cancel_join_thread()
