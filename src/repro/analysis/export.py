"""JSON export of trial results and search outcomes.

Benchmark runs are only useful if they can leave the process: this
module serialises :class:`~repro.core.driver.TrialResult` and
:class:`~repro.core.sustainable.SustainableSearchResult` into plain
dictionaries / JSON files that downstream tooling (plotting, regression
tracking) can consume without importing the framework.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from repro.core.driver import TrialResult
from repro.core.latency import EVENT_TIME, PROCESSING_TIME
from repro.core.metrics import StatSummary
from repro.core.sustainable import OnlineSearchResult, SustainableSearchResult


def summary_to_dict(summary: StatSummary) -> Dict[str, Any]:
    """Flatten a :class:`StatSummary` (NaNs become None for JSON)."""
    return summary.to_dict()


def trial_to_dict(
    result: TrialResult,
    include_series: bool = False,
    series_bin_s: float = 5.0,
) -> Dict[str, Any]:
    """Serialise one trial.

    With ``include_series`` the binned latency series and the throughput
    series are embedded (larger but figure-ready).
    """
    payload: Dict[str, Any] = {
        "engine": result.engine,
        "workers": result.workers,
        "query_kind": result.query_kind,
        "duration_s": result.duration_s,
        "warmup_s": result.warmup_s,
        "failure": result.failure,
        "mean_ingest_rate": result.mean_ingest_rate,
        "event_latency": summary_to_dict(result.event_latency),
        "processing_latency": summary_to_dict(result.processing_latency),
        "output_tuples": len(result.collector),
        "diagnostics": {
            key: float(value) for key, value in result.diagnostics.items()
        },
    }
    if result.recovery is not None:
        payload["recovery"] = [m.to_dict() for m in result.recovery]
    if result.detection is not None:
        payload["detection"] = result.detection.to_dict()
    if result.autoscale is not None:
        payload["autoscale"] = [m.to_dict() for m in result.autoscale]
    if result.attempts is not None:
        payload["attempts"] = [a.to_dict() for a in result.attempts]
    if result.observability is not None:
        payload["observability"] = result.observability.to_dict()
    if include_series:
        event = result.collector.binned_series(
            EVENT_TIME, bin_s=series_bin_s, start_time=result.warmup_s
        )
        proc = result.collector.binned_series(
            PROCESSING_TIME, bin_s=series_bin_s, start_time=result.warmup_s
        )
        ingest = result.throughput.ingest_series
        occupancy = result.throughput.occupancy_series
        payload["series"] = {
            "event_latency": {
                "t": event.times.tolist(),
                "v": event.values.tolist(),
            },
            "processing_latency": {
                "t": proc.times.tolist(),
                "v": proc.values.tolist(),
            },
            "ingest_rate": {
                "t": ingest.times.tolist(),
                "v": ingest.values.tolist(),
            },
            "queue_occupancy": {
                "t": occupancy.times.tolist(),
                "v": occupancy.values.tolist(),
            },
        }
    return payload


def search_to_dict(search: SustainableSearchResult) -> Dict[str, Any]:
    """Serialise a sustainable-throughput search with its trial ladder.

    A search where no probed rate was sustainable carries
    ``sustainable_rate = NaN``; that becomes ``None`` in JSON.
    """
    rate = search.sustainable_rate
    return {
        "sustainable_rate": None if rate != rate else float(rate),
        "trial_count": search.trial_count,
        # export_entry() serialises live and journal-replayed trials
        # identically (resume byte-identity relies on this).
        "trials": [trial.export_entry() for trial in search.trials],
    }


def online_search_to_dict(search: OnlineSearchResult) -> Dict[str, Any]:
    """Serialise a single-trial AIMD probe: the estimate, every control
    decision, and the applied rate trajectory (figure-ready)."""
    rate = search.sustainable_rate
    return {
        "sustainable_rate": None if rate != rate else float(rate),
        "decision_count": search.decision_count,
        "decisions": [
            {
                "at_s": d.at_s,
                "rate": d.rate,
                "oldest_wait_s": d.oldest_wait_s,
                "wait_slope": d.wait_slope,
                "healthy": d.healthy,
                "action": d.action,
                "next_rate": d.next_rate,
            }
            for d in search.decisions
        ],
        "trajectory": [
            {"t": t, "rate": r} for t, r in search.trajectory
        ],
        "trial": trial_to_dict(search.result),
    }


def write_json(
    payload: Dict[str, Any], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write a payload as pretty-printed JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def export_trial(
    result: TrialResult,
    path: Union[str, pathlib.Path],
    include_series: bool = True,
) -> pathlib.Path:
    """Convenience: trial -> JSON file."""
    return write_json(trial_to_dict(result, include_series=include_series), path)
