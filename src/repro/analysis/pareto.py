"""Pareto-front extraction for benchmark trade-off frontiers.

The checkpoint-interval sensitivity sweep (:mod:`repro.recoverybench`)
produces one point per interval: recovery time after a fault vs. the
steady-state pause overhead the checkpoint cadence costs.  Vogel et
al. (2024) frame fault-tolerance tuning as exactly this trade-off, so
the report must say which configurations are *efficient* -- not
improvable on one axis without paying on the other -- and which are
dominated.  The same extraction applies to any minimize-everything
objective tuple (cost vs. latency, overhead vs. loss, ...).

All objectives are minimized.  Points carrying a NaN in any objective
are never on the front (an unmeasured axis cannot claim efficiency)
and never dominate anything.
"""

from __future__ import annotations

from typing import List, Sequence


def _valid(point: Sequence[float]) -> bool:
    return all(value == value for value in point)


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good as ``b`` on every objective
    and strictly better on at least one (minimization)."""
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_front(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, minimizing every objective.

    Duplicated points are all kept (none strictly beats its twin), so
    equally-efficient configurations both show up on the front.  The
    result is sorted by index -- deterministic regardless of how the
    caller ordered equally-good points.
    """
    cleaned = [tuple(float(v) for v in p) for p in points]
    sizes = {len(p) for p in cleaned}
    if len(sizes) > 1:
        raise ValueError(
            f"points must share one objective count, got sizes {sorted(sizes)}"
        )
    front: List[int] = []
    for i, candidate in enumerate(cleaned):
        if not _valid(candidate):
            continue
        dominated = any(
            _valid(other) and _dominates(other, candidate)
            for j, other in enumerate(cleaned)
            if j != i
        )
        if not dominated:
            front.append(i)
    return front
