"""Statistical helpers for judging reproduction quality.

These functions support the shape claims the benchmarks make: relative
errors against the paper's numbers, trend classification for
sustainability arguments, and simple robust summaries.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.metrics import TimeSeries

INCREASING = "increasing"
DECREASING = "decreasing"
FLAT = "flat"


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (inf if reference is 0)."""
    if reference == 0:
        return float("inf") if measured != 0 else 0.0
    return abs(measured - reference) / abs(reference)


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when measured is within [reference/factor, reference*factor].

    The task of a simulator-backed reproduction is shape, not absolute
    agreement; benchmarks typically assert ``within_factor(..., 2.0)``.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if reference <= 0 or measured <= 0:
        return measured == reference
    return reference / factor <= measured <= reference * factor


def trend_classification(
    series: TimeSeries, flat_slope: float = 1e-3
) -> str:
    """Classify a series as increasing/decreasing/flat by its LS slope.

    ``flat_slope`` is in value-units per second; pick it relative to the
    series magnitude (the sustainability test scales it by offered rate).
    """
    slope = series.slope_per_s()
    if slope > flat_slope:
        return INCREASING
    if slope < -flat_slope:
        return DECREASING
    return FLAT


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std/mean -- used to compare ingest-rate fluctuation (Figure 9):
    Storm's pull rate fluctuates far more than Flink's."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    mean = arr.mean()
    if mean == 0:
        return float("nan")
    return float(arr.std() / abs(mean))


def iqr(values: Sequence[float]) -> float:
    """Interquartile range."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    q75, q25 = np.percentile(arr, [75, 25])
    return float(q75 - q25)


def crossover_time(
    a: TimeSeries, b: TimeSeries, bin_s: float = 5.0
) -> Tuple[bool, float]:
    """First bin where series ``a`` drops below series ``b``.

    Returns (found, time).  Used by shape checks of the form "X wins
    until t, then Y wins".
    """
    a_bins = a.binned(bin_s)
    b_bins = b.binned(bin_s)
    a_binned = dict(zip(a_bins.times.tolist(), a_bins.values.tolist()))
    b_binned = dict(zip(b_bins.times.tolist(), b_bins.values.tolist()))
    for t in sorted(set(a_binned) & set(b_binned)):
        if a_binned[t] < b_binned[t]:
            return True, t
    return False, float("nan")
