"""Post-processing: statistics, figure series, and the paper's numbers.

- :mod:`repro.analysis.stats` -- trend estimation and robust summaries
  beyond the driver's built-ins.
- :mod:`repro.analysis.timeseries` -- alignment/resampling helpers for
  building the paper's figure panels.
- :mod:`repro.analysis.ascii_plots` -- terminal rendering of series so
  the benchmark harness can show figure shapes without a plotting stack.
- :mod:`repro.analysis.pareto` -- Pareto-front extraction for benchmark
  trade-off frontiers (recovery time vs. checkpoint overhead).
- :mod:`repro.analysis.paper_values` -- every number published in the
  paper's Tables I-IV and the headline Experiment 3/4 figures, for
  side-by-side shape comparison.
"""

from repro.analysis.ascii_plots import render_series, sparkline
from repro.analysis.pareto import pareto_front
from repro.analysis.paper_values import (
    PAPER_TABLE1_AGG_THROUGHPUT,
    PAPER_TABLE2_AGG_LATENCY,
    PAPER_TABLE3_JOIN_THROUGHPUT,
    PAPER_TABLE4_JOIN_LATENCY,
)
from repro.analysis.stats import relative_error, trend_classification
from repro.analysis.timeseries import align_series, resample

__all__ = [
    "PAPER_TABLE1_AGG_THROUGHPUT",
    "PAPER_TABLE2_AGG_LATENCY",
    "PAPER_TABLE3_JOIN_THROUGHPUT",
    "PAPER_TABLE4_JOIN_LATENCY",
    "align_series",
    "pareto_front",
    "relative_error",
    "render_series",
    "resample",
    "sparkline",
    "trend_classification",
]
