"""Time-series alignment and resampling for figure panels.

The paper's figures overlay multiple runs (engines, cluster sizes,
loads) on common time axes; these helpers bring the driver's raw series
onto shared grids.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.metrics import TimeSeries


def resample(
    series: TimeSeries, step_s: float, start: Optional[float] = None
) -> TimeSeries:
    """Nearest-previous-sample resampling onto a regular grid.

    Empty gaps hold the last observed value (step interpolation), which
    matches how occupancy/throughput counters behave between samples.
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    out = TimeSeries()
    if not len(series):
        return out
    times = np.asarray(series.times)
    values = np.asarray(series.values)
    t0 = times[0] if start is None else start
    grid = np.arange(t0, times[-1] + step_s / 2, step_s)
    idx = np.searchsorted(times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(times) - 1)
    out.times = grid.tolist()
    out.values = values[idx].tolist()
    return out


def align_series(
    series: Mapping[str, TimeSeries], step_s: float
) -> Dict[str, TimeSeries]:
    """Resample several series onto one shared grid (common start)."""
    non_empty = {k: s for k, s in series.items() if len(s)}
    if not non_empty:
        return {k: TimeSeries() for k in series}
    start = min(s.times[0] for s in non_empty.values())
    return {
        key: resample(s, step_s, start=start) if len(s) else TimeSeries()
        for key, s in series.items()
    }


def normalise_time(series: TimeSeries) -> TimeSeries:
    """Shift a series so it starts at t=0 (figure-friendly)."""
    out = TimeSeries()
    if not len(series):
        return out
    t0 = series.times[0]
    out.times = [t - t0 for t in series.times]
    out.values = list(series.values)
    return out


def moving_average(series: TimeSeries, window: int) -> TimeSeries:
    """Centered moving average with edge shrinkage."""
    if window < 1:
        raise ValueError("window must be >= 1")
    out = TimeSeries()
    if not len(series):
        return out
    values = np.asarray(series.values, dtype=np.float64)
    half = window // 2
    smoothed: List[float] = []
    for i in range(len(values)):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        smoothed.append(float(values[lo:hi].mean()))
    out.times = list(series.times)
    out.values = smoothed
    return out
