"""Time-series alignment and resampling for figure panels.

The paper's figures overlay multiple runs (engines, cluster sizes,
loads) on common time axes; these helpers bring the driver's raw series
onto shared grids.  All of them operate on the NumPy backing arrays of
:class:`TimeSeries` directly -- no per-sample Python loops.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.metrics import TimeSeries


def resample(
    series: TimeSeries, step_s: float, start: Optional[float] = None
) -> TimeSeries:
    """Nearest-previous-sample resampling onto a regular grid.

    Empty gaps hold the last observed value (step interpolation), which
    matches how occupancy/throughput counters behave between samples.
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    if not len(series):
        return TimeSeries()
    times = series.times
    values = series.values
    t0 = times[0] if start is None else start
    grid = np.arange(t0, times[-1] + step_s / 2, step_s)
    idx = np.searchsorted(times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(times) - 1)
    return TimeSeries.from_arrays(grid, values[idx], assume_sorted=True)


def align_series(
    series: Mapping[str, TimeSeries], step_s: float
) -> Dict[str, TimeSeries]:
    """Resample several series onto one shared grid (common start)."""
    non_empty = {k: s for k, s in series.items() if len(s)}
    if not non_empty:
        return {k: TimeSeries() for k in series}
    start = min(s.times[0] for s in non_empty.values())
    return {
        key: resample(s, step_s, start=start) if len(s) else TimeSeries()
        for key, s in series.items()
    }


def normalise_time(series: TimeSeries) -> TimeSeries:
    """Shift a series so it starts at t=0 (figure-friendly)."""
    if not len(series):
        return TimeSeries()
    times = series.times
    return TimeSeries.from_arrays(times - times[0], series.values)


def moving_average(series: TimeSeries, window: int) -> TimeSeries:
    """Centered moving average with edge shrinkage.

    Computed with a prefix sum: each output is the mean over
    ``[i - window//2, i + window//2]`` clipped to the series bounds.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if not len(series):
        return TimeSeries()
    values = series.values
    n = values.size
    half = window // 2
    prefix = np.concatenate(([0.0], np.cumsum(values)))
    lo = np.clip(np.arange(n) - half, 0, n)
    hi = np.clip(np.arange(n) + half + 1, 0, n)
    smoothed = (prefix[hi] - prefix[lo]) / (hi - lo)
    return TimeSeries.from_arrays(series.times, smoothed)
