"""Every number the paper publishes, transcribed for shape comparison.

Benchmarks print these side by side with measured values.  Nothing in
the framework or the engine simulations reads this module; it exists so
EXPERIMENTS.md and the bench output can show paper-vs-measured without
anyone re-reading the PDF.

Units: throughputs in events/s; latency tuples are
(avg, min, max, q90, q95, q99) in seconds.
"""

from __future__ import annotations

from typing import Dict, Tuple

# Table I: Sustainable throughput for windowed aggregations.
PAPER_TABLE1_AGG_THROUGHPUT: Dict[Tuple[str, int], float] = {
    ("storm", 2): 0.40e6,
    ("storm", 4): 0.69e6,
    ("storm", 8): 0.99e6,
    ("spark", 2): 0.38e6,
    ("spark", 4): 0.64e6,
    ("spark", 8): 0.91e6,
    ("flink", 2): 1.20e6,
    ("flink", 4): 1.20e6,
    ("flink", 8): 1.20e6,
}

# Table II: Latency statistics for windowed aggregations.
# Keys: (row label, workers); row label "<engine>" is the max-throughput
# run, "<engine>(90%)" the 90%-workload run.
PAPER_TABLE2_AGG_LATENCY: Dict[Tuple[str, int], Tuple[float, ...]] = {
    ("storm", 2): (1.4, 0.07, 5.7, 2.3, 2.7, 3.4),
    ("storm", 4): (2.1, 0.1, 12.2, 3.7, 5.8, 7.7),
    ("storm", 8): (2.2, 0.2, 17.7, 3.8, 6.4, 9.2),
    ("storm(90%)", 2): (1.1, 0.08, 5.7, 1.8, 2.1, 2.8),
    ("storm(90%)", 4): (1.6, 0.04, 9.2, 2.9, 4.1, 6.3),
    ("storm(90%)", 8): (1.9, 0.2, 11.0, 3.3, 5.0, 7.6),
    ("spark", 2): (3.6, 2.5, 8.5, 4.6, 4.9, 5.9),
    ("spark", 4): (3.3, 1.9, 6.9, 4.1, 4.3, 4.9),
    ("spark", 8): (3.1, 1.2, 6.9, 3.8, 4.1, 4.7),
    ("spark(90%)", 2): (3.4, 2.3, 8.0, 3.9, 4.5, 5.4),
    ("spark(90%)", 4): (2.8, 1.6, 6.9, 3.4, 3.7, 4.8),
    ("spark(90%)", 8): (2.7, 1.7, 5.9, 3.6, 3.9, 4.8),
    ("flink", 2): (0.5, 0.004, 12.3, 1.4, 2.2, 5.2),
    ("flink", 4): (0.2, 0.004, 5.1, 0.6, 1.2, 2.4),
    ("flink", 8): (0.2, 0.004, 5.4, 0.6, 1.2, 3.9),
    ("flink(90%)", 2): (0.3, 0.003, 5.8, 0.7, 1.1, 2.0),
    ("flink(90%)", 4): (0.2, 0.004, 5.1, 0.6, 1.3, 2.4),
    ("flink(90%)", 8): (0.2, 0.002, 5.4, 0.5, 0.8, 3.4),
}

# Table III: Sustainable throughput for windowed joins.
PAPER_TABLE3_JOIN_THROUGHPUT: Dict[Tuple[str, int], float] = {
    ("spark", 2): 0.36e6,
    ("spark", 4): 0.63e6,
    ("spark", 8): 0.94e6,
    ("flink", 2): 0.85e6,
    ("flink", 4): 1.12e6,
    ("flink", 8): 1.19e6,
}

# The naive Storm join (Experiment 2 text, not tabulated):
PAPER_STORM_NAIVE_JOIN_THROUGHPUT_2NODE = 0.14e6
PAPER_STORM_NAIVE_JOIN_AVG_LATENCY_2NODE = 2.3

# Table IV: Latency statistics for windowed joins.
PAPER_TABLE4_JOIN_LATENCY: Dict[Tuple[str, int], Tuple[float, ...]] = {
    ("spark", 2): (7.7, 1.3, 21.6, 11.2, 12.4, 14.7),
    ("spark", 4): (6.7, 2.1, 23.6, 10.2, 11.7, 15.4),
    ("spark", 8): (6.2, 1.8, 19.9, 9.4, 10.4, 13.2),
    ("spark(90%)", 2): (7.1, 2.1, 17.9, 10.3, 11.1, 12.7),
    ("spark(90%)", 4): (5.8, 1.8, 13.9, 8.7, 9.5, 10.7),
    ("spark(90%)", 8): (5.7, 1.7, 14.1, 8.6, 9.4, 10.6),
    ("flink", 2): (4.3, 0.01, 18.2, 7.6, 8.5, 10.5),
    ("flink", 4): (3.6, 0.02, 13.8, 6.7, 7.5, 8.6),
    ("flink", 8): (3.2, 0.02, 14.9, 6.2, 7.0, 8.4),
    ("flink(90%)", 2): (3.8, 0.02, 13.0, 6.7, 7.5, 8.7),
    ("flink(90%)", 4): (3.2, 0.02, 12.7, 6.1, 6.9, 8.0),
    ("flink(90%)", 8): (3.2, 0.02, 14.9, 6.2, 6.9, 8.3),
}

# Experiment 3 (large windows, aggregation (60s, 60s), 4 s batches):
# "Spark's throughput decreases by 2 times and avg latency increases by
# 10 times"; fixed by the Inverse Reduce Function.
PAPER_EXP3_SPARK_THROUGHPUT_FACTOR = 0.5
PAPER_EXP3_SPARK_LATENCY_FACTOR = 10.0

# Experiment 4 (single-key skew, aggregation):
PAPER_EXP4_FLINK_SKEW_THROUGHPUT = 0.48e6  # does not scale with nodes
PAPER_EXP4_STORM_SKEW_THROUGHPUT = 0.20e6  # does not scale with nodes
PAPER_EXP4_SPARK_SKEW_THROUGHPUT_4NODE = 0.53e6  # tree-aggregate scales

# Experiment 5 (fluctuating workloads): 0.84 M/s -> 0.28 M/s -> 0.84 M/s.
PAPER_EXP5_HIGH_RATE = 0.84e6
PAPER_EXP5_LOW_RATE = 0.28e6

# Experiment 7 (observed from the driver): sustainable average latencies
# range 0.2..6.2 s; minimum 0.003 s; maximum 19.9 s.
PAPER_EXP7_AVG_LATENCY_RANGE = (0.2, 6.2)
PAPER_EXP7_MIN_LATENCY = 0.003
PAPER_EXP7_MAX_LATENCY = 19.9
