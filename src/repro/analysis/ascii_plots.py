"""Terminal rendering of figure series.

The benchmark harness regenerates the *data* behind every paper figure;
these helpers give it a visual form without a plotting dependency --
sparklines for one-liners and a block plot for panel-style figures.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.metrics import TimeSeries

_SPARK_CHARS = " .:-=+*#%@"
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line block rendering of a value series."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=np.float64)
    if arr.size == 0:
        return "(empty)"
    if arr.size > width:
        # Downsample by averaging chunks.
        chunks = np.array_split(arr, width)
        arr = np.asarray([chunk.mean() for chunk in chunks])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _BLOCKS[1] * arr.size
    scaled = (arr - lo) / (hi - lo)
    idx = np.minimum((scaled * (len(_BLOCKS) - 1)).astype(int), len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in idx)


def render_series(
    series: TimeSeries,
    title: str = "",
    width: int = 64,
    height: int = 12,
    unit: str = "",
) -> str:
    """Multi-line scatter rendering of one time series."""
    lines = []
    if title:
        lines.append(title)
    if not len(series):
        lines.append("(empty series)")
        return "\n".join(lines)
    t = np.asarray(series.times, dtype=np.float64)
    v = np.asarray(series.values, dtype=np.float64)
    finite = np.isfinite(v)
    t, v = t[finite], v[finite]
    if t.size == 0:
        lines.append("(no finite samples)")
        return "\n".join(lines)
    t_lo, t_hi = float(t.min()), float(t.max())
    v_lo, v_hi = float(v.min()), float(v.max())
    t_span = max(t_hi - t_lo, 1e-12)
    v_span = max(v_hi - v_lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for ti, vi in zip(t, v):
        x = min(int((ti - t_lo) / t_span * (width - 1)), width - 1)
        y = min(int((vi - v_lo) / v_span * (height - 1)), height - 1)
        row = height - 1 - y
        grid[row][x] = "*"
    lines.append(f"{v_hi:10.3f}{unit} +" + "-" * width)
    for row in grid:
        lines.append(" " * 12 + "|" + "".join(row))
    lines.append(f"{v_lo:10.3f}{unit} +" + "-" * width)
    lines.append(
        " " * 13 + f"t = {t_lo:.0f}s .. {t_hi:.0f}s ({len(series)} samples)"
    )
    return "\n".join(lines)


def render_panels(
    panels: Mapping[str, TimeSeries],
    width: int = 64,
    unit: str = "",
) -> str:
    """Sparkline-per-panel rendering for multi-panel figures (Fig 4/5)."""
    lines = []
    label_width = max((len(k) for k in panels), default=0) + 1
    for label, series in panels.items():
        spark = sparkline(series.values, width=width)
        rng = ""
        finite = [v for v in series.values if np.isfinite(v)]
        if finite:
            rng = f"  [{min(finite):.2f} .. {max(finite):.2f}{unit}]"
        lines.append(f"{label:<{label_width}} {spark}{rng}")
    return "\n".join(lines)
