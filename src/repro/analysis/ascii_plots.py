"""Terminal rendering of figure series.

The benchmark harness regenerates the *data* behind every paper figure;
these helpers give it a visual form without a plotting dependency --
sparklines for one-liners and a block plot for panel-style figures.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.metrics import TimeSeries

_SPARK_CHARS = " .:-=+*#%@"
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line block rendering of a value series."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=np.float64)
    if arr.size == 0:
        return "(empty)"
    if arr.size > width:
        # Downsample by averaging chunks.
        chunks = np.array_split(arr, width)
        arr = np.asarray([chunk.mean() for chunk in chunks])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _BLOCKS[1] * arr.size
    scaled = (arr - lo) / (hi - lo)
    idx = np.minimum((scaled * (len(_BLOCKS) - 1)).astype(int), len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in idx)


def render_series(
    series: TimeSeries,
    title: str = "",
    width: int = 64,
    height: int = 12,
    unit: str = "",
) -> str:
    """Multi-line scatter rendering of one time series."""
    lines = []
    if title:
        lines.append(title)
    if not len(series):
        lines.append("(empty series)")
        return "\n".join(lines)
    t = np.asarray(series.times, dtype=np.float64)
    v = np.asarray(series.values, dtype=np.float64)
    finite = np.isfinite(v)
    t, v = t[finite], v[finite]
    if t.size == 0:
        lines.append("(no finite samples)")
        return "\n".join(lines)
    t_lo, t_hi = float(t.min()), float(t.max())
    v_lo, v_hi = float(v.min()), float(v.max())
    t_span = max(t_hi - t_lo, 1e-12)
    v_span = max(v_hi - v_lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for ti, vi in zip(t, v):
        x = min(int((ti - t_lo) / t_span * (width - 1)), width - 1)
        y = min(int((vi - v_lo) / v_span * (height - 1)), height - 1)
        row = height - 1 - y
        grid[row][x] = "*"
    lines.append(f"{v_hi:10.3f}{unit} +" + "-" * width)
    for row in grid:
        lines.append(" " * 12 + "|" + "".join(row))
    lines.append(f"{v_lo:10.3f}{unit} +" + "-" * width)
    lines.append(
        " " * 13 + f"t = {t_lo:.0f}s .. {t_hi:.0f}s ({len(series)} samples)"
    )
    return "\n".join(lines)


def render_panels(
    panels: Mapping[str, TimeSeries],
    width: int = 64,
    unit: str = "",
) -> str:
    """Sparkline-per-panel rendering for multi-panel figures (Fig 4/5)."""
    lines = []
    label_width = max((len(k) for k in panels), default=0) + 1
    for label, series in panels.items():
        spark = sparkline(series.values, width=width)
        rng = ""
        finite = [v for v in series.values if np.isfinite(v)]
        if finite:
            rng = f"  [{min(finite):.2f} .. {max(finite):.2f}{unit}]"
        lines.append(f"{label:<{label_width}} {spark}{rng}")
    return "\n".join(lines)


def render_trace(trace, width: int = 40) -> str:
    """Horizontal-bar rendering of one lifecycle trace's spans.

    Accepts an :class:`~repro.obs.trace.EventTrace` or its exported
    dict.  Bars are proportional to each span's share of the traced
    event's end-to-end (event-time) latency.
    """
    data = trace.to_dict() if hasattr(trace, "to_dict") else trace
    spans = data.get("spans", [])
    total = sum(s["duration_s"] for s in spans)
    header = (
        f"trace {data.get('trace_id', '?')} key={data.get('key', '?')} "
        f"{data.get('stream', '')} latency {total:.3f}s"
    )
    lines = [header]
    for span in spans:
        duration = span["duration_s"]
        frac = duration / total if total > 0 else 0.0
        bar = "#" * int(round(frac * width))
        if duration > 0 and not bar:
            bar = "."
        lines.append(f"  {span['name']:<16} {duration:9.4f}s  {bar}")
    return "\n".join(lines)


def render_obs_dashboard(report, width: int = 56, max_traces: int = 2) -> str:
    """Terminal dashboard of one trial's observability report.

    One sparkline per registry series (per-queue instruments are
    collapsed into the driver aggregate to keep the panel readable), a
    span-duration decomposition averaged over all completed traces, and
    the first ``max_traces`` completed traces in full.
    """
    registry = report.registry
    log = report.trace_log
    lines = [
        f"metrics registry ({registry.sample_count} samples "
        f"@ {registry.interval_s:g}s):"
    ]
    panels = {
        name: series
        for name, series in sorted(registry.series.items())
        if "{" not in name  # per-instance series stay in the JSON export
    }
    if panels:
        lines.append(render_panels(panels, width=width))
    else:
        lines.append("  (no samples)")
    completed = log.completed
    lines.append(
        f"traces: {log.started_count} started, {len(completed)} completed, "
        f"{sum(1 for t in log.started if t.dropped)} dropped, "
        f"{len(log.events)} timeline events"
    )
    if completed:
        totals: dict = {}
        for trace in completed:
            for name, duration in trace.span_durations().items():
                totals[name] = totals.get(name, 0.0) + duration
        n = len(completed)
        mean_latency = sum(
            t.event_time_latency for t in completed
        ) / n
        lines.append(
            f"mean traced event-time latency {mean_latency:.3f}s, "
            "decomposed:"
        )
        for name, total in sorted(
            totals.items(), key=lambda kv: -kv[1]
        ):
            share = total / (mean_latency * n) if mean_latency > 0 else 0.0
            lines.append(f"  {name:<16} {total / n:9.4f}s  ({share:6.1%})")
        for trace in completed[:max_traces]:
            lines.append(render_trace(trace, width=width // 2))
    return "\n".join(lines)
