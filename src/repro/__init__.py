"""repro: reproduction of "Benchmarking Distributed Stream Data
Processing Systems" (Karimov et al., ICDE 2018).

A driver/SUT-separated benchmarking framework for stream data processing
systems, together with simulated models of Apache Storm 1.0.2, Apache
Spark Streaming 2.0.1, and Apache Flink 1.1.3 faithful to the
architectural analysis in the paper.

Quick start::

    from repro import ExperimentSpec, run_experiment
    result = run_experiment(ExperimentSpec(engine="flink", profile=0.3e6))
    print(result.describe())

Subpackages
-----------
- ``repro.core`` -- the benchmark framework (generators, queues,
  event-/processing-time latency, sustainable throughput, driver).
- ``repro.engines`` -- the three engine models and the generic engine
  interface.
- ``repro.workloads`` -- the Rovio-inspired purchases/ads workload.
- ``repro.faults`` -- fault schedules, the checkpointing model,
  delivery-guarantee accounting, and recovery metrology.
- ``repro.sim`` -- the deterministic discrete-event substrate.
- ``repro.analysis`` -- post-processing, figure series, and the paper's
  published values for side-by-side comparison.
"""

from repro.core import (
    ExperimentSpec,
    SustainabilityCriteria,
    TrialResult,
    assess,
    find_sustainable_throughput,
    find_sustainable_throughput_under_faults,
    run_experiment,
)
from repro.engines import ENGINES, engine_class
from repro.faults import (
    CheckpointSpec,
    DeliveryGuarantee,
    FaultSchedule,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    RecoveryMetrics,
    SlowNode,
)
from repro.workloads import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

__version__ = "1.0.0"

__all__ = [
    "CheckpointSpec",
    "DeliveryGuarantee",
    "ENGINES",
    "ExperimentSpec",
    "FaultSchedule",
    "NetworkPartition",
    "NodeCrash",
    "ProcessRestart",
    "QueueDisconnect",
    "RecoveryMetrics",
    "SlowNode",
    "SustainabilityCriteria",
    "TrialResult",
    "WindowSpec",
    "WindowedAggregationQuery",
    "WindowedJoinQuery",
    "assess",
    "engine_class",
    "find_sustainable_throughput",
    "find_sustainable_throughput_under_faults",
    "run_experiment",
    "__version__",
]
