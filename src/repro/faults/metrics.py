"""Recovery metrology: what the fault benchmark actually measures.

All recovery metrics are computed *driver-side* from the same series
the paper's methodology already collects -- the sink's event-time
latency samples and the queue-side ingest throughput.  Nothing is read
from inside the SUT (the engine's fault log only records what was
injected and the guarantee accounting, never a measurement).

Per fault event (Vogel et al. 2024, Section IV):

- **detection time** -- the failure-detector delay before the engine
  even reacts (a property of the fault-tolerance configuration);
- **recovery time** -- from the injection to the first return of
  binned event-time latency into the pre-fault baseline band, sustained
  for ``settle_bins`` consecutive bins.  Event-time latency (not
  processing-time) is the right signal: during catch-up the engine
  processes *old* events fast, so processing-time latency looks healthy
  while the user-visible staleness is still recovering;
- **catch-up throughput** -- the peak queue-drain rate between the
  fault and recovery: how hard the engine can burst above the offered
  rate to work off the outage backlog;
- **post-recovery p99 vs. baseline p99** -- residual damage after
  recovery (a smaller cluster running closer to its limit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.latency import EVENT_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.driver import TrialResult

NAN = float("nan")


@dataclass(frozen=True)
class RecoveryMetrics:
    """Everything measured about one injected fault."""

    kind: str
    fault_time_s: float
    detection_s: float
    """Failure-detector delay (from the checkpoint model; NaN for
    transient faults the engine does not have to detect)."""
    injected_pause_s: float
    """Derived (or overridden) processing outage the engine served."""
    recovery_time_s: float
    """Injection to sustained return into the baseline latency band;
    NaN when latency never recovered within the trial."""
    catchup_throughput: float
    """Peak ingest rate (events/s) between the fault and recovery."""
    baseline_latency_s: float
    """Mean binned event-time latency over the pre-fault window."""
    baseline_p99_s: float
    post_p99_s: float
    """p99 event-time latency after recovery (NaN if never recovered
    or no post-recovery outputs)."""
    lost_weight: float
    duplicated_weight: float

    @property
    def recovered(self) -> bool:
        return self.recovery_time_s == self.recovery_time_s

    # -- phase decomposition ------------------------------------------------
    #
    # The recovery window splits into three consecutive phases (Vogel et
    # al. 2024's time decomposition): *detection* (failure-detector
    # delay), *restore* (the rest of the injected processing outage --
    # restart, state restore, replay), and *catch-up* (processing
    # resumed but latency still outside the baseline band while the
    # outage backlog drains).  The measured signals can disagree by a
    # bin (the outage is model-derived, the recovery time is read off
    # binned latency), so each phase is clamped into the window: the
    # three are non-negative, ordered, and sum to ``recovery_time_s``
    # exactly.  All three are NaN when the fault never recovered --
    # there is no window to decompose.

    def _clamped_outage(self) -> tuple:
        total = self.recovery_time_s
        detection = self.detection_s if self.detection_s == self.detection_s else 0.0
        detection = min(max(detection, 0.0), total)
        outage = (
            self.injected_pause_s
            if self.injected_pause_s == self.injected_pause_s
            else 0.0
        )
        outage = min(max(outage, detection), total)
        return detection, outage

    @property
    def detection_phase_s(self) -> float:
        """Share of the recovery window spent detecting the failure."""
        if not self.recovered:
            return NAN
        return self._clamped_outage()[0]

    @property
    def restore_phase_s(self) -> float:
        """Share of the window spent in the processing outage past
        detection (restart + state restore + input replay)."""
        if not self.recovered:
            return NAN
        detection, outage = self._clamped_outage()
        return outage - detection

    @property
    def catchup_phase_s(self) -> float:
        """Share of the window spent draining the outage backlog after
        processing resumed."""
        if not self.recovered:
            return NAN
        return self.recovery_time_s - self._clamped_outage()[1]

    def to_dict(self) -> Dict[str, Any]:
        def clean(value: float) -> Optional[float]:
            return None if value != value else float(value)

        return {
            "kind": self.kind,
            "fault_time_s": float(self.fault_time_s),
            "recovered": self.recovered,
            "detection_s": clean(self.detection_s),
            "injected_pause_s": clean(self.injected_pause_s),
            "recovery_time_s": clean(self.recovery_time_s),
            "detection_phase_s": clean(self.detection_phase_s),
            "restore_phase_s": clean(self.restore_phase_s),
            "catchup_phase_s": clean(self.catchup_phase_s),
            "catchup_throughput": clean(self.catchup_throughput),
            "baseline_latency_s": clean(self.baseline_latency_s),
            "baseline_p99_s": clean(self.baseline_p99_s),
            "post_p99_s": clean(self.post_p99_s),
            "lost_weight": float(self.lost_weight),
            "duplicated_weight": float(self.duplicated_weight),
        }

    def describe(self) -> str:
        recovery = (
            f"{self.recovery_time_s:.1f}s" if self.recovered else "never"
        )
        catchup = (
            f"{self.catchup_throughput / 1e6:.3f} M/s"
            if self.catchup_throughput == self.catchup_throughput
            else "n/a"
        )
        return (
            f"{self.kind}@{self.fault_time_s:g}s: recovery {recovery}, "
            f"catch-up {catchup}, "
            f"lost {self.lost_weight:.0f}, dup {self.duplicated_weight:.0f}"
        )


def recovery_timeline_events(
    metrics: Sequence[RecoveryMetrics],
) -> List[Dict[str, Any]]:
    """Convert recovery metrology into observability timeline events.

    Each fault yields a ``recovery.detected`` event (injection plus the
    detector delay) and -- when latency returned to the baseline band --
    a ``recovery.recovered`` event at that instant, so traces alive
    through the outage are annotated with the measured recovery, not
    just the injection (see :meth:`repro.obs.trace.TraceLog.annotate`).
    Keys match :meth:`TraceLog.add_event`'s signature.
    """
    events: List[Dict[str, Any]] = []
    for m in metrics:
        detection = m.detection_s if m.detection_s == m.detection_s else 0.0
        events.append(
            {
                "kind": "recovery.detected",
                "at_time": m.fault_time_s + detection,
                "cause": m.kind,
            }
        )
        if m.recovered:
            events.append(
                {
                    "kind": "recovery.recovered",
                    "at_time": m.fault_time_s + m.recovery_time_s,
                    "cause": m.kind,
                    "catchup_throughput": m.catchup_throughput,
                }
            )
    return events


def _percentile(values: np.ndarray, q: float) -> float:
    if values.size == 0:
        return NAN
    return float(np.percentile(values, q))


def compute_recovery_metrics(
    result: "TrialResult",
    fault_log: Sequence[Mapping[str, float]],
    bin_s: float = 1.0,
    baseline_window_s: float = 30.0,
    min_band_s: float = 0.5,
    settle_bins: int = 2,
) -> List[RecoveryMetrics]:
    """Compute per-fault recovery metrics from one trial's series.

    ``fault_log`` is the engine's injection log (kind, time, derived
    pause, guarantee accounting per event).  The baseline band for each
    fault is ``baseline_mean + max(2 * std, 0.25 * |mean|, min_band_s)``
    over the ``baseline_window_s`` seconds before the injection; a fault
    is *recovered* at the first bin inside the band with the following
    ``settle_bins - 1`` bins also inside it.  The scan horizon for each
    fault ends at the next fault's injection (overlapping recoveries
    attribute each latency excursion to the fault that caused it).
    """
    if bin_s <= 0:
        raise ValueError("bin_s must be positive")
    if settle_bins < 1:
        raise ValueError("settle_bins must be >= 1")
    entries = sorted(fault_log, key=lambda e: e["at_s"])
    if not entries:
        return []
    binned = result.collector.binned_series(EVENT_TIME, bin_s=bin_s)
    raw = result.collector.series(EVENT_TIME)
    ingest = result.throughput.ingest_series
    metrics: List[RecoveryMetrics] = []
    for i, entry in enumerate(entries):
        fault_t = float(entry["at_s"])
        horizon = (
            float(entries[i + 1]["at_s"])
            if i + 1 < len(entries)
            else result.duration_s
        )
        baseline = binned.window(max(0.0, fault_t - baseline_window_s), fault_t)
        if len(baseline):
            base_mean = baseline.mean()
            base_std = float(np.std(baseline.values))
            band = base_mean + max(
                2.0 * base_std, 0.25 * abs(base_mean), min_band_s
            )
        else:
            base_mean = NAN
            band = NAN
        recovery_time = NAN
        recovery_end = horizon
        post = binned.window(fault_t, horizon)
        if len(post) and band == band:
            values = post.values
            times = post.times
            inside = values <= band
            for j in range(inside.size):
                stop = min(j + settle_bins, inside.size)
                if bool(inside[j:stop].all()):
                    recovery_end = float(times[j]) + bin_s
                    recovery_time = max(0.0, recovery_end - fault_t)
                    break
        catchup_span = ingest.window(fault_t, recovery_end)
        catchup = catchup_span.max() if len(catchup_span) else NAN
        baseline_p99 = _percentile(
            raw.window(max(0.0, fault_t - baseline_window_s), fault_t).values,
            99.0,
        )
        post_p99 = (
            _percentile(raw.window(recovery_end, horizon).values, 99.0)
            if not math.isnan(recovery_time)
            else NAN
        )
        metrics.append(
            RecoveryMetrics(
                kind=str(entry.get("kind", "fault")),
                fault_time_s=fault_t,
                detection_s=float(entry.get("detection_s", NAN)),
                injected_pause_s=float(entry.get("pause_s", NAN)),
                recovery_time_s=recovery_time,
                catchup_throughput=catchup,
                baseline_latency_s=base_mean,
                baseline_p99_s=baseline_p99,
                post_p99_s=post_p99,
                lost_weight=float(entry.get("lost_weight", 0.0)),
                duplicated_weight=float(entry.get("duplicated_weight", 0.0)),
            )
        )
    return metrics
