"""Typed fault events and the timeline that injects them.

The paper treats failures only as trial-ending conditions (Section
VI-A); the earlier node-failure extension modelled exactly one kill
event.  Vogel et al. ("A Comprehensive Benchmarking Analysis of Fault
Recovery in Stream Processing Frameworks", 2024) make the case that
fault *recovery* is a benchmark dimension of its own: recovery time,
catch-up throughput, and data loss/duplication under configurable
checkpointing.  A :class:`FaultSchedule` is the workload side of that
benchmark: an arbitrary, repeatable timeline of typed fault events
injected into the SUT mid-trial.

Event types (all driver-side injections; the engine models react):

- :class:`NodeCrash` -- permanent loss of worker nodes (the old
  ``NodeFailureSpec`` semantics).  Killing the *last* worker is a
  :class:`~repro.sim.failures.SutFailure`, i.e. a failed trial.
- :class:`ProcessRestart` -- a worker process dies and is restarted by
  the resource manager: the capacity returns after the engine's derived
  recovery pause, but in-memory state on that worker is exposed exactly
  as in a crash.
- :class:`SlowNode` -- straggler degradation: ``nodes`` workers run at
  ``factor`` of their normal speed for ``duration_s``.
- :class:`NetworkPartition` -- the SUT is transiently cut off from the
  driver queues: no ingest for ``duration_s`` while generation (and the
  queue backlog) continues.
- :class:`QueueDisconnect` -- a single driver queue becomes unreachable
  for ``duration_s``; the engine's watermark stalls on that queue, so
  windows halt until it reconnects and the source catches up.

Gray-failure events (Huang et al., "Gray Failure: The Achilles' Heel
of Cloud-Scale Systems", HotOS 2017) target one *named* worker
(``node``) and are the workloads the detection plane
(:mod:`repro.detect`) is benchmarked against:

- :class:`FlappingNode` -- a worker oscillates between up and down on
  seeded duty cycles: too short-lived for a fixed timeout, pure noise
  for naive inter-arrival statistics.
- :class:`DegradingNode` -- fail-slow: the worker's capacity (and its
  heartbeat cadence) ramps down over the fault window instead of
  stopping, so there is no discrete "down" edge to detect.
- :class:`AsymmetricPartition` -- one-way link loss: heartbeats and
  data diverge.  In the default ``heartbeat`` direction the node keeps
  processing but some observers stop hearing from it (false-positive
  bait that can split a quorum); in the ``data`` direction ingest is
  cut while heartbeats keep flowing (a detector-blind outage).

Every event carries ``at_s``, the injection time.  Events may repeat
and overlap; :meth:`FaultSchedule.validate_against` rejects events
scheduled at or after the trial end (they would silently never fire)
and ambiguous same-node overlaps between capacity-modulating faults
(see its docstring for the exact composition contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim.nodefail)
    from repro.sim.nodefail import NodeFailureSpec


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one fault injected at ``at_s`` seconds into the trial."""

    at_s: float

    #: Short tag used in logs, diagnostics, and CLI parsing.
    kind = "fault"

    #: Driver-side faults injure the *measurement plane* (generators,
    #: driver queues) and are routed to the BenchmarkDriver instead of
    #: the engine (see repro.metrology).
    driver_side = False

    def __post_init__(self) -> None:
        if self.at_s <= 0:
            raise ValueError(f"at_s must be positive, got {self.at_s}")

    @property
    def end_s(self) -> float:
        """Time at which the *injection* is over (instantaneous faults
        end when they fire; transient faults end after their duration)."""
        return self.at_s

    def describe(self) -> str:
        return f"{self.kind}@{self.at_s:g}s"


@dataclass(frozen=True)
class _TransientFaultEvent(FaultEvent):
    """A fault with a bounded duration after which the injected
    condition clears on its own."""

    duration_s: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive, got {self.duration_s}"
            )

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s

    def describe(self) -> str:
        return f"{self.kind}@{self.at_s:g}s for {self.duration_s:g}s"


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Kill ``nodes`` workers permanently (capacity never returns)."""

    nodes: int = 1
    kind = "crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")


@dataclass(frozen=True)
class ProcessRestart(FaultEvent):
    """Restart ``nodes`` worker processes: capacity is lost for the
    engine's derived recovery pause, then returns."""

    nodes: int = 1
    kind = "restart"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")


@dataclass(frozen=True)
class SlowNode(_TransientFaultEvent):
    """``nodes`` workers degrade to ``factor`` of their speed (a
    straggler: disk contention, noisy neighbour, thermal throttling)."""

    nodes: int = 1
    factor: float = 0.5
    kind = "slow"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if not 0.0 < self.factor < 1.0:
            raise ValueError(
                f"factor must be in (0, 1), got {self.factor}"
            )


@dataclass(frozen=True)
class NetworkPartition(_TransientFaultEvent):
    """The SUT loses network reachability to every driver queue for
    ``duration_s``; internal processing continues on buffered data."""

    kind = "partition"


@dataclass(frozen=True)
class QueueDisconnect(_TransientFaultEvent):
    """One driver queue (``queue_index``) becomes unreachable for
    ``duration_s``.  Unlike the paper's hard connection-drop rule (an
    *overload* symptom that ends the trial), this is an injected
    transient network fault: the connection comes back and the SUT must
    catch up the stranded backlog."""

    queue_index: int = 0
    kind = "disconnect"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.queue_index < 0:
            raise ValueError(
                f"queue_index must be >= 0, got {self.queue_index}"
            )


@dataclass(frozen=True)
class GeneratorCrash(FaultEvent):
    """One data-generator instance dies permanently.

    The paper's metrology assumes an over-provisioned generator fleet;
    this fault tests that assumption: after a detection window the
    fleet rebalances the dead instance's rate share over the survivors
    (capped by their provisioned headroom,
    :attr:`~repro.core.generator.GeneratorConfig.overprovision_factor`),
    and the dead instance's queue is retired once drained so the SUT's
    watermark is not wedged forever.  Without redistribution the trial
    would silently measure a *lower* offered rate than reported."""

    instance: int = 0
    kind = "gencrash"
    driver_side = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.instance < 0:
            raise ValueError(
                f"instance must be >= 0, got {self.instance}"
            )


@dataclass(frozen=True)
class DriverQueueLoss(FaultEvent):
    """One driver queue's in-memory backlog is lost (the driver node's
    process was OOM-killed or rebooted).  The queued weight leaves the
    driver ledger through ``lost`` (``pushed == pulled + queued + shed
    + lost``) -- the instrument itself is at-most-once here, and the
    accounting must say so instead of letting the loss masquerade as
    SUT throughput."""

    queue_index: int = 0
    kind = "queueloss"
    driver_side = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.queue_index < 0:
            raise ValueError(
                f"queue_index must be >= 0, got {self.queue_index}"
            )


@dataclass(frozen=True)
class DriverNodeSlow(_TransientFaultEvent):
    """One generator instance degrades to ``factor`` of its configured
    rate for ``duration_s`` (a straggling *driver* node): the offered
    load silently dips below what the trial claims to offer."""

    instance: int = 0
    factor: float = 0.5
    kind = "driverslow"
    driver_side = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.instance < 0:
            raise ValueError(
                f"instance must be >= 0, got {self.instance}"
            )
        if not 0.0 < self.factor < 1.0:
            raise ValueError(
                f"factor must be in (0, 1), got {self.factor}"
            )


@dataclass(frozen=True)
class _GrayFaultEvent(_TransientFaultEvent):
    """A gray failure pinned to one named worker ``node``.

    Unlike :class:`SlowNode` (which degrades the ``nodes`` *lowest*
    worker indices anonymously and is invisible to the control plane),
    a gray fault carries worker identity so the detection plane can
    attribute heartbeat evidence, verdicts, and false positives to a
    specific node.
    """

    node: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")

    def describe(self) -> str:
        return (
            f"{self.kind}@{self.at_s:g}s for {self.duration_s:g}s"
            f" on node {self.node}"
        )


@dataclass(frozen=True)
class FlappingNode(_GrayFaultEvent):
    """Worker ``node`` oscillates between up and down on seeded duty
    cycles for ``duration_s``.

    Each cycle is ``period_s`` long on average (jittered by the event's
    own ``seed``); the node is up for the first part of the cycle and
    down for roughly ``duty`` of it.  Down segments suppress both the
    node's processing capacity and its heartbeats, so a fixed-timeout
    detector only fires when an individual down segment outlasts the
    timeout, while an adaptive detector can convict on the unstable
    inter-arrival history.
    """

    period_s: float = 6.0
    duty: float = 0.5
    seed: int = 0
    kind = "flap"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {self.duty}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    def down_segments(self) -> Tuple[Tuple[float, float], ...]:
        """Absolute ``(start, end)`` down intervals, a pure function of
        the event's own fields (so the engine and the detection plane
        derive the identical ground truth independently)."""
        rng = np.random.default_rng(np.random.SeedSequence([0x11AB, self.seed]))
        segments: List[Tuple[float, float]] = []
        t = self.at_s
        end = self.end_s
        while t < end:
            cycle = self.period_s * float(rng.uniform(0.75, 1.25))
            down = min(cycle * self.duty * float(rng.uniform(0.7, 1.3)), cycle)
            seg_start = min(t + (cycle - down), end)
            seg_end = min(t + cycle, end)
            if seg_end > seg_start:
                segments.append((seg_start, seg_end))
            t += cycle
        return tuple(segments)


@dataclass(frozen=True)
class DegradingNode(_GrayFaultEvent):
    """Fail-slow: worker ``node`` ramps from full speed down to
    ``floor_factor`` of its capacity over ``duration_s``.

    The ramp is discretized into ``steps`` piecewise-constant segments
    (step ``i`` runs at ``1 - (1 - floor_factor) * (i + 1) / steps``),
    so the first step is already degraded and the last step sits at the
    floor.  The node's heartbeat cadence stretches by the same factor:
    a fail-slow node is late, never silent, which is exactly what a
    fixed timeout is worst at.
    """

    floor_factor: float = 0.25
    steps: int = 8
    kind = "degrade"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.floor_factor < 1.0:
            raise ValueError(
                f"floor_factor must be in (0, 1), got {self.floor_factor}"
            )
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")

    def segments(self) -> Tuple[Tuple[float, float, float], ...]:
        """Absolute ``(start, end, factor)`` ramp segments."""
        step_s = self.duration_s / self.steps
        out: List[Tuple[float, float, float]] = []
        for i in range(self.steps):
            factor = 1.0 - (1.0 - self.floor_factor) * (i + 1) / self.steps
            out.append((self.at_s + i * step_s, self.at_s + (i + 1) * step_s, factor))
        return tuple(out)

    def factor_at(self, now_s: float) -> float:
        """Capacity factor in effect at ``now_s`` (1.0 outside the window)."""
        for start, end, factor in self.segments():
            if start <= now_s < end:
                return factor
        return 1.0


@dataclass(frozen=True)
class AsymmetricPartition(_GrayFaultEvent):
    """One-way link loss on worker ``node`` for ``duration_s``.

    ``direction="heartbeat"`` (default): the node's heartbeats stop
    reaching the first ``observers_affected`` control-plane observers
    while the data path is untouched -- the node is healthy, so every
    suspicion it draws is a false positive, and a quorum detector
    splits only when ``observers_affected`` reaches its ``k``.

    ``direction="data"``: the node's ingest link is cut (modelled as a
    full ingest stall, like :class:`NetworkPartition`) while heartbeats
    keep flowing -- a real outage every heartbeat detector is blind to.
    """

    observers_affected: int = 1
    direction: str = "heartbeat"
    kind = "asympart"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.observers_affected < 1:
            raise ValueError(
                f"observers_affected must be >= 1, got {self.observers_affected}"
            )
        if self.direction not in ("heartbeat", "data"):
            raise ValueError(
                f"direction must be 'heartbeat' or 'data', got {self.direction!r}"
            )

    def describe(self) -> str:
        return (
            f"{self.kind}@{self.at_s:g}s for {self.duration_s:g}s"
            f" on node {self.node} ({self.direction})"
        )


#: Gray faults that modulate the capacity of their named node (and so
#: must not overlap another capacity fault on the same node).
_GRAY_CAPACITY_KINDS = ("flap", "degrade")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable timeline of fault events for one trial.

    Events need not be given in order and may repeat; injection order is
    by ``at_s`` (ties preserve the given order, matching the simulator's
    deterministic (time, sequence) event ordering).
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"FaultSchedule events must be FaultEvent, got {event!r}"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.ordered())

    def ordered(self) -> Tuple[FaultEvent, ...]:
        """Events sorted by injection time (stable for ties)."""
        return tuple(sorted(self.events, key=lambda e: e.at_s))

    def validate_against(self, duration_s: float) -> None:
        """Reject events that could never fire within the trial, and
        ambiguous overlaps between capacity faults on the same node.

        Historically a ``fail_at_s`` past the trial end was silently
        ignored -- the trial ran as a healthy baseline while claiming to
        be a failure experiment.  That is now an error.

        Overlap contract (pinned by ``tests/faults/test_schedule.py``):

        - **Legacy transients compose deterministically.**  Overlapping
          :class:`SlowNode` windows stack *multiplicatively*, with each
          event's riding multiplier frozen at its injection time; a
          crash or restart landing inside a slow window keeps the
          already-frozen multiplier until the slow window expires.
          These compositions are well-defined (and the chaos soak draws
          them), so they are allowed, not rejected.
        - **Gray capacity faults do not compose.**  A
          :class:`FlappingNode` or :class:`DegradingNode` owns its
          node's capacity *and* heartbeat timeline for its window;
          overlapping it with another gray capacity fault on the same
          node -- or with a :class:`SlowNode` whose anonymous target
          range ``[0, nodes)`` contains that node -- would make the
          detection plane's ground truth ambiguous.  Such schedules are
          rejected here instead of silently stacking.
        """
        late = [e for e in self.events if e.at_s >= duration_s]
        if late:
            listing = ", ".join(e.describe() for e in late)
            raise ValueError(
                f"fault events scheduled at/after the trial end "
                f"({duration_s:g}s) would never fire: {listing}"
            )
        gray = [
            e
            for e in self.ordered()
            if isinstance(e, _GrayFaultEvent) and e.kind in _GRAY_CAPACITY_KINDS
        ]
        for i, a in enumerate(gray):
            for b in gray[i + 1 :]:
                if a.node == b.node and a.at_s < b.end_s and b.at_s < a.end_s:
                    raise ValueError(
                        f"gray capacity faults overlap on node {a.node}: "
                        f"{a.describe()} vs {b.describe()}; their heartbeat "
                        f"and capacity effects do not compose -- separate "
                        f"them in time or target different nodes"
                    )
        slows = [e for e in self.ordered() if isinstance(e, SlowNode)]
        for g in gray:
            for s in slows:
                if g.node < s.nodes and g.at_s < s.end_s and s.at_s < g.end_s:
                    raise ValueError(
                        f"{g.describe()} overlaps {s.describe()} whose "
                        f"target range [0, {s.nodes}) contains node "
                        f"{g.node}; a gray fault owns its node's capacity "
                        f"for its window -- move the slow window or "
                        f"retarget the gray fault"
                    )

    def describe(self) -> str:
        if not self.events:
            return "no faults"
        return "; ".join(e.describe() for e in self.ordered())

    @classmethod
    def from_node_failure(cls, spec: "NodeFailureSpec") -> "FaultSchedule":
        """Back-compat shim: the one-shot ``NodeFailureSpec`` becomes a
        single :class:`NodeCrash` on the new timeline."""
        return cls(events=(NodeCrash(at_s=spec.fail_at_s, nodes=spec.nodes),))
