"""Typed fault events and the timeline that injects them.

The paper treats failures only as trial-ending conditions (Section
VI-A); the earlier node-failure extension modelled exactly one kill
event.  Vogel et al. ("A Comprehensive Benchmarking Analysis of Fault
Recovery in Stream Processing Frameworks", 2024) make the case that
fault *recovery* is a benchmark dimension of its own: recovery time,
catch-up throughput, and data loss/duplication under configurable
checkpointing.  A :class:`FaultSchedule` is the workload side of that
benchmark: an arbitrary, repeatable timeline of typed fault events
injected into the SUT mid-trial.

Event types (all driver-side injections; the engine models react):

- :class:`NodeCrash` -- permanent loss of worker nodes (the old
  ``NodeFailureSpec`` semantics).  Killing the *last* worker is a
  :class:`~repro.sim.failures.SutFailure`, i.e. a failed trial.
- :class:`ProcessRestart` -- a worker process dies and is restarted by
  the resource manager: the capacity returns after the engine's derived
  recovery pause, but in-memory state on that worker is exposed exactly
  as in a crash.
- :class:`SlowNode` -- straggler degradation: ``nodes`` workers run at
  ``factor`` of their normal speed for ``duration_s``.
- :class:`NetworkPartition` -- the SUT is transiently cut off from the
  driver queues: no ingest for ``duration_s`` while generation (and the
  queue backlog) continues.
- :class:`QueueDisconnect` -- a single driver queue becomes unreachable
  for ``duration_s``; the engine's watermark stalls on that queue, so
  windows halt until it reconnects and the source catches up.

Every event carries ``at_s``, the injection time.  Events may repeat
and overlap; :meth:`FaultSchedule.validate_against` rejects events
scheduled at or after the trial end (they would silently never fire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim.nodefail)
    from repro.sim.nodefail import NodeFailureSpec


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one fault injected at ``at_s`` seconds into the trial."""

    at_s: float

    #: Short tag used in logs, diagnostics, and CLI parsing.
    kind = "fault"

    #: Driver-side faults injure the *measurement plane* (generators,
    #: driver queues) and are routed to the BenchmarkDriver instead of
    #: the engine (see repro.metrology).
    driver_side = False

    def __post_init__(self) -> None:
        if self.at_s <= 0:
            raise ValueError(f"at_s must be positive, got {self.at_s}")

    @property
    def end_s(self) -> float:
        """Time at which the *injection* is over (instantaneous faults
        end when they fire; transient faults end after their duration)."""
        return self.at_s

    def describe(self) -> str:
        return f"{self.kind}@{self.at_s:g}s"


@dataclass(frozen=True)
class _TransientFaultEvent(FaultEvent):
    """A fault with a bounded duration after which the injected
    condition clears on its own."""

    duration_s: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive, got {self.duration_s}"
            )

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s

    def describe(self) -> str:
        return f"{self.kind}@{self.at_s:g}s for {self.duration_s:g}s"


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Kill ``nodes`` workers permanently (capacity never returns)."""

    nodes: int = 1
    kind = "crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")


@dataclass(frozen=True)
class ProcessRestart(FaultEvent):
    """Restart ``nodes`` worker processes: capacity is lost for the
    engine's derived recovery pause, then returns."""

    nodes: int = 1
    kind = "restart"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")


@dataclass(frozen=True)
class SlowNode(_TransientFaultEvent):
    """``nodes`` workers degrade to ``factor`` of their speed (a
    straggler: disk contention, noisy neighbour, thermal throttling)."""

    nodes: int = 1
    factor: float = 0.5
    kind = "slow"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if not 0.0 < self.factor < 1.0:
            raise ValueError(
                f"factor must be in (0, 1), got {self.factor}"
            )


@dataclass(frozen=True)
class NetworkPartition(_TransientFaultEvent):
    """The SUT loses network reachability to every driver queue for
    ``duration_s``; internal processing continues on buffered data."""

    kind = "partition"


@dataclass(frozen=True)
class QueueDisconnect(_TransientFaultEvent):
    """One driver queue (``queue_index``) becomes unreachable for
    ``duration_s``.  Unlike the paper's hard connection-drop rule (an
    *overload* symptom that ends the trial), this is an injected
    transient network fault: the connection comes back and the SUT must
    catch up the stranded backlog."""

    queue_index: int = 0
    kind = "disconnect"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.queue_index < 0:
            raise ValueError(
                f"queue_index must be >= 0, got {self.queue_index}"
            )


@dataclass(frozen=True)
class GeneratorCrash(FaultEvent):
    """One data-generator instance dies permanently.

    The paper's metrology assumes an over-provisioned generator fleet;
    this fault tests that assumption: after a detection window the
    fleet rebalances the dead instance's rate share over the survivors
    (capped by their provisioned headroom,
    :attr:`~repro.core.generator.GeneratorConfig.overprovision_factor`),
    and the dead instance's queue is retired once drained so the SUT's
    watermark is not wedged forever.  Without redistribution the trial
    would silently measure a *lower* offered rate than reported."""

    instance: int = 0
    kind = "gencrash"
    driver_side = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.instance < 0:
            raise ValueError(
                f"instance must be >= 0, got {self.instance}"
            )


@dataclass(frozen=True)
class DriverQueueLoss(FaultEvent):
    """One driver queue's in-memory backlog is lost (the driver node's
    process was OOM-killed or rebooted).  The queued weight leaves the
    driver ledger through ``lost`` (``pushed == pulled + queued + shed
    + lost``) -- the instrument itself is at-most-once here, and the
    accounting must say so instead of letting the loss masquerade as
    SUT throughput."""

    queue_index: int = 0
    kind = "queueloss"
    driver_side = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.queue_index < 0:
            raise ValueError(
                f"queue_index must be >= 0, got {self.queue_index}"
            )


@dataclass(frozen=True)
class DriverNodeSlow(_TransientFaultEvent):
    """One generator instance degrades to ``factor`` of its configured
    rate for ``duration_s`` (a straggling *driver* node): the offered
    load silently dips below what the trial claims to offer."""

    instance: int = 0
    factor: float = 0.5
    kind = "driverslow"
    driver_side = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.instance < 0:
            raise ValueError(
                f"instance must be >= 0, got {self.instance}"
            )
        if not 0.0 < self.factor < 1.0:
            raise ValueError(
                f"factor must be in (0, 1), got {self.factor}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable timeline of fault events for one trial.

    Events need not be given in order and may repeat; injection order is
    by ``at_s`` (ties preserve the given order, matching the simulator's
    deterministic (time, sequence) event ordering).
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"FaultSchedule events must be FaultEvent, got {event!r}"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.ordered())

    def ordered(self) -> Tuple[FaultEvent, ...]:
        """Events sorted by injection time (stable for ties)."""
        return tuple(sorted(self.events, key=lambda e: e.at_s))

    def validate_against(self, duration_s: float) -> None:
        """Reject events that could never fire within the trial.

        Historically a ``fail_at_s`` past the trial end was silently
        ignored -- the trial ran as a healthy baseline while claiming to
        be a failure experiment.  That is now an error.
        """
        late = [e for e in self.events if e.at_s >= duration_s]
        if late:
            listing = ", ".join(e.describe() for e in late)
            raise ValueError(
                f"fault events scheduled at/after the trial end "
                f"({duration_s:g}s) would never fire: {listing}"
            )

    def describe(self) -> str:
        if not self.events:
            return "no faults"
        return "; ".join(e.describe() for e in self.ordered())

    @classmethod
    def from_node_failure(cls, spec: "NodeFailureSpec") -> "FaultSchedule":
        """Back-compat shim: the one-shot ``NodeFailureSpec`` becomes a
        single :class:`NodeCrash` on the new timeline."""
        return cls(events=(NodeCrash(at_s=spec.fail_at_s, nodes=spec.nodes),))
