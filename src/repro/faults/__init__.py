"""repro.faults -- fault-injection and recovery benchmarking.

The robustness extension of the framework (after Vogel et al. 2024):
typed fault timelines (:mod:`repro.faults.schedule`), a checkpointing
model that derives recovery pauses from state size, checkpoint
interval, and NIC bandwidth (:mod:`repro.faults.checkpoint`),
delivery-guarantee accounting of lost/duplicated data
(:mod:`repro.faults.guarantees`), and driver-side recovery metrology
(:mod:`repro.faults.metrics`).

Wire a schedule into a trial via ``ExperimentSpec(faults=...)``; the
old ``node_failure=NodeFailureSpec(...)`` keeps working as a shim for
a single :class:`NodeCrash`.
"""

from repro.faults.checkpoint import CheckpointSpec, RecoverySemantics
from repro.faults.guarantees import DeliveryGuarantee, GuaranteeAccounting
from repro.faults.metrics import RecoveryMetrics, compute_recovery_metrics
from repro.faults.schedule import (
    AsymmetricPartition,
    DegradingNode,
    DriverNodeSlow,
    DriverQueueLoss,
    FaultEvent,
    FaultSchedule,
    FlappingNode,
    GeneratorCrash,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    SlowNode,
)

__all__ = [
    "AsymmetricPartition",
    "CheckpointSpec",
    "DegradingNode",
    "DeliveryGuarantee",
    "DriverNodeSlow",
    "DriverQueueLoss",
    "FaultEvent",
    "FaultSchedule",
    "FlappingNode",
    "GeneratorCrash",
    "GuaranteeAccounting",
    "NetworkPartition",
    "NodeCrash",
    "ProcessRestart",
    "QueueDisconnect",
    "RecoveryMetrics",
    "RecoverySemantics",
    "SlowNode",
    "compute_recovery_metrics",
]
