"""Delivery-guarantee accounting for faulted trials.

A stream processor's processing guarantee determines what happens to
the in-flight data a fault exposes (Vogel et al. 2024, Section II):

- **exactly-once**: the engine's recovery protocol (checkpoint +
  source replay, or deterministic lineage recomputation) re-derives
  every exposed record exactly once -- nothing is lost, nothing is
  emitted twice;
- **at-least-once**: exposed records are replayed but the results
  emitted before the fault are not retracted -- the exposed weight is
  *duplicated* downstream;
- **at-most-once**: exposed records are simply gone -- the exposed
  weight is *lost* (Storm without acking: the dead worker's non-acked
  window contents).

The engines report, per fault, the *exposed* weight -- the data whose
fate the guarantee decides (replay window since the last completed
checkpoint, or the dead worker's share of open-window state).  This
module turns exposure into the per-trial ``lost_weight`` /
``duplicated_weight`` counters of the recovery benchmark.
"""

from __future__ import annotations

import enum
from typing import Tuple


class DeliveryGuarantee(enum.Enum):
    """Processing guarantee in effect for a trial."""

    EXACTLY_ONCE = "exactly-once"
    AT_LEAST_ONCE = "at-least-once"
    AT_MOST_ONCE = "at-most-once"

    @classmethod
    def parse(cls, text: str) -> "DeliveryGuarantee":
        for guarantee in cls:
            if guarantee.value == text:
                return guarantee
        valid = ", ".join(g.value for g in cls)
        raise ValueError(f"unknown guarantee {text!r}; expected one of {valid}")


class GuaranteeAccounting:
    """Per-trial ledger of data lost / duplicated across fault events.

    Invariants (the definition of the guarantees):

    - ``EXACTLY_ONCE``: ``lost_weight == duplicated_weight == 0``;
    - ``AT_LEAST_ONCE``: ``lost_weight == 0``;
    - ``AT_MOST_ONCE``: ``duplicated_weight == 0``.
    """

    def __init__(self, guarantee: DeliveryGuarantee) -> None:
        self.guarantee = guarantee
        self.lost_weight = 0.0
        self.duplicated_weight = 0.0
        self.exposed_weight = 0.0
        self.fault_count = 0

    def on_fault(self, exposed_weight: float) -> Tuple[float, float]:
        """Account one fault's exposed weight; returns ``(lost, dup)``
        for this event."""
        if exposed_weight < 0:
            raise ValueError(
                f"exposed_weight must be >= 0, got {exposed_weight}"
            )
        self.fault_count += 1
        self.exposed_weight += exposed_weight
        if self.guarantee is DeliveryGuarantee.AT_MOST_ONCE:
            self.lost_weight += exposed_weight
            return exposed_weight, 0.0
        if self.guarantee is DeliveryGuarantee.AT_LEAST_ONCE:
            self.duplicated_weight += exposed_weight
            return 0.0, exposed_weight
        return 0.0, 0.0
