"""The checkpointing model that *derives* recovery pauses.

Before this subsystem, a node failure paused the engine for a fixed
``recovery_pause_s`` constant (6 s by default).  Vogel et al. (2024)
show that recovery time is a function of the fault-tolerance
configuration -- checkpoint interval, state size, and restore
bandwidth -- not an engine constant.  :class:`CheckpointSpec` models
exactly those knobs and derives both costs:

- **steady-state checkpoint pauses**: every ``interval_s`` a
  checkpoint's synchronous part suspends the pipeline for
  ``sync_pause_base_s + state_gb * sync_pause_s_per_gb`` (the
  alignment/sync barrier; the asynchronous upload is free);
- **the recovery pause after a fault**, per engine semantics
  (:class:`RecoverySemantics`):

  - ``CHECKPOINT_RESTORE`` (Flink; Samza's changelog restore):
    failure detection, process restart, pulling the last completed
    checkpoint's state back over the NIC of the surviving workers, and
    replaying the input since that checkpoint from the driver queues
    (``replay span * replay_cost_factor``);
  - ``LINEAGE_RECOMPUTE`` (Spark): detection + restart + parallel
    recomputation of only the *lost* partitions from cached lineage --
    no full-state transfer, no replay window, which is why Lopez et
    al. found Spark the most robust to node failures;
  - ``TUPLE_REPLAY`` (Storm, Heron): detection + topology rebalancing
    (growing with cluster size); state is not restored at all -- the
    delivery guarantee decides whether the exposed window contents are
    lost (no acking: at-most-once) or replayed as duplicates.

``EngineConfig.recovery_pause_s`` survives only as an explicit
override: when set, it wins over the derived pause.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.faults.guarantees import DeliveryGuarantee
from repro.sim.cluster import NodeSpec


class RecoverySemantics(enum.Enum):
    """How an engine reconstructs state after losing a worker."""

    CHECKPOINT_RESTORE = "checkpoint-restore"
    LINEAGE_RECOMPUTE = "lineage-recompute"
    TUPLE_REPLAY = "tuple-replay"


@dataclass(frozen=True)
class CheckpointSpec:
    """Fault-tolerance configuration of one trial.

    All constants are model assumptions (documented per field); none
    reproduce a published number.  The *structure* -- restore time
    proportional to state bytes over NIC bandwidth, replay proportional
    to the checkpoint interval -- is the Vogel et al. model.
    """

    interval_s: float = 10.0
    """Checkpoint interval.  Longer intervals mean cheaper steady state
    but a larger replay window after a failure."""
    detection_timeout_s: float = 2.0
    """Failure-detector timeout (heartbeat loss to suspicion)."""
    restart_base_s: float = 1.5
    """Process/container restart and task re-deployment latency."""
    rebalance_base_s: float = 12.0
    """Storm-style topology rebalance at 2 workers; scales with
    ``sqrt(workers / 2)`` (more executors to coordinate)."""
    sync_pause_base_s: float = 0.02
    """Fixed synchronous cost of a checkpoint (barrier alignment)."""
    sync_pause_s_per_gb: float = 0.1
    """Synchronous checkpoint cost per GB of live operator state (the
    async upload does not pause the pipeline)."""
    restore_nic_fraction: float = 0.8
    """Fraction of the surviving workers' NIC bandwidth usable for
    pulling checkpoint state from remote storage."""
    replay_cost_factor: float = 0.45
    """Pause seconds per second of replay window: replaying the input
    since the last checkpoint runs at catch-up (burst) rate -- roughly
    2x the offered load -- so it costs a fraction of the wall-clock
    span being replayed."""
    recompute_bytes_per_s_per_worker: float = 2e9
    """Lineage recomputation rate per surviving worker (cached parent
    blocks, CPU-bound, embarrassingly parallel)."""
    guarantee: Optional[DeliveryGuarantee] = None
    """Override of the engine's default delivery guarantee (e.g. run
    Storm with acking -> at-least-once, or Flink without barriers ->
    at-most-once)."""

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive, got {self.interval_s}"
            )
        for name in (
            "detection_timeout_s",
            "restart_base_s",
            "rebalance_base_s",
            "sync_pause_base_s",
            "sync_pause_s_per_gb",
            "replay_cost_factor",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if not 0 < self.restore_nic_fraction <= 1:
            raise ValueError(
                "restore_nic_fraction must be in (0, 1], "
                f"got {self.restore_nic_fraction}"
            )
        if self.recompute_bytes_per_s_per_worker <= 0:
            raise ValueError(
                "recompute_bytes_per_s_per_worker must be positive, "
                f"got {self.recompute_bytes_per_s_per_worker}"
            )

    # -- steady state ------------------------------------------------------

    def sync_pause_s(self, state_bytes: float) -> float:
        """Pipeline pause caused by one checkpoint's synchronous part."""
        return self.sync_pause_base_s + (
            max(0.0, state_bytes) / 1e9
        ) * self.sync_pause_s_per_gb

    # -- recovery ----------------------------------------------------------

    def restore_s(
        self, state_bytes: float, node: NodeSpec, active_workers: int
    ) -> float:
        """Time to pull ``state_bytes`` of checkpoint state back onto
        the surviving workers' NICs."""
        bandwidth = (
            max(1, active_workers)
            * node.nic_bytes_per_s
            * self.restore_nic_fraction
        )
        return max(0.0, state_bytes) / bandwidth

    def recovery_pause_s(
        self,
        semantics: RecoverySemantics,
        *,
        state_bytes: float,
        node: NodeSpec,
        active_workers: int,
        workers: int,
        replay_span_s: float,
        lost_fraction: float,
    ) -> float:
        """Derive the full processing outage for one fault.

        ``active_workers`` is the surviving count *after* the fault;
        ``replay_span_s`` is the wall-clock span since the last
        completed checkpoint; ``lost_fraction`` is the share of state
        that lived on the dead workers.
        """
        if semantics is RecoverySemantics.CHECKPOINT_RESTORE:
            return (
                self.detection_timeout_s
                + self.restart_base_s
                + self.restore_s(state_bytes, node, active_workers)
                + max(0.0, replay_span_s) * self.replay_cost_factor
            )
        if semantics is RecoverySemantics.LINEAGE_RECOMPUTE:
            recompute_bytes = max(0.0, lost_fraction) * max(0.0, state_bytes)
            rate = max(1, active_workers) * self.recompute_bytes_per_s_per_worker
            return (
                self.detection_timeout_s
                + self.restart_base_s
                + recompute_bytes / rate
            )
        # TUPLE_REPLAY: no state restore; the outage is detection plus
        # topology rebalancing, which grows with the executor count.
        return self.detection_timeout_s + self.rebalance_base_s * (
            max(workers, 2) / 2.0
        ) ** 0.5
