"""Command-line interface: ``python -m repro <command>``.

Commands mirror the framework's workflow:

- ``run``     -- one trial: engine, query, workers, rate, duration.
- ``search``  -- sustainable-throughput search for a deployment.
- ``sweep``   -- a Table-I style sweep over engines and cluster sizes.
- ``engines`` -- list registered engines and their cost models.
- ``chaos``   -- seeded chaos soak: randomized fault schedules over
  engines x recovery policies with invariant checks and a scorecard.
- ``autoscale`` -- cross-engine elasticity scorecard: engines x scaling
  policies x diurnal/flash-crowd workloads, with time-to-resustain
  metrology and node-second cost accounting.
- ``recover`` -- recovery-efficiency scorecard: one deterministic fault
  per (engine x reschedule policy x fault kind) cell with detection /
  restore / catch-up decomposition and node-second recovery cost, plus
  the checkpoint-interval sensitivity frontier per engine.

Elastic autoscaling (PR 7) rides on ``run`` via ``--autoscale POLICY``
(with ``--min-nodes`` / ``--max-nodes`` / ``--cooldown``): a policy
watches the obs-registry signals and scales the simulated cluster
out/in mid-trial, paying each engine's rescale semantics.

Fault benchmarking rides on ``run`` and ``search`` via repeatable
``--fault KIND@T[:DURATION]`` options (e.g. ``--fault crash@60
--fault partition@100:10``) plus ``--checkpoint-interval`` and
``--guarantee``; with faults, ``search`` switches to the
sustainable-under-faults mode (recovery within ``--max-recovery``).

Self-healing knobs (PR 4) ride on every trial-running command:
``--standby N`` provisions hot standby nodes, ``--reschedule`` picks
the migration policy for dead operator slots, ``--shed`` enables
bounded-latency load shedding at the sources.  ``search --online``
switches to the single-trial AIMD probe.

Measurement-plane hardening (PR 5): ``--clock-skew`` models per-node
clock error on the measurement plane, ``--driver-fault`` injects
faults into the benchmark harness itself, ``--trial-timeout`` /
``--trial-stall`` arm the trial watchdog (with ``--retries`` and
``--retry-backoff``), and ``--journal PATH`` / ``--resume`` checkpoint
``search`` and ``chaos`` sweeps for byte-identical resume.

Parallel trial scheduling (PR 6): ``search --jobs N`` runs speculative
bisection probes in N worker processes, ``sweep --jobs N`` fans sweep
cells out the same way, and ``chaos --workers N`` parallelises the
chaos grid (``--sut-workers`` now carries the simulated cluster size).
Parallel runs are byte-identical to serial ones; with ``--journal``
each worker checkpoints to its own shard, merged on completion or on
``--resume``.

Every command prints paper-style output and can export JSON via
``--output``.  Bad argument *values* (not just syntax) exit 2 with a
one-line error instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import repro.engines.ext  # noqa: F401  (registers heron/samza in ENGINES)
from repro.analysis.export import (
    online_search_to_dict,
    search_to_dict,
    trial_to_dict,
    write_json,
)
from repro.autoscale.policy import POLICY_NAMES, AutoscaleSpec
from repro.core.experiment import ExperimentSpec, runner_for
from repro.core.generator import GeneratorConfig
from repro.core.report import throughput_table
from repro.core.sustainable import (
    SustainabilityCriteria,
    find_sustainable_throughput,
    find_sustainable_throughput_online,
    find_sustainable_throughput_under_faults,
    search_fingerprint,
    sweep_sustainable_rates,
)
from repro.engines import ENGINES, engine_class
from repro.detect.plane import DETECTOR_KINDS, detector_spec
from repro.faults import (
    AsymmetricPartition,
    CheckpointSpec,
    DegradingNode,
    DeliveryGuarantee,
    DriverNodeSlow,
    DriverQueueLoss,
    FaultSchedule,
    FlappingNode,
    GeneratorCrash,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    SlowNode,
)
from repro.metrology import TrialJournal, WatchdogSpec
from repro.sim.clock import ClockSkewSpec
from repro.engines.calibration import registered_models
from repro.obs.context import ObsSpec
from repro.recovery.degradation import (
    SHED_NEWEST,
    SHED_OLDEST,
    DegradationPolicy,
)
from repro.recovery.reschedule import (
    MODE_NONE,
    MODE_SPREAD,
    MODE_STANDBY,
    ReschedulePolicy,
)
from repro.workloads.keys import NormalKeys, SingleKey, UniformKeys, ZipfKeys
from repro.workloads.queries import (
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

KEY_DISTRIBUTIONS = {
    "normal": lambda n: NormalKeys(n),
    "uniform": lambda n: UniformKeys(n),
    "single": lambda n: SingleKey(num_keys=n),
    "zipf": lambda n: ZipfKeys(n),
}


FAULT_KINDS = {
    "crash": lambda at, dur: NodeCrash(at_s=at),
    "restart": lambda at, dur: ProcessRestart(at_s=at),
    "slow": lambda at, dur: SlowNode(at_s=at, duration_s=dur or 30.0),
    "partition": lambda at, dur: NetworkPartition(at_s=at, duration_s=dur or 10.0),
    "disconnect": lambda at, dur: QueueDisconnect(at_s=at, duration_s=dur or 10.0),
    # Gray failures (PR 10): node 0 by default; target other nodes by
    # constructing the event in Python (see examples/gray_failure.py).
    "flap": lambda at, dur: FlappingNode(at_s=at, duration_s=dur or 20.0),
    "degrade": lambda at, dur: DegradingNode(at_s=at, duration_s=dur or 20.0),
    "asympart": lambda at, dur: AsymmetricPartition(at_s=at, duration_s=dur or 10.0),
}


def parse_fault(text: str):
    """Parse one ``--fault`` value: ``KIND@T`` or ``KIND@T:DURATION``."""
    try:
        kind, _, when = text.partition("@")
        if not when:
            raise ValueError("missing '@TIME'")
        when, _, duration = when.partition(":")
        builder = FAULT_KINDS.get(kind)
        if builder is None:
            raise ValueError(
                f"unknown kind {kind!r} (choose from "
                f"{', '.join(sorted(FAULT_KINDS))})"
            )
        return builder(float(when), float(duration) if duration else None)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"invalid fault {text!r}: {exc} "
            "(examples: crash@60, slow@30:20, partition@100:10, "
            "flap@40:20, degrade@40:20, asympart@40:10)"
        ) from None


DRIVER_FAULT_KINDS = {
    "gencrash": lambda at, dur: GeneratorCrash(at_s=at),
    "queueloss": lambda at, dur: DriverQueueLoss(at_s=at),
    "driverslow": lambda at, dur: DriverNodeSlow(at_s=at, duration_s=dur or 10.0),
}


def parse_driver_fault(text: str):
    """Parse one ``--driver-fault`` value: ``KIND@T[:DURATION]``."""
    try:
        kind, _, when = text.partition("@")
        if not when:
            raise ValueError("missing '@TIME'")
        when, _, duration = when.partition(":")
        builder = DRIVER_FAULT_KINDS.get(kind)
        if builder is None:
            raise ValueError(
                f"unknown kind {kind!r} (choose from "
                f"{', '.join(sorted(DRIVER_FAULT_KINDS))})"
            )
        return builder(float(when), float(duration) if duration else None)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"invalid driver fault {text!r}: {exc} "
            "(examples: gencrash@60, queueloss@70, driverslow@30:20)"
        ) from None


def parse_clock_skew(text: str) -> ClockSkewSpec:
    """Parse ``--clock-skew``: ``OFFSET_MS[:DRIFT_PPM[:RESID_MS[:INT_S]]]``."""
    try:
        parts = text.split(":")
        if len(parts) > 4:
            raise ValueError("too many fields")
        offset_ms = float(parts[0])
        drift_ppm = float(parts[1]) if len(parts) > 1 else 20.0
        residual_ms = float(parts[2]) if len(parts) > 2 else 0.5
        interval_s = float(parts[3]) if len(parts) > 3 else 30.0
        return ClockSkewSpec(
            offset_s=offset_ms / 1e3,
            drift_ppm=drift_ppm,
            ntp_residual_s=residual_ms / 1e3,
            ntp_interval_s=interval_s,
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"invalid clock skew {text!r}: {exc} "
            "(format: OFFSET_MS[:DRIFT_PPM[:RESIDUAL_MS[:INTERVAL_S]]], "
            "example: 5:20:0.5:30)"
        ) from None


def build_faults(args: argparse.Namespace):
    events = list(getattr(args, "fault", None) or [])
    events.extend(getattr(args, "driver_fault", None) or [])
    if not events:
        return None
    return FaultSchedule(events=tuple(events))


def build_clock_skew(args: argparse.Namespace):
    skew = getattr(args, "clock_skew", None)
    if skew is None:
        if getattr(args, "uncorrected_clocks", False):
            raise ValueError(
                "--uncorrected-clocks requires --clock-skew "
                "(there is no clock model to leave uncorrected)"
            )
        return None
    if getattr(args, "uncorrected_clocks", False):
        return ClockSkewSpec(
            offset_s=skew.offset_s,
            drift_ppm=skew.drift_ppm,
            ntp_residual_s=skew.ntp_residual_s,
            ntp_interval_s=skew.ntp_interval_s,
            corrected=False,
        )
    return skew


def build_watchdog(args: argparse.Namespace) -> Optional[WatchdogSpec]:
    timeout = getattr(args, "trial_timeout", None)
    stall = getattr(args, "trial_stall", None)
    if timeout is None and stall is None:
        return None
    return WatchdogSpec(
        timeout_s=timeout,
        stall_s=stall,
        max_attempts=1 + (getattr(args, "retries", None) or 0),
        backoff_base_s=getattr(args, "retry_backoff", None) or 0.1,
    )


def build_runner(args: argparse.Namespace):
    """The trial runner ``run`` uses: plain, or watchdog-wrapped."""
    return runner_for(build_watchdog(args))


def build_jobs(args: argparse.Namespace) -> int:
    """Scheduler parallelism (``--jobs`` / chaos ``--workers``)."""
    jobs = getattr(args, "jobs", None) or 1
    if jobs < 1:
        raise ValueError(f"--jobs must be >= 1, got {jobs}")
    return jobs


def build_checkpoint(args: argparse.Namespace):
    interval = getattr(args, "checkpoint_interval", None)
    guarantee = getattr(args, "guarantee", None)
    if interval is None and guarantee is None:
        return None
    kwargs = {}
    if interval is not None:
        kwargs["interval_s"] = interval
    if guarantee is not None:
        kwargs["guarantee"] = DeliveryGuarantee.parse(guarantee)
    return CheckpointSpec(**kwargs)


def build_observability(args: argparse.Namespace):
    sample_rate = getattr(args, "trace_sample_rate", 0) or 0
    interval = getattr(args, "metrics_interval", None)
    if sample_rate <= 0 and interval is None:
        return None
    kwargs = {"trace_sample_rate": int(sample_rate)}
    if interval is not None:
        kwargs["metrics_interval_s"] = interval
    return ObsSpec(**kwargs)


def build_query(args: argparse.Namespace):
    window = WindowSpec(args.window_size, args.window_slide)
    keys = KEY_DISTRIBUTIONS[args.keys](args.num_keys)
    if args.query == "aggregation":
        return WindowedAggregationQuery(window=window, keys=keys)
    return WindowedJoinQuery(window=window, keys=keys)


def build_reschedule(args: argparse.Namespace):
    mode = getattr(args, "reschedule", None)
    standby = getattr(args, "standby", 0) or 0
    if mode is None:
        return None  # engine default: standby mode iff standbys exist
    return ReschedulePolicy(
        standby_nodes=standby,
        mode={"none": MODE_NONE, "spread": MODE_SPREAD, "standby": MODE_STANDBY}[
            mode
        ],
    )


def build_degradation(args: argparse.Namespace):
    shed = getattr(args, "shed", None)
    if shed in (None, "none"):
        return None  # engine default: inert policy (no shedding)
    if shed == "recommended":
        return engine_class(args.engine).recommended_degradation()
    return DegradationPolicy(
        shed=SHED_OLDEST if shed == "oldest" else SHED_NEWEST
    )


def build_autoscale(args: argparse.Namespace) -> Optional[AutoscaleSpec]:
    policy = getattr(args, "autoscale", None)
    if policy is None:
        for flag in ("min_nodes", "max_nodes", "cooldown"):
            if getattr(args, flag, None) is not None:
                raise ValueError(
                    f"--{flag.replace('_', '-')} requires --autoscale POLICY"
                )
        return None
    kwargs = {"policy": policy}
    if getattr(args, "min_nodes", None) is not None:
        kwargs["min_workers"] = args.min_nodes
    if getattr(args, "max_nodes", None) is not None:
        kwargs["max_workers"] = args.max_nodes
    if getattr(args, "cooldown", None) is not None:
        kwargs["cooldown_s"] = args.cooldown
    return AutoscaleSpec(**kwargs)


def build_spec(args: argparse.Namespace, rate: Optional[float] = None):
    return ExperimentSpec(
        engine=args.engine,
        query=build_query(args),
        workers=args.workers,
        profile=rate if rate is not None else args.rate,
        duration_s=args.duration,
        seed=args.seed,
        generator=GeneratorConfig(instances=args.generators),
        monitor_resources=not args.no_resources,
        faults=build_faults(args),
        checkpoint=build_checkpoint(args),
        observability=build_observability(args),
        standby=getattr(args, "standby", 0) or 0,
        reschedule=build_reschedule(args),
        degradation=build_degradation(args),
        clock_skew=build_clock_skew(args),
        autoscale=build_autoscale(args),
        detector=detector_spec(getattr(args, "detector", None)),
    )


def add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=sorted(ENGINES), default="flink",
        help="system under test (default: flink)",
    )
    parser.add_argument(
        "--query", choices=["aggregation", "join"], default="aggregation",
        help="paper query template (default: aggregation)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker-node count; the paper sweeps 2/4/8 (default: 2)",
    )
    parser.add_argument(
        "--window-size", type=float, default=8.0,
        help="window size in seconds (default: 8)",
    )
    parser.add_argument(
        "--window-slide", type=float, default=4.0,
        help="window slide in seconds (default: 4)",
    )
    parser.add_argument(
        "--keys", choices=sorted(KEY_DISTRIBUTIONS), default="normal",
        help="key distribution (default: normal, as in the paper)",
    )
    parser.add_argument(
        "--num-keys", type=int, default=64,
        help="key-space size (default: 64)",
    )
    parser.add_argument(
        "--duration", type=float, default=160.0,
        help="simulated seconds per trial, 25%% warmup (default: 160)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--generators", type=int, default=2,
        help="parallel generator instances (default: 2)",
    )
    parser.add_argument(
        "--no-resources", action="store_true",
        help="skip CPU/network sampling (slightly faster)",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="write the result as JSON to this path",
    )
    parser.add_argument(
        "--fault", action="append", type=parse_fault, default=None,
        metavar="KIND@T[:DUR]",
        help=(
            "inject a fault at T seconds (repeatable): crash@60, "
            "restart@90, slow@30:20, partition@100:10, disconnect@50:10"
        ),
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=None,
        help="checkpoint interval in seconds (default: model default 10)",
    )
    parser.add_argument(
        "--guarantee", default=None,
        choices=[g.value for g in DeliveryGuarantee],
        help="override the engine's delivery guarantee",
    )
    parser.add_argument(
        "--trace-sample-rate", type=int, default=0, metavar="N",
        help=(
            "trace every N-th generated cohort through the pipeline "
            "(0 disables tracing; try 1000)"
        ),
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=None, metavar="SECONDS",
        help=(
            "sample the metrics registry every this many simulated "
            "seconds (enables the registry; default when enabled: 1.0)"
        ),
    )
    parser.add_argument(
        "--standby", type=int, default=0, metavar="N",
        help=(
            "hot standby nodes: a crash promotes a standby (paying the "
            "state-migration cost) instead of losing capacity (default: 0)"
        ),
    )
    parser.add_argument(
        "--reschedule", choices=["none", "spread", "standby"], default=None,
        help=(
            "policy for a dead operator slot: none = capacity lost (legacy), "
            "spread = migrate over survivors, standby = promote from the "
            "pool (default: standby when --standby > 0, else none)"
        ),
    )
    parser.add_argument(
        "--shed", choices=["none", "recommended", "oldest", "newest"],
        default=None,
        help=(
            "load shedding at the sources: recommended = engine-tuned "
            "policy, oldest/newest = generic bounded-latency shedding "
            "(default: none)"
        ),
    )
    parser.add_argument(
        "--detector", choices=list(DETECTOR_KINDS), default=None,
        help=(
            "drive suspect migrations from a heartbeat failure detector: "
            "timeout = today's fixed-timeout semantics made explicit, "
            "phi = Hayashibara accrual, quorum = k-of-n observers "
            "(default: off; recovery behaviour then matches builds "
            "without the detection plane byte for byte)"
        ),
    )
    parser.add_argument(
        "--clock-skew", type=parse_clock_skew, default=None,
        metavar="OFF_MS[:PPM[:RES_MS[:INT_S]]]",
        help=(
            "model per-node clock error on the measurement plane: max "
            "offset in ms, drift in ppm, NTP residual in ms, NTP sync "
            "interval in s (example: 5:20:0.5:30); the exported "
            "diagnostics carry the correction error bound"
        ),
    )
    parser.add_argument(
        "--uncorrected-clocks", action="store_true",
        help=(
            "with --clock-skew: read raw (undisciplined) clocks instead "
            "of NTP-corrected ones -- demonstrates the skew error the "
            "correction layer removes"
        ),
    )
    parser.add_argument(
        "--driver-fault", action="append", type=parse_driver_fault,
        default=None, metavar="KIND@T[:DUR]",
        help=(
            "inject a fault into the benchmark harness itself "
            "(repeatable): gencrash@60, queueloss@70, driverslow@30:20"
        ),
    )
    parser.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "wall-clock budget per trial; the watchdog aborts and "
            "retries a trial that exceeds it (default: off)"
        ),
    )
    parser.add_argument(
        "--trial-stall", type=float, default=None, metavar="SECONDS",
        help=(
            "simulated seconds without driver progress before the "
            "watchdog declares the trial stalled (default: off)"
        ),
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help=(
            "extra attempts after a watchdog-aborted trial, with capped "
            "exponential backoff (default: 2)"
        ),
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.1, metavar="SECONDS",
        help="base backoff before the first retry (default: 0.1)",
    )
    parser.add_argument(
        "--autoscale", choices=list(POLICY_NAMES), default=None,
        metavar="POLICY",
        help=(
            "scale the cluster out/in mid-trial with this policy "
            "(threshold or target), driven by obs-registry signals; "
            "enables metrics sampling automatically"
        ),
    )
    parser.add_argument(
        "--min-nodes", type=int, default=None, metavar="N",
        help="with --autoscale: scale-in floor (default: 1)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="with --autoscale: scale-out ceiling (default: 16)",
    )
    parser.add_argument(
        "--cooldown", type=float, default=None, metavar="SECONDS",
        help=(
            "with --autoscale: minimum simulated time between scaling "
            "decisions (default: 20)"
        ),
    )


def cmd_run(args: argparse.Namespace) -> int:
    spec = build_spec(args)
    result = build_runner(args)(spec)
    print(result.describe())
    if result.attempts is not None and len(result.attempts) > 1:
        print(f"  watchdog attempts    : {len(result.attempts)}")
        for record in result.attempts:
            print(f"    attempt {record.attempt}: {record.outcome}")
    skew_bound = result.diagnostics.get("metrology.skew_bound_s")
    if skew_bound is not None:
        print(
            f"  clock-skew bound     : {skew_bound * 1e3:.3f} ms "
            f"(max observed error "
            f"{result.diagnostics['metrology.skew_max_error_s'] * 1e3:.3f} ms)"
        )
    print(f"  event-time latency   : {result.event_latency.row()}")
    print(f"  processing-time lat. : {result.processing_latency.row()}")
    print(f"  mean ingest rate     : {result.mean_ingest_rate / 1e6:.3f} M/s")
    if result.recovery:
        print("  fault recovery:")
        for fault in result.recovery:
            print(f"    {fault.describe()}")
    if result.detection is not None:
        det = result.detection
        lat = det.detection_latency_mean_s
        lat_text = f"{lat:.2f}s mean" if lat == lat else "n/a"
        print(
            f"  detection ({det.detector}): {det.true_positives} TP, "
            f"{det.false_positives} FP, {det.false_negatives} FN over "
            f"{det.episodes} episode(s); latency {lat_text}; "
            f"{det.actions} suspect migration(s), "
            f"{det.spurious_migration_node_s:.1f} spurious node-s, "
            f"cascade depth {det.cascade_depth_max}"
            + (", METASTABLE" if det.metastable else "")
        )
    if result.autoscale:
        cost = result.diagnostics.get("autoscale.cost_node_seconds", 0.0)
        print(f"  autoscale ({cost:.0f} node-seconds billed):")
        for event in result.autoscale:
            print(f"    {event.describe()}")
    if result.observability is not None:
        from repro.analysis.ascii_plots import render_obs_dashboard

        print(render_obs_dashboard(result.observability))
    if args.output:
        path = write_json(trial_to_dict(result, include_series=True), args.output)
        print(f"  wrote {path}")
    return 1 if result.failed else 0


def cmd_search(args: argparse.Namespace) -> int:
    spec = build_spec(args, rate=args.high_rate)
    watchdog = build_watchdog(args)
    jobs = build_jobs(args)
    if args.journal and (args.online or spec.resolved_faults() is not None):
        raise ValueError(
            "--journal is only supported for the bisection search "
            "(not --online or --fault searches)"
        )
    if args.resume and not args.journal:
        raise ValueError("--resume requires --journal PATH")
    if args.online and jobs > 1:
        raise ValueError(
            "--jobs does not apply to --online (a single-trial probe)"
        )
    if args.online:
        online = find_sustainable_throughput_online(
            spec, high_rate=args.high_rate
        )
        for decision in online.decisions:
            print(
                f"  t={decision.at_s:6.1f}s rate={decision.rate / 1e6:7.3f} "
                f"M/s wait={decision.oldest_wait_s:5.2f}s "
                f"{decision.action}"
            )
        rate = online.sustainable_rate
        shown = f"{rate / 1e6:.3f} M/s" if rate == rate else "not found"
        print(
            f"sustainable throughput (online AIMD): {shown} "
            f"({online.decision_count} control decisions, 1 trial)"
        )
        if args.output:
            path = write_json(online_search_to_dict(online), args.output)
            print(f"wrote {path}")
        return 0
    if spec.resolved_faults() is not None:
        search = find_sustainable_throughput_under_faults(
            spec,
            high_rate=args.high_rate,
            rel_tol=args.tolerance,
            max_recovery_time_s=args.max_recovery,
            workers=jobs,
            watchdog=watchdog,
        )
    else:
        journal = None
        if args.journal:
            journal = TrialJournal(
                args.journal,
                fingerprint=search_fingerprint(
                    spec,
                    high_rate=args.high_rate,
                    low_rate=0.0,
                    rel_tol=args.tolerance,
                    criteria=SustainabilityCriteria(),
                    max_trials=12,
                ),
                resume=args.resume,
            )
        search = find_sustainable_throughput(
            spec,
            high_rate=args.high_rate,
            rel_tol=args.tolerance,
            journal=journal,
            workers=jobs,
            watchdog=watchdog,
        )
        if journal is not None:
            print(
                f"  journal: {journal.hits} replayed, "
                f"{journal.misses} run live"
            )
    for trial in search.trials:
        verdict = "sustainable" if trial.verdict.sustainable else "UNSUSTAINABLE"
        print(f"  {trial.rate / 1e6:8.3f} M/s  {verdict}")
    print(
        f"sustainable throughput: {search.sustainable_rate / 1e6:.3f} M/s "
        f"({search.trial_count} trials)"
    )
    if args.output:
        path = write_json(search_to_dict(search), args.output)
        print(f"wrote {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    cells = []
    for engine in args.engines:
        for workers in args.worker_counts:
            sweep_args = argparse.Namespace(**vars(args))
            sweep_args.engine = engine
            sweep_args.workers = workers
            spec = build_spec(sweep_args, rate=args.high_rate)
            cells.append(((engine, workers), spec))
    rates = sweep_sustainable_rates(
        cells,
        high_rate=args.high_rate,
        rel_tol=args.tolerance,
        workers=build_jobs(args),
        watchdog=build_watchdog(args),
    )
    measured = {}
    for (engine, workers), _spec in cells:
        measured[(engine, workers)] = rates[(engine, workers)]
        print(
            f"  {engine}/{workers}w: "
            f"{rates[(engine, workers)] / 1e6:.3f} M/s"
        )
    print()
    print(
        throughput_table(
            f"Sustainable throughput, {args.query} "
            f"({args.window_size:g}s, {args.window_slide:g}s)",
            measured=measured,
            workers=tuple(args.worker_counts),
        )
    )
    if args.output:
        payload = {
            f"{engine}/{workers}": rate
            for (engine, workers), rate in measured.items()
        }
        path = write_json(payload, args.output)
        print(f"wrote {path}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.recovery.chaos import ChaosConfig, chaos_fingerprint, run_chaos

    if args.resume and not args.journal:
        raise ValueError("--resume requires --journal PATH")
    config = ChaosConfig(
        seed=args.seed,
        rounds=args.rounds,
        engines=tuple(args.engines),
        duration_s=args.duration,
        rate=args.rate,
        workers=args.sut_workers,
        driver_faults=not args.no_driver_faults,
        detector=args.detector,
        gray_faults=args.gray,
    )
    journal = None
    if args.journal:
        journal = TrialJournal(
            args.journal,
            fingerprint=chaos_fingerprint(config),
            resume=args.resume,
        )
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    progress = print if args.verbose else None
    report = run_chaos(
        config, progress=progress, journal=journal, workers=args.workers
    )
    if journal is not None:
        print(
            f"journal: {journal.hits} replayed, {journal.misses} run live"
        )
    print(report.render())
    if args.output:
        path = write_json(report.to_dict(), args.output)
        print(f"wrote {path}")
    return 0 if report.ok else 1


def cmd_recover(args: argparse.Namespace) -> int:
    from repro.recoverybench import (
        RecoverConfig,
        recover_fingerprint,
        run_recovery_bench,
    )

    if args.resume and not args.journal:
        raise ValueError("--resume requires --journal PATH")
    config = RecoverConfig(
        seed=args.seed,
        engines=tuple(args.engines),
        policies=tuple(args.policies),
        kinds=tuple(args.kinds),
        intervals=() if args.no_frontier else tuple(args.intervals),
        duration_s=args.duration,
        rate=args.rate,
        workers=args.sut_workers,
        detector=args.detector,
    )
    journal = None
    if args.journal:
        journal = TrialJournal(
            args.journal,
            fingerprint=recover_fingerprint(config),
            resume=args.resume,
        )
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    progress = print if args.verbose else None
    report = run_recovery_bench(
        config, progress=progress, journal=journal, workers=args.workers
    )
    if journal is not None:
        print(
            f"journal: {journal.hits} replayed, {journal.misses} run live"
        )
    print(report.render())
    if args.output:
        path = write_json(report.to_dict(), args.output)
        print(f"wrote {path}")
    return 0 if report.ok else 1


def cmd_autoscale(args: argparse.Namespace) -> int:
    from repro.autoscale.scorecard import (
        ElasticityConfig,
        elasticity_fingerprint,
        run_elasticity,
    )

    if args.resume and not args.journal:
        raise ValueError("--resume requires --journal PATH")
    config = ElasticityConfig(
        seed=args.seed,
        engines=tuple(args.engines),
        policies=tuple(args.policies),
        duration_s=args.duration,
        workers=args.sut_workers,
        min_workers=args.min_nodes if args.min_nodes is not None else 1,
        max_workers=args.max_nodes if args.max_nodes is not None else 6,
        cooldown_s=args.cooldown if args.cooldown is not None else 12.0,
    )
    journal = None
    if args.journal:
        journal = TrialJournal(
            args.journal,
            fingerprint=elasticity_fingerprint(config),
            resume=args.resume,
        )
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    progress = print if args.verbose else None
    report = run_elasticity(
        config, progress=progress, journal=journal, workers=args.workers
    )
    if journal is not None:
        print(
            f"journal: {journal.hits} replayed, {journal.misses} run live"
        )
    print(report.render())
    if args.output:
        path = write_json(report.to_dict(), args.output)
        print(f"wrote {path}")
    return 0 if report.ok else 1


def cmd_engines(args: argparse.Namespace) -> int:
    print("registered engines:")
    for name in sorted(ENGINES):
        print(f"  {name:<8} {ENGINES[name].__name__}")
    print()
    print("calibrated cost models (engine, query): pipeline+keyed us/event")
    for (engine, kind), model in sorted(registered_models().items()):
        print(
            f"  {engine:<8} {kind:<12} "
            f"{model.pipeline_cost_us:6.1f} + {model.keyed_cost_us:5.2f} us, "
            f"eff={dict(model.scaling_efficiency)}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Benchmark simulated stream processing engines with the "
            "ICDE'18 driver/SUT-separated methodology."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one benchmark trial")
    add_common_arguments(run_parser)
    run_parser.add_argument(
        "--rate", type=float, default=0.3e6,
        help="offered load in events/s (default: 300000)",
    )
    run_parser.set_defaults(func=cmd_run)

    search_parser = sub.add_parser(
        "search", help="find the sustainable throughput (Definition 5)"
    )
    add_common_arguments(search_parser)
    search_parser.add_argument(
        "--high-rate", type=float, default=1.6e6,
        help="probe ceiling in events/s (default: 1.6e6)",
    )
    search_parser.add_argument("--tolerance", type=float, default=0.05)
    search_parser.add_argument(
        "--max-recovery", type=float, default=60.0,
        help=(
            "with --fault: seconds within which every fault must recover "
            "for a rate to count as sustainable (default: 60)"
        ),
    )
    search_parser.add_argument(
        "--online", action="store_true",
        help=(
            "probe in a single trial with the AIMD rate controller "
            "instead of one trial per bisection step"
        ),
    )
    search_parser.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help=(
            "checkpoint each completed probe to this JSON journal "
            "(bisection search only)"
        ),
    )
    search_parser.add_argument(
        "--resume", action="store_true",
        help=(
            "replay completed probes from --journal instead of "
            "re-running them (byte-identical final report)"
        ),
    )
    search_parser.add_argument(
        "--jobs", type=int, default=1,
        help=(
            "run up to N speculative bisection probes in parallel worker "
            "processes; the report stays byte-identical to --jobs 1"
        ),
    )
    search_parser.set_defaults(func=cmd_search)

    sweep_parser = sub.add_parser(
        "sweep", help="Table-I style sweep over engines and cluster sizes"
    )
    add_common_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--engines", nargs="+", choices=sorted(ENGINES),
        default=sorted(ENGINES),
    )
    sweep_parser.add_argument(
        "--worker-counts", nargs="+", type=int, default=[2, 4, 8]
    )
    sweep_parser.add_argument("--high-rate", type=float, default=1.6e6)
    sweep_parser.add_argument("--tolerance", type=float, default=0.05)
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help=(
            "fan sweep cells over N worker processes (results stay "
            "byte-identical to --jobs 1)"
        ),
    )
    sweep_parser.set_defaults(func=cmd_sweep)

    engines_parser = sub.add_parser(
        "engines", help="list engines and calibrated cost models"
    )
    engines_parser.set_defaults(func=cmd_engines)

    chaos_parser = sub.add_parser(
        "chaos",
        help=(
            "seeded chaos soak: randomized faults over engines x recovery "
            "policies with invariant checks (exit 1 on any violation)"
        ),
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--rounds", type=int, default=3,
        help="fault schedules per (engine, policy) cell (default: 3)",
    )
    chaos_parser.add_argument(
        "--engines", nargs="+", choices=sorted(ENGINES),
        default=sorted(ENGINES),
    )
    chaos_parser.add_argument(
        "--duration", type=float, default=60.0,
        help="simulated seconds per trial (default: 60)",
    )
    chaos_parser.add_argument(
        "--rate", type=float, default=30_000.0,
        help="offered load per trial in events/s (default: 30000)",
    )
    chaos_parser.add_argument(
        "--workers", type=int, default=1,
        help=(
            "scheduler parallelism: fan grid cells over N worker "
            "processes (scorecard stays byte-identical to --workers 1)"
        ),
    )
    chaos_parser.add_argument(
        "--sut-workers", type=int, default=2,
        help="simulated cluster size per trial (default: 2)",
    )
    chaos_parser.add_argument(
        "--verbose", action="store_true",
        help="print a status line per trial",
    )
    chaos_parser.add_argument(
        "--output", type=str, default=None,
        help="write the scorecard report as JSON to this path",
    )
    chaos_parser.add_argument(
        "--no-driver-faults", action="store_true",
        help=(
            "draw only SUT-side faults (legacy PR 4 mix) instead of "
            "also injecting generator crashes, driver queue loss and "
            "slow driver nodes"
        ),
    )
    chaos_parser.add_argument(
        "--detector", choices=list(DETECTOR_KINDS), default=None,
        help=(
            "drive suspect migrations from this failure detector on "
            "every trial (default: off; the scorecard is then "
            "byte-identical to a build without the detection plane)"
        ),
    )
    chaos_parser.add_argument(
        "--gray", action="store_true",
        help=(
            "mix gray failures (flapping node, fail-slow ramp, "
            "asymmetric partition) into the random schedules"
        ),
    )
    chaos_parser.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="checkpoint each completed trial digest to this JSON journal",
    )
    chaos_parser.add_argument(
        "--resume", action="store_true",
        help=(
            "replay completed trials from --journal instead of "
            "re-running them (byte-identical final scorecard)"
        ),
    )
    chaos_parser.set_defaults(func=cmd_chaos)

    recover_parser = sub.add_parser(
        "recover",
        help=(
            "recovery-efficiency scorecard: one deterministic fault per "
            "(engine x reschedule policy x kind) cell plus the "
            "checkpoint-interval sensitivity frontier per engine (exit 1 "
            "on any invariant violation)"
        ),
    )
    recover_parser.add_argument("--seed", type=int, default=0)
    recover_parser.add_argument(
        "--engines", nargs="+", choices=sorted(ENGINES),
        default=sorted(ENGINES),
    )
    recover_parser.add_argument(
        "--policies", nargs="+",
        choices=[MODE_NONE, MODE_SPREAD, MODE_STANDBY],
        default=[MODE_NONE, MODE_SPREAD, MODE_STANDBY],
        help="reschedule policies to compare (default: all three)",
    )
    recover_parser.add_argument(
        "--kinds", nargs="+",
        choices=["crash", "restart", "slow", "partition", "disconnect"],
        default=["crash", "restart", "slow", "partition", "disconnect"],
        help="SUT fault kinds to benchmark (default: all five)",
    )
    recover_parser.add_argument(
        "--intervals", nargs="+", type=float,
        default=[2.5, 5.0, 10.0, 20.0, 40.0], metavar="SECONDS",
        help=(
            "checkpoint intervals swept per engine for the "
            "recovery-time vs. overhead frontier (default: log grid "
            "2.5..40)"
        ),
    )
    recover_parser.add_argument(
        "--no-frontier", action="store_true",
        help="skip the checkpoint-interval sweep (grid cells only)",
    )
    recover_parser.add_argument(
        "--duration", type=float, default=60.0,
        help="simulated seconds per trial (default: 60)",
    )
    recover_parser.add_argument(
        "--rate", type=float, default=30_000.0,
        help="offered load per trial in events/s (default: 30000)",
    )
    recover_parser.add_argument(
        "--sut-workers", type=int, default=2,
        help="simulated cluster size per trial (default: 2)",
    )
    recover_parser.add_argument(
        "--workers", type=int, default=1,
        help=(
            "scheduler parallelism: fan trials over N worker processes "
            "(report stays byte-identical to --workers 1)"
        ),
    )
    recover_parser.add_argument(
        "--verbose", action="store_true",
        help="print a status line per trial",
    )
    recover_parser.add_argument(
        "--output", type=str, default=None,
        help="write the recovery report as JSON to this path",
    )
    recover_parser.add_argument(
        "--detector", choices=list(DETECTOR_KINDS), default=None,
        help=(
            "drive suspect migrations from this failure detector on "
            "every cell (default: off; the report is then "
            "byte-identical to a build without the detection plane)"
        ),
    )
    recover_parser.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="checkpoint each completed trial digest to this JSON journal",
    )
    recover_parser.add_argument(
        "--resume", action="store_true",
        help=(
            "replay completed trials from --journal instead of "
            "re-running them (byte-identical final report)"
        ),
    )
    recover_parser.set_defaults(func=cmd_recover)

    autoscale_parser = sub.add_parser(
        "autoscale",
        help=(
            "cross-engine elasticity scorecard: engines x scaling "
            "policies x diurnal/flash-crowd workloads (exit 1 on any "
            "invariant violation)"
        ),
    )
    autoscale_parser.add_argument("--seed", type=int, default=0)
    autoscale_parser.add_argument(
        "--engines", nargs="+", choices=sorted(ENGINES),
        default=sorted(ENGINES),
    )
    autoscale_parser.add_argument(
        "--policies", nargs="+", choices=list(POLICY_NAMES),
        default=list(POLICY_NAMES),
        help="scaling policies to compare (default: both)",
    )
    autoscale_parser.add_argument(
        "--duration", type=float, default=120.0,
        help="simulated seconds per trial (default: 120)",
    )
    autoscale_parser.add_argument(
        "--sut-workers", type=int, default=1,
        help="initial simulated cluster size per trial (default: 1)",
    )
    autoscale_parser.add_argument(
        "--min-nodes", type=int, default=None, metavar="N",
        help="scale-in floor (default: 1)",
    )
    autoscale_parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="scale-out ceiling (default: 6)",
    )
    autoscale_parser.add_argument(
        "--cooldown", type=float, default=None, metavar="SECONDS",
        help="minimum simulated time between decisions (default: 12)",
    )
    autoscale_parser.add_argument(
        "--workers", type=int, default=1,
        help=(
            "scheduler parallelism: fan grid cells over N worker "
            "processes (scorecard stays byte-identical to --workers 1)"
        ),
    )
    autoscale_parser.add_argument(
        "--verbose", action="store_true",
        help="print a status line per cell",
    )
    autoscale_parser.add_argument(
        "--output", type=str, default=None,
        help="write the scorecard report as JSON to this path",
    )
    autoscale_parser.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="checkpoint each completed cell digest to this JSON journal",
    )
    autoscale_parser.add_argument(
        "--resume", action="store_true",
        help=(
            "replay completed cells from --journal instead of "
            "re-running them (byte-identical final scorecard)"
        ),
    )
    autoscale_parser.set_defaults(func=cmd_autoscale)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Bad argument *values* (spec validation, journal fingerprint
        # mismatch, flag combinations) are usage errors, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
