"""repro.detect -- the pluggable failure-detection plane.

Until this package existed, failure detection in the framework was one
constant (``detection_timeout_s``).  Here it becomes a benchmarkable
axis: seeded per-worker heartbeats on the simulated sampling clock
(:mod:`repro.detect.plane`), exchangeable detector contracts --
fixed timeout, phi-accrual, k-of-n quorum
(:mod:`repro.detect.detectors`) -- and detection-quality metrology
(false positives/negatives, detection-latency distributions, spurious
migration node-seconds, cascade depth, metastability;
:mod:`repro.detect.metrics`).  Verdicts drive real evictions through
:meth:`repro.recovery.reschedule.ReschedulePolicy.plan_suspect`, so a
trigger-happy detector pays for its mistakes in migration pauses.

Enable per trial with ``ExperimentSpec(detector=DetectorSpec(...))``
or ``--detector {timeout,phi,quorum}`` on ``repro run/chaos/recover``.
"""

from repro.detect.detectors import (
    FailureDetector,
    PhiAccrualDetector,
    QuorumDetector,
    TimeoutDetector,
)
from repro.detect.metrics import DetectionMetrics, VerdictEvent
from repro.detect.plane import (
    DETECTOR_KINDS,
    DetectionPlane,
    DetectorSpec,
    detector_spec,
)

__all__ = [
    "DETECTOR_KINDS",
    "DetectionMetrics",
    "DetectionPlane",
    "DetectorSpec",
    "FailureDetector",
    "PhiAccrualDetector",
    "QuorumDetector",
    "TimeoutDetector",
    "VerdictEvent",
    "detector_spec",
]
