"""Failure detectors over seeded heartbeat observations.

A :class:`FailureDetector` consumes heartbeat *arrivals* -- tuples of
``(node, observer, arrival_time)`` delivered by the
:class:`~repro.detect.plane.DetectionPlane` on the simulated sampling
clock -- and answers one question at evaluation time: *is this node
suspected right now?*  Detectors are deliberately dumb about ground
truth; classifying a suspicion as a true or false positive is the
plane's job.

Three contracts ship:

- :class:`TimeoutDetector` -- today's semantics made explicit: suspect
  when no heartbeat has arrived for ``timeout_s``.  The boundary is
  *inclusive* (suspected at exactly ``timeout_s``), matching the
  ``plan_straggler`` detection boundary.
- :class:`PhiAccrualDetector` -- Hayashibara et al.'s phi-accrual
  detector: suspicion is a continuous value ``phi = -log10(P(a
  heartbeat this late or later))`` under a normal model of the node's
  recent inter-arrival history, convicted at ``threshold``.
- :class:`QuorumDetector` -- k-of-n: each of ``observers`` independent
  control-plane observers runs its own timeout; the node is suspected
  only when at least ``k`` agree.  An asymmetric partition that blinds
  fewer than ``k`` observers cannot split it.

All detectors clamp negative elapsed times to zero: the plane
timestamps arrivals with their (jittered) network delay, so an arrival
can be dated marginally after the tick that evaluates it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, Dict, Tuple


class FailureDetector(ABC):
    """Verdict contract shared by every detector implementation."""

    name = "detector"

    @abstractmethod
    def observe(self, node: int, observer: int, arrival_s: float) -> None:
        """Record a heartbeat from ``node`` arriving at ``observer``."""

    @abstractmethod
    def suspect(self, node: int, now_s: float) -> bool:
        """True when ``node`` is suspected at ``now_s``."""

    @abstractmethod
    def forget(self, node: int) -> None:
        """Drop all state for ``node`` (it was migrated away and its
        identity retired; a stale history must not leak into verdicts
        about anything else)."""


class TimeoutDetector(FailureDetector):
    """Fixed-timeout detection from a single observer (observer 0)."""

    name = "timeout"

    def __init__(self, timeout_s: float) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.timeout_s = timeout_s
        self._last_seen: Dict[int, float] = {}

    def observe(self, node: int, observer: int, arrival_s: float) -> None:
        if observer != 0:
            return
        prev = self._last_seen.get(node)
        if prev is None or arrival_s > prev:
            self._last_seen[node] = arrival_s

    def suspect(self, node: int, now_s: float) -> bool:
        last = self._last_seen.get(node)
        if last is None:
            return False
        return max(0.0, now_s - last) >= self.timeout_s

    def forget(self, node: int) -> None:
        self._last_seen.pop(node, None)


def _phi(elapsed_s: float, mean_s: float, std_s: float) -> float:
    """Hayashibara's suspicion value: ``-log10(P(arrival >= elapsed))``
    under ``N(mean, std)``."""
    z = (elapsed_s - mean_s) / (std_s * math.sqrt(2.0))
    survival = 0.5 * math.erfc(z)
    return -math.log10(max(survival, 1e-300))


class PhiAccrualDetector(FailureDetector):
    """Adaptive accrual detection over inter-arrival history
    (observer 0 only; quorum composition is a separate detector).

    ``min_std_s`` floors the sample deviation so that a perfectly
    regular heartbeat stream does not make the detector infinitely
    trigger-happy; ``max_std_s`` caps it so a slowly degrading stream
    cannot dilate the model fast enough to hide inside it (unbounded
    variance adaptation is exactly how accrual detectors go blind to
    fail-slow ramps -- production implementations bound the history for
    the same reason).  ``min_history`` arrivals are required before any
    suspicion (a cold detector stays silent rather than guessing).
    """

    name = "phi"

    def __init__(
        self,
        threshold: float = 8.0,
        window: int = 64,
        min_std_s: float = 0.02,
        max_std_s: float = 0.1,
        min_history: int = 3,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if min_std_s <= 0:
            raise ValueError(f"min_std_s must be positive, got {min_std_s}")
        if max_std_s < min_std_s:
            raise ValueError(
                f"max_std_s must be >= min_std_s, got {max_std_s}"
            )
        if min_history < 2:
            raise ValueError(f"min_history must be >= 2, got {min_history}")
        self.threshold = threshold
        self.window = window
        self.min_std_s = min_std_s
        self.max_std_s = max_std_s
        self.min_history = min_history
        self._last_seen: Dict[int, float] = {}
        self._intervals: Dict[int, Deque[float]] = {}

    def observe(self, node: int, observer: int, arrival_s: float) -> None:
        if observer != 0:
            return
        prev = self._last_seen.get(node)
        if prev is not None and arrival_s > prev:
            history = self._intervals.setdefault(
                node, deque(maxlen=self.window)
            )
            history.append(arrival_s - prev)
        if prev is None or arrival_s > prev:
            self._last_seen[node] = arrival_s

    def phi(self, node: int, now_s: float) -> float:
        """Current suspicion level for ``node`` (0.0 when cold)."""
        last = self._last_seen.get(node)
        history = self._intervals.get(node)
        if last is None or history is None or len(history) < self.min_history:
            return 0.0
        n = len(history)
        mean = sum(history) / n
        var = sum((x - mean) ** 2 for x in history) / n
        std = min(max(math.sqrt(var), self.min_std_s), self.max_std_s)
        return _phi(max(0.0, now_s - last), mean, std)

    def suspect(self, node: int, now_s: float) -> bool:
        return self.phi(node, now_s) >= self.threshold

    def forget(self, node: int) -> None:
        self._last_seen.pop(node, None)
        self._intervals.pop(node, None)


class QuorumDetector(FailureDetector):
    """``k``-of-``observers`` timeout agreement."""

    name = "quorum"

    def __init__(self, timeout_s: float, observers: int = 3, k: int = 2) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if observers < 1:
            raise ValueError(f"observers must be >= 1, got {observers}")
        if not 1 <= k <= observers:
            raise ValueError(
                f"k must be in [1, observers={observers}], got {k}"
            )
        self.timeout_s = timeout_s
        self.observers = observers
        self.k = k
        self._last_seen: Dict[Tuple[int, int], float] = {}

    def observe(self, node: int, observer: int, arrival_s: float) -> None:
        if not 0 <= observer < self.observers:
            return
        key = (node, observer)
        prev = self._last_seen.get(key)
        if prev is None or arrival_s > prev:
            self._last_seen[key] = arrival_s

    def suspect(self, node: int, now_s: float) -> bool:
        votes = 0
        for observer in range(self.observers):
            last = self._last_seen.get((node, observer))
            if last is None:
                continue
            if max(0.0, now_s - last) >= self.timeout_s:
                votes += 1
        return votes >= self.k

    def forget(self, node: int) -> None:
        for observer in range(self.observers):
            self._last_seen.pop((node, observer), None)
