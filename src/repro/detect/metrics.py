"""Detection-quality metrology.

The plane condenses a trial's verdict stream into one
:class:`DetectionMetrics` record:

- **false_positives / true_positives** -- suspicion *raise* transitions
  classified against the schedule-derived ground truth at the verdict
  instant (was the node actually faulty right then?).
- **false_negatives** -- heartbeat-relevant fault episodes that ended
  (plus a grace window) without the faulty node ever being suspected.
  A data-direction asymmetric partition is the canonical guaranteed
  false negative: the outage is real but heartbeats keep flowing.
- **detection_latencies_s** -- per detected episode, first suspicion
  minus episode start, in episode order.
- **spurious_migration_node_s** -- node-seconds billed to migrations
  triggered by false-positive verdicts (pause x billed cluster size):
  the headline cost of a trigger-happy detector.
- **cascade_depth_max** -- longest chain of detector-driven migrations
  in which each migration lands inside (or within ``cascade_window_s``
  after) the previous one's pause window: migration -> heartbeat
  starvation under NIC contention -> fresh suspicion -> ... .
- **metastable** -- the trial survived, every fault and migration
  cleared, the detector acted at least once, and event-time latency
  never re-entered the pre-fault band before the trial ended: the
  detector pushed the system into a state the fault alone did not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def _clean(value: float) -> Optional[float]:
    """JSON-safe float: NaN/inf become None, else round to 6 places."""
    if value is None or not math.isfinite(value):
        return None
    return round(float(value), 6)


@dataclass(frozen=True)
class VerdictEvent:
    """One suspicion transition observed by the plane."""

    at_s: float
    node: int
    suspected: bool
    """True for a raise transition, False for a clear."""
    faulty: bool
    """Ground truth for the node at ``at_s`` (schedule-derived)."""

    def to_tuple(self) -> Tuple[float, int, bool, bool]:
        return (self.at_s, self.node, self.suspected, self.faulty)


@dataclass
class DetectionMetrics:
    """Per-trial detection-quality record (JSON-safe via to_dict)."""

    detector: str
    heartbeat_interval_s: float
    calm: bool
    """True when the schedule contained no heartbeat-relevant fault, so
    any suspicion at all is detector noise (the chaos soak's
    no-false-positive-under-calm invariant keys off this)."""
    episodes: int = 0
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    suspicions: int = 0
    actions: int = 0
    spurious_migrations: int = 0
    spurious_migration_node_s: float = 0.0
    migration_pause_s_total: float = 0.0
    cascade_depth_max: int = 0
    metastable: bool = False
    detection_latencies_s: Tuple[float, ...] = ()
    verdicts: Tuple[VerdictEvent, ...] = ()
    per_node_suspicions: Dict[int, int] = field(default_factory=dict)

    @property
    def detection_latency_mean_s(self) -> float:
        if not self.detection_latencies_s:
            return float("nan")
        return sum(self.detection_latencies_s) / len(self.detection_latencies_s)

    @property
    def detection_latency_max_s(self) -> float:
        if not self.detection_latencies_s:
            return float("nan")
        return max(self.detection_latencies_s)

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "heartbeat_interval_s": _clean(self.heartbeat_interval_s),
            "calm": self.calm,
            "episodes": self.episodes,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "suspicions": self.suspicions,
            "actions": self.actions,
            "spurious_migrations": self.spurious_migrations,
            "spurious_migration_node_s": _clean(self.spurious_migration_node_s),
            "migration_pause_s_total": _clean(self.migration_pause_s_total),
            "cascade_depth_max": self.cascade_depth_max,
            "metastable": self.metastable,
            "detection_latency_mean_s": _clean(self.detection_latency_mean_s),
            "detection_latency_max_s": _clean(self.detection_latency_max_s),
            "detection_latencies_s": [
                _clean(x) for x in self.detection_latencies_s
            ],
            "verdicts": [list(v.to_tuple()) for v in self.verdicts],
        }


def latency_band_reentered(
    times_s: List[float],
    latencies_s: List[float],
    *,
    baseline_end_s: float,
    clear_s: float,
    baseline_window_s: float = 30.0,
    min_band_s: float = 0.5,
    settle_bins: int = 2,
) -> Optional[bool]:
    """Did binned event-time latency re-enter the pre-fault band after
    ``clear_s``?

    Uses the same band construction as
    :func:`repro.faults.metrics.compute_recovery_metrics`: mean of the
    ``baseline_window_s`` before ``baseline_end_s`` plus
    ``max(2*std, 0.25*|mean|, min_band_s)``, re-entry sustained for
    ``settle_bins`` consecutive bins.  Returns None when there is no
    baseline or no post-clear data to judge (the caller must not flag
    metastability on missing evidence).
    """
    base = [
        lat
        for t, lat in zip(times_s, latencies_s)
        if baseline_end_s - baseline_window_s <= t < baseline_end_s
    ]
    if not base:
        return None
    mean = sum(base) / len(base)
    var = sum((x - mean) ** 2 for x in base) / len(base)
    band = mean + max(2.0 * math.sqrt(var), 0.25 * abs(mean), min_band_s)
    post = [lat for t, lat in zip(times_s, latencies_s) if t >= clear_s]
    if not post:
        return None
    run = 0
    for lat in post:
        run = run + 1 if lat <= band else 0
        if run >= settle_bins:
            return True
    return False
