"""The failure-detection plane: seeded heartbeats, verdicts, actions.

A :class:`DetectionPlane` is an optional control-plane overlay on one
trial (``ExperimentSpec(detector=DetectorSpec(...))``).  It simulates a
per-worker heartbeat agent and a :class:`~repro.detect.detectors.
FailureDetector` consuming the arrivals, then routes suspicion
verdicts into the engine through
:meth:`~repro.recovery.reschedule.ReschedulePolicy.plan_suspect` -- so
a *false* positive costs the same NIC-bounded migration pause as a
true one.

Modelling contract (every rule below is load-bearing for the
"``--detector timeout`` is byte-identical to no detector on fail-stop
schedules" guarantee, pinned in ``tests/detect/``):

- Heartbeat agents are separate processes on each worker *machine*:
  JVM GC pauses, checkpoint sync pauses, and recovery pauses of the
  streaming job never delay them.  Only machine-level conditions do.
- The control network is disjoint from the data network:
  :class:`NetworkPartition` and :class:`QueueDisconnect` (driver-link
  faults) leave heartbeats untouched, as do all driver-side faults.
- A legacy :class:`SlowNode` is a *data-plane* straggler handled by
  the pre-existing supervisor path (``plan_straggler``); it does not
  touch heartbeats and defines no detection episode.
- :class:`NodeCrash` silences the victim's agent forever;
  :class:`ProcessRestart` silences it for the engine-derived recovery
  pause.  Victims are the highest-index live workers (the same
  convention for plane and tests).
- Gray faults are the detector's real workload: a
  :class:`FlappingNode`'s down segments silence the agent, a
  :class:`DegradingNode` stretches the emission period by
  ``1 / factor`` (fail-slow: late, never silent), and an
  :class:`AsymmetricPartition` either hides a healthy node from some
  observers (``heartbeat``) or hides a real outage from all of them
  (``data``).
- While a detector-driven migration is in flight, its NIC transfer
  starves the control path: no heartbeats are delivered until the
  pause ends.  That coupling is the cascade mechanism -- a spurious
  migration can manufacture the evidence for the next suspicion.
  Chains are bounded structurally: a suspected node that gets migrated
  away is retired from tracking and never re-suspected.

Verdict-to-action rule: a suspicion raise on a node the engine already
knows is gone (crashed, or mid-restart) is metrology only.  A raise on
a structurally *live* node -- a gray-faulted one, or a healthy false
positive -- asks the policy to evict it; the plane cannot tell the two
apart, which is the entire point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.latency import EVENT_TIME
from repro.detect.detectors import (
    FailureDetector,
    PhiAccrualDetector,
    QuorumDetector,
    TimeoutDetector,
)
from repro.detect.metrics import (
    DetectionMetrics,
    VerdictEvent,
    latency_band_reentered,
)
from repro.faults.schedule import (
    AsymmetricPartition,
    DegradingNode,
    FaultSchedule,
    FlappingNode,
    NodeCrash,
    ProcessRestart,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.driver import TrialResult
    from repro.engines.base import StreamingEngine
    from repro.sim.simulator import Simulator

#: Detector kinds selectable on the ``--detector`` axis.
DETECTOR_KINDS = ("timeout", "phi", "quorum")


@dataclass(frozen=True)
class DetectorSpec:
    """Configuration of the detection plane for one trial."""

    kind: str = "timeout"
    heartbeat_interval_s: float = 0.5
    timeout_s: Optional[float] = None
    """Fixed-timeout threshold (timeout/quorum).  ``None`` inherits the
    trial's ``CheckpointSpec.detection_timeout_s`` so the default
    detector replicates today's semantics bit for bit."""
    phi_threshold: float = 8.0
    phi_window: int = 64
    phi_min_std_s: float = 0.02
    phi_max_std_s: float = 0.1
    observers: int = 3
    quorum_k: int = 2
    delay_base_s: float = 0.02
    """Nominal control-network delay per heartbeat."""
    delay_jitter: float = 0.25
    """Relative jitter on the delay, drawn per beat from the plane's
    dedicated ``detect`` RNG stream (never perturbs other streams)."""
    act: bool = True
    """Route verdicts into the reschedule seam.  False = observe-only
    (used by benchmarks that want pure detection quality)."""
    cascade_window_s: float = 5.0
    """A detector-driven migration starting within this window after the
    previous migration's pause ended is chained to it."""

    def __post_init__(self) -> None:
        if self.kind not in DETECTOR_KINDS:
            raise ValueError(
                f"kind must be one of {DETECTOR_KINDS}, got {self.kind!r}"
            )
        if self.heartbeat_interval_s <= 0:
            raise ValueError(
                "heartbeat_interval_s must be positive, "
                f"got {self.heartbeat_interval_s}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.observers < 1:
            raise ValueError(f"observers must be >= 1, got {self.observers}")
        if not 1 <= self.quorum_k <= self.observers:
            raise ValueError(
                f"quorum_k must be in [1, observers={self.observers}], "
                f"got {self.quorum_k}"
            )
        if self.delay_base_s < 0 or self.delay_jitter < 0:
            raise ValueError("delay_base_s and delay_jitter must be >= 0")


def detector_spec(kind: Optional[str]) -> Optional[DetectorSpec]:
    """CLI shim: a detector name becomes a default spec, None stays None."""
    if kind is None:
        return None
    return DetectorSpec(kind=kind)


@dataclass
class _Episode:
    """One heartbeat-relevant fault occurrence awaiting detection."""

    node: int
    kind: str
    start_s: float
    detect_end_s: float
    detected_at_s: Optional[float] = None


class DetectionPlane:
    """Heartbeat simulation + detector + verdict routing for one trial."""

    def __init__(
        self,
        sim: "Simulator",
        engine: "StreamingEngine",
        spec: DetectorSpec,
        schedule: Optional[FaultSchedule],
        rng: np.random.Generator,
        duration_s: float,
    ) -> None:
        self.sim = sim
        self.engine = engine
        self.spec = spec
        self.rng = rng
        self.duration_s = duration_s
        workers = engine.cluster.workers
        self._tracked: Set[int] = set(range(workers))
        self._dead: Set[int] = set()
        self._down_until: Dict[int, float] = {}
        self._suspected: Set[int] = set()
        self._next_emit: Dict[int, float] = {
            n: spec.heartbeat_interval_s for n in range(workers)
        }
        self._migration_until = 0.0
        self._chain_until = float("-inf")
        self._chain_depth = 0
        self._episodes: List[_Episode] = []
        self._verdicts: List[VerdictEvent] = []
        self._per_node_suspicions: Dict[int, int] = {}
        self._actions = 0
        self._migration_pause_total = 0.0
        self._spurious_migrations = 0
        self._spurious_node_s = 0.0
        self._cascade_depth_max = 0
        timeout = (
            spec.timeout_s
            if spec.timeout_s is not None
            else engine.checkpoint.detection_timeout_s
        )
        self.timeout_s = timeout
        self.detector = self._build_detector(spec, timeout)
        # Episode grace: the fault may end just before detection lands;
        # a suspicion within one timeout + a couple of beats of the end
        # still counts as detecting *that* episode.
        self._grace_s = timeout + 2.0 * spec.heartbeat_interval_s
        events = list(schedule.ordered()) if schedule is not None else []
        sut_events = [e for e in events if not e.driver_side]
        self._flap_down: Dict[int, Tuple[Tuple[float, float], ...]] = {}
        self._degrade: List[DegradingNode] = []
        self._hb_suppressed: List[Tuple[int, int, float, float]] = []
        self._data_cut: List[Tuple[int, float, float]] = []
        self.calm = True
        for event in sut_events:
            if isinstance(event, NodeCrash):
                self.calm = False
                self.sim.schedule_at(event.at_s, self._on_crash, event.nodes)
            elif isinstance(event, ProcessRestart):
                self.calm = False
                self.sim.schedule_at(event.at_s, self._on_restart, event.nodes)
            elif isinstance(event, FlappingNode):
                self.calm = False
                down = event.down_segments()
                self._flap_down[event.node] = (
                    self._flap_down.get(event.node, ()) + down
                )
                self.sim.schedule_at(event.at_s, self._open_episode, event)
            elif isinstance(event, DegradingNode):
                self.calm = False
                self._degrade.append(event)
                self.sim.schedule_at(event.at_s, self._open_episode, event)
            elif isinstance(event, AsymmetricPartition):
                self.calm = False
                if event.direction == "heartbeat":
                    self._hb_suppressed.append(
                        (
                            event.node,
                            event.observers_affected,
                            event.at_s,
                            event.end_s,
                        )
                    )
                else:
                    self._data_cut.append(
                        (event.node, event.at_s, event.end_s)
                    )
                    self.sim.schedule_at(event.at_s, self._open_episode, event)

    @staticmethod
    def _build_detector(spec: DetectorSpec, timeout_s: float) -> FailureDetector:
        if spec.kind == "timeout":
            return TimeoutDetector(timeout_s)
        if spec.kind == "phi":
            return PhiAccrualDetector(
                threshold=spec.phi_threshold,
                window=spec.phi_window,
                min_std_s=spec.phi_min_std_s,
                max_std_s=spec.phi_max_std_s,
            )
        return QuorumDetector(
            timeout_s, observers=spec.observers, k=spec.quorum_k
        )

    def install(self) -> None:
        """Start the sampling clock.  The plane reads the engine, never
        writes it, except through :meth:`StreamingEngine.
        apply_suspect_migration` on a raise verdict."""
        self.sim.every(self.spec.heartbeat_interval_s, self._tick)

    # -- ground truth ------------------------------------------------------

    def _live_by_index(self) -> List[int]:
        return sorted(n for n in self._tracked if n not in self._dead)

    def _on_crash(self, nodes: int) -> None:
        # The engine's injection ran first (it was scheduled earlier at
        # the same timestamp); the plane mirrors the structural outcome
        # on its own node identities: the highest-index live workers die.
        victims = self._live_by_index()[-nodes:]
        now = self.sim.now
        for node in victims:
            self._dead.add(node)
            self._episodes.append(
                _Episode(
                    node=node,
                    kind="crash",
                    start_s=now,
                    detect_end_s=self.duration_s,
                )
            )

    def _on_restart(self, nodes: int) -> None:
        now = self.sim.now
        pause = 0.0
        for entry in reversed(self.engine.fault_log):
            if entry["kind"] == "restart" and entry["at_s"] == now:
                pause = float(entry.get("pause_s", 0.0))
                break
        victims = self._live_by_index()[-nodes:]
        for node in victims:
            until = max(self._down_until.get(node, 0.0), now + pause)
            self._down_until[node] = until
            self._episodes.append(
                _Episode(
                    node=node,
                    kind="restart",
                    start_s=now,
                    detect_end_s=until + self._grace_s,
                )
            )

    def _open_episode(self, event) -> None:
        self._episodes.append(
            _Episode(
                node=event.node,
                kind=event.kind,
                start_s=event.at_s,
                detect_end_s=event.end_s + self._grace_s,
            )
        )

    def _flap_down_at(self, node: int, t: float) -> bool:
        for start, end in self._flap_down.get(node, ()):
            if start <= t < end:
                return True
        return False

    def _degrade_factor_at(self, node: int, t: float) -> float:
        factor = 1.0
        for event in self._degrade:
            if event.node == node:
                factor = min(factor, event.factor_at(t))
        return factor

    def _suppressed(self, node: int, observer: int, t: float) -> bool:
        for n, affected, start, end in self._hb_suppressed:
            if n == node and observer < affected and start <= t < end:
                return True
        return False

    def _faulty(self, node: int, t: float) -> bool:
        """Schedule-derived ground truth: was ``node`` impaired at (or
        within the detection grace just before) ``t``?

        Classification is episode-driven: a node is "faulty" inside any
        of its fault episodes *including* the trailing grace window, so
        a conviction landing just after a real fault cleared is a late
        true positive, not a spurious one.  A flapping node counts as
        faulty for its whole window -- the up slices of a flap are not
        health.  A heartbeat-direction asymmetric partition opens no
        episode: the node is healthy and every suspicion it draws is a
        false positive by construction."""
        if node in self._dead:
            return True
        if t < self._down_until.get(node, float("-inf")):
            return True
        for episode in self._episodes:
            if episode.node == node and episode.start_s <= t <= episode.detect_end_s:
                return True
        return False

    def _structurally_live(self, node: int, t: float) -> bool:
        """Can the engine still evict this node?  Crashed and
        mid-restart nodes are already the recovery machinery's problem;
        acting on them would double-count the fault."""
        if node in self._dead:
            return False
        if t < self._down_until.get(node, float("-inf")):
            return False
        return True

    # -- sampling clock ----------------------------------------------------

    def _tick(self, sim: "Simulator") -> None:
        if self.engine.failed:
            return
        now = sim.now
        self._emit_heartbeats(now)
        self._evaluate(now)

    def _emit_heartbeats(self, now: float) -> None:
        interval = self.spec.heartbeat_interval_s
        observers = (
            self.spec.observers if self.spec.kind == "quorum" else 1
        )
        for node in sorted(self._tracked):
            if node in self._dead:
                continue
            while self._next_emit[node] <= now:
                t_emit = self._next_emit[node]
                down_until = self._down_until.get(node, float("-inf"))
                if t_emit < down_until or self._flap_down_at(node, t_emit):
                    # The agent is down with the machine: no beat; it
                    # retries on its own cadence once back up.
                    self._next_emit[node] = t_emit + interval
                    continue
                factor = self._degrade_factor_at(node, t_emit)
                # Fail-slow stretches the agent's event loop: beats are
                # produced every interval / factor -- late, never silent.
                self._next_emit[node] = t_emit + interval / max(factor, 1e-6)
                delay = self.spec.delay_base_s * (
                    1.0 + self.spec.delay_jitter * float(self.rng.random())
                )
                if t_emit < self._migration_until:
                    # Detector-driven state migration saturates the
                    # control path: the beat is produced but never
                    # delivered.  (The jitter draw above still happens,
                    # keeping the RNG consumption schedule-determined.)
                    continue
                arrival = t_emit + delay
                for observer in range(observers):
                    if self._suppressed(node, observer, t_emit):
                        continue
                    self.detector.observe(node, observer, arrival)

    def _evaluate(self, now: float) -> None:
        for node in sorted(self._tracked):
            suspected = self.detector.suspect(node, now)
            if suspected and node not in self._suspected:
                self._raise_suspicion(node, now)
            elif not suspected and node in self._suspected:
                self._suspected.discard(node)
                self._verdicts.append(
                    VerdictEvent(
                        at_s=now,
                        node=node,
                        suspected=False,
                        faulty=self._faulty(node, now),
                    )
                )

    def _raise_suspicion(self, node: int, now: float) -> None:
        self._suspected.add(node)
        faulty = self._faulty(node, now)
        self._verdicts.append(
            VerdictEvent(at_s=now, node=node, suspected=True, faulty=faulty)
        )
        self._per_node_suspicions[node] = (
            self._per_node_suspicions.get(node, 0) + 1
        )
        for episode in self._episodes:
            if (
                episode.node == node
                and episode.detected_at_s is None
                and episode.start_s <= now <= episode.detect_end_s
            ):
                episode.detected_at_s = now
        if not self.spec.act or not self._structurally_live(node, now):
            return
        outcome = self.engine.apply_suspect_migration(node, spurious=not faulty)
        if outcome is None:
            return
        pause = float(outcome.get("pause_s", 0.0))
        self._actions += 1
        self._migration_pause_total += pause
        if not faulty:
            self._spurious_migrations += 1
            self._spurious_node_s += pause * float(self.engine.billed_nodes)
        if now <= self._chain_until + self.spec.cascade_window_s:
            self._chain_depth += 1
        else:
            self._chain_depth = 1
        self._cascade_depth_max = max(self._cascade_depth_max, self._chain_depth)
        self._chain_until = max(self._chain_until, now + pause)
        self._migration_until = max(self._migration_until, now + pause)
        # The evicted identity is retired: no re-suspicion loops, which
        # structurally bounds any cascade at the worker count.
        self._tracked.discard(node)
        self._suspected.discard(node)
        self.detector.forget(node)

    # -- metrology ---------------------------------------------------------

    def diagnostics(self) -> Dict[str, float]:
        return {
            "detect.actions": float(self._actions),
            "detect.migration_pause_total_s": self._migration_pause_total,
            "detect.spurious_migrations": float(self._spurious_migrations),
        }

    def finalize(self, result: "TrialResult") -> DetectionMetrics:
        """Condense the verdict stream into a DetectionMetrics record."""
        raises = [v for v in self._verdicts if v.suspected]
        true_pos = sum(1 for v in raises if v.faulty)
        false_pos = len(raises) - true_pos
        latencies = tuple(
            round(e.detected_at_s - e.start_s, 9)
            for e in self._episodes
            if e.detected_at_s is not None
        )
        false_neg = sum(1 for e in self._episodes if e.detected_at_s is None)
        metastable = False
        if self._actions > 0 and not result.failure and self._episodes:
            fault_starts = [e.start_s for e in self._episodes]
            clear_s = max(
                max(e.detect_end_s - self._grace_s for e in self._episodes),
                self._migration_until,
            )
            binned = result.collector.binned_series(EVENT_TIME, bin_s=1.0)
            reentered = latency_band_reentered(
                list(binned.times),
                list(binned.values),
                baseline_end_s=min(fault_starts),
                clear_s=clear_s,
            )
            metastable = reentered is False
        return DetectionMetrics(
            detector=self.spec.kind,
            heartbeat_interval_s=self.spec.heartbeat_interval_s,
            calm=self.calm,
            episodes=len(self._episodes),
            true_positives=true_pos,
            false_positives=false_pos,
            false_negatives=false_neg,
            suspicions=len(raises),
            actions=self._actions,
            spurious_migrations=self._spurious_migrations,
            spurious_migration_node_s=self._spurious_node_s,
            migration_pause_s_total=self._migration_pause_total,
            cascade_depth_max=self._cascade_depth_max,
            metastable=metastable,
            detection_latencies_s=latencies,
            verdicts=tuple(self._verdicts),
            per_node_suspicions=dict(self._per_node_suspicions),
        )
