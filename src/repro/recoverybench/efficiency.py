"""Per-cell recovery efficiency: one fault, fully accounted.

A :class:`RecoveryEfficiency` record condenses everything one
(engine x reschedule policy x fault kind) trial says about recovery
quality into the quantities Vogel et al. (2024) rank frameworks on:

- the **time decomposition** of the recovery window (detection /
  restore / catch-up, from :class:`repro.faults.metrics.RecoveryMetrics`);
- **correctness exposure** -- lost and duplicated weight, normalized by
  the trial's ingested weight so engines at different rates compare,
  and labelled with the delivery guarantee that *permits* (or forbids)
  each kind of exposure;
- **residual damage** -- post-recovery p99 latency relative to the
  pre-fault baseline p99 (a recovered-but-limping cluster shows up
  here, not in the recovery time);
- the **recovery-cost score** -- node-seconds burned during the
  recovery window, the same billing unit as the autoscale scorecard's
  ``cost_node_seconds``: every billed node (workers plus hot standbys)
  is paid for while the pipeline is off its baseline, so cost is
  ``billed_nodes * recovery_window``.  A never-recovered fault burns
  through to the end of the trial.

Records are built from trial *digests* (JSON round-trippable dicts),
never raw results, so journal-replayed cells reconstruct bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.recovery.chaos import _nan, _round6

NAN = float("nan")


@dataclass(frozen=True)
class RecoveryEfficiency:
    """Everything one benchmark cell measured about one fault."""

    engine: str
    policy: str
    kind: str
    guarantee: str
    failed: bool
    recovered: bool
    detection_s: float
    restore_s: float
    catchup_s: float
    recovery_time_s: float
    catchup_throughput: float
    p99_inflation: float
    """Post-recovery p99 over pre-fault baseline p99 (NaN when either
    side is unmeasurable; 1.0 means fully healed)."""
    lost_weight: float
    duplicated_weight: float
    lost_fraction: float
    """Lost weight over the trial's ingested weight (guarantee-level
    normalization: comparable across engines at different rates)."""
    duplicated_fraction: float
    recovery_cost_node_s: float
    violations: tuple

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "policy": self.policy,
            "kind": self.kind,
            "guarantee": self.guarantee,
            "failed": self.failed,
            "recovered": self.recovered,
            "detection_s": _round6(self.detection_s),
            "restore_s": _round6(self.restore_s),
            "catchup_s": _round6(self.catchup_s),
            "recovery_time_s": _round6(self.recovery_time_s),
            "catchup_throughput": _round6(self.catchup_throughput),
            "p99_inflation": _round6(self.p99_inflation),
            "lost_weight": _round6(self.lost_weight),
            "duplicated_weight": _round6(self.duplicated_weight),
            "lost_fraction": _round6(self.lost_fraction),
            "duplicated_fraction": _round6(self.duplicated_fraction),
            "recovery_cost_node_s": _round6(self.recovery_cost_node_s),
            "violations": sorted(self.violations),
        }


def recovery_cost_node_s(
    billed_nodes: int,
    fault_time_s: float,
    recovery_time_s: float,
    duration_s: float,
) -> float:
    """Node-seconds burned above baseline during the recovery window.

    Same billing unit as ``autoscale.cost_node_seconds``: each billed
    node costs one node-second per second.  The window is the measured
    recovery time, or -- when latency never returned to the baseline
    band -- the remainder of the trial (the outage was still being
    paid for when the trial ended).
    """
    if recovery_time_s == recovery_time_s:
        window = max(0.0, recovery_time_s)
    else:
        window = max(0.0, duration_s - fault_time_s)
    return float(billed_nodes) * min(window, max(0.0, duration_s))


def efficiency_from_digest(
    digest: Dict[str, object], engine: str, policy: str, kind: str
) -> RecoveryEfficiency:
    """Reconstruct one cell's record from its JSON-safe digest.

    The digest's ``fault`` block comes from
    :meth:`RecoveryMetrics.to_dict` (first fault of the cell -- the
    benchmark injects exactly one per trial); a failed trial that
    produced no metrology yields an all-NaN record with
    ``recovered: false``.
    """
    fault = digest.get("fault") or {}
    ingested = float(digest.get("ingested_weight", 0.0))
    lost = _nan(fault.get("lost_weight")) if fault else 0.0
    dup = _nan(fault.get("duplicated_weight")) if fault else 0.0
    lost = lost if lost == lost else 0.0
    dup = dup if dup == dup else 0.0
    baseline_p99 = _nan(fault.get("baseline_p99_s"))
    post_p99 = _nan(fault.get("post_p99_s"))
    inflation = (
        post_p99 / baseline_p99
        if baseline_p99 == baseline_p99 and baseline_p99 > 0.0
        and post_p99 == post_p99
        else NAN
    )
    return RecoveryEfficiency(
        engine=engine,
        policy=policy,
        kind=kind,
        guarantee=str(digest.get("guarantee", "")),
        failed=bool(digest.get("failed", False)),
        recovered=bool(fault.get("recovered", False)),
        detection_s=_nan(fault.get("detection_phase_s")),
        restore_s=_nan(fault.get("restore_phase_s")),
        catchup_s=_nan(fault.get("catchup_phase_s")),
        recovery_time_s=_nan(fault.get("recovery_time_s")),
        catchup_throughput=_nan(fault.get("catchup_throughput")),
        p99_inflation=inflation,
        lost_weight=lost,
        duplicated_weight=dup,
        lost_fraction=lost / ingested if ingested > 0 else 0.0,
        duplicated_fraction=dup / ingested if ingested > 0 else 0.0,
        recovery_cost_node_s=float(digest.get("recovery_cost_node_s", 0.0)),
        violations=tuple(digest.get("violations", ())),
    )
