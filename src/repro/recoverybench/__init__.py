"""Recovery-efficiency benchmarking: the quantitative fault scorecard.

The chaos soak (:mod:`repro.recovery.chaos`) answers "does the SUT
survive random faults?"; this package answers the Vogel et al. (2024)
follow-up -- *how well* does each engine recover, and what does its
fault-tolerance configuration cost:

- :mod:`repro.recoverybench.efficiency` -- the per-cell
  :class:`~repro.recoverybench.efficiency.RecoveryEfficiency` record:
  detection / restore / catch-up decomposition, guarantee-normalized
  lost/duplicated weight, post-recovery p99 inflation, and the
  node-second recovery-cost score;
- :mod:`repro.recoverybench.frontier` -- checkpoint-interval
  sensitivity sweeps and the recovery-time vs. steady-state-overhead
  frontier (Pareto extraction via :mod:`repro.analysis.pareto`);
- :mod:`repro.recoverybench.scorecard` -- the ``repro recover``
  harness: engines x reschedule policies x fault kinds fanned through
  the :mod:`repro.sched` scheduler with journal resume, byte-identical
  serial / parallel / resumed.
"""

from repro.recoverybench.efficiency import RecoveryEfficiency
from repro.recoverybench.frontier import FrontierPoint, frontier_points
from repro.recoverybench.scorecard import (
    FAULT_KINDS,
    POLICY_NAMES,
    RecoverConfig,
    RecoveryReport,
    recover_fingerprint,
    run_recovery_bench,
)

__all__ = [
    "FAULT_KINDS",
    "FrontierPoint",
    "POLICY_NAMES",
    "RecoverConfig",
    "RecoveryEfficiency",
    "RecoveryReport",
    "frontier_points",
    "recover_fingerprint",
    "run_recovery_bench",
]
