"""Checkpoint-interval sensitivity: recovery time vs. steady overhead.

The central fault-tolerance trade-off in Vogel et al. (2024): a short
checkpoint interval keeps the post-fault replay window small (fast
recovery) but pays a synchronous pause every interval (steady-state
overhead); a long interval inverts both.  The sweep runs one
single-fault trial per interval on a log grid and reads both axes off
the same instruments the rest of the harness uses:

- **recovery time** -- driver-side metrology
  (:func:`repro.faults.metrics.compute_recovery_metrics`) on the
  binned event-time latency;
- **steady-state overhead** -- the engine's accumulated synchronous
  checkpoint pause (``checkpoint_pause_total_s`` diagnostic) as a
  fraction of the trial duration.

Frontier trials pin ``gc_rate_per_s = 0`` and zero emit jitter:
checkpoint pauses shift how many RNG draws the GC process makes, so
leaving GC on would smear seeded noise *across* interval settings and
drown the monotone trend the CI gate checks.  Engines whose recovery
semantics ignore the interval (Spark's lineage recompute, Storm/Heron
tuple replay) produce a flat frontier -- itself a finding the Pareto
extraction preserves (the cheapest flat point dominates the rest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.pareto import pareto_front
from repro.recovery.chaos import _nan, _round6

NAN = float("nan")


@dataclass(frozen=True)
class FrontierPoint:
    """One checkpoint-interval setting's measured trade-off."""

    engine: str
    interval_s: float
    recovered: bool
    recovery_time_s: float
    """NaN when latency never returned to the baseline band."""
    overhead_fraction: float
    """Synchronous checkpoint pause per second of trial."""
    checkpoints: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "interval_s": float(self.interval_s),
            "recovered": self.recovered,
            "recovery_time_s": _round6(self.recovery_time_s),
            "overhead_fraction": _round6(self.overhead_fraction),
            "checkpoints": self.checkpoints,
        }


def point_from_digest(
    digest: Dict[str, object], engine: str, interval_s: float
) -> FrontierPoint:
    """Reconstruct one frontier point from its JSON-safe digest."""
    fault = digest.get("fault") or {}
    return FrontierPoint(
        engine=engine,
        interval_s=float(interval_s),
        recovered=bool(fault.get("recovered", False)),
        recovery_time_s=_nan(fault.get("recovery_time_s")),
        overhead_fraction=float(digest.get("overhead_fraction", 0.0)),
        checkpoints=int(digest.get("checkpoints", 0)),
    )


def frontier_points(
    points: List[FrontierPoint],
) -> List[Tuple[FrontierPoint, bool]]:
    """Annotate one engine's sweep with Pareto membership.

    Objectives are (recovery time, overhead fraction), both minimized.
    Points whose fault never recovered carry a NaN recovery time and
    are excluded from the front by :func:`repro.analysis.pareto.
    pareto_front` -- an unrecovered configuration is never efficient.
    """
    front = set(
        pareto_front(
            [(p.recovery_time_s, p.overhead_fraction) for p in points]
        )
    )
    return [(point, i in front) for i, point in enumerate(points)]
