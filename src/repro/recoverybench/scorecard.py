"""The ``repro recover`` harness: engines x policies x fault kinds.

Where the chaos soak throws *random* fault schedules at every cell and
checks invariants, this benchmark injects exactly **one deterministic
fault per cell** so the cells are comparable measurements: the same
fault kind at the same instant under the same offered load, varying
only the engine and the reschedule policy.  Each cell condenses to a
:class:`~repro.recoverybench.efficiency.RecoveryEfficiency` record;
each engine additionally runs the checkpoint-interval sensitivity
sweep (:mod:`repro.recoverybench.frontier`).

Same determinism contract as the chaos and autoscale scorecards: one
seed yields a byte-identical report JSON, serial or ``--workers N`` or
resumed from a journal -- the report absorbs per-trial digests in
fixed grid order, never raw results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
from repro.detect.plane import DETECTOR_KINDS, detector_spec
import repro.engines.ext  # noqa: F401  (registers heron/samza in ENGINES)
from repro.engines import engine_class
from repro.engines.base import EngineConfig
from repro.faults.checkpoint import CheckpointSpec
from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    NetworkPartition,
    NodeCrash,
    ProcessRestart,
    QueueDisconnect,
    SlowNode,
)
from repro.metrology.journal import TrialJournal
from repro.recovery.chaos import ChaosConfig, DEFAULT_ENGINES, check_invariants
from repro.recovery.reschedule import (
    MODE_NONE,
    MODE_SPREAD,
    MODE_STANDBY,
    ReschedulePolicy,
)
from repro.recoverybench.efficiency import (
    RecoveryEfficiency,
    efficiency_from_digest,
    recovery_cost_node_s,
)
from repro.recoverybench.frontier import (
    FrontierPoint,
    frontier_points,
    point_from_digest,
)
from repro.sched.pool import TrialScheduler, TrialTask
from repro.workloads.queries import WindowSpec, WindowedAggregationQuery

#: The SUT-side fault kinds benchmarked, one deterministic injection
#: each (driver-side faults injure the instrument, not the SUT, and are
#: chaos-soak material -- recovery efficiency is not defined for them).
FAULT_KINDS = ("crash", "restart", "slow", "partition", "disconnect")

#: The three reschedule policies compared per engine: legacy
#: lose-capacity, spreading over survivors, and standby promotion.
POLICY_NAMES = (MODE_NONE, MODE_SPREAD, MODE_STANDBY)

#: Log grid over CheckpointSpec.interval_s for the sensitivity sweep.
DEFAULT_INTERVALS = (2.5, 5.0, 10.0, 20.0, 40.0)

#: The fault driving every frontier trial: a process restart exercises
#: the checkpoint-derived recovery pause (detection + restart + restore
#: + replay-since-checkpoint) without entangling reschedule mechanics.
FRONTIER_KIND = "restart"


@dataclass(frozen=True)
class RecoverConfig:
    """One recovery benchmark: grid cells plus per-engine frontiers."""

    seed: int = 0
    engines: Tuple[str, ...] = DEFAULT_ENGINES
    policies: Tuple[str, ...] = POLICY_NAMES
    kinds: Tuple[str, ...] = FAULT_KINDS
    intervals: Tuple[float, ...] = DEFAULT_INTERVALS
    """Checkpoint intervals swept per engine; empty skips the frontier."""
    duration_s: float = 60.0
    rate: float = 30_000.0
    workers: int = 2
    """SUT cluster size (>= 2 so a crash under mode "none" leaves a
    survivor to measure instead of a failed trial)."""
    generator_instances: int = 2
    fault_fraction: float = 0.4
    """Injection instant as a fraction of the trial: late enough for a
    clean baseline window, early enough to observe the full recovery."""
    latency_bound_s: float = 20.0
    """End-of-trial queue backlog age tolerated on surviving cells."""
    detector: Optional[str] = None
    """Failure-detector kind (``timeout`` / ``phi`` / ``quorum``) driving
    suspect migrations on every cell; ``None`` keeps the pre-existing
    fixed-timeout recovery semantics bit for bit."""

    def __post_init__(self) -> None:
        if not self.engines:
            raise ValueError("need at least one engine")
        if not self.policies:
            raise ValueError("need at least one policy")
        for policy in self.policies:
            if policy not in POLICY_NAMES:
                raise ValueError(
                    f"unknown policy {policy!r}; pick from {POLICY_NAMES}"
                )
        if not self.kinds:
            raise ValueError("need at least one fault kind")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; pick from {FAULT_KINDS}"
                )
        for interval in self.intervals:
            if interval <= 0:
                raise ValueError(
                    f"checkpoint intervals must be positive, got {interval}"
                )
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 < self.fault_fraction < 1.0:
            raise ValueError(
                f"fault_fraction must be in (0, 1), got {self.fault_fraction}"
            )
        if self.detector is not None and self.detector not in DETECTOR_KINDS:
            raise ValueError(
                f"unknown detector {self.detector!r}; "
                f"expected one of {DETECTOR_KINDS}"
            )

    @property
    def fault_at_s(self) -> float:
        return float(round(self.duration_s * self.fault_fraction, 3))

    def reschedule_policy(self, policy: str) -> ReschedulePolicy:
        standby = 1 if policy == MODE_STANDBY else 0
        return ReschedulePolicy(standby_nodes=standby, mode=policy)

    def billed_nodes(self, policy: str) -> int:
        """Nodes paid for by the cell: workers plus hot standbys (the
        autoscale scorecard's node-second billing unit)."""
        return self.workers + (1 if policy == MODE_STANDBY else 0)


def fault_event(kind: str, at_s: float) -> FaultEvent:
    """The one deterministic injection of each benchmarked kind."""
    if kind == "crash":
        return NodeCrash(at_s=at_s, nodes=1)
    if kind == "restart":
        return ProcessRestart(at_s=at_s, nodes=1)
    if kind == "slow":
        return SlowNode(at_s=at_s, nodes=1, factor=0.5, duration_s=8.0)
    if kind == "partition":
        return NetworkPartition(at_s=at_s, duration_s=4.0)
    if kind == "disconnect":
        return QueueDisconnect(at_s=at_s, queue_index=0, duration_s=4.0)
    raise ValueError(f"unknown fault kind {kind!r}")


def _grid_spec(
    engine: str, policy: str, kind: str, config: RecoverConfig
) -> ExperimentSpec:
    standby = 1 if policy == MODE_STANDBY else 0
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=config.workers,
        profile=config.rate,
        duration_s=config.duration_s,
        seed=config.seed,
        generator=GeneratorConfig(instances=config.generator_instances),
        monitor_resources=False,
        faults=FaultSchedule((fault_event(kind, config.fault_at_s),)),
        standby=standby,
        reschedule=config.reschedule_policy(policy),
        detector=detector_spec(config.detector),
    )


def _frontier_spec(
    engine: str, interval_s: float, config: RecoverConfig
) -> ExperimentSpec:
    # GC and emit jitter off: checkpoint pauses shift the GC process's
    # RNG draw count, so seeded pause noise would differ *per interval*
    # and smear the monotone trend the frontier exists to expose.
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
        workers=config.workers,
        profile=config.rate,
        duration_s=config.duration_s,
        seed=config.seed,
        generator=GeneratorConfig(instances=config.generator_instances),
        engine_config=EngineConfig(gc_rate_per_s=0.0, emit_jitter_sigma=0.0),
        monitor_resources=False,
        faults=FaultSchedule(
            (fault_event(FRONTIER_KIND, config.fault_at_s),)
        ),
        checkpoint=CheckpointSpec(interval_s=interval_s),
        detector=detector_spec(config.detector),
    )


def _base_digest(
    result, config: RecoverConfig, violations: List[str]
) -> Dict[str, object]:
    fault = None
    if getattr(result, "recovery", None):
        fault = result.recovery[0].to_dict()
    return {
        "failed": bool(result.failed),
        "fault": fault,
        "violations": list(violations),
    }


def _grid_cell_task(payload) -> Dict[str, object]:
    """Scheduler worker body for one (engine, policy, kind) cell.  The
    spec is re-derived from the config (pure), so the digest is
    bit-identical to what the serial loop would produce."""
    config, engine, policy, kind = payload
    label = _grid_label(engine, policy, kind)
    result = run_experiment(_grid_spec(engine, policy, kind, config))
    violations = check_invariants(
        result, ChaosConfig(latency_bound_s=config.latency_bound_s), label
    )
    digest = _base_digest(result, config, violations)
    fault = digest["fault"] or {}
    recovery_time = fault.get("recovery_time_s")
    digest.update(
        {
            "guarantee": engine_class(engine).default_guarantee.value,
            "ingested_weight": float(
                result.diagnostics.get("conservation.ingested", 0.0)
            ),
            "recovery_cost_node_s": recovery_cost_node_s(
                billed_nodes=config.billed_nodes(policy),
                fault_time_s=config.fault_at_s,
                recovery_time_s=(
                    float(recovery_time)
                    if recovery_time is not None
                    else float("nan")
                ),
                duration_s=config.duration_s,
            ),
        }
    )
    return digest


def _frontier_cell_task(payload) -> Dict[str, object]:
    """Scheduler worker body for one (engine, interval) frontier trial."""
    config, engine, interval_s = payload
    label = _frontier_label(engine, interval_s)
    result = run_experiment(_frontier_spec(engine, interval_s, config))
    violations = check_invariants(
        result, ChaosConfig(latency_bound_s=config.latency_bound_s), label
    )
    digest = _base_digest(result, config, violations)
    d = result.diagnostics
    digest.update(
        {
            "overhead_fraction": float(
                d.get("checkpoint_pause_total_s", 0.0)
            )
            / config.duration_s,
            "checkpoints": int(d.get("checkpoints_completed", 0)),
        }
    )
    return digest


def _grid_label(engine: str, policy: str, kind: str) -> str:
    return f"{engine}/{policy}/{kind}"


def _frontier_label(engine: str, interval_s: float) -> str:
    return f"frontier/{engine}/{interval_s:g}s"


@dataclass
class RecoveryReport:
    """Everything one recovery benchmark produced."""

    config: RecoverConfig
    cells: Dict[Tuple[str, str, str], RecoveryEfficiency]
    frontiers: Dict[str, List[FrontierPoint]]
    frontier_violations: List[str] = field(default_factory=list)

    @property
    def violations(self) -> List[str]:
        out: List[str] = list(self.frontier_violations)
        for cell in self.cells.values():
            out.extend(cell.violations)
        return sorted(out)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        frontiers: Dict[str, List[Dict[str, object]]] = {}
        for engine, points in sorted(self.frontiers.items()):
            annotated = frontier_points(points)
            frontiers[engine] = [
                dict(point.to_dict(), pareto=on_front)
                for point, on_front in annotated
            ]
        return {
            "seed": self.config.seed,
            "duration_s": self.config.duration_s,
            "rate": self.config.rate,
            "workers": self.config.workers,
            "fault_at_s": self.config.fault_at_s,
            "policies": list(self.config.policies),
            "kinds": list(self.config.kinds),
            "detector": self.config.detector,
            "intervals": list(self.config.intervals),
            "cells": {
                "/".join(key): cell.to_dict()
                for key, cell in sorted(self.cells.items())
            },
            "frontiers": frontiers,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        """Canonical serialisation -- byte-identical for equal seeds."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """ASCII report: efficiency table, then per-engine frontiers."""
        header = (
            f"{'engine/policy/kind':<28} {'rec':>3} {'det(s)':>7} "
            f"{'rst(s)':>7} {'cat(s)':>7} {'total':>7} {'p99x':>6} "
            f"{'lost%':>7} {'dup%':>7} {'cost(ns)':>9}"
        )
        lines = [header, "-" * len(header)]
        for key, cell in sorted(self.cells.items()):
            d = cell.to_dict()

            def num(name, fmt="7.2f"):
                value = d[name]
                return f"{'n/a':>{fmt.split('.')[0]}}" if value is None else f"{value:>{fmt}}"

            lines.append(
                f"{'/'.join(key):<28} "
                f"{'yes' if cell.recovered else 'no':>3} "
                f"{num('detection_s')} {num('restore_s')} "
                f"{num('catchup_s')} {num('recovery_time_s')} "
                f"{num('p99_inflation', '6.2f')} "
                f"{cell.lost_fraction:>7.3%} "
                f"{cell.duplicated_fraction:>7.3%} "
                f"{cell.recovery_cost_node_s:>9.1f}"
            )
        for engine, points in sorted(self.frontiers.items()):
            lines.append("")
            lines.append(
                f"checkpoint-interval frontier: {engine} "
                f"(* = Pareto-efficient)"
            )
            sub = (
                f"  {'interval(s)':>11} {'recovery(s)':>11} "
                f"{'overhead':>9} {'ckpts':>5}"
            )
            lines.append(sub)
            lines.append("  " + "-" * (len(sub) - 2))
            for point, on_front in frontier_points(points):
                recovery = (
                    f"{point.recovery_time_s:>11.2f}"
                    if point.recovered
                    else f"{'never':>11}"
                )
                lines.append(
                    f"  {point.interval_s:>11g} {recovery} "
                    f"{point.overhead_fraction:>9.4%} "
                    f"{point.checkpoints:>5}"
                    + (" *" if on_front else "")
                )
        status = "PASS" if self.ok else "FAIL"
        lines.append("")
        lines.append(
            f"{status}: {len(self.cells)} cells + "
            f"{sum(len(p) for p in self.frontiers.values())} frontier "
            f"trials, seed {self.config.seed}, "
            f"{len(self.violations)} invariant violations"
        )
        if not self.ok:
            lines.extend(f"  ! {violation}" for violation in self.violations)
        return "\n".join(lines)


def recover_fingerprint(config: RecoverConfig) -> str:
    """Journal identity: a resumed benchmark must replay trials only
    from a journal written by the *same* benchmark.  Scheduler
    parallelism is deliberately absent -- serial and parallel runs of
    one config are the same experiment (byte-identical reports).  The
    ``v2`` tag versions the digest schema: the detection plane landed
    alongside it, and :class:`RecoverConfig` grew the ``detector``
    field -- a pre-detector journal's untagged fingerprint can never
    equal a ``v2`` one, so stale journals mismatch loudly instead of
    resuming against a different repr."""
    return f"recover|v2|{config!r}"


def run_recovery_bench(
    config: RecoverConfig = RecoverConfig(),
    progress=None,
    journal: Optional[TrialJournal] = None,
    workers: int = 1,
) -> RecoveryReport:
    """Run the benchmark: every engine under every reschedule policy
    against every fault kind, plus the checkpoint-interval frontier per
    engine.  ``progress`` (if given) receives a status line per trial.
    With a ``journal``, completed trials persist as digests and replay
    on resume.

    ``workers > 1`` fans trials out over a
    :class:`~repro.sched.TrialScheduler` process pool.  Execution order
    changes, nothing else: digests are absorbed in fixed grid order, so
    the JSON is byte-identical to the serial run.
    """
    tasks: List[TrialTask] = []
    grid: List[Tuple[str, str, str]] = []
    for engine in config.engines:
        for policy in config.policies:
            for kind in config.kinds:
                grid.append((engine, policy, kind))
                tasks.append(
                    TrialTask(
                        key=_grid_label(engine, policy, kind),
                        fn=_grid_cell_task,
                        payload=(config, engine, policy, kind),
                    )
                )
    sweep: List[Tuple[str, float]] = []
    for engine in config.engines:
        for interval in config.intervals:
            sweep.append((engine, interval))
            tasks.append(
                TrialTask(
                    key=_frontier_label(engine, interval),
                    fn=_frontier_cell_task,
                    payload=(config, engine, interval),
                )
            )

    def status_line(label: str, digest, replayed: str) -> str:
        fault = digest.get("fault") or {}
        recovered = "recovered" if fault.get("recovered") else "unrecovered"
        count = len(digest["violations"])
        return f"{label}: {recovered}{replayed}" + (
            f" ({count} violations)" if count else ""
        )

    on_result = on_replay = None
    if progress is not None:
        on_result = lambda label, digest: progress(  # noqa: E731
            status_line(label, digest, "")
        )
        on_replay = lambda label, digest: progress(  # noqa: E731
            status_line(label, digest, " (journal)")
        )
    scheduler = TrialScheduler(workers=workers, journal=journal)
    digests = scheduler.run(tasks, on_result=on_result, on_replay=on_replay)
    # Absorb in fixed grid order: report assembly must never see the
    # completion order (same contract as chaos/autoscale).
    cells: Dict[Tuple[str, str, str], RecoveryEfficiency] = {}
    for engine, policy, kind in grid:
        label = _grid_label(engine, policy, kind)
        cells[(engine, policy, kind)] = efficiency_from_digest(
            digests[label], engine, policy, kind
        )
    frontiers: Dict[str, List[FrontierPoint]] = {}
    frontier_violations: List[str] = []
    for engine, interval in sweep:
        digest = digests[_frontier_label(engine, interval)]
        frontiers.setdefault(engine, []).append(
            point_from_digest(digest, engine, interval)
        )
        frontier_violations.extend(digest["violations"])
    return RecoveryReport(
        config=config,
        cells=cells,
        frontiers=frontiers,
        frontier_violations=frontier_violations,
    )
