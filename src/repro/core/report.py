"""Rendering of paper-style tables and figure series.

Every benchmark prints its results through these helpers so that the
output lines up visually with the paper's Tables I-IV and carries the
published values side by side for shape comparison ("paper" columns are
for orientation only -- this substrate is a simulator, not the authors'
testbed; the claim is about shape, not absolute numbers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.metrics import StatSummary, TimeSeries


def _format_rate(rate: float) -> str:
    return f"{rate / 1e6:.2f} M/s"


def throughput_table(
    title: str,
    measured: Mapping[Tuple[str, int], float],
    paper: Optional[Mapping[Tuple[str, int], float]] = None,
    workers: Sequence[int] = (2, 4, 8),
) -> str:
    """Render a Table I / Table III style sustainable-throughput table.

    ``measured`` and ``paper`` map (engine, workers) to events/s.
    """
    engines = sorted({engine for engine, _ in measured})
    lines = [title]
    header = ["engine".ljust(8)]
    for w in workers:
        header.append(f"{w}-node".rjust(12))
        if paper is not None:
            header.append("paper".rjust(12))
    lines.append(" ".join(header))
    for engine in engines:
        row = [engine.ljust(8)]
        for w in workers:
            value = measured.get((engine, w))
            row.append(
                (_format_rate(value) if value is not None else "--").rjust(12)
            )
            if paper is not None:
                ref = paper.get((engine, w))
                row.append(
                    (_format_rate(ref) if ref is not None else "--").rjust(12)
                )
        lines.append(" ".join(row))
    return "\n".join(lines)


def latency_table(
    title: str,
    measured: Mapping[Tuple[str, int], StatSummary],
    paper: Optional[Mapping[Tuple[str, int], Tuple[float, ...]]] = None,
    workers: Sequence[int] = (2, 4, 8),
) -> str:
    """Render a Table II / Table IV style latency-statistics table.

    ``measured`` maps (row label, workers) to a :class:`StatSummary`;
    row labels are e.g. ``"flink"`` and ``"flink(90%)"``.  ``paper``
    optionally maps the same keys to the published
    (avg, min, max, q90, q95, q99) tuples.
    """
    labels = sorted({label for label, _ in measured})
    lines = [title, "rows: avg min max (q90, q95, q99), seconds"]
    for label in labels:
        for w in workers:
            summary = measured.get((label, w))
            if summary is None:
                continue
            line = f"{label:<12} {w}-node  {summary.row()}"
            if paper is not None and (label, w) in paper:
                avg, mn, mx, q90, q95, q99 = paper[(label, w)]
                line += (
                    f"   | paper: {avg:.2g} {mn:.2g} {mx:.2g} "
                    f"({q90:.2g}, {q95:.2g}, {q99:.2g})"
                )
            lines.append(line)
    return "\n".join(lines)


def series_table(
    title: str,
    series: Mapping[str, TimeSeries],
    bin_s: Optional[float] = None,
    max_rows: int = 40,
    unit: str = "",
) -> str:
    """Render labelled time series as aligned text columns.

    Used for the figure benchmarks: each paper figure panel becomes a
    labelled column; ``bin_s`` resamples before printing.
    """
    prepared: Dict[str, TimeSeries] = {}
    for label, ts in series.items():
        prepared[label] = ts if bin_s is None else ts.binned(bin_s)
    all_times = sorted({t for ts in prepared.values() for t in ts.times})
    if len(all_times) > max_rows:
        stride = (len(all_times) + max_rows - 1) // max_rows
        all_times = all_times[::stride]
    labels = list(prepared)
    lines = [title]
    header = "time(s)".rjust(9) + "".join(lbl.rjust(16) for lbl in labels)
    lines.append(header)
    lookup = {
        label: dict(zip(ts.times, ts.values)) for label, ts in prepared.items()
    }
    for t in all_times:
        row = f"{t:9.1f}"
        for label in labels:
            value = lookup[label].get(t)
            row += (f"{value:14.3f}{unit}" if value is not None else "--".rjust(16))[
                -16:
            ].rjust(16)
        lines.append(row)
    return "\n".join(lines)


def shape_check(
    description: str, condition: bool, detail: str = ""
) -> Tuple[bool, str]:
    """Format a qualitative shape assertion (who wins, crossovers)."""
    status = "OK " if condition else "MISS"
    line = f"[{status}] {description}"
    if detail:
        line += f" -- {detail}"
    return condition, line
