"""Driver-side latency measurement.

The defining methodological choice of the paper: latency is measured at
the SUT's sink, against timestamps assigned by the *driver* --
event-time latency against the generation timestamp (Definition 1) and
processing-time latency against the SUT ingestion timestamp (Definition
2).  For windowed outputs, the anchors are the maxima over the
contributing inputs (Definitions 3 and 4), which the operators already
attach to every :class:`~repro.core.records.OutputRecord`.

Measuring *both* latencies is what exposes the coordinated-omission
problem (Section IV-A, Experiment 6): under overload, processing-time
latency stays flat while event-time latency grows with the queues.

The collector never lives inside the SUT; it is the driver-side callback
attached to the sink.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.metrics import StatSummary, TimeSeries, weighted_summary
from repro.core.records import OutputRecord

EVENT_TIME = "event_time"
PROCESSING_TIME = "processing_time"
LATENCY_KINDS = (EVENT_TIME, PROCESSING_TIME)


class LatencyCollector:
    """Collects per-output latency samples emitted by the SUT sink.

    With ``keep_outputs=True`` the raw :class:`OutputRecord` objects are
    retained as well (value-correctness checks and the latency-anchor
    ablation need them); by default only the latency samples are kept.
    """

    def __init__(self, keep_outputs: bool = False) -> None:
        # Parallel arrays: (emit_time, event_lat, proc_lat, weight).
        self._emit_times: List[float] = []
        self._event_lat: List[float] = []
        self._proc_lat: List[float] = []
        self._weights: List[float] = []
        self.keep_outputs = keep_outputs
        self.outputs: List[OutputRecord] = []

    def collect(self, outputs: List[OutputRecord]) -> None:
        """Sink callback: record one emission bundle."""
        for out in outputs:
            self._emit_times.append(out.emit_time)
            self._event_lat.append(out.event_time_latency)
            self._proc_lat.append(out.processing_time_latency)
            self._weights.append(out.weight)
        if self.keep_outputs:
            self.outputs.extend(outputs)

    def __len__(self) -> int:
        return len(self._emit_times)

    def _arrays(
        self, kind: str, start_time: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if kind == EVENT_TIME:
            lat = self._event_lat
        elif kind == PROCESSING_TIME:
            lat = self._proc_lat
        else:
            raise ValueError(
                f"unknown latency kind {kind!r}; expected one of {LATENCY_KINDS}"
            )
        times = np.asarray(self._emit_times)
        values = np.asarray(lat)
        weights = np.asarray(self._weights)
        mask = times >= start_time
        return times[mask], values[mask], weights[mask]

    def summary(self, kind: str = EVENT_TIME, start_time: float = 0.0) -> StatSummary:
        """Paper-table statistics over outputs emitted after ``start_time``
        (the driver passes the warmup end)."""
        _, values, weights = self._arrays(kind, start_time)
        return weighted_summary(values, weights)

    def series(self, kind: str = EVENT_TIME, start_time: float = 0.0) -> TimeSeries:
        """Raw (emit_time, latency) series -- the dots of Figures 4/5."""
        times, values, _ = self._arrays(kind, start_time)
        series = TimeSeries()
        series.times = times.tolist()
        series.values = values.tolist()
        return series

    def binned_series(
        self,
        kind: str = EVENT_TIME,
        bin_s: float = 5.0,
        start_time: float = 0.0,
        agg=np.mean,
    ) -> TimeSeries:
        """Binned latency-over-time series (the lines of Figures 6-8)."""
        return self.series(kind, start_time).binned(bin_s, agg=agg)

    def trend_slope(
        self, kind: str = EVENT_TIME, start_time: float = 0.0, bin_s: float = 5.0
    ) -> float:
        """Slope of binned latency over time (s of latency per s).

        A persistently positive slope is Definition 5's "continuously
        increasing event-time latency" -- the unsustainability signal.
        """
        binned = self.binned_series(kind, bin_s=bin_s, start_time=start_time)
        return binned.slope_per_s()
