"""Driver-side latency measurement.

The defining methodological choice of the paper: latency is measured at
the SUT's sink, against timestamps assigned by the *driver* --
event-time latency against the generation timestamp (Definition 1) and
processing-time latency against the SUT ingestion timestamp (Definition
2).  For windowed outputs, the anchors are the maxima over the
contributing inputs (Definitions 3 and 4), which the operators already
attach to every :class:`~repro.core.records.OutputRecord`.

Measuring *both* latencies is what exposes the coordinated-omission
problem (Section IV-A, Experiment 6): under overload, processing-time
latency stays flat while event-time latency grows with the queues.

The collector never lives inside the SUT; it is the driver-side callback
attached to the sink.

Hot-path design (the harness must not become the bottleneck -- cf.
ShuffleBench/SProBench): samples accumulate into fixed-size columnar
chunks.  ``collect`` appends to small staging lists (C-speed) which are
flushed to ``(4, chunk)`` float64 blocks; analytical calls consolidate
the blocks once into a contiguous ``(4, N)`` matrix guarded by a dirty
flag, so repeated ``summary()``/``series()`` calls never re-convert the
raw samples.  Emit-time monotonicity is tracked per flush, letting the
warmup cut be a binary search instead of a full boolean mask.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import StatSummary, TimeSeries, weighted_summary
from repro.core.records import OutputRecord

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.metrology.skew import SkewModel

EVENT_TIME = "event_time"
PROCESSING_TIME = "processing_time"
LATENCY_KINDS = (EVENT_TIME, PROCESSING_TIME)

# Rows per columnar chunk; 32768 rows x 4 cols x 8 B = 1 MiB per chunk.
DEFAULT_CHUNK_ROWS = 32768

# Column indices of the consolidated (4, N) sample matrix.
_EMIT, _EVENT_LAT, _PROC_LAT, _WEIGHT = range(4)


class LatencyCollector:
    """Collects per-output latency samples emitted by the SUT sink.

    With ``keep_outputs=True`` the raw :class:`OutputRecord` objects are
    retained as well (value-correctness checks and the latency-anchor
    ablation need them); by default only the latency samples are kept.

    The public API (``collect``, ``summary``, ``series``,
    ``binned_series``, ``trend_slope``) is drop-in compatible with the
    original list-based collector; storage and query evaluation are
    columnar NumPy (see the module docstring).
    """

    def __init__(
        self,
        keep_outputs: bool = False,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        skew: Optional["SkewModel"] = None,
    ) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self._chunk_rows = int(chunk_rows)
        # Optional measurement-plane clock model: latency samples pass
        # through skewed clocks (see repro.metrology.skew).  The emit
        # column keeps TRUE time -- binning/warmup cuts stay exact; only
        # the latency *values* carry the clock error, which is what a
        # real skewed instrument reports.
        self.skew = skew
        # Staging lists, one per column: (emit, event_lat, proc_lat, weight).
        self._stage_emit: List[float] = []
        self._stage_event: List[float] = []
        self._stage_proc: List[float] = []
        self._stage_weight: List[float] = []
        self._chunks: List[np.ndarray] = []  # each (4, n_i) float64
        self._count = 0
        self._cols: Optional[np.ndarray] = None  # consolidated (4, N)
        self._dirty = False
        self._emit_monotonic = True
        self._last_emit = float("-inf")
        self._summary_cache: Dict[Tuple[str, float], StatSummary] = {}
        # Perf counters (exposed via perf_counters()).
        self.collect_calls = 0
        self.collect_time_s = 0.0
        self.consolidations = 0
        self.keep_outputs = keep_outputs
        self.outputs: List[OutputRecord] = []

    def collect(self, outputs: List[OutputRecord]) -> None:
        """Sink callback: record one emission bundle."""
        t_start = time.perf_counter()
        append_emit = self._stage_emit.append
        append_event = self._stage_event.append
        append_proc = self._stage_proc.append
        append_weight = self._stage_weight.append
        skew = self.skew
        if skew is None:
            for out in outputs:
                emit = out.emit_time
                append_emit(emit)
                append_event(emit - out.event_time)
                append_proc(emit - out.processing_time)
                append_weight(out.weight)
        else:
            # Skewed measurement: the anchor was stamped by a generator
            # clock, the read happens on the sink clock.  The error of
            # each sample is exactly (sink error - anchor error), which
            # the model tracks against its exported bound.
            for out in outputs:
                emit = out.emit_time
                sink_err = skew.emit_error(emit)
                anchor_err = skew.anchor_error(out.event_time)
                skew.observe(sink_err - anchor_err)
                append_emit(emit)
                append_event(emit + sink_err - out.event_time - anchor_err)
                # The processing-time anchor is stamped inside the SUT
                # (true time); only the sink read is skewed.
                append_proc(emit + sink_err - out.processing_time)
                append_weight(out.weight)
        if outputs:
            self._count += len(outputs)
            self._dirty = True
            self._summary_cache.clear()
            if len(self._stage_emit) >= self._chunk_rows:
                self._flush_stage()
        if self.keep_outputs:
            self.outputs.extend(outputs)
        self.collect_calls += 1
        self.collect_time_s += time.perf_counter() - t_start

    def __len__(self) -> int:
        return self._count

    # -- columnar storage ------------------------------------------------

    def _flush_stage(self) -> None:
        """Convert the staging lists into one (4, n) chunk."""
        if not self._stage_emit:
            return
        block = np.array(
            [
                self._stage_emit,
                self._stage_event,
                self._stage_proc,
                self._stage_weight,
            ],
            dtype=np.float64,
        )
        emit = block[_EMIT]
        if self._emit_monotonic:
            if emit[0] < self._last_emit or (
                emit.size > 1 and bool(np.any(emit[1:] < emit[:-1]))
            ):
                self._emit_monotonic = False
            else:
                self._last_emit = float(emit[-1])
        self._chunks.append(block)
        self._stage_emit.clear()
        self._stage_event.clear()
        self._stage_proc.clear()
        self._stage_weight.clear()

    def _consolidate(self) -> np.ndarray:
        """One contiguous (4, N) matrix of all samples, cached until the
        next ``collect`` (the dirty flag)."""
        if self._dirty or self._cols is None:
            self._flush_stage()
            if not self._chunks:
                self._cols = np.empty((4, 0), dtype=np.float64)
            elif len(self._chunks) == 1:
                self._cols = self._chunks[0]
            else:
                self._cols = np.concatenate(self._chunks, axis=1)
                # Re-chunk: the next consolidation only concatenates the
                # (already merged) prefix with whatever arrived since.
                self._chunks = [self._cols]
            self._dirty = False
            self.consolidations += 1
        return self._cols

    @property
    def memory_bytes(self) -> int:
        """Approximate bytes held by the sample store."""
        chunk_bytes = sum(c.nbytes for c in self._chunks)
        if self._cols is not None and (
            not self._chunks or self._cols is not self._chunks[0]
        ):
            chunk_bytes += self._cols.nbytes
        stage_bytes = 4 * 8 * len(self._stage_emit)
        return chunk_bytes + stage_bytes

    def perf_counters(self) -> Dict[str, float]:
        """Driver-side metrology counters (merged into
        :attr:`TrialResult.diagnostics` by the driver)."""
        collect_s = self.collect_time_s
        counters = {
            "collector.samples": float(self._count),
            "collector.collect_calls": float(self.collect_calls),
            "collector.collect_s": collect_s,
            "collector.samples_per_s": (
                self._count / collect_s if collect_s > 0 else float("inf")
            ),
            "collector.memory_bytes": float(self.memory_bytes),
            "collector.consolidations": float(self.consolidations),
        }
        if self.skew is not None:
            counters.update(self.skew.diagnostics())
        return counters

    # -- queries ---------------------------------------------------------

    def _column(self, kind: str) -> int:
        if kind == EVENT_TIME:
            return _EVENT_LAT
        if kind == PROCESSING_TIME:
            return _PROC_LAT
        raise ValueError(
            f"unknown latency kind {kind!r}; expected one of {LATENCY_KINDS}"
        )

    def _arrays(
        self, kind: str, start_time: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        col = self._column(kind)
        cols = self._consolidate()
        times = cols[_EMIT]
        values = cols[col]
        weights = cols[_WEIGHT]
        if times.size == 0:
            return times, values, weights
        if self._emit_monotonic:
            if start_time <= times[0]:
                return times, values, weights
            lo = int(np.searchsorted(times, start_time, side="left"))
            return times[lo:], values[lo:], weights[lo:]
        mask = times >= start_time
        return times[mask], values[mask], weights[mask]

    def summary(self, kind: str = EVENT_TIME, start_time: float = 0.0) -> StatSummary:
        """Paper-table statistics over outputs emitted after ``start_time``
        (the driver passes the warmup end).  Cached until new samples
        arrive."""
        key = (kind, float(start_time))
        cached = self._summary_cache.get(key)
        if cached is not None and not self._dirty:
            return cached
        _, values, weights = self._arrays(kind, start_time)
        result = weighted_summary(values, weights)
        self._summary_cache[key] = result
        return result

    def series(self, kind: str = EVENT_TIME, start_time: float = 0.0) -> TimeSeries:
        """Raw (emit_time, latency) series -- the dots of Figures 4/5."""
        times, values, _ = self._arrays(kind, start_time)
        return TimeSeries.from_arrays(
            times, values, copy=True, assume_sorted=self._emit_monotonic
        )

    def binned_series(
        self,
        kind: str = EVENT_TIME,
        bin_s: float = 5.0,
        start_time: float = 0.0,
        agg=np.mean,
    ) -> TimeSeries:
        """Binned latency-over-time series (the lines of Figures 6-8).

        Weight-aware: a join cohort of weight ``w`` counts as ``w``
        tuples in each bin's mean, consistent with ``summary()``.
        """
        times, values, weights = self._arrays(kind, start_time)
        view = TimeSeries.from_arrays(
            times, values, copy=False, assume_sorted=self._emit_monotonic
        )
        if agg is np.mean or agg is np.sum:
            return view.binned(bin_s, agg=agg, weights=weights)
        return view.binned(bin_s, agg=agg)

    def trend_slope(
        self, kind: str = EVENT_TIME, start_time: float = 0.0, bin_s: float = 5.0
    ) -> float:
        """Slope of binned latency over time (s of latency per s).

        A persistently positive slope is Definition 5's "continuously
        increasing event-time latency" -- the unsustainability signal.
        """
        binned = self.binned_series(kind, bin_s=bin_s, start_time=start_time)
        return binned.slope_per_s()
