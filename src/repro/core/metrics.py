"""Weighted statistics and time series.

Tables II and IV of the paper report, per configuration, the average,
minimum, maximum and the (90, 95, 99) quantiles of latency in seconds.
Output tuples in this reproduction carry weights (a join output cohort
stands for many result tuples), so the summary statistics are
weight-aware: a sample with weight ``w`` counts as ``w`` identical
observations.

:class:`TimeSeries` is the container for every over-time figure (latency
distributions of Figures 4-8, throughput of Figure 9, scheduler delay of
Figure 11) with binning and trend helpers used by the sustainability
test.  It is backed by growable NumPy arrays: appends are amortised
O(1), ``window`` is a binary search on the (sorted) time axis, and
``binned`` aggregates whole bins at once with ``np.bincount`` /
``ufunc.reduceat`` instead of a per-bin boolean-mask scan.  All paper
quantiles of a summary come out of a single sort + prefix sum
(:func:`weighted_quantiles`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

PAPER_QUANTILES = (0.90, 0.95, 0.99)

_INITIAL_CAPACITY = 64


@dataclass(frozen=True)
class StatSummary:
    """Weighted summary in the shape of the paper's latency tables."""

    count: int
    weight: float
    mean: float
    minimum: float
    maximum: float
    p90: float
    p95: float
    p99: float
    std: float

    @classmethod
    def empty(cls) -> "StatSummary":
        nan = float("nan")
        return cls(0, 0.0, nan, nan, nan, nan, nan, nan, nan)

    @property
    def quantiles(self) -> Tuple[float, float, float]:
        return (self.p90, self.p95, self.p99)

    def to_dict(self) -> dict:
        """JSON-safe flat dict (NaNs become None) -- the shape the
        exporters and the resume journal share, so a journaled summary
        replays byte-identically into the final report."""

        def clean(value: float):
            return None if value != value else float(value)

        return {
            "count": self.count,
            "weight": clean(self.weight),
            "mean": clean(self.mean),
            "min": clean(self.minimum),
            "max": clean(self.maximum),
            "p90": clean(self.p90),
            "p95": clean(self.p95),
            "p99": clean(self.p99),
            "std": clean(self.std),
        }

    def row(self) -> str:
        """Render as a paper-style table fragment:
        ``avg min max (q90, q95, q99)``."""
        if self.count == 0:
            return "-- (no samples)"
        return (
            f"{self.mean:.2f} {self.minimum:.3g} {self.maximum:.3g} "
            f"({self.p90:.2f}, {self.p95:.2f}, {self.p99:.2f})"
        )


def weighted_quantiles(
    values: np.ndarray, weights: np.ndarray, qs: Sequence[float]
) -> np.ndarray:
    """All requested weighted quantiles from ONE sort + prefix sum.

    Cumulative-weight definition: each ``q`` in [0, 1] maps to the first
    sorted value whose cumulative weight reaches ``q * total``.  With
    unit weights this matches the inverse-CDF (type-1) sample quantile.
    """
    qs_arr = np.asarray(qs, dtype=np.float64)
    if qs_arr.size and (qs_arr.min() < 0.0 or qs_arr.max() > 1.0):
        raise ValueError(f"quantiles must be in [0, 1], got {qs}")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return np.full(qs_arr.shape, np.nan)
    weights = np.asarray(weights, dtype=np.float64)
    # Unstable sort is fine: tied values are interchangeable for the
    # cumulative-weight rule (the selected *value* is identical).
    order = np.argsort(values)
    sorted_values = values[order]
    cum = np.cumsum(weights[order])
    targets = qs_arr * cum[-1]
    idx = np.searchsorted(cum, targets, side="left")
    idx = np.minimum(idx, values.size - 1)
    return sorted_values[idx]


def weighted_quantile(
    values: np.ndarray, weights: np.ndarray, q: float
) -> float:
    """Single weighted quantile (see :func:`weighted_quantiles`)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    return float(weighted_quantiles(values, weights, (q,))[0])


def weighted_summary(
    values: Sequence[float], weights: Optional[Sequence[float]] = None
) -> StatSummary:
    """Weighted mean/min/max/quantiles over samples."""
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        return StatSummary.empty()
    if weights is None:
        wts = np.ones_like(vals)
    else:
        wts = np.asarray(weights, dtype=np.float64)
        if wts.shape != vals.shape:
            raise ValueError(
                f"weights shape {wts.shape} != values shape {vals.shape}"
            )
        if (wts < 0).any():
            raise ValueError("weights must be non-negative")
    total = float(wts.sum())
    if total <= 0:
        return StatSummary.empty()
    mean = float(np.average(vals, weights=wts))
    var = float(np.average((vals - mean) ** 2, weights=wts))
    p90, p95, p99 = weighted_quantiles(vals, wts, PAPER_QUANTILES)
    return StatSummary(
        count=int(vals.size),
        weight=total,
        mean=mean,
        minimum=float(vals.min()),
        maximum=float(vals.max()),
        p90=float(p90),
        p95=float(p95),
        p99=float(p99),
        std=float(np.sqrt(var)),
    )


def _is_sorted(arr: np.ndarray) -> bool:
    return arr.size < 2 or bool(np.all(arr[1:] >= arr[:-1]))


class TimeSeries:
    """An (irregular) time series with binning and trend helpers.

    Data lives in preallocated float64 buffers that double on demand, so
    per-sample ``append`` stays amortised O(1) while every analytical
    operation works on contiguous NumPy arrays with no re-conversion.
    ``times`` / ``values`` return read-only array views of the live data.
    """

    __slots__ = ("_times", "_values", "_n", "_sorted", "_owns")

    def __init__(
        self,
        times: Optional[Sequence[float]] = None,
        values: Optional[Sequence[float]] = None,
    ) -> None:
        t = np.array(() if times is None else times, dtype=np.float64).ravel()
        v = np.array(() if values is None else values, dtype=np.float64).ravel()
        if t.size != v.size:
            raise ValueError(
                f"times length {t.size} != values length {v.size}"
            )
        self._times = t
        self._values = v
        self._n = int(t.size)
        self._sorted = _is_sorted(t)
        self._owns = True

    @classmethod
    def from_arrays(
        cls,
        times: np.ndarray,
        values: np.ndarray,
        copy: bool = True,
        assume_sorted: Optional[bool] = None,
    ) -> "TimeSeries":
        """Wrap two aligned float64 arrays without list round-trips.

        With ``copy=False`` the arrays are adopted as-is (the series
        copies lazily on the first ``append``); ``assume_sorted`` skips
        the monotonicity scan when the caller already knows the answer.
        """
        out = cls.__new__(cls)
        t = np.asarray(times, dtype=np.float64).ravel()
        v = np.asarray(values, dtype=np.float64).ravel()
        if t.size != v.size:
            raise ValueError(
                f"times length {t.size} != values length {v.size}"
            )
        if copy:
            t = t.copy()
            v = v.copy()
        out._times = t
        out._values = v
        out._n = int(t.size)
        out._sorted = _is_sorted(t) if assume_sorted is None else assume_sorted
        out._owns = copy
        return out

    # -- storage ---------------------------------------------------------

    def _view(self, buf: np.ndarray) -> np.ndarray:
        view = buf[: self._n]
        view.flags.writeable = False
        return view

    @property
    def times(self) -> np.ndarray:
        return self._view(self._times)

    @times.setter
    def times(self, new: Sequence[float]) -> None:
        arr = np.array(new, dtype=np.float64).ravel()
        self._times = arr
        self._n = int(arr.size)
        self._sorted = _is_sorted(arr)
        self._owns = True
        if self._values.size < self._n:
            self._values = np.resize(self._values, self._n)

    @property
    def values(self) -> np.ndarray:
        return self._view(self._values)

    @values.setter
    def values(self, new: Sequence[float]) -> None:
        arr = np.array(new, dtype=np.float64).ravel()
        self._values = arr
        self._owns = True
        if arr.size < self._n:
            self._n = int(arr.size)

    def append(self, time: float, value: float) -> None:
        if self._n and time < self._times[self._n - 1]:
            raise ValueError(
                f"time {time} is before last sample {self._times[self._n - 1]}"
            )
        if not self._owns:
            self._times = self._times.copy()
            self._values = self._values.copy()
            self._owns = True
        if self._n >= self._times.size:
            new_cap = max(2 * self._times.size, _INITIAL_CAPACITY)
            self._times = np.resize(self._times, new_cap)
            self._values = np.resize(self._values, new_cap)
        self._times[self._n] = time
        self._values[self._n] = value
        self._n += 1

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self._n == other._n
            and bool(np.array_equal(self.times, other.times))
            and bool(np.array_equal(self.values, other.values))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSeries(n={self._n}, "
            f"times={self.times!r}, values={self.values!r})"
        )

    # -- analytics -------------------------------------------------------

    def window(self, start: float, end: float = float("inf")) -> "TimeSeries":
        """Sub-series with start <= t < end (binary search when sorted)."""
        t = self.times
        v = self.values
        if self._sorted:
            lo = int(np.searchsorted(t, start, side="left"))
            hi = (
                self._n
                if end == float("inf")
                else int(np.searchsorted(t, end, side="left"))
            )
            return TimeSeries.from_arrays(
                t[lo:hi], v[lo:hi], copy=True, assume_sorted=True
            )
        mask = (t >= start) & (t < end)
        return TimeSeries.from_arrays(t[mask], v[mask], copy=False)

    def slope_per_s(self) -> float:
        """Least-squares slope (value units per second); 0 if < 2 points."""
        if self._n < 2:
            return 0.0
        t = self.times - self.times.mean()
        v = self.values
        denom = float((t**2).sum())
        if denom == 0:
            return 0.0
        return float((t * (v - v.mean())).sum() / denom)

    def mean(self) -> float:
        if not self._n:
            return float("nan")
        return float(np.mean(self.values))

    def max(self) -> float:
        if not self._n:
            return float("nan")
        return float(np.max(self.values))

    def binned(
        self,
        bin_s: float,
        agg: Callable[[np.ndarray], float] = np.mean,
        start: Optional[float] = None,
        weights: Optional[np.ndarray] = None,
    ) -> "TimeSeries":
        """Aggregate into fixed bins (bin timestamp = bin *start*).

        Vectorised for the common aggregations (mean/sum/max/min/len);
        any other callable falls back to a per-bin group apply.  With
        ``weights`` the mean is weight-aware (a cohort of weight ``w``
        counts as ``w`` observations) and the sum is a weighted total;
        min/max are weight-invariant.  Weighted binning with any other
        aggregation is rejected rather than silently ignoring weights.
        """
        if bin_s <= 0:
            raise ValueError("bin_s must be positive")
        if not self._n:
            return TimeSeries()
        t = self.times
        v = self.values
        t0 = float(t[0]) if start is None else start
        bins = np.floor((t - t0) / bin_s).astype(np.int64)
        if self._sorted:
            # Sorted times => bins already grouped and ascending: the
            # unique bins fall out of one linear diff pass, no sort.
            change = np.empty(bins.size, dtype=bool)
            change[0] = True
            np.not_equal(bins[1:], bins[:-1], out=change[1:])
            inv = np.cumsum(change) - 1
            uniq = bins[change]
        else:
            uniq, inv = np.unique(bins, return_inverse=True)
        n_bins = uniq.size
        out_times = t0 + uniq.astype(np.float64) * bin_s

        if weights is not None:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != v.shape:
                raise ValueError(
                    f"weights shape {w.shape} != values shape {v.shape}"
                )
            if agg is np.mean:
                wsum = np.bincount(inv, weights=w, minlength=n_bins)
                vsum = np.bincount(inv, weights=w * v, minlength=n_bins)
                with np.errstate(invalid="ignore", divide="ignore"):
                    out_values = vsum / wsum
            elif agg is np.sum:
                out_values = np.bincount(inv, weights=w * v, minlength=n_bins)
            elif agg in (np.max, np.amax, max, np.min, np.amin, min):
                return self.binned(bin_s, agg=agg, start=start)
            else:
                raise ValueError(
                    "weighted binning supports np.mean/np.sum/np.max/np.min, "
                    f"got {agg!r}"
                )
            return TimeSeries.from_arrays(
                out_times, out_values, copy=False, assume_sorted=True
            )

        if agg is np.mean:
            counts = np.bincount(inv, minlength=n_bins)
            sums = np.bincount(inv, weights=v, minlength=n_bins)
            out_values = sums / counts
        elif agg is np.sum:
            out_values = np.bincount(inv, weights=v, minlength=n_bins)
        elif agg is len or agg is np.size:
            out_values = np.bincount(inv, minlength=n_bins).astype(np.float64)
        elif agg in (np.max, np.amax, max) or agg in (np.min, np.amin, min):
            ufunc = np.maximum if agg in (np.max, np.amax, max) else np.minimum
            if _is_sorted(inv):
                grouped = v
                starts = np.searchsorted(inv, np.arange(n_bins), side="left")
            else:
                order = np.argsort(inv, kind="stable")
                grouped = v[order]
                starts = np.searchsorted(
                    inv[order], np.arange(n_bins), side="left"
                )
            out_values = ufunc.reduceat(grouped, starts)
        else:
            # Arbitrary aggregation: group once, apply per bin.
            order = np.argsort(inv, kind="stable")
            grouped = v[order]
            bounds = np.searchsorted(
                inv[order], np.arange(n_bins + 1), side="left"
            )
            out_values = np.array(
                [
                    float(agg(grouped[bounds[i] : bounds[i + 1]]))
                    for i in range(n_bins)
                ],
                dtype=np.float64,
            )
        return TimeSeries.from_arrays(
            out_times, out_values, copy=False, assume_sorted=True
        )

    def summary(self) -> StatSummary:
        return weighted_summary(self.values)
