"""Weighted statistics and time series.

Tables II and IV of the paper report, per configuration, the average,
minimum, maximum and the (90, 95, 99) quantiles of latency in seconds.
Output tuples in this reproduction carry weights (a join output cohort
stands for many result tuples), so the summary statistics are
weight-aware: a sample with weight ``w`` counts as ``w`` identical
observations.

:class:`TimeSeries` is the container for every over-time figure (latency
distributions of Figures 4-8, throughput of Figure 9, scheduler delay of
Figure 11) with binning and trend helpers used by the sustainability
test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

PAPER_QUANTILES = (0.90, 0.95, 0.99)


@dataclass(frozen=True)
class StatSummary:
    """Weighted summary in the shape of the paper's latency tables."""

    count: int
    weight: float
    mean: float
    minimum: float
    maximum: float
    p90: float
    p95: float
    p99: float
    std: float

    @classmethod
    def empty(cls) -> "StatSummary":
        nan = float("nan")
        return cls(0, 0.0, nan, nan, nan, nan, nan, nan, nan)

    @property
    def quantiles(self) -> Tuple[float, float, float]:
        return (self.p90, self.p95, self.p99)

    def row(self) -> str:
        """Render as a paper-style table fragment:
        ``avg min max (q90, q95, q99)``."""
        if self.count == 0:
            return "-- (no samples)"
        return (
            f"{self.mean:.2f} {self.minimum:.3g} {self.maximum:.3g} "
            f"({self.p90:.2f}, {self.p95:.2f}, {self.p99:.2f})"
        )


def weighted_quantile(
    values: np.ndarray, weights: np.ndarray, q: float
) -> float:
    """Weighted quantile via the cumulative-weight definition.

    ``q`` in [0, 1].  Values need not be sorted.  With unit weights this
    matches the inverse-CDF (type-1) sample quantile.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if values.size == 0:
        return float("nan")
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = weights[order]
    cum = np.cumsum(weights)
    target = q * cum[-1]
    idx = int(np.searchsorted(cum, target, side="left"))
    idx = min(idx, values.size - 1)
    return float(values[idx])


def weighted_summary(
    values: Sequence[float], weights: Optional[Sequence[float]] = None
) -> StatSummary:
    """Weighted mean/min/max/quantiles over samples."""
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        return StatSummary.empty()
    if weights is None:
        wts = np.ones_like(vals)
    else:
        wts = np.asarray(weights, dtype=np.float64)
        if wts.shape != vals.shape:
            raise ValueError(
                f"weights shape {wts.shape} != values shape {vals.shape}"
            )
        if (wts < 0).any():
            raise ValueError("weights must be non-negative")
    total = float(wts.sum())
    if total <= 0:
        return StatSummary.empty()
    mean = float(np.average(vals, weights=wts))
    var = float(np.average((vals - mean) ** 2, weights=wts))
    return StatSummary(
        count=int(vals.size),
        weight=total,
        mean=mean,
        minimum=float(vals.min()),
        maximum=float(vals.max()),
        p90=weighted_quantile(vals, wts, 0.90),
        p95=weighted_quantile(vals, wts, 0.95),
        p99=weighted_quantile(vals, wts, 0.99),
        std=float(np.sqrt(var)),
    )


@dataclass
class TimeSeries:
    """An (irregular) time series with binning and trend helpers."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time {time} is before last sample {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def window(self, start: float, end: float = float("inf")) -> "TimeSeries":
        """Sub-series with start <= t < end."""
        out = TimeSeries()
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                out.times.append(t)
                out.values.append(v)
        return out

    def slope_per_s(self) -> float:
        """Least-squares slope (value units per second); 0 if < 2 points."""
        if len(self.times) < 2:
            return 0.0
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        t = t - t.mean()
        denom = float((t**2).sum())
        if denom == 0:
            return 0.0
        return float((t * (v - v.mean())).sum() / denom)

    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return float(np.mean(self.values))

    def max(self) -> float:
        if not self.values:
            return float("nan")
        return float(np.max(self.values))

    def binned(
        self,
        bin_s: float,
        agg: Callable[[np.ndarray], float] = np.mean,
        start: Optional[float] = None,
    ) -> "TimeSeries":
        """Aggregate into fixed bins (bin timestamp = bin start)."""
        if bin_s <= 0:
            raise ValueError("bin_s must be positive")
        out = TimeSeries()
        if not self.times:
            return out
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        t0 = t[0] if start is None else start
        bins = np.floor((t - t0) / bin_s).astype(int)
        for b in np.unique(bins):
            mask = bins == b
            out.times.append(t0 + float(b) * bin_s)
            out.values.append(float(agg(v[mask])))
        return out

    def summary(self) -> StatSummary:
        return weighted_summary(self.values)
