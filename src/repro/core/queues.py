"""In-memory queues between the data generators and the SUT sources.

Section III-B: "we add a queue between each data generator and the SUT's
source operators in order to even out the difference in the rates of
data generation and data ingestion"; each generator/queue pair shares a
driver machine, and queue data stays in memory.  Crucially (Section
III-C), *throughput is measured at these queues* and events are
timestamped at generation -- "the longer an event stays in a queue, the
higher its latency."

The queue also implements the failure rule of Section VI-A: "If the SUT
drops one or more connections to the data generator queue, then the
driver halts the experiment with the conclusion that the SUT cannot
sustain the given throughput."  A queue that exceeds its capacity models
exactly that connection drop.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple, Union

import numpy as np

from repro.core.batch import RecordBlock, consume_front, fold_add, fold_sub
from repro.core.records import Record
from repro.sim.failures import ConnectionDropped


class DriverQueue:
    """FIFO queue of event cohorts between one generator and the SUT.

    Weights are fractional: a pull may split a cohort so that exactly
    the granted event budget is consumed, preserving total weight.
    """

    def __init__(
        self,
        name: str,
        capacity_weight: float = float("inf"),
    ) -> None:
        self.name = name
        self.capacity_weight = capacity_weight
        # Items are Records (scalar path) or RecordBlocks (columnar
        # path); a queue may hold a mix -- the scalar ``pull`` lazily
        # materializes a block head, and ``pull_blocks`` passes Record
        # heads through for the source to wrap.
        self._items: Deque[Union[Record, RecordBlock]] = deque()
        # Enqueue timestamp per queued cohort, parallel to _items.  The
        # queueing wait is measured against THIS clock, not event-time:
        # under the disorder workloads a late-but-freshly-pushed record
        # carries an old event_time, and conflating the two made the
        # sustainability criteria reject rates that were sustainable.
        self._push_times: Deque[float] = deque()
        self._queued_weight = 0.0
        self.pushed_weight = 0.0
        self.pulled_weight = 0.0
        self.shed_weight = 0.0
        self.lost_weight = 0.0
        self._frontier_event_time = float("-inf")
        self._last_pulled_event_time = float("-inf")
        self.dropped = False
        self.retired = False
        """Set when the queue's generator is dead and the backlog has
        been accounted for: a retired+empty queue no longer holds the
        fleet watermark back (its frontier will never advance again)."""

    @property
    def queued_weight(self) -> float:
        """Events currently waiting in the queue."""
        return self._queued_weight

    @property
    def frontier_event_time(self) -> float:
        """Event-time of the newest record ever pushed."""
        return self._frontier_event_time

    @property
    def watermark(self) -> float:
        """Event-time through which the SUT has consumed this queue.

        If the queue is empty, everything generated so far has been
        ingested, so the watermark advances to the generation frontier.
        """
        if not self._items:
            return self._frontier_event_time
        return self._last_pulled_event_time

    def push(self, record: Record, at_time: float = float("nan")) -> None:
        """Generator side: enqueue one cohort.

        Raises :class:`ConnectionDropped` when the queue overflows --
        the paper's SUT-cannot-sustain failure condition.
        """
        if self.dropped:
            raise ConnectionDropped(
                f"queue {self.name} connection already dropped", at_time=at_time
            )
        if self._queued_weight + record.weight > self.capacity_weight:
            self.dropped = True
            raise ConnectionDropped(
                f"queue {self.name} overflowed "
                f"({self._queued_weight + record.weight:.0f} events > "
                f"capacity {self.capacity_weight:.0f})",
                at_time=at_time,
            )
        self._items.append(record)
        # NaN at_time (no driver clock supplied) falls back to the
        # cohort's event_time -- the pre-disorder-aware behaviour.
        push_time = at_time if at_time == at_time else record.event_time
        self._push_times.append(push_time)
        if record.trace is not None:
            record.trace.mark("enqueued", push_time)
        self._queued_weight += record.weight
        self.pushed_weight += record.weight
        if record.event_time > self._frontier_event_time:
            self._frontier_event_time = record.event_time

    def overflow_index(self, weights: np.ndarray) -> Optional[int]:
        """Index of the first cohort whose push would overflow, or None.

        A pure pre-check for the columnar generator: pushing cohorts of
        ``weights`` in order, which one trips the scalar ``push``
        overflow test?  Returns 0 when the connection is already
        dropped.  Bitwise-faithful because the running occupancy is the
        same strict left fold the scalar pushes would have produced.
        """
        if self.dropped:
            return 0
        if self.capacity_weight == float("inf") or len(weights) == 0:
            return None
        acc = np.empty(len(weights) + 1)
        acc[0] = self._queued_weight
        acc[1:] = weights
        np.add.accumulate(acc, out=acc)
        over = np.nonzero(acc[1:] > self.capacity_weight)[0]
        if len(over) == 0:
            return None
        return int(over[0])

    def push_block(
        self, block: RecordBlock, at_time: float = float("nan")
    ) -> None:
        """Generator side: enqueue a whole columnar block at once.

        Semantically ``for each cohort: push(...)``: on overflow at
        cohort ``j`` the prefix ``[0, j)`` is admitted (ledgers, traces,
        frontier updated exactly as the scalar loop would have left
        them) and :class:`ConnectionDropped` is raised with the same
        message the scalar push would have produced for cohort ``j``.
        """
        if self.dropped:
            raise ConnectionDropped(
                f"queue {self.name} connection already dropped", at_time=at_time
            )
        n = len(block)
        if n == 0:
            return
        push_time = at_time if at_time == at_time else block.event_time
        over = self.overflow_index(block.weights)
        admit = n if over is None else over
        if admit:
            admitted = block if over is None else block.take_prefix(admit)
            self._items.append(admitted)
            self._push_times.append(push_time)
            for _, trace in admitted.traces:
                trace.mark("enqueued", push_time)
            self._queued_weight = fold_add(
                self._queued_weight, admitted.weights
            )
            self.pushed_weight = fold_add(
                self.pushed_weight, admitted.weights
            )
            if block.event_time > self._frontier_event_time:
                self._frontier_event_time = block.event_time
        if over is not None:
            self.dropped = True
            overflow_occupancy = fold_add(
                self._queued_weight, block.weights[over : over + 1]
            )
            raise ConnectionDropped(
                f"queue {self.name} overflowed "
                f"({overflow_occupancy:.0f} events > "
                f"capacity {self.capacity_weight:.0f})",
                at_time=at_time,
            )

    def _materialize_head(self) -> None:
        """Expand a block at the head into Records (scalar-pull compat).

        The expansion is bitwise-neutral: the records carry exactly the
        cohort weights/times the scalar path would have queued, and the
        block's single push time is shared by every cohort (the scalar
        generator pushes a whole emission at one driver timestamp).
        """
        head = self._items.popleft()
        push_time = self._push_times.popleft()
        records = head.materialize()
        self._items.extendleft(reversed(records))
        self._push_times.extendleft([push_time] * len(records))

    def pull(self, max_weight: float) -> List[Record]:
        """SUT side: dequeue up to ``max_weight`` events (FIFO).

        The head cohort is split if only part of it fits the budget;
        total weight is conserved exactly.
        """
        if max_weight <= 0:
            return []
        pulled: List[Record] = []
        remaining = max_weight
        while self._items and remaining > 1e-9:
            head = self._items[0]
            if isinstance(head, RecordBlock):
                self._materialize_head()
                head = self._items[0]
            if head.weight <= remaining:
                self._items.popleft()
                self._push_times.popleft()
                taken = head
            else:
                taken = Record(
                    key=head.key,
                    value=head.value,
                    event_time=head.event_time,
                    weight=remaining,
                    stream=head.stream,
                    # The trace leaves with the first (admitted) part so
                    # it observes the earliest ingestion of the cohort.
                    trace=head.trace,
                )
                head.trace = None
                head.weight -= remaining
            self._queued_weight -= taken.weight
            self.pulled_weight += taken.weight
            remaining -= taken.weight
            if taken.event_time > self._last_pulled_event_time:
                self._last_pulled_event_time = taken.event_time
            pulled.append(taken)
        if not self._items:
            # Clear float residue so emptiness and zero weight agree.
            self._queued_weight = 0.0
        elif self._queued_weight < 0.0:
            self._queued_weight = 0.0
        return pulled

    def pull_blocks(
        self, max_weight: float
    ) -> List[Union[Record, RecordBlock]]:
        """Columnar pull: dequeue up to ``max_weight`` events as blocks.

        Bitwise-identical to :meth:`pull` over the expanded cohort
        sequence -- :func:`~repro.core.batch.consume_front` replicates
        the head-take/split ladder, and the ledgers advance by the same
        strict left folds the per-cohort loop would have run.  Record
        heads (pushed by scalar producers into a mixed queue) pass
        through unchanged; callers wrap them.
        """
        if max_weight <= 0:
            return []
        pulled: List[Union[Record, RecordBlock]] = []
        remaining = max_weight
        while self._items and remaining > 1e-9:
            head = self._items[0]
            if not isinstance(head, RecordBlock):
                # Verbatim scalar head handling for a stray Record.
                if head.weight <= remaining:
                    self._items.popleft()
                    self._push_times.popleft()
                    taken = head
                else:
                    taken = Record(
                        key=head.key,
                        value=head.value,
                        event_time=head.event_time,
                        weight=remaining,
                        stream=head.stream,
                        trace=head.trace,
                    )
                    head.trace = None
                    head.weight -= remaining
                self._queued_weight -= taken.weight
                self.pulled_weight += taken.weight
                remaining -= taken.weight
                if taken.event_time > self._last_pulled_event_time:
                    self._last_pulled_event_time = taken.event_time
                pulled.append(taken)
                continue
            taken_block, remaining_after, emptied = consume_front(
                head, remaining
            )
            if emptied:
                self._items.popleft()
                self._push_times.popleft()
            if taken_block is None or len(taken_block) == 0:
                remaining = remaining_after
                break
            self._queued_weight = fold_sub(
                self._queued_weight, taken_block.weights
            )
            self.pulled_weight = fold_add(
                self.pulled_weight, taken_block.weights
            )
            remaining = remaining_after
            if taken_block.event_time > self._last_pulled_event_time:
                self._last_pulled_event_time = taken_block.event_time
            pulled.append(taken_block)
        if not self._items:
            self._queued_weight = 0.0
        elif self._queued_weight < 0.0:
            self._queued_weight = 0.0
        return pulled

    def shed(self, max_weight: float, drop_oldest: bool = True) -> float:
        """Load shedding: discard up to ``max_weight`` queued events.

        ``drop_oldest`` sheds from the head (bounding queueing delay),
        otherwise from the tail (favouring already-waiting history).  A
        boundary cohort is split so exactly the requested weight is
        shed.  Shed cohorts leave the weight ledger through
        :attr:`shed_weight` (``pushed == pulled + queued + shed``) and
        any rider trace is marked dropped -- shed data must never look
        like ingested data.  Returns the weight actually shed.
        """
        if max_weight <= 0 or not self._items:
            return 0.0
        shed = 0.0
        remaining = max_weight
        while self._items and remaining > 1e-9:
            victim = self._items[0] if drop_oldest else self._items[-1]
            if isinstance(victim, RecordBlock):
                # Per-cohort shedding over the block edge, replicating
                # the scalar victim loop (full cohorts drop their trace,
                # a boundary cohort is trimmed and keeps it).
                edge = 0 if drop_oldest else len(victim.weights) - 1
                w = float(victim.weights[edge])
                if w <= remaining:
                    if drop_oldest:
                        victim.drop_front_cohort()
                    else:
                        victim.drop_back_cohort()
                    if len(victim) == 0:
                        if drop_oldest:
                            self._items.popleft()
                            self._push_times.popleft()
                        else:
                            self._items.pop()
                            self._push_times.pop()
                    dropped = w
                else:
                    victim.weights[edge] = victim.weights[edge] - remaining
                    dropped = remaining
                self._queued_weight -= dropped
                self.shed_weight += dropped
                shed += dropped
                remaining -= dropped
                continue
            if victim.weight <= remaining:
                if drop_oldest:
                    self._items.popleft()
                    self._push_times.popleft()
                else:
                    self._items.pop()
                    self._push_times.pop()
                if victim.trace is not None:
                    victim.trace.drop()
                dropped = victim.weight
            else:
                # Partial shed: the cohort survives at reduced weight
                # and keeps its trace -- part of the traced arrival is
                # still queued and may yet complete its lifecycle.
                victim.weight -= remaining
                dropped = remaining
            self._queued_weight -= dropped
            self.shed_weight += dropped
            shed += dropped
            remaining -= dropped
        if not self._items:
            self._queued_weight = 0.0
        elif self._queued_weight < 0.0:
            self._queued_weight = 0.0
        return shed

    def lose_queued(self) -> float:
        """Driver-side data loss: the node holding this queue lost its
        in-memory backlog (:class:`~repro.faults.schedule.DriverQueueLoss`).

        Everything queued leaves the ledger through :attr:`lost_weight`
        (``pushed == pulled + queued + shed + lost``); riding traces are
        marked dropped -- lost data must never look ingested.  The
        already-pulled prefix is untouched, and the SUT's watermark
        advances past the hole exactly as a real at-most-once driver
        outage would let it.  Returns the weight lost.
        """
        if not self._items:
            return 0.0
        for record in self._items:
            if isinstance(record, RecordBlock):
                for _, trace in record.traces:
                    trace.drop()
            elif record.trace is not None:
                record.trace.drop()
        self._items.clear()
        self._push_times.clear()
        lost = self._queued_weight
        self.lost_weight += lost
        self._queued_weight = 0.0
        return lost

    def retire(self) -> None:
        """Mark the feeding generator as permanently gone."""
        self.retired = True

    def head_event_time(self) -> Optional[float]:
        """Event-time of the oldest queued record, or None when empty."""
        if not self._items:
            return None
        return self._items[0].event_time

    def head_push_time(self) -> Optional[float]:
        """Enqueue time of the oldest queued cohort, or None when empty.

        A partially pulled cohort keeps its original push time: the
        remainder has been waiting since the cohort was enqueued.
        """
        if not self._push_times:
            return None
        return self._push_times[0]

    def oldest_wait(self, now: float) -> float:
        """How long the oldest queued cohort has been waiting (0 if empty).

        Measured against the cohort's *enqueue* time, not its event
        time: event-time disorder (late records) must not masquerade as
        queueing delay in the sustainability criteria.
        """
        head = self.head_push_time()
        if head is None:
            return 0.0
        return max(0.0, now - head)


class QueueSet:
    """All driver queues of a deployment, with aggregate views.

    The driver samples aggregate occupancy (the sustainability signal)
    and throughput (pulled weight per interval) here, keeping all
    measurement strictly outside the SUT.
    """

    def __init__(self, queues: List[DriverQueue]) -> None:
        if not queues:
            raise ValueError("need at least one queue")
        self.queues = list(queues)

    def __iter__(self):
        return iter(self.queues)

    def __len__(self) -> int:
        return len(self.queues)

    @property
    def total_queued_weight(self) -> float:
        return sum(q.queued_weight for q in self.queues)

    @property
    def total_pulled_weight(self) -> float:
        return sum(q.pulled_weight for q in self.queues)

    @property
    def total_pushed_weight(self) -> float:
        return sum(q.pushed_weight for q in self.queues)

    @property
    def total_shed_weight(self) -> float:
        return sum(q.shed_weight for q in self.queues)

    @property
    def total_lost_weight(self) -> float:
        return sum(q.lost_weight for q in self.queues)

    @property
    def watermark(self) -> float:
        """SUT ingestion watermark: the minimum over all queues.

        A retired queue that has been drained is skipped: its frontier
        is frozen forever (the generator is dead), and letting it pin
        the fleet watermark would wedge window closing for the whole
        trial.  If every queue is retired-and-empty the plain minimum
        is used (nothing is flowing anyway).
        """
        live = [
            q
            for q in self.queues
            if not (q.retired and q.queued_weight == 0.0)
        ]
        if not live:
            return min(q.watermark for q in self.queues)
        return min(q.watermark for q in live)

    @property
    def any_dropped(self) -> bool:
        return any(q.dropped for q in self.queues)

    def max_oldest_wait(self, now: float) -> float:
        return max(q.oldest_wait(now) for q in self.queues)
