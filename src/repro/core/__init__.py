"""The benchmark framework: the paper's primary contribution.

Public API tour (see the examples/ directory for runnable versions):

>>> from repro.core import ExperimentSpec, run_experiment
>>> from repro.workloads import WindowedAggregationQuery, WindowSpec
>>> spec = ExperimentSpec(
...     engine="flink",
...     query=WindowedAggregationQuery(window=WindowSpec(8.0, 4.0)),
...     workers=2,
...     profile=0.2e6,
...     duration_s=60.0,
... )
>>> result = run_experiment(spec)          # doctest: +SKIP
>>> result.event_latency.mean             # doctest: +SKIP

The pieces, mirroring the paper's Sections III-IV:

- :mod:`repro.core.generator` -- the scalable on-the-fly data generator;
- :mod:`repro.core.queues` -- the queues between generators and SUT
  sources, where throughput is measured;
- :mod:`repro.core.records` -- events, cohorts, and output tuples with
  the max-contributing-event-time anchors;
- :mod:`repro.core.latency` / :mod:`repro.core.throughput` -- the two
  metrics, measured strictly outside the SUT;
- :mod:`repro.core.sustainable` -- Definition 5 and the search;
- :mod:`repro.core.driver` / :mod:`repro.core.experiment` -- trial
  wiring and the declarative runner;
- :mod:`repro.core.metrics` / :mod:`repro.core.report` -- weighted
  statistics, time series, and paper-style rendering.
"""

from repro.core.driver import BenchmarkDriver, TrialResult
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import DataGenerator, GeneratorConfig
from repro.core.latency import EVENT_TIME, PROCESSING_TIME, LatencyCollector
from repro.core.metrics import StatSummary, TimeSeries, weighted_summary
from repro.core.queues import DriverQueue, QueueSet
from repro.core.records import OutputRecord, Record
from repro.core.sustainable import (
    SustainabilityCriteria,
    SustainabilityVerdict,
    SustainableSearchResult,
    assess,
    find_sustainable_throughput,
    find_sustainable_throughput_under_faults,
)
from repro.core.throughput import ThroughputMonitor

__all__ = [
    "BenchmarkDriver",
    "DataGenerator",
    "DriverQueue",
    "EVENT_TIME",
    "ExperimentSpec",
    "GeneratorConfig",
    "LatencyCollector",
    "OutputRecord",
    "PROCESSING_TIME",
    "QueueSet",
    "Record",
    "StatSummary",
    "SustainabilityCriteria",
    "SustainabilityVerdict",
    "SustainableSearchResult",
    "ThroughputMonitor",
    "TimeSeries",
    "TrialResult",
    "assess",
    "find_sustainable_throughput",
    "find_sustainable_throughput_under_faults",
    "run_experiment",
    "weighted_summary",
]
