"""Sustainable throughput (Definition 5) and the search that finds it.

"Sustainable throughput is the highest load of event traffic that a
system can handle without exhibiting prolonged backpressure, i.e.,
without a continuously increasing event-time latency."  Operationally
(Section IV-B): "we run each of the systems with a very high generation
rate and we decrease it until the system can sustain that data
generation rate.  We allow for some fluctuation, i.e., we allow a
maximum number of events to be queued, as soon as the queue does not
continuously increase."

A trial is judged sustainable from three driver-side signals, plus the
hard failure rules:

1. no SUT failure (dropped queue connection, stall, OOM);
2. the queue backlog does not continuously increase (occupancy trend
   bounded relative to the offered rate), and the end-of-run queueing
   delay stays bounded (the "maximum number of events queued" tolerance);
3. the event-time latency trend over the measurement period stays flat.

The search itself refines the rate by bisection between a known-good
floor and the probe ceiling, which is the paper's decrease-until-
sustained procedure with logarithmically fewer trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.core.driver import TrialResult
from repro.core.experiment import ExperimentSpec, run_experiment, runner_for
from repro.core.latency import EVENT_TIME
from repro.metrology.journal import MISSING, TrialJournal
from repro.metrology.watchdog import WatchdogSpec
from repro.obs.context import ObsSpec
from repro.recovery.aimd import AimdConfig, AimdController, AimdDecision
from repro.sched.pool import TrialScheduler, TrialTask
from repro.workloads.profiles import AdaptiveRate


@dataclass(frozen=True)
class SustainabilityCriteria:
    """Tolerances of the sustainability judgement."""

    max_occupancy_slope_frac: float = 0.005
    """Queue growth tolerated, as a fraction of the offered rate (a
    sub-percent persistent drift is "fluctuation", more is divergence --
    at the paper's rates a 2% drift would add seconds of queueing
    latency within a trial, saturating the "sustainable" maximum)."""
    max_queue_delay_s: float = 5.0
    """Age of the oldest queued event, averaged over the final quarter
    of the run -- the "maximum number of events queued" rule."""
    max_latency_slope: float = 0.03
    """Tolerated event-time latency growth (seconds per second)."""
    min_outputs: int = 1
    """The SUT must have produced at least this many output tuples."""
    max_recovery_time_s: Optional[float] = None
    """Under-faults mode: every injected fault must recover (latency
    back in its pre-fault band) within this many seconds.  ``None``
    ignores recovery metrics entirely (the plain Definition 5)."""
    max_lost_weight: Optional[float] = None
    """Under-faults mode: tolerated data loss across all faults (e.g.
    ``0.0`` demands exactly-once/at-least-once behaviour)."""


@dataclass(frozen=True)
class SustainabilityVerdict:
    sustainable: bool
    reasons: List[str]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.sustainable


def assess(
    result: TrialResult,
    criteria: SustainabilityCriteria = SustainabilityCriteria(),
) -> SustainabilityVerdict:
    """Judge one trial against Definition 5."""
    reasons: List[str] = []
    if result.failed:
        reasons.append(f"SUT failure: {result.failure}")
    start = result.measurement_start
    offered = result.throughput.offered_series.window(start).mean()
    if offered and offered > 0:
        slope = result.throughput.occupancy_slope(start)
        if slope > criteria.max_occupancy_slope_frac * offered:
            reasons.append(
                f"queue backlog grows at {slope:.0f} events/s "
                f"(> {criteria.max_occupancy_slope_frac:.0%} of offered "
                f"{offered:.0f}/s)"
            )
    queue_delay = result.throughput.queue_delay_at_end()
    if queue_delay > criteria.max_queue_delay_s:
        reasons.append(
            f"oldest queued event is {queue_delay:.1f}s old at end "
            f"(> {criteria.max_queue_delay_s:.1f}s)"
        )
    latency_slope = result.collector.trend_slope(EVENT_TIME, start_time=start)
    if latency_slope > criteria.max_latency_slope:
        reasons.append(
            f"event-time latency increases at {latency_slope:.3f} s/s "
            f"(> {criteria.max_latency_slope} s/s)"
        )
    if len(result.collector) < criteria.min_outputs:
        reasons.append("SUT produced no output tuples")
    if criteria.max_recovery_time_s is not None and result.recovery:
        for fault in result.recovery:
            if not fault.recovered:
                reasons.append(
                    f"{fault.kind}@{fault.fault_time_s:g}s never recovered "
                    "to the pre-fault latency band"
                )
            elif fault.recovery_time_s > criteria.max_recovery_time_s:
                reasons.append(
                    f"{fault.kind}@{fault.fault_time_s:g}s took "
                    f"{fault.recovery_time_s:.1f}s to recover "
                    f"(> {criteria.max_recovery_time_s:.1f}s)"
                )
    if criteria.max_lost_weight is not None:
        lost = result.diagnostics.get("lost_weight", 0.0)
        if lost > criteria.max_lost_weight:
            reasons.append(
                f"lost {lost:.0f} events across faults "
                f"(> {criteria.max_lost_weight:.0f})"
            )
    return SustainabilityVerdict(sustainable=not reasons, reasons=reasons)


def probe_key(rate: float) -> str:
    """Journal key of one rate probe (shared by serial and parallel)."""
    return f"rate={rate!r}"


def _export_entry(
    rate: float, verdict: "SustainabilityVerdict", result: TrialResult
) -> dict:
    """The JSON-safe per-probe dict the search report serialises.  The
    serial path, the journal, and scheduler workers all build exactly
    this dict, so every route to a report is byte-identical."""
    return {
        "rate": rate,
        "sustainable": verdict.sustainable,
        "reasons": list(verdict.reasons),
        "mean_ingest_rate": result.mean_ingest_rate,
        "event_latency": result.event_latency.to_dict(),
    }


def _probe_task(payload) -> dict:
    """Scheduler worker body: run one rate probe, return its entry."""
    spec, rate, criteria, watchdog = payload
    result = runner_for(watchdog)(spec.with_rate(rate))
    return _export_entry(rate, assess(result, criteria), result)


def _trial_from_entry(rate: float, entry: dict) -> "SearchTrial":
    """Rebuild a :class:`SearchTrial` from a journaled/worker entry."""
    return SearchTrial(
        rate=rate,
        result=None,
        verdict=SustainabilityVerdict(
            sustainable=bool(entry["sustainable"]),
            reasons=list(entry["reasons"]),
        ),
        cached=entry,
    )


@dataclass
class SearchTrial:
    rate: float
    result: Optional[TrialResult]
    """``None`` when the trial was replayed from a resume journal or
    probed by a scheduler worker (the exported outcome lives in
    :attr:`cached` instead)."""
    verdict: SustainabilityVerdict
    cached: Optional[dict] = None
    """The journaled export entry this trial replayed, if any."""

    def export_entry(self) -> dict:
        """The per-trial dict the search report serialises.  Journaled
        trials return their stored entry verbatim; live trials build it
        from the result.  JSON round-trips floats exactly, so the two
        paths are byte-identical for the same trial."""
        if self.cached is not None:
            return self.cached
        assert self.result is not None
        return _export_entry(self.rate, self.verdict, self.result)


@dataclass
class SustainableSearchResult:
    """Outcome of a sustainable-throughput search.

    ``sustainable_rate`` is NaN when *no probed rate* was sustainable:
    reporting an unprobed floor (e.g. the default 0.0) as "sustainable"
    would fabricate a measurement that was never run.
    """

    sustainable_rate: float
    trials: List[SearchTrial] = field(default_factory=list)

    @property
    def trial_count(self) -> int:
        return len(self.trials)

    @property
    def found(self) -> bool:
        """Whether any probed rate was judged sustainable."""
        return self.sustainable_rate == self.sustainable_rate

    def best_trial(self) -> Optional[SearchTrial]:
        """The sustainable trial at the highest rate (None if none)."""
        good = [t for t in self.trials if t.verdict.sustainable]
        if not good:
            return None
        return max(good, key=lambda t: t.rate)


def search_fingerprint(
    spec: ExperimentSpec,
    high_rate: float,
    low_rate: float,
    rel_tol: float,
    criteria: SustainabilityCriteria,
    max_trials: int,
) -> str:
    """Identity of one search for the resume journal: everything that
    shapes which rates get probed and how they are judged."""
    return (
        f"search|{spec.label()}|seed={spec.seed}|high={high_rate!r}"
        f"|low={low_rate!r}|tol={rel_tol!r}|max_trials={max_trials}"
        f"|criteria={criteria!r}"
    )


def find_sustainable_throughput(
    spec: ExperimentSpec,
    high_rate: float,
    low_rate: float = 0.0,
    rel_tol: float = 0.05,
    criteria: SustainabilityCriteria = SustainabilityCriteria(),
    max_trials: int = 12,
    run: Callable[[ExperimentSpec], TrialResult] = run_experiment,
    journal: Optional[TrialJournal] = None,
    workers: int = 1,
    watchdog: Optional[WatchdogSpec] = None,
) -> SustainableSearchResult:
    """Find the highest sustainable constant rate for ``spec``.

    ``spec``'s profile is overridden with constant rates.  The probe
    starts at ``high_rate`` ("a very high generation rate"); if the SUT
    sustains it, that rate is returned (the ceiling -- e.g. Flink's
    network bound).  Otherwise the rate is refined by bisection until
    the bracket is within ``rel_tol`` of itself.  If no probed rate is
    sustainable within ``max_trials``, ``sustainable_rate`` is NaN.

    With a ``journal``, each completed probe's exported outcome is
    checkpointed immediately; a later run with the same journal (and
    fingerprint) replays journaled probes instead of re-running them --
    the bisection re-derives the same rates in the same order, so an
    interrupted search resumes exactly where it died and its final
    report is byte-identical to an uninterrupted run.

    With ``workers > 1`` the search evaluates bisection probes
    *speculatively* in parallel (see :func:`_speculative_rates`): each
    wave runs the rate the serial walk needs next plus the rates it
    could need after it, over a :class:`~repro.sched.TrialScheduler`
    process pool.  Speculation only changes which probes run and when;
    the reported trial ladder, probed rates, and final report are
    byte-identical to the serial search.  The parallel path requires
    the default runner (pass ``watchdog=`` instead of wrapping ``run``).
    """
    if high_rate <= low_rate:
        raise ValueError(
            f"need high_rate > low_rate, got ({low_rate}, {high_rate})"
        )
    if watchdog is not None:
        if run is not run_experiment:
            raise ValueError(
                "pass either a custom run callable or watchdog=, not both"
            )
        if workers <= 1:
            run = runner_for(watchdog)
    if workers > 1:
        if run is not run_experiment:
            raise ValueError(
                "workers > 1 requires the default run_experiment runner "
                "(trial bodies must be picklable); pass watchdog= for "
                "retry behaviour"
            )
        return _parallel_search(
            spec, high_rate, low_rate, rel_tol, criteria, max_trials,
            journal, workers, watchdog,
        )
    trials: List[SearchTrial] = []

    def probe(rate: float) -> SustainabilityVerdict:
        if journal is not None:
            entry = journal.get(probe_key(rate), MISSING)
            if entry is not MISSING:
                trial = _trial_from_entry(rate, entry)
                trials.append(trial)
                return trial.verdict
        result = run(spec.with_rate(rate))
        verdict = assess(result, criteria)
        trial = SearchTrial(rate=rate, result=result, verdict=verdict)
        trials.append(trial)
        if journal is not None:
            journal.record(probe_key(rate), trial.export_entry())
        return verdict

    if probe(high_rate).sustainable:
        return SustainableSearchResult(sustainable_rate=high_rate, trials=trials)
    # Bisection: ``lo`` is the highest rate that has actually been probed
    # and sustained (no separate ``best`` bookkeeping -- ``lo`` only ever
    # advances on a sustained probe, so the two were always equal).
    lo, hi = low_rate, high_rate
    floor_sustained = False
    while len(trials) < max_trials and (hi - lo) > rel_tol * hi:
        mid = (lo + hi) / 2.0
        if probe(mid).sustainable:
            lo = mid
            floor_sustained = True
        else:
            hi = mid
    # If every probe failed, no sustainable rate was ever OBSERVED;
    # returning low_rate (a rate that was never run) would fabricate a
    # result.  NaN marks "not found" honestly.
    rate = lo if floor_sustained else float("nan")
    return SustainableSearchResult(sustainable_rate=rate, trials=trials)


# -- parallel (speculative) bisection ---------------------------------------


@dataclass
class _Walk:
    """One replay of the serial bisection over a cache of entries."""

    trials: List[Tuple[float, dict]]
    done: bool
    rate: float = float("nan")
    bracket: Optional[Tuple[float, float]] = None
    """Bracket whose midpoint needs a live probe (``None``: the root
    ``high_rate`` probe itself is missing)."""


def _replay_walk(
    cache: dict,
    high_rate: float,
    low_rate: float,
    rel_tol: float,
    max_trials: int,
) -> _Walk:
    """Re-run the exact serial bisection against cached entries.

    Stops at the first probe the cache cannot answer.  Because this is
    the verbatim serial control flow, the trials it assembles -- rates,
    order, and count -- are exactly the serial search's.
    """
    trials: List[Tuple[float, dict]] = []
    entry = cache.get(probe_key(high_rate))
    if entry is None:
        return _Walk(trials=trials, done=False, bracket=None)
    trials.append((high_rate, entry))
    if entry["sustainable"]:
        return _Walk(trials=trials, done=True, rate=high_rate)
    lo, hi = low_rate, high_rate
    floor_sustained = False
    while len(trials) < max_trials and (hi - lo) > rel_tol * hi:
        mid = (lo + hi) / 2.0
        entry = cache.get(probe_key(mid))
        if entry is None:
            return _Walk(trials=trials, done=False, bracket=(lo, hi))
        trials.append((mid, entry))
        if entry["sustainable"]:
            lo = mid
            floor_sustained = True
        else:
            hi = mid
    return _Walk(
        trials=trials,
        done=True,
        rate=lo if floor_sustained else float("nan"),
    )


def _speculative_rates(
    lo: float,
    hi: float,
    trial_count: int,
    rel_tol: float,
    max_trials: int,
    budget: int,
) -> List[float]:
    """Breadth-first frontier of the bisection tree under ``(lo, hi)``.

    The serial walk's next probe is the bracket midpoint; depending on
    its verdict the walk recurses into ``(mid, hi)`` (sustained) or
    ``(lo, mid)`` (not).  Enumerating that binary tree breadth-first
    yields every rate the serial search *could* probe next, nearest
    first -- evaluating the first ``budget`` of them keeps a worker
    pool busy while guaranteeing the true path is always among them.
    Branches that would terminate the serial loop (bracket within
    ``rel_tol``, trial budget exhausted) are pruned exactly as the
    serial loop would.
    """
    out: List[float] = []
    frontier = [(lo, hi, trial_count)]
    while frontier and len(out) < budget:
        lo_, hi_, count = frontier.pop(0)
        if count >= max_trials or (hi_ - lo_) <= rel_tol * hi_:
            continue
        mid = (lo_ + hi_) / 2.0
        out.append(mid)
        frontier.append((mid, hi_, count + 1))
        frontier.append((lo_, mid, count + 1))
    return out


def _parallel_search(
    spec: ExperimentSpec,
    high_rate: float,
    low_rate: float,
    rel_tol: float,
    criteria: SustainabilityCriteria,
    max_trials: int,
    journal: Optional[TrialJournal],
    workers: int,
    watchdog: Optional[WatchdogSpec],
) -> SustainableSearchResult:
    """Speculative bisection over a scheduler pool (see caller)."""
    scheduler = TrialScheduler(workers=workers, journal=journal)
    cache: dict = {}
    while True:
        walk = _replay_walk(cache, high_rate, low_rate, rel_tol, max_trials)
        if walk.done:
            break
        if walk.bracket is None:
            # Root wave: the ceiling probe plus, speculatively, the
            # bisection frontier it opens if it proves unsustainable.
            rates = [high_rate] + _speculative_rates(
                low_rate, high_rate, 1, rel_tol, max_trials, workers - 1
            )
        else:
            lo, hi = walk.bracket
            rates = _speculative_rates(
                lo, hi, len(walk.trials), rel_tol, max_trials, workers
            )
        batch = [
            TrialTask(
                key=probe_key(rate),
                fn=_probe_task,
                payload=(spec, rate, criteria, watchdog),
            )
            for rate in rates
            if probe_key(rate) not in cache
        ]
        # The walk stopped on an uncached probe, and that probe leads
        # every frontier, so each wave strictly extends the cache along
        # the true path -- the loop always terminates.
        cache.update(scheduler.run(batch))
    return SustainableSearchResult(
        sustainable_rate=walk.rate,
        trials=[_trial_from_entry(rate, entry) for rate, entry in walk.trials],
    )


def _sweep_cell_task(payload) -> dict:
    """Scheduler worker body: one full (serial) search for one cell."""
    spec, high_rate, low_rate, rel_tol, criteria, max_trials, watchdog = payload
    search = find_sustainable_throughput(
        spec,
        high_rate=high_rate,
        low_rate=low_rate,
        rel_tol=rel_tol,
        criteria=criteria,
        max_trials=max_trials,
        watchdog=watchdog,
    )
    rate = search.sustainable_rate
    return {
        "sustainable_rate": None if rate != rate else float(rate),
        "trial_count": search.trial_count,
    }


def sweep_sustainable_rates(
    cells,
    high_rate: float,
    low_rate: float = 0.0,
    rel_tol: float = 0.05,
    criteria: SustainabilityCriteria = SustainabilityCriteria(),
    max_trials: int = 12,
    workers: int = 1,
    watchdog: Optional[WatchdogSpec] = None,
) -> "dict[str, float]":
    """Sustainable-throughput searches for many independent cells.

    ``cells`` is a sequence of ``(key, spec)`` pairs (e.g. one per
    (engine, cluster-size) corner of a Table-I sweep).  Each cell runs
    one full bisection search; with ``workers > 1`` whole cells fan out
    over the scheduler pool -- coarser-grained than per-probe
    speculation and perfectly parallel, which is why the benchmark
    suite and ``repro sweep`` parallelise at this level.  Results map
    ``key -> sustainable rate`` (NaN when a cell found none) in the
    order ``cells`` was given, regardless of completion order.
    """
    tasks = [
        TrialTask(
            key=key,
            fn=_sweep_cell_task,
            payload=(
                spec, high_rate, low_rate, rel_tol, criteria, max_trials,
                watchdog,
            ),
        )
        for key, spec in cells
    ]
    results = TrialScheduler(workers=workers).run(tasks)
    out = {}
    for key, _spec in cells:
        rate = results[key]["sustainable_rate"]
        out[key] = float("nan") if rate is None else float(rate)
    return out


@dataclass
class OnlineSearchResult:
    """Outcome of the single-trial AIMD probe.

    ``sustainable_rate`` follows the same contract as the offline
    search: NaN when no rate was ever observed sustainable.
    """

    sustainable_rate: float
    result: TrialResult
    decisions: List[AimdDecision]
    trajectory: List[Tuple[float, float]]
    """Applied ``(time, rate)`` control trajectory."""

    @property
    def found(self) -> bool:
        return self.sustainable_rate == self.sustainable_rate

    @property
    def decision_count(self) -> int:
        return len(self.decisions)


def find_sustainable_throughput_online(
    spec: ExperimentSpec,
    high_rate: float,
    config: Optional[AimdConfig] = None,
    run=run_experiment,
) -> OnlineSearchResult:
    """Probe the sustainable rate in a **single trial** (AIMD).

    Where :func:`find_sustainable_throughput` runs one full trial per
    probed rate, this starts one trial at ``high_rate`` and lets an
    additive-increase / multiplicative-decrease controller steer the
    offered load against live backpressure signals from the obs
    registry (see :mod:`repro.recovery.aimd`).  The estimate converges
    to within a probe-step of the offline bisection at a fraction of
    the cost -- the cross-validation test pins the two against each
    other.

    Observability is required (the controller reads registry gauges);
    a metrics-only :class:`ObsSpec` is injected when ``spec`` has none.
    """
    if high_rate <= 0:
        raise ValueError(f"high_rate must be positive, got {high_rate}")
    profile = AdaptiveRate(initial=high_rate, ceiling=high_rate)
    obs = spec.observability or ObsSpec(metrics_interval_s=0.5)
    trial_spec = replace(spec, profile=profile, observability=obs)
    controllers: List[AimdController] = []

    def install(driver) -> None:
        controller = AimdController(
            profile, driver.obs.registry, config=config
        )
        controller.install(driver.sim)
        controllers.append(controller)

    result = run(trial_spec, driver_hook=install)
    assert controllers, "driver_hook never ran"
    controller = controllers[0]
    controller.stop()
    return OnlineSearchResult(
        sustainable_rate=controller.estimate,
        result=result,
        decisions=controller.decisions,
        trajectory=controller.trajectory(),
    )


def find_sustainable_throughput_under_faults(
    spec: ExperimentSpec,
    high_rate: float,
    low_rate: float = 0.0,
    rel_tol: float = 0.05,
    criteria: Optional[SustainabilityCriteria] = None,
    max_recovery_time_s: float = 60.0,
    max_trials: int = 12,
    run: Callable[[ExperimentSpec], TrialResult] = run_experiment,
    workers: int = 1,
    watchdog: Optional[WatchdogSpec] = None,
) -> SustainableSearchResult:
    """Sustainable throughput *while surviving the fault schedule*.

    The Vogel et al. robustness question: not "what rate can the engine
    sustain" but "what rate can it sustain and still recover from every
    injected fault within ``max_recovery_time_s``".  ``spec`` must carry
    a fault schedule (or the legacy ``node_failure``); the plain
    Definition 5 criteria are extended with the recovery bound, so an
    engine that survives the faults but never catches up is judged
    unsustainable at that rate.
    """
    if spec.resolved_faults() is None:
        raise ValueError(
            "spec has no fault schedule; use find_sustainable_throughput "
            "for fault-free search"
        )
    base = criteria or SustainabilityCriteria()
    if base.max_recovery_time_s is None:
        base = replace(base, max_recovery_time_s=max_recovery_time_s)
    return find_sustainable_throughput(
        spec,
        high_rate,
        low_rate=low_rate,
        rel_tol=rel_tol,
        criteria=base,
        max_trials=max_trials,
        run=run,
        workers=workers,
        watchdog=watchdog,
    )
