"""Sustainable throughput (Definition 5) and the search that finds it.

"Sustainable throughput is the highest load of event traffic that a
system can handle without exhibiting prolonged backpressure, i.e.,
without a continuously increasing event-time latency."  Operationally
(Section IV-B): "we run each of the systems with a very high generation
rate and we decrease it until the system can sustain that data
generation rate.  We allow for some fluctuation, i.e., we allow a
maximum number of events to be queued, as soon as the queue does not
continuously increase."

A trial is judged sustainable from three driver-side signals, plus the
hard failure rules:

1. no SUT failure (dropped queue connection, stall, OOM);
2. the queue backlog does not continuously increase (occupancy trend
   bounded relative to the offered rate), and the end-of-run queueing
   delay stays bounded (the "maximum number of events queued" tolerance);
3. the event-time latency trend over the measurement period stays flat.

The search itself refines the rate by bisection between a known-good
floor and the probe ceiling, which is the paper's decrease-until-
sustained procedure with logarithmically fewer trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.core.driver import TrialResult
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.latency import EVENT_TIME
from repro.metrology.journal import TrialJournal
from repro.obs.context import ObsSpec
from repro.recovery.aimd import AimdConfig, AimdController, AimdDecision
from repro.workloads.profiles import AdaptiveRate


@dataclass(frozen=True)
class SustainabilityCriteria:
    """Tolerances of the sustainability judgement."""

    max_occupancy_slope_frac: float = 0.005
    """Queue growth tolerated, as a fraction of the offered rate (a
    sub-percent persistent drift is "fluctuation", more is divergence --
    at the paper's rates a 2% drift would add seconds of queueing
    latency within a trial, saturating the "sustainable" maximum)."""
    max_queue_delay_s: float = 5.0
    """Age of the oldest queued event, averaged over the final quarter
    of the run -- the "maximum number of events queued" rule."""
    max_latency_slope: float = 0.03
    """Tolerated event-time latency growth (seconds per second)."""
    min_outputs: int = 1
    """The SUT must have produced at least this many output tuples."""
    max_recovery_time_s: Optional[float] = None
    """Under-faults mode: every injected fault must recover (latency
    back in its pre-fault band) within this many seconds.  ``None``
    ignores recovery metrics entirely (the plain Definition 5)."""
    max_lost_weight: Optional[float] = None
    """Under-faults mode: tolerated data loss across all faults (e.g.
    ``0.0`` demands exactly-once/at-least-once behaviour)."""


@dataclass(frozen=True)
class SustainabilityVerdict:
    sustainable: bool
    reasons: List[str]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.sustainable


def assess(
    result: TrialResult,
    criteria: SustainabilityCriteria = SustainabilityCriteria(),
) -> SustainabilityVerdict:
    """Judge one trial against Definition 5."""
    reasons: List[str] = []
    if result.failed:
        reasons.append(f"SUT failure: {result.failure}")
    start = result.measurement_start
    offered = result.throughput.offered_series.window(start).mean()
    if offered and offered > 0:
        slope = result.throughput.occupancy_slope(start)
        if slope > criteria.max_occupancy_slope_frac * offered:
            reasons.append(
                f"queue backlog grows at {slope:.0f} events/s "
                f"(> {criteria.max_occupancy_slope_frac:.0%} of offered "
                f"{offered:.0f}/s)"
            )
    queue_delay = result.throughput.queue_delay_at_end()
    if queue_delay > criteria.max_queue_delay_s:
        reasons.append(
            f"oldest queued event is {queue_delay:.1f}s old at end "
            f"(> {criteria.max_queue_delay_s:.1f}s)"
        )
    latency_slope = result.collector.trend_slope(EVENT_TIME, start_time=start)
    if latency_slope > criteria.max_latency_slope:
        reasons.append(
            f"event-time latency increases at {latency_slope:.3f} s/s "
            f"(> {criteria.max_latency_slope} s/s)"
        )
    if len(result.collector) < criteria.min_outputs:
        reasons.append("SUT produced no output tuples")
    if criteria.max_recovery_time_s is not None and result.recovery:
        for fault in result.recovery:
            if not fault.recovered:
                reasons.append(
                    f"{fault.kind}@{fault.fault_time_s:g}s never recovered "
                    "to the pre-fault latency band"
                )
            elif fault.recovery_time_s > criteria.max_recovery_time_s:
                reasons.append(
                    f"{fault.kind}@{fault.fault_time_s:g}s took "
                    f"{fault.recovery_time_s:.1f}s to recover "
                    f"(> {criteria.max_recovery_time_s:.1f}s)"
                )
    if criteria.max_lost_weight is not None:
        lost = result.diagnostics.get("lost_weight", 0.0)
        if lost > criteria.max_lost_weight:
            reasons.append(
                f"lost {lost:.0f} events across faults "
                f"(> {criteria.max_lost_weight:.0f})"
            )
    return SustainabilityVerdict(sustainable=not reasons, reasons=reasons)


@dataclass
class SearchTrial:
    rate: float
    result: Optional[TrialResult]
    """``None`` when the trial was replayed from a resume journal (the
    exported outcome lives in :attr:`cached` instead)."""
    verdict: SustainabilityVerdict
    cached: Optional[dict] = None
    """The journaled export entry this trial replayed, if any."""

    def export_entry(self) -> dict:
        """The per-trial dict the search report serialises.  Journaled
        trials return their stored entry verbatim; live trials build it
        from the result.  JSON round-trips floats exactly, so the two
        paths are byte-identical for the same trial."""
        if self.cached is not None:
            return self.cached
        assert self.result is not None
        return {
            "rate": self.rate,
            "sustainable": self.verdict.sustainable,
            "reasons": list(self.verdict.reasons),
            "mean_ingest_rate": self.result.mean_ingest_rate,
            "event_latency": self.result.event_latency.to_dict(),
        }


@dataclass
class SustainableSearchResult:
    """Outcome of a sustainable-throughput search.

    ``sustainable_rate`` is NaN when *no probed rate* was sustainable:
    reporting an unprobed floor (e.g. the default 0.0) as "sustainable"
    would fabricate a measurement that was never run.
    """

    sustainable_rate: float
    trials: List[SearchTrial] = field(default_factory=list)

    @property
    def trial_count(self) -> int:
        return len(self.trials)

    @property
    def found(self) -> bool:
        """Whether any probed rate was judged sustainable."""
        return self.sustainable_rate == self.sustainable_rate

    def best_trial(self) -> Optional[SearchTrial]:
        """The sustainable trial at the highest rate (None if none)."""
        good = [t for t in self.trials if t.verdict.sustainable]
        if not good:
            return None
        return max(good, key=lambda t: t.rate)


def search_fingerprint(
    spec: ExperimentSpec,
    high_rate: float,
    low_rate: float,
    rel_tol: float,
    criteria: SustainabilityCriteria,
    max_trials: int,
) -> str:
    """Identity of one search for the resume journal: everything that
    shapes which rates get probed and how they are judged."""
    return (
        f"search|{spec.label()}|seed={spec.seed}|high={high_rate!r}"
        f"|low={low_rate!r}|tol={rel_tol!r}|max_trials={max_trials}"
        f"|criteria={criteria!r}"
    )


def find_sustainable_throughput(
    spec: ExperimentSpec,
    high_rate: float,
    low_rate: float = 0.0,
    rel_tol: float = 0.05,
    criteria: SustainabilityCriteria = SustainabilityCriteria(),
    max_trials: int = 12,
    run: Callable[[ExperimentSpec], TrialResult] = run_experiment,
    journal: Optional[TrialJournal] = None,
) -> SustainableSearchResult:
    """Find the highest sustainable constant rate for ``spec``.

    ``spec``'s profile is overridden with constant rates.  The probe
    starts at ``high_rate`` ("a very high generation rate"); if the SUT
    sustains it, that rate is returned (the ceiling -- e.g. Flink's
    network bound).  Otherwise the rate is refined by bisection until
    the bracket is within ``rel_tol`` of itself.  If no probed rate is
    sustainable within ``max_trials``, ``sustainable_rate`` is NaN.

    With a ``journal``, each completed probe's exported outcome is
    checkpointed immediately; a later run with the same journal (and
    fingerprint) replays journaled probes instead of re-running them --
    the bisection re-derives the same rates in the same order, so an
    interrupted search resumes exactly where it died and its final
    report is byte-identical to an uninterrupted run.
    """
    if high_rate <= low_rate:
        raise ValueError(
            f"need high_rate > low_rate, got ({low_rate}, {high_rate})"
        )
    trials: List[SearchTrial] = []

    def probe(rate: float) -> SustainabilityVerdict:
        key = f"rate={rate!r}"
        if journal is not None:
            entry = journal.get(key)
            if entry is not None:
                verdict = SustainabilityVerdict(
                    sustainable=bool(entry["sustainable"]),
                    reasons=list(entry["reasons"]),
                )
                trials.append(
                    SearchTrial(
                        rate=rate, result=None, verdict=verdict, cached=entry
                    )
                )
                return verdict
        result = run(spec.with_rate(rate))
        verdict = assess(result, criteria)
        trial = SearchTrial(rate=rate, result=result, verdict=verdict)
        trials.append(trial)
        if journal is not None:
            journal.record(key, trial.export_entry())
        return verdict

    if probe(high_rate).sustainable:
        return SustainableSearchResult(sustainable_rate=high_rate, trials=trials)
    # Bisection: ``lo`` is the highest rate that has actually been probed
    # and sustained (no separate ``best`` bookkeeping -- ``lo`` only ever
    # advances on a sustained probe, so the two were always equal).
    lo, hi = low_rate, high_rate
    floor_sustained = False
    while len(trials) < max_trials and (hi - lo) > rel_tol * hi:
        mid = (lo + hi) / 2.0
        if probe(mid).sustainable:
            lo = mid
            floor_sustained = True
        else:
            hi = mid
    # If every probe failed, no sustainable rate was ever OBSERVED;
    # returning low_rate (a rate that was never run) would fabricate a
    # result.  NaN marks "not found" honestly.
    rate = lo if floor_sustained else float("nan")
    return SustainableSearchResult(sustainable_rate=rate, trials=trials)


@dataclass
class OnlineSearchResult:
    """Outcome of the single-trial AIMD probe.

    ``sustainable_rate`` follows the same contract as the offline
    search: NaN when no rate was ever observed sustainable.
    """

    sustainable_rate: float
    result: TrialResult
    decisions: List[AimdDecision]
    trajectory: List[Tuple[float, float]]
    """Applied ``(time, rate)`` control trajectory."""

    @property
    def found(self) -> bool:
        return self.sustainable_rate == self.sustainable_rate

    @property
    def decision_count(self) -> int:
        return len(self.decisions)


def find_sustainable_throughput_online(
    spec: ExperimentSpec,
    high_rate: float,
    config: Optional[AimdConfig] = None,
    run=run_experiment,
) -> OnlineSearchResult:
    """Probe the sustainable rate in a **single trial** (AIMD).

    Where :func:`find_sustainable_throughput` runs one full trial per
    probed rate, this starts one trial at ``high_rate`` and lets an
    additive-increase / multiplicative-decrease controller steer the
    offered load against live backpressure signals from the obs
    registry (see :mod:`repro.recovery.aimd`).  The estimate converges
    to within a probe-step of the offline bisection at a fraction of
    the cost -- the cross-validation test pins the two against each
    other.

    Observability is required (the controller reads registry gauges);
    a metrics-only :class:`ObsSpec` is injected when ``spec`` has none.
    """
    if high_rate <= 0:
        raise ValueError(f"high_rate must be positive, got {high_rate}")
    profile = AdaptiveRate(initial=high_rate, ceiling=high_rate)
    obs = spec.observability or ObsSpec(metrics_interval_s=0.5)
    trial_spec = replace(spec, profile=profile, observability=obs)
    controllers: List[AimdController] = []

    def install(driver) -> None:
        controller = AimdController(
            profile, driver.obs.registry, config=config
        )
        controller.install(driver.sim)
        controllers.append(controller)

    result = run(trial_spec, driver_hook=install)
    assert controllers, "driver_hook never ran"
    controller = controllers[0]
    controller.stop()
    return OnlineSearchResult(
        sustainable_rate=controller.estimate,
        result=result,
        decisions=controller.decisions,
        trajectory=controller.trajectory(),
    )


def find_sustainable_throughput_under_faults(
    spec: ExperimentSpec,
    high_rate: float,
    low_rate: float = 0.0,
    rel_tol: float = 0.05,
    criteria: Optional[SustainabilityCriteria] = None,
    max_recovery_time_s: float = 60.0,
    max_trials: int = 12,
    run: Callable[[ExperimentSpec], TrialResult] = run_experiment,
) -> SustainableSearchResult:
    """Sustainable throughput *while surviving the fault schedule*.

    The Vogel et al. robustness question: not "what rate can the engine
    sustain" but "what rate can it sustain and still recover from every
    injected fault within ``max_recovery_time_s``".  ``spec`` must carry
    a fault schedule (or the legacy ``node_failure``); the plain
    Definition 5 criteria are extended with the recovery bound, so an
    engine that survives the faults but never catches up is judged
    unsustainable at that rate.
    """
    if spec.resolved_faults() is None:
        raise ValueError(
            "spec has no fault schedule; use find_sustainable_throughput "
            "for fault-free search"
        )
    base = criteria or SustainabilityCriteria()
    if base.max_recovery_time_s is None:
        base = replace(base, max_recovery_time_s=max_recovery_time_s)
    return find_sustainable_throughput(
        spec,
        high_rate,
        low_rate=low_rate,
        rel_tol=rel_tol,
        criteria=base,
        max_trials=max_trials,
        run=run,
    )
