"""Columnar record batches: the vectorized engine hot path's currency.

PR 1 vectorized the *driver-side* metrology (~12x); this module does the
same for the *SUT side*.  The dense generator emits one uniform cohort
per catalog key per tick -- a structure that is naturally columnar: all
cohorts of one emission share ``event_time``, ``value`` and ``stream``
and differ only in ``key`` and ``weight``.  A :class:`RecordBlock`
carries exactly those two columns as NumPy arrays plus the shared
scalars, so queues, sources and window stores can process a whole
emission with a handful of array operations instead of one Python-object
round trip per cohort.

Bitwise identity with the scalar path (``REPRO_ENGINE_SCALAR=1``) is a
hard requirement, not a nicety: the conformance goldens hash sink values
produced by the scalar code, and floats feed control flow everywhere
(backlogs drive ingest budgets drive RNG draws).  The toolbox here is
therefore restricted to operations that are *bitwise equal* to the
scalar left-fold loops they replace:

- ``np.add.accumulate`` / ``np.subtract.accumulate`` are strictly
  sequential left folds (``out[i] = op(out[i-1], a[i])``), unlike
  ``np.sum`` which uses pairwise summation and is NOT reduction-order
  safe.  :func:`fold_add` / :func:`fold_sub` wrap them with a prepended
  start value to replicate ``for w in ws: x += w`` exactly.
- Element-wise products/maxima are per-element IEEE operations and
  bitwise equal to their scalar counterparts.
- Fancy-index ``+=`` is a single add per target slot when the indices
  are unique -- which blocks guarantee (one cohort per key).
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.core.records import Record

#: Environment flag selecting the scalar (record-at-a-time) reference
#: path.  Checked at construction time of engines/generators, so a trial
#: runs entirely in one mode.
SCALAR_ENV = "REPRO_ENGINE_SCALAR"

#: Same epsilon as the scalar pull/drain ladders.
_EPS = 1e-9


def scalar_mode() -> bool:
    """True when the scalar reference path is selected via the env."""
    return os.environ.get(SCALAR_ENV, "") not in ("", "0")


def vector_enabled() -> bool:
    """True when the columnar hot path is active (the default)."""
    return not scalar_mode()


def fold_add(start: float, values: np.ndarray) -> float:
    """``start + values[0] + values[1] + ...`` as a strict left fold.

    Bitwise equal to the scalar loop ``for v in values: start += v``
    (``np.add.accumulate`` is sequential, not pairwise).
    """
    n = len(values)
    if n == 0:
        return float(start)
    buf = np.empty(n + 1)
    buf[0] = start
    buf[1:] = values
    np.add.accumulate(buf, out=buf)
    return float(buf[-1])


def fold_sub(start: float, values: np.ndarray) -> float:
    """``start - values[0] - values[1] - ...`` as a strict left fold."""
    n = len(values)
    if n == 0:
        return float(start)
    buf = np.empty(n + 1)
    buf[0] = start
    buf[1:] = values
    np.subtract.accumulate(buf, out=buf)
    return float(buf[-1])


class RecordBlock:
    """A columnar batch of same-tick cohorts (one cohort per key).

    The uniform fields (``value``, ``event_time``, ``stream``,
    ``ingest_time``) are scalars shared by every cohort -- exactly the
    dense generator's emission shape.  ``keys`` must be unique within a
    block (one cohort per key), which is what makes fancy-index ``+=``
    in the columnar window store a single add per accumulator.

    ``traces`` is a list of ``(cohort_index, EventTrace)`` pairs for the
    1-in-N sampled cohorts; splits follow the scalar convention (the
    trace rides the first part of a split cohort).
    """

    __slots__ = (
        "keys", "weights", "value", "event_time", "stream", "ingest_time",
        "traces",
    )

    def __init__(
        self,
        keys: np.ndarray,
        weights: np.ndarray,
        value: float,
        event_time: float,
        stream: str,
        ingest_time: Optional[float] = None,
        traces: Optional[List[Tuple[int, object]]] = None,
        _checked: bool = False,
    ) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if keys.shape != weights.shape or keys.ndim != 1:
            raise ValueError("keys and weights must be matching 1-D arrays")
        if not _checked and len(weights):
            if not np.all(weights > 0):
                raise ValueError("cohort weights must be positive")
            if len(np.unique(keys)) != len(keys):
                raise ValueError("block keys must be unique (one cohort/key)")
        self.keys = keys
        self.weights = weights
        self.value = value
        self.event_time = event_time
        self.stream = stream
        self.ingest_time = ingest_time
        self.traces = traces if traces is not None else []

    def __len__(self) -> int:
        return len(self.weights)

    def total_weight(self) -> float:
        """Left-fold total of the cohort weights (bitwise == scalar)."""
        return fold_add(0.0, self.weights)

    def materialize(self) -> List[Record]:
        """Expand into per-cohort :class:`Record` objects.

        The records are bitwise equivalent to what the scalar path would
        have carried (same weights, times, traces-on-cohorts), so
        engines without a columnar ``_process_batch`` can fall back to
        their record-at-a-time pipeline without numeric divergence.
        """
        trace_at = dict(self.traces)
        return [
            Record(
                key=int(self.keys[i]),
                value=self.value,
                event_time=self.event_time,
                weight=self.weights[i],
                stream=self.stream,
                ingest_time=self.ingest_time,
                trace=trace_at.get(i),
            )
            for i in range(len(self.weights))
        ]

    def take_prefix(self, count: int) -> "RecordBlock":
        """The first ``count`` whole cohorts as a new block (copies)."""
        return RecordBlock(
            self.keys[:count].copy(),
            self.weights[:count].copy(),
            value=self.value,
            event_time=self.event_time,
            stream=self.stream,
            ingest_time=self.ingest_time,
            traces=[(i, t) for i, t in self.traces if i < count],
            _checked=True,
        )

    def _advance(self, count: int) -> None:
        """Drop the first ``count`` cohorts in place (after a take)."""
        self.keys = self.keys[count:]
        self.weights = self.weights[count:]
        if self.traces:
            self.traces = [
                (i - count, t) for i, t in self.traces if i >= count
            ]

    def drop_front_cohort(self) -> None:
        """Shed the head cohort entirely (its trace is dropped)."""
        for i, trace in self.traces:
            if i == 0:
                trace.drop()
        self._advance(1)

    def drop_back_cohort(self) -> None:
        """Shed the tail cohort entirely (its trace is dropped)."""
        last = len(self.weights) - 1
        kept = []
        for i, trace in self.traces:
            if i == last:
                trace.drop()
            else:
                kept.append((i, trace))
        self.traces = kept
        self.keys = self.keys[:last]
        self.weights = self.weights[:last]


def as_block(record: Record) -> RecordBlock:
    """Wrap one :class:`Record` as a single-cohort block.

    Used for records that enter a vector-mode queue through the scalar
    ``push`` (sampled-mode generators, tests): downstream operators then
    see a homogeneous stream of blocks.  The record's trace moves onto
    the block (single ownership, like a cohort split).
    """
    trace = record.trace
    record.trace = None
    return RecordBlock(
        np.array([record.key], dtype=np.int64),
        np.array([record.weight], dtype=np.float64),
        value=record.value,
        event_time=record.event_time,
        stream=record.stream,
        ingest_time=record.ingest_time,
        traces=[(0, trace)] if trace is not None else [],
        _checked=True,
    )


def records_weight(items) -> float:
    """Total weight of a mixed list of records/blocks.

    Bitwise equal to the scalar ``sum(r.weight for r in records)`` over
    the expanded cohort sequence (strict left fold, same order).
    """
    total = 0.0
    for item in items:
        if isinstance(item, RecordBlock):
            total = fold_add(total, item.weights)
        else:
            total += item.weight
    return total


def materialize_all(items) -> List[Record]:
    """Expand a mixed list of records/blocks into records, in order."""
    records: List[Record] = []
    for item in items:
        if isinstance(item, RecordBlock):
            records.extend(item.materialize())
        else:
            records.append(item)
    return records


def consume_front(
    block: RecordBlock, budget: float
) -> Tuple[Optional[RecordBlock], float, bool]:
    """Take cohorts from the front of ``block`` under a weight budget.

    Replicates the scalar head-take ladder (queue ``pull`` / Storm
    ``_drain_inflight``) over one block, bitwise:

    - cohort ``i`` is taken whole iff the remaining budget before it is
      ``> 1e-9`` and its weight fits;
    - the first non-fitting cohort (with budget remaining) is *split*:
      the taken part gets exactly the remaining budget, the cohort keeps
      the difference, and the budget becomes exactly ``0.0``;
    - a trace rides the first (taken) part of a split cohort.

    Returns ``(taken_block_or_None, new_budget, block_emptied)``;
    ``block`` is mutated in place to hold the remainder.
    """
    weights = block.weights
    n = len(weights)
    if n == 0:
        return None, budget, True
    # acc[i] = budget remaining before cohort i (strict sequential fold,
    # so acc[i+1] = acc[i] - w[i] is the exact scalar subtraction).
    acc = np.empty(n + 1)
    acc[0] = budget
    acc[1:] = weights
    np.subtract.accumulate(acc, out=acc)
    before = acc[:-1]
    violation = (before <= _EPS) | (weights > before)
    bad = np.nonzero(violation)[0]
    if len(bad) == 0:
        # Everything fits: the whole block is taken.
        taken = block.take_prefix(n)
        block._advance(n)
        return taken, float(acc[n]), True
    j = int(bad[0])
    if before[j] <= _EPS:
        # Budget exhausted before cohort j: take the clean prefix.
        if j == 0:
            return None, float(before[0]), False
        taken = block.take_prefix(j)
        block._advance(j)
        return taken, float(before[j]), False
    # Split cohort j: the taken part gets the remaining budget exactly.
    split_w = float(before[j])
    taken = RecordBlock(
        block.keys[: j + 1].copy(),
        block.weights[: j + 1].copy(),
        value=block.value,
        event_time=block.event_time,
        stream=block.stream,
        ingest_time=block.ingest_time,
        traces=[(i, t) for i, t in block.traces if i <= j],
        _checked=True,
    )
    taken.weights[j] = split_w
    # Remainder: cohort j survives at reduced weight, trace gone (it
    # left with the first part, the scalar split convention).
    block.weights[j] = block.weights[j] - split_w
    block.traces = [(i, t) for i, t in block.traces if i > j]
    block._advance(j)
    # Scalar: ``remaining -= taken.weight`` with taken.weight == the
    # remaining budget -- exactly zero.
    return taken, 0.0, False
