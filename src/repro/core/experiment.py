"""Declarative experiment specification and runner.

An :class:`ExperimentSpec` captures everything that identifies a trial
in the paper's evaluation -- engine, query, cluster size, offered load,
duration, seed -- and :func:`run_experiment` assembles the full stack
(simulator, cluster, data plane, resource monitor, generator fleet,
engine, driver) and runs it.  All benchmarks, examples, and integration
tests go through this single entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.core.broker import BrokerSpec, BrokerStage
from repro.core.driver import BenchmarkDriver, TrialResult
from repro.core.generator import GeneratorConfig, build_generator_fleet
from repro.core.queues import DriverQueue, QueueSet
from repro.engines import engine_class
from repro.engines.base import EngineConfig
from repro.sim.cluster import ClusterSpec, paper_cluster
from repro.sim.network import DataPlane, NetworkSpec
from repro.sim.nodefail import NodeFailureSpec
from repro.sim.resources import ResourceMonitor
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.workloads.profiles import ConstantRate, RateProfile
from repro.workloads.queries import Query, WindowedAggregationQuery


@dataclass(frozen=True)
class ExperimentSpec:
    """One benchmark trial, fully specified."""

    engine: str = "flink"
    query: Query = field(default_factory=WindowedAggregationQuery)
    workers: int = 2
    profile: Union[RateProfile, float] = 0.5e6
    """Offered load: a :class:`RateProfile` or an events/s constant."""
    duration_s: float = 240.0
    warmup_fraction: float = 0.25
    seed: int = 1
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    engine_config: Optional[EngineConfig] = None
    network: NetworkSpec = field(default_factory=NetworkSpec)
    throughput_interval_s: float = 1.0
    resource_interval_s: float = 5.0
    monitor_resources: bool = True
    broker: Optional[BrokerSpec] = None
    """Insert a message-broker mediator between generators and the SUT
    (the design the paper argues against, Section III-A); used by the
    broker ablation benchmark."""
    keep_outputs: bool = False
    """Retain raw output tuples on the trial's collector (correctness
    checks and ablations; costs memory on long runs)."""
    node_failure: Optional[NodeFailureSpec] = None
    """Kill worker nodes mid-run (Related Work extension: Lopez et
    al.'s node-failure robustness comparison)."""

    def rate_profile(self) -> RateProfile:
        if isinstance(self.profile, RateProfile):
            return self.profile
        return ConstantRate(float(self.profile))

    def cluster(self) -> ClusterSpec:
        return paper_cluster(self.workers)

    def with_rate(self, rate: float) -> "ExperimentSpec":
        """The same experiment at a different constant offered load."""
        return replace(self, profile=float(rate))

    def with_seed(self, seed: int) -> "ExperimentSpec":
        return replace(self, seed=seed)

    def label(self) -> str:
        profile = self.rate_profile()
        if isinstance(profile, ConstantRate):
            load = f"{profile.rate / 1e6:.3f} M/s"
        else:
            load = type(profile).__name__
        return (
            f"{self.engine}/{self.workers}w/{self.query.kind}@{load}"
        )


def run_experiment(spec: ExperimentSpec) -> TrialResult:
    """Build the full stack for ``spec``, run it, return the result."""
    sim = Simulator()
    rng = RngRegistry(seed=spec.seed)
    cluster = spec.cluster()
    plane = DataPlane(sim, spec.network)
    resources = (
        ResourceMonitor(sim, cluster, sample_interval_s=spec.resource_interval_s)
        if spec.monitor_resources
        else None
    )
    profile = spec.rate_profile()
    generators = build_generator_fleet(
        sim=sim,
        profile=profile,
        query=spec.query,
        rng_streams=[
            rng.stream(f"generator-{i}") for i in range(spec.generator.instances)
        ],
        config=spec.generator,
        horizon_s=spec.duration_s,
    )
    sut_queues = None
    brokers = []
    if spec.broker is not None:
        # Interpose the mediator: generators push into broker stages,
        # the SUT reads from the brokers' downstream queues.
        downstreams = []
        for generator in generators:
            downstream = DriverQueue(
                name=f"{generator.queue.name}-sut",
                capacity_weight=generator.queue.capacity_weight,
            )
            stage = BrokerStage(
                sim=sim,
                downstream=downstream,
                spec=spec.broker,
                share=1.0 / len(generators),
            )
            generator.queue = stage  # type: ignore[assignment]
            brokers.append(stage)
            downstreams.append(downstream)
        sut_queues = QueueSet(downstreams)
    engine_cls = engine_class(spec.engine)
    engine = engine_cls(
        sim=sim,
        cluster=cluster,
        query=spec.query,
        plane=plane,
        rng=rng.stream(f"engine-{spec.engine}"),
        resources=resources,
        config=spec.engine_config,
    )
    if spec.node_failure is not None:
        sim.schedule_at(
            spec.node_failure.fail_at_s,
            engine.inject_node_failure,
            spec.node_failure.nodes,
        )
    driver = BenchmarkDriver(
        sim=sim,
        engine=engine,
        generators=generators,
        duration_s=spec.duration_s,
        warmup_fraction=spec.warmup_fraction,
        throughput_interval_s=spec.throughput_interval_s,
        queues=sut_queues,
        keep_outputs=spec.keep_outputs,
    )
    result = driver.run()
    for stage in brokers:
        stage.stop()
    if resources is not None:
        resources.stop()
    return result
