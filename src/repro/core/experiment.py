"""Declarative experiment specification and runner.

An :class:`ExperimentSpec` captures everything that identifies a trial
in the paper's evaluation -- engine, query, cluster size, offered load,
duration, seed -- and :func:`run_experiment` assembles the full stack
(simulator, cluster, data plane, resource monitor, generator fleet,
engine, driver) and runs it.  All benchmarks, examples, and integration
tests go through this single entry point.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Union

from repro.autoscale.metrics import (
    compute_rescale_metrics,
    rescale_timeline_events,
)
from repro.autoscale.policy import AutoscaleSpec
from repro.autoscale.rescale import Autoscaler
from repro.core.broker import BrokerSpec, BrokerStage
from repro.core.driver import BenchmarkDriver, TrialResult
from repro.core.generator import GeneratorConfig, build_generator_fleet
from repro.core.queues import DriverQueue, QueueSet
from repro.detect.plane import DetectionPlane, DetectorSpec
from repro.engines import engine_class
from repro.engines.base import EngineConfig
from repro.faults.checkpoint import CheckpointSpec
from repro.faults.metrics import (
    compute_recovery_metrics,
    recovery_timeline_events,
)
from repro.faults.schedule import FaultSchedule
from repro.metrology.skew import SkewModel
from repro.metrology.watchdog import (
    AttemptRecord,
    TrialWatchdog,
    WatchdogSpec,
)
from repro.obs.context import ObsContext, ObsSpec
from repro.recovery.degradation import DegradationPolicy
from repro.recovery.reschedule import ReschedulePolicy
from repro.sim.clock import ClockSkewSpec
from repro.sim.cluster import ClusterSpec, paper_cluster
from repro.sim.network import DataPlane, NetworkSpec
from repro.sim.nodefail import NodeFailureSpec
from repro.sim.resources import ResourceMonitor
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.workloads.profiles import ConstantRate, RateProfile
from repro.workloads.queries import Query, WindowedAggregationQuery


@dataclass(frozen=True)
class ExperimentSpec:
    """One benchmark trial, fully specified."""

    engine: str = "flink"
    query: Query = field(default_factory=WindowedAggregationQuery)
    workers: int = 2
    profile: Union[RateProfile, float] = 0.5e6
    """Offered load: a :class:`RateProfile` or an events/s constant."""
    duration_s: float = 240.0
    warmup_fraction: float = 0.25
    seed: int = 1
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    engine_config: Optional[EngineConfig] = None
    network: NetworkSpec = field(default_factory=NetworkSpec)
    throughput_interval_s: float = 1.0
    resource_interval_s: float = 5.0
    monitor_resources: bool = True
    broker: Optional[BrokerSpec] = None
    """Insert a message-broker mediator between generators and the SUT
    (the design the paper argues against, Section III-A); used by the
    broker ablation benchmark."""
    keep_outputs: bool = False
    """Retain raw output tuples on the trial's collector (correctness
    checks and ablations; costs memory on long runs)."""
    node_failure: Optional[NodeFailureSpec] = None
    """Kill worker nodes mid-run (legacy one-shot form; shimmed onto
    :attr:`faults` as a single :class:`~repro.faults.schedule.NodeCrash`)."""
    faults: Optional[FaultSchedule] = None
    """Timeline of typed fault events injected mid-trial (the fault
    recovery benchmark; see :mod:`repro.faults`)."""
    checkpoint: Optional[CheckpointSpec] = None
    """Fault-tolerance configuration.  ``None`` uses the model defaults
    when faults are scheduled (and engages no checkpoint pauses in
    fault-free trials)."""
    observability: Optional[ObsSpec] = None
    """Metrics registry + lifecycle tracing configuration.  ``None``
    (the default) runs with observability fully disabled -- the hot
    path is byte-identical to a pre-observability build."""
    standby: int = 0
    """Hot spare worker nodes (``--standby N``).  With spares, the
    default reschedule policy promotes them after a NodeCrash instead
    of permanently losing the capacity (see :mod:`repro.recovery`)."""
    reschedule: Optional[ReschedulePolicy] = None
    """How failed capacity is replaced.  ``None`` derives a policy from
    :attr:`standby`: standby promotion when spares exist, else the
    legacy lose-capacity/fail-on-last-worker behaviour."""
    degradation: Optional[DegradationPolicy] = None
    """Load shedding + admission-ramp behaviour.  ``None`` is inert
    (the paper's binary failure rule)."""
    clock_skew: Optional[ClockSkewSpec] = None
    """Per-node clock errors applied to the *measurement plane* (event
    timestamps and sink reads pass through skewed clocks; see
    :mod:`repro.metrology.skew`).  ``None`` keeps the paper's implicit
    perfect-clock assumption.  SUT dynamics are identical either way --
    only the reported latencies (and the exported error bound) change."""
    autoscale: Optional[AutoscaleSpec] = None
    """Elastic scaling: a policy + bounds driving scale-out/scale-in
    from obs-registry signals (see :mod:`repro.autoscale`).  Requires
    metrics sampling; when :attr:`observability` is ``None`` a
    metrics-only ObsSpec is enabled automatically."""
    detector: Optional[DetectorSpec] = None
    """Failure-detection plane: seeded heartbeats feeding a pluggable
    detector whose verdicts drive evictions (see :mod:`repro.detect`).
    ``None`` (the default) runs without any detection plane -- the
    pre-existing fixed-timeout supervisor semantics, bit for bit."""

    def resolved_faults(self) -> Optional[FaultSchedule]:
        """The effective fault schedule: ``faults``, or ``node_failure``
        shimmed onto the new timeline.  Setting both is ambiguous."""
        if self.faults is not None and self.node_failure is not None:
            raise ValueError(
                "set either faults or node_failure, not both "
                "(node_failure is the legacy one-shot form)"
            )
        if self.faults is not None:
            return self.faults
        if self.node_failure is not None:
            return FaultSchedule.from_node_failure(self.node_failure)
        return None

    def rate_profile(self) -> RateProfile:
        if isinstance(self.profile, RateProfile):
            return self.profile
        return ConstantRate(float(self.profile))

    def cluster(self) -> ClusterSpec:
        base = paper_cluster(self.workers)
        if self.standby:
            return replace(base, standby=self.standby)
        return base

    def with_rate(self, rate: float) -> "ExperimentSpec":
        """The same experiment at a different constant offered load."""
        return replace(self, profile=float(rate))

    def with_seed(self, seed: int) -> "ExperimentSpec":
        return replace(self, seed=seed)

    def label(self) -> str:
        profile = self.rate_profile()
        if isinstance(profile, ConstantRate):
            load = f"{profile.rate / 1e6:.3f} M/s"
        else:
            load = type(profile).__name__
        return (
            f"{self.engine}/{self.workers}w/{self.query.kind}@{load}"
        )


def run_experiment(
    spec: ExperimentSpec,
    driver_hook: Optional[Callable[["BenchmarkDriver"], None]] = None,
) -> TrialResult:
    """Build the full stack for ``spec``, run it, return the result.

    ``driver_hook`` (if given) is called with the assembled
    :class:`BenchmarkDriver` just before the trial runs -- the seam the
    online AIMD rate controller uses to install itself on the driver
    side without the engine ever seeing it.
    """
    sim = Simulator()
    rng = RngRegistry(seed=spec.seed)
    cluster = spec.cluster()
    plane = DataPlane(sim, spec.network)
    resources = (
        ResourceMonitor(sim, cluster, sample_interval_s=spec.resource_interval_s)
        if spec.monitor_resources
        else None
    )
    profile = spec.rate_profile()
    observability = spec.observability
    if spec.autoscale is not None and observability is None:
        # The autoscaler reads obs-registry samples; a trial that asks
        # for it without tracing gets metrics-only observability.
        observability = ObsSpec()
    obs = ObsContext.build(sim, observability)
    generators = build_generator_fleet(
        sim=sim,
        profile=profile,
        query=spec.query,
        rng_streams=[
            rng.stream(f"generator-{i}") for i in range(spec.generator.instances)
        ],
        config=spec.generator,
        horizon_s=spec.duration_s,
        sampler=obs.sampler if obs is not None else None,
    )
    sut_queues = None
    brokers = []
    if spec.broker is not None:
        # Interpose the mediator: generators push into broker stages,
        # the SUT reads from the brokers' downstream queues.
        downstreams = []
        for generator in generators:
            downstream = DriverQueue(
                name=f"{generator.queue.name}-sut",
                capacity_weight=generator.queue.capacity_weight,
            )
            stage = BrokerStage(
                sim=sim,
                downstream=downstream,
                spec=spec.broker,
                share=1.0 / len(generators),
            )
            generator.queue = stage  # type: ignore[assignment]
            brokers.append(stage)
            downstreams.append(downstream)
        sut_queues = QueueSet(downstreams)
    faults = spec.resolved_faults()
    if faults is not None:
        faults.validate_against(spec.duration_s)
    checkpoint = spec.checkpoint
    if checkpoint is None and faults is not None:
        checkpoint = CheckpointSpec()
    engine_cls = engine_class(spec.engine)
    engine = engine_cls(
        sim=sim,
        cluster=cluster,
        query=spec.query,
        plane=plane,
        rng=rng.stream(f"engine-{spec.engine}"),
        resources=resources,
        config=spec.engine_config,
        checkpoint=checkpoint,
        obs=obs,
        reschedule=spec.reschedule,
        degradation=spec.degradation,
    )
    if faults is not None:
        for event in faults.ordered():
            if not event.driver_side:
                sim.schedule_at(event.at_s, engine.inject_fault, event)
    skew = (
        SkewModel.build(
            spec.clock_skew,
            rng=rng.stream("clocks"),
            instances=spec.generator.instances,
        )
        if spec.clock_skew is not None
        else None
    )
    driver = BenchmarkDriver(
        sim=sim,
        engine=engine,
        generators=generators,
        duration_s=spec.duration_s,
        warmup_fraction=spec.warmup_fraction,
        throughput_interval_s=spec.throughput_interval_s,
        queues=sut_queues,
        keep_outputs=spec.keep_outputs,
        obs=obs,
        skew=skew,
    )
    if faults is not None:
        # Driver-side faults route to the driver, not the engine: the
        # SUT never learns its instrument is being injured.
        for event in faults.ordered():
            if event.driver_side:
                sim.schedule_at(event.at_s, driver.inject_fault, event)
    detection = None
    if spec.detector is not None:
        # Built after the engine's fault injections are scheduled so
        # the plane's same-timestamp handlers fire after them (the
        # simulator preserves insertion order on ties) and can read the
        # engine-derived pause from the fault log.  The plane draws
        # only from its own name-keyed RNG stream, so enabling it never
        # perturbs generator or engine randomness.
        detection = DetectionPlane(
            sim=sim,
            engine=engine,
            spec=spec.detector,
            schedule=faults,
            rng=rng.stream("detect"),
            duration_s=spec.duration_s,
        )
        detection.install()
    autoscaler = None
    if spec.autoscale is not None:
        assert obs is not None  # guaranteed by the ObsSpec fallback above
        autoscaler = Autoscaler(engine, obs.registry, spec.autoscale)
        autoscaler.install()
    if driver_hook is not None:
        driver_hook(driver)
    result = driver.run()
    for stage in brokers:
        stage.stop()
    if resources is not None:
        resources.stop()
    if faults is not None:
        fault_log = list(engine.fault_log) + list(driver.fault_log)
        result.recovery = compute_recovery_metrics(result, fault_log)
        if result.observability is not None and result.recovery:
            # Recovery metrology is computed driver-side after the run;
            # fold its milestones back into the observability timeline
            # so traces alive through an outage carry them.
            for event in recovery_timeline_events(result.recovery):
                result.observability.trace_log.add_event(**event)
            result.observability.trace_log.annotate()
    if autoscaler is not None:
        autoscaler.finalize(spec.duration_s)
        lag = obs.registry.series.get("driver.watermark_lag_s")
        result.autoscale = compute_rescale_metrics(
            engine.rescale_log,
            lag.times if lag is not None else [],
            lag.values if lag is not None else [],
            spec.duration_s,
        )
        result.diagnostics.update(autoscaler.diagnostics())
        if result.observability is not None and result.autoscale:
            for event in rescale_timeline_events(result.autoscale):
                result.observability.trace_log.add_event(**event)
            result.observability.trace_log.annotate()
    if detection is not None:
        result.detection = detection.finalize(result)
        result.diagnostics.update(detection.diagnostics())
    if skew is not None and result.observability is not None:
        # NTP sync epochs as timeline annotations: a latency step that
        # coincides with a sync is a clock artifact, not a SUT event.
        for at_s in skew.sync_epochs(spec.duration_s):
            result.observability.trace_log.add_event("clock.sync", at_s)
        result.observability.trace_log.annotate()
    return result


def run_experiment_with_watchdog(
    spec: ExperimentSpec,
    watchdog: WatchdogSpec,
    run: Callable[..., TrialResult] = run_experiment,
    driver_hook: Optional[Callable[["BenchmarkDriver"], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> TrialResult:
    """Run one trial under the trial watchdog with retry/backoff.

    Each attempt installs a fresh :class:`TrialWatchdog` on the driver
    (via the same seam as ``driver_hook``, which still runs if given).
    An attempt aborted by the watchdog is retried up to
    ``watchdog.max_attempts`` total attempts with capped exponential
    backoff between them, bumping the seed per attempt when
    ``watchdog.reseed`` (a deterministic stall replays bit-for-bit
    otherwise).  Per-attempt records are kept on the returned result
    (``result.attempts``) and summarised in its diagnostics -- a trial
    that needed three tries is a different measurement than one that
    passed first time, and the report must say so.
    """
    attempts: list = []
    result: Optional[TrialResult] = None
    for attempt in range(watchdog.max_attempts):
        attempt_spec = (
            spec.with_seed(spec.seed + attempt)
            if watchdog.reseed and attempt
            else spec
        )
        dog = TrialWatchdog(watchdog)

        def hook(driver, dog=dog):
            dog.install(driver)
            if driver_hook is not None:
                driver_hook(driver)

        wall_start = time.monotonic()
        result = run(attempt_spec, driver_hook=hook)
        record = AttemptRecord(
            attempt=attempt,
            seed=attempt_spec.seed,
            wall_s=time.monotonic() - wall_start,
            outcome=dog.outcome(result),
            failure=result.failure,
        )
        attempts.append(record)
        if dog.tripped is None:
            break
        if attempt + 1 < watchdog.max_attempts:
            backoff = watchdog.backoff_s(attempt)
            record.backoff_s = backoff
            if backoff > 0:
                sleep(backoff)
    assert result is not None
    result.attempts = attempts
    result.diagnostics["watchdog.attempts"] = float(len(attempts))
    result.diagnostics["watchdog.retries"] = float(len(attempts) - 1)
    result.diagnostics["watchdog.tripped"] = (
        1.0 if attempts[-1].outcome in ("timeout", "stalled") else 0.0
    )
    return result


def runner_for(
    watchdog: Optional[WatchdogSpec] = None,
) -> Callable[[ExperimentSpec], TrialResult]:
    """The trial runner for an optional watchdog: plain, or wrapped.

    Built from module-level callables only, so the result is picklable
    and can be shipped to :mod:`repro.sched` worker processes (a lambda
    closing over the spec could not be).
    """
    if watchdog is None:
        return run_experiment
    return functools.partial(run_experiment_with_watchdog, watchdog=watchdog)
