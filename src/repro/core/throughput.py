"""Driver-side throughput and queue-occupancy measurement.

Section III-C: "we measure throughput at the queues between the data
generator and the SUT" -- throughput is the rate at which the SUT
*pulls* events out of the driver queues, not the rate of result tuples
(which differs from the input rate for aggregations, as the paper notes
about prior work).  The same monitor samples queue occupancy, which is
the raw signal behind the sustainable-throughput test and behind
"observing backpressure" from outside the SUT (Experiment 7).
"""

from __future__ import annotations

from typing import Optional

from repro.core.metrics import TimeSeries
from repro.core.queues import QueueSet
from repro.sim.simulator import PeriodicProcess, Simulator


class ThroughputMonitor:
    """Periodic sampler of the driver queues.

    Series produced -- each raw sample is timestamped at the moment it
    is taken, i.e. at the *end* of the interval it covers (note that
    :meth:`TimeSeries.binned` views of these series stamp bin *starts*,
    so a binned view shifts labels one interval earlier than the raw
    samples):

    - ``ingest_series``: events/s pulled by the SUT (Figure 9);
    - ``offered_series``: events/s pushed by the generators;
    - ``occupancy_series``: events waiting across all queues;
    - ``queue_delay_series``: age (since *enqueue*, robust to event-time
      disorder) of the oldest queued cohort, i.e. the latency floor
      imposed by queueing right now.
    """

    def __init__(
        self,
        sim: Simulator,
        queues: QueueSet,
        interval_s: float = 1.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._sim = sim
        self._queues = queues
        self.interval_s = interval_s
        self.ingest_series = TimeSeries()
        self.offered_series = TimeSeries()
        self.occupancy_series = TimeSeries()
        self.queue_delay_series = TimeSeries()
        self._last_pulled = queues.total_pulled_weight
        self._last_pushed = queues.total_pushed_weight
        self._process: Optional[PeriodicProcess] = sim.every(
            interval_s, self._sample
        )

    def _sample(self, sim: Simulator) -> None:
        pulled = self._queues.total_pulled_weight
        pushed = self._queues.total_pushed_weight
        self.ingest_series.append(
            sim.now, (pulled - self._last_pulled) / self.interval_s
        )
        self.offered_series.append(
            sim.now, (pushed - self._last_pushed) / self.interval_s
        )
        self.occupancy_series.append(sim.now, self._queues.total_queued_weight)
        self.queue_delay_series.append(
            sim.now, self._queues.max_oldest_wait(sim.now)
        )
        self._last_pulled = pulled
        self._last_pushed = pushed

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    @property
    def sample_count(self) -> int:
        """Number of sampling ticks taken so far."""
        return len(self.ingest_series)

    def perf_counters(self) -> dict:
        """Driver-side metrology counters for TrialResult.diagnostics."""
        return {
            "monitor.samples": float(self.sample_count),
            "monitor.interval_s": float(self.interval_s),
        }

    def mean_ingest_rate(self, start_time: float = 0.0) -> float:
        """Average pull rate after ``start_time`` (the measured
        throughput reported in Tables I and III)."""
        window = self.ingest_series.window(start_time)
        return window.mean() if len(window) else 0.0

    def occupancy_slope(self, start_time: float = 0.0) -> float:
        """Queue growth in events/s -- the backlog trend."""
        return self._queues_window(self.occupancy_series, start_time).slope_per_s()

    def queue_delay_at_end(self, tail_fraction: float = 0.25) -> float:
        """Mean oldest-event age over the final fraction of the run."""
        series = self.queue_delay_series
        if not len(series):
            return 0.0
        t0 = series.times[0]
        t1 = series.times[-1]
        cut = t1 - (t1 - t0) * tail_fraction
        tail = series.window(cut)
        return tail.mean() if len(tail) else 0.0

    @staticmethod
    def _queues_window(series: TimeSeries, start_time: float) -> TimeSeries:
        return series.window(start_time)
