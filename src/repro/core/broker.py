"""An optional message-broker mediator between generators and the SUT.

The paper argues *against* placing a broker (Kafka-style) between the
data generator and the SUT (Section III-A): the broker persists events
to disk, adds a de-/serialisation layer, and may re-partition data
before it reaches the SUT sources -- all of which made the broker the
bottleneck of the Yahoo streaming benchmark.  This module exists to
*reproduce that argument*: the ablation benchmark inserts a
:class:`BrokerStage` in front of the driver queues and shows the
mediator capping throughput and polluting latency.

The broker model: events pushed by a generator are persisted (fixed
per-event cost), optionally re-partitioned (a fraction pays an extra
hop), and released to the SUT-facing queue no faster than the broker's
forwarding capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.queues import DriverQueue
from repro.core.records import Record
from repro.sim.simulator import PeriodicProcess, Simulator


@dataclass(frozen=True)
class BrokerSpec:
    """Performance characteristics of the mediator."""

    forward_capacity_events_per_s: float = 0.7e6
    """Aggregate rate the broker can serve to consumers -- the Yahoo
    benchmark's observed bottleneck."""
    persistence_delay_s: float = 0.05
    """Write-to-log + page-cache latency before an event is consumable."""
    repartition_fraction: float = 0.5
    """Fraction of events landing in a partition that does not match the
    SUT's partitioning and paying an extra forwarding hop."""
    repartition_delay_s: float = 0.04
    tick_interval_s: float = 0.05


class BrokerStage:
    """A mediator stage feeding one SUT-facing driver queue.

    Generators push into the broker; a periodic forwarder releases
    events to the downstream queue at the broker's capacity, after the
    persistence (and possibly re-partition) delay.  Event-time
    timestamps are untouched -- the added delay therefore shows up in
    event-time latency, exactly the distortion the paper describes.
    """

    def __init__(
        self,
        sim: Simulator,
        downstream: DriverQueue,
        spec: BrokerSpec,
        share: float = 1.0,
    ) -> None:
        if not 0 < share <= 1:
            raise ValueError(f"share must be in (0, 1], got {share}")
        self.sim = sim
        self.spec = spec
        self.downstream = downstream
        self.share = share
        self._staged = DriverQueue(name=f"{downstream.name}-broker")
        self._released_through = 0.0
        self.forwarded_weight = 0.0
        self._process: Optional[PeriodicProcess] = sim.every(
            spec.tick_interval_s, self._forward
        )

    def push(self, record: Record, at_time: float = float("nan")) -> None:
        """Generator-facing push (same interface as DriverQueue)."""
        self._staged.push(record, at_time=at_time)

    def push_block(self, block, at_time: float = float("nan")) -> None:
        """Columnar generator-facing push (same interface as DriverQueue).

        The staged queue's scalar ``pull`` in :meth:`_forward`
        materialises block heads back into Records, so the broker's
        per-record persistence/repartition split is unchanged.
        """
        self._staged.push_block(block, at_time=at_time)

    def overflow_index(self, weights):
        """Delegate capacity probing to the staged queue."""
        return self._staged.overflow_index(weights)

    def _forward(self, sim: Simulator) -> None:
        budget = (
            self.spec.forward_capacity_events_per_s
            * self.share
            * self.spec.tick_interval_s
        )
        now = sim.now
        for record in self._staged.pull(budget):
            # Only events past their persistence (+ repartition) delay
            # may be served; later-generated ones wait a tick.
            delay = self.spec.persistence_delay_s
            # A deterministic share of the weight pays the extra hop.
            direct = record.weight * (1.0 - self.spec.repartition_fraction)
            rerouted = record.weight - direct
            if direct > 0:
                self._release(record, direct, now + delay)
            if rerouted > 0:
                self._release(
                    record,
                    rerouted,
                    now + delay + self.spec.repartition_delay_s,
                )

    def _release(self, record: Record, weight: float, at_time: float) -> None:
        clone = Record(
            key=record.key,
            value=record.value,
            event_time=record.event_time,
            weight=weight,
            stream=record.stream,
        )
        self.sim.schedule_at(
            max(at_time, self.sim.now), self._deliver, clone
        )

    def _deliver(self, record: Record) -> None:
        self.downstream.push(record, at_time=self.sim.now)
        self.forwarded_weight += record.weight

    @property
    def staged_weight(self) -> float:
        """Events sitting inside the broker (its own backlog)."""
        return self._staged.queued_weight

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None
