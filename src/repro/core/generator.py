"""The scalable on-the-fly data generator.

Section III of the paper argues for generating data on the fly instead
of reading from a message broker (which had been the bottleneck of the
Yahoo streaming benchmark), with these properties, all implemented here:

- N parallel generator instances, each paired with its own driver queue
  on a driver node ("Each data generator generates 100M events with
  constant speed using 16 parallel instances");
- configurable, rate-controlled generation ("with constant speed
  throughout the experiment"), provisioned faster than the fastest SUT
  so generation never bottlenecks a trial;
- every event timestamped at generation time -- the event-time anchor.

Two key-emission modes:

- ``dense`` (benchmark default): each tick emits one weighted cohort per
  catalog key, with weights following the key distribution's pmf.  This
  is the fluid limit of the real generator: at the paper's event rates
  (~10^5..10^6 events/s) every key receives many events per tick, so the
  deterministic weights match the law of large numbers and the per-key
  max-event-time anchors are exact.
- ``sampled``: each tick draws ``keys_per_cohort`` random keys and
  splits the tick's weight among them -- retains sampling noise; used by
  tests and the small-scale examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.batch import RecordBlock, vector_enabled
from repro.core.queues import DriverQueue
from repro.core.records import ADS, PURCHASES, Record
from repro.sim.simulator import PeriodicProcess, Simulator
from repro.workloads.disorder import DisorderSpec
from repro.workloads.events import MAX_GEM_PACK_PRICE, MIN_GEM_PACK_PRICE
from repro.workloads.profiles import RateProfile
from repro.workloads.queries import Query, WindowedJoinQuery

DENSE = "dense"
SAMPLED = "sampled"


@dataclass(frozen=True)
class GeneratorConfig:
    """Sizing and mode of the generator fleet."""

    instances: int = 4
    tick_interval_s: float = 0.05
    mode: str = DENSE
    keys_per_cohort: int = 8
    """Keys drawn per tick in ``sampled`` mode."""
    queue_capacity_seconds: float = 120.0
    """Driver-queue capacity in seconds of peak generation; exceeding it
    is the paper's dropped-connection failure."""
    disorder: Optional[DisorderSpec] = None
    """Emit a fraction of events with lagged event times (out-of-order
    streams -- the paper's future-work extension)."""
    overprovision_factor: float = 2.0
    """How much faster than its fair share each instance can generate.
    The paper provisions generators "faster than the fastest SUT"; this
    makes that headroom explicit so the fleet can redistribute a dead
    instance's share over survivors -- and so the harness can *check*
    when redistribution exceeds the provisioned capacity."""
    rebalance_detection_s: float = 2.0
    """Seconds before the fleet supervisor notices a dead generator and
    rebalances its share over the survivors."""

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError(f"instances must be >= 1, got {self.instances}")
        if self.tick_interval_s <= 0:
            raise ValueError(
                f"tick_interval_s must be positive, got {self.tick_interval_s}"
            )
        if self.mode not in (DENSE, SAMPLED):
            raise ValueError(f"mode must be 'dense' or 'sampled', got {self.mode!r}")
        if self.keys_per_cohort < 1:
            raise ValueError("keys_per_cohort must be >= 1")
        if self.queue_capacity_seconds <= 0:
            raise ValueError(
                f"queue_capacity_seconds must be positive, "
                f"got {self.queue_capacity_seconds}"
            )
        if self.overprovision_factor < 1.0:
            raise ValueError(
                f"overprovision_factor must be >= 1, "
                f"got {self.overprovision_factor}"
            )
        if self.rebalance_detection_s <= 0:
            raise ValueError(
                f"rebalance_detection_s must be positive, "
                f"got {self.rebalance_detection_s}"
            )

    @property
    def max_share(self) -> float:
        """Largest rate share one instance can serve within its
        provisioned capacity."""
        return min(1.0, self.overprovision_factor / self.instances)


class DataGenerator:
    """One generator instance feeding one driver queue."""

    def __init__(
        self,
        sim: Simulator,
        queue: DriverQueue,
        profile: RateProfile,
        query: Query,
        rng: np.random.Generator,
        config: GeneratorConfig,
        share: float,
        sampler=None,
    ) -> None:
        if not 0 < share <= 1:
            raise ValueError(f"share must be in (0, 1], got {share}")
        self.sim = sim
        self.queue = queue
        self.profile = profile
        self.query = query
        self.rng = rng
        self.config = config
        self.share = share
        # Optional TraceSampler (repro.obs.trace); shared by the fleet
        # so the 1-in-N counter runs over the global cohort sequence.
        self.sampler = sampler
        self.generated_weight = 0.0
        self._pmf = query.keys.pmf()
        # Columnar dense emission: one RecordBlock per (stream, tick)
        # instead of one Record per catalog key.  Precompute the
        # positive-mass key/mass columns once (the scalar loop's
        # ``if mass <= 0: continue`` filter).  Sampled mode stays
        # record-at-a-time in both engine modes (per-record RNG draws).
        self._vector = vector_enabled() and config.mode == DENSE
        if self._vector:
            mask = self._pmf > 0
            self._dense_keys = np.nonzero(mask)[0].astype(np.int64)
            self._dense_mass = np.asarray(self._pmf, dtype=np.float64)[mask]
        self._mean_price = (MIN_GEM_PACK_PRICE + MAX_GEM_PACK_PRICE) / 2.0
        self._is_join = isinstance(query, WindowedJoinQuery)
        self._purchases_share = (
            query.purchases_share if self._is_join else 1.0
        )
        self._process: Optional[PeriodicProcess] = None
        self.crashed = False
        self._slow_until = float("-inf")
        self._slow_factor = 1.0

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("generator already started")
        if self.crashed:
            return
        self._process = self.sim.every(
            self.config.tick_interval_s, self._tick, start=self.sim.now
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # -- driver-side fault surface ----------------------------------------

    def crash(self) -> None:
        """Kill this instance permanently (GeneratorCrash)."""
        self.crashed = True
        self.stop()

    def set_share(self, share: float) -> None:
        """Rebalance: serve ``share`` of the offered profile from now on.

        Capped by the instance's provisioned capacity
        (:attr:`GeneratorConfig.max_share`) -- a generator cannot emit
        faster than it was provisioned, no matter what the fleet asks.
        """
        if share <= 0:
            raise ValueError(f"share must be positive, got {share}")
        self.share = min(share, self.config.max_share)

    def slow(self, until: float, factor: float) -> None:
        """Degrade this instance to ``factor`` of its rate until
        ``until`` (DriverNodeSlow)."""
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self._slow_until = until
        self._slow_factor = factor

    # -- generation -------------------------------------------------------

    def _tick(self, sim: Simulator) -> None:
        rate = self.profile.rate_at(sim.now) * self.share
        if sim.now < self._slow_until:
            rate *= self._slow_factor
        weight = rate * self.config.tick_interval_s
        if weight <= 0:
            return
        now = sim.now
        if self._is_join:
            purchases = weight * self._purchases_share
            ads = weight - purchases
            self._emit_stream(PURCHASES, purchases, now)
            self._emit_stream(ADS, ads, now)
        else:
            self._emit_stream(PURCHASES, weight, now)
        self.generated_weight += weight

    def _emit_stream(self, stream: str, weight: float, now: float) -> None:
        if weight <= 0:
            return
        disorder = self.config.disorder
        if disorder is not None and disorder.fraction > 0:
            late_weight = weight * disorder.fraction
            weight -= late_weight
            lag = disorder.sample_delay(self.rng)
            late_time = max(0.0, now - lag)
            if self.config.mode == DENSE:
                self._emit_dense(stream, late_weight, late_time)
            else:
                self._emit_sampled(stream, late_weight, late_time)
        if weight <= 0:
            return
        if self.config.mode == DENSE:
            self._emit_dense(stream, weight, now)
        else:
            self._emit_sampled(stream, weight, now)

    def _emit_dense(self, stream: str, weight: float, now: float) -> None:
        if self._vector:
            self._emit_dense_block(stream, weight, now)
            return
        value = self._mean_price if stream == PURCHASES else 0.0
        sampler = self.sampler
        push = self.queue.push
        if sampler is None:
            for key, mass in enumerate(self._pmf):
                if mass <= 0:
                    continue
                push(
                    Record(
                        key=key,
                        value=value,
                        event_time=now,
                        weight=weight * mass,
                        stream=stream,
                    ),
                    at_time=now,
                )
            return
        # Batched sampling: count down a local int instead of paying a
        # sampler call per cohort (see TraceSampler.due_in/take/sync).
        # Unsampled cohorts build the exact Record the sampler-None loop
        # builds -- the trace kwarg is only paid on the 1-in-N hit.
        countdown = sampler.due_in()
        for key, mass in enumerate(self._pmf):
            if mass <= 0:
                continue
            countdown -= 1
            if countdown:
                push(
                    Record(
                        key=key,
                        value=value,
                        event_time=now,
                        weight=weight * mass,
                        stream=stream,
                    ),
                    at_time=now,
                )
                continue
            cohort_weight = weight * mass
            trace = sampler.take(key, stream, cohort_weight, now)
            countdown = sampler.sample_rate
            push(
                Record(
                    key=key,
                    value=value,
                    event_time=now,
                    weight=cohort_weight,
                    stream=stream,
                    trace=trace,
                ),
                at_time=now,
            )
        sampler.sync(countdown)

    def _emit_dense_block(self, stream: str, weight: float, now: float) -> None:
        """Columnar dense emission: one block per (stream, tick).

        Bitwise twin of the scalar loops above: the weights column is
        the same element-wise ``weight * mass`` product, and the sampler
        interaction replays the scalar countdown exactly -- including
        the overflow quirk, where the scalar loop takes the overflowing
        cohort's trace *before* the push raises and never reaches the
        final ``sync`` (the counter stays stale on a dropped trial).
        """
        value = self._mean_price if stream == PURCHASES else 0.0
        weights = weight * self._dense_mass
        sampler = self.sampler
        n = len(weights)
        block_traces = []
        last_hit = -1
        due = 0
        if sampler is not None:
            due = sampler.due_in()
            rate = sampler.sample_rate
            overflow = self.queue.overflow_index(weights)
            # Hits at the scalar countdown's zero crossings, truncated
            # at the cohort whose push would abort the emission.
            limit = n if overflow is None else min(n, overflow + 1)
            for h in range(due - 1, limit, rate):
                trace = sampler.take(
                    int(self._dense_keys[h]), stream, float(weights[h]), now
                )
                block_traces.append((h, trace))
                last_hit = h
        block = RecordBlock(
            self._dense_keys,
            weights,
            value=value,
            event_time=now,
            stream=stream,
            traces=block_traces,
            _checked=True,
        )
        # On overflow this raises ConnectionDropped after admitting the
        # prefix, and the sync below is skipped -- like the scalar loop.
        self.queue.push_block(block, at_time=now)
        if sampler is not None:
            if last_hit >= 0:
                sampler.sync(rate - (n - 1 - last_hit))
            else:
                sampler.sync(due - n)

    def _emit_sampled(self, stream: str, weight: float, now: float) -> None:
        k = self.config.keys_per_cohort
        keys = self.query.keys.sample(self.rng, k)
        per_key_weight = weight / k
        sampler = self.sampler
        for key in keys:
            if stream == PURCHASES:
                value = float(
                    self.rng.uniform(MIN_GEM_PACK_PRICE, MAX_GEM_PACK_PRICE)
                )
            else:
                value = 0.0
            trace = (
                sampler.maybe_trace(int(key), stream, per_key_weight, now)
                if sampler is not None
                else None
            )
            self.queue.push(
                Record(
                    key=int(key),
                    value=value,
                    event_time=now,
                    weight=per_key_weight,
                    stream=stream,
                    trace=trace,
                ),
                at_time=now,
            )


def build_generator_fleet(
    sim: Simulator,
    profile: RateProfile,
    query: Query,
    rng_streams: List[np.random.Generator],
    config: GeneratorConfig,
    horizon_s: float,
    sampler=None,
) -> List[DataGenerator]:
    """Create ``config.instances`` generators with equal rate shares.

    Each generator gets its own queue sized from the profile's peak rate
    and its own RNG stream (``rng_streams`` must have one per instance).
    An optional trace ``sampler`` is shared across the fleet.
    """
    if len(rng_streams) != config.instances:
        raise ValueError(
            f"need {config.instances} RNG streams, got {len(rng_streams)}"
        )
    peak_share = profile.peak(horizon_s) / config.instances
    capacity = max(1.0, peak_share * config.queue_capacity_seconds)
    generators = []
    for i in range(config.instances):
        queue = DriverQueue(name=f"queue-{i}", capacity_weight=capacity)
        generators.append(
            DataGenerator(
                sim=sim,
                queue=queue,
                profile=profile,
                query=query,
                rng=rng_streams[i],
                config=config,
                share=1.0 / config.instances,
                sampler=sampler,
            )
        )
    return generators
