"""Records and cohorts: the data-plane currency of the framework.

The paper's generator emits 100M individual events per run.  Simulating
every event as a Python object would be prohibitively slow, so the
generator emits **cohorts**: a :class:`Record` with ``weight = n`` stands
for ``n`` same-key events produced in one generation tick, all carrying
the cohort's ``event_time`` (the generator timestamps events at creation,
Section III-C).  All framework semantics -- window assignment, the
max-event-time rule for windowed outputs, queueing, latency measurement
-- are defined per-record and are therefore identical for weight-1
records (used throughout the unit tests) and weighted cohorts (used at
benchmark scale).  Weights only scale cost/byte accounting and weighted
statistics.

Two streams exist, mirroring Listing 1 of the paper:

- ``PURCHASES(userID, gemPackID, price, time)`` -- ``value`` is the price.
- ``ADS(userID, gemPackID, time)`` -- ``value`` is unused (0.0).

``key`` is the join/grouping key: ``gemPackID`` for the aggregation
query and the composite ``(userID, gemPackID)`` -- reduced to one integer
key -- for the join query.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

PURCHASES = "purchases"
ADS = "ads"
STREAMS = (PURCHASES, ADS)


class Record:
    """One event cohort flowing from generator to sink.

    Attributes
    ----------
    key:
        Integer grouping/join key (gemPackID or composite).
    value:
        Payload aggregated by queries (gem-pack price for purchases).
    event_time:
        Generator timestamp (simulated seconds) -- Definition 1's anchor.
    weight:
        Number of real events this cohort stands for (>= 1).
    stream:
        ``"purchases"`` or ``"ads"``.
    ingest_time:
        Stamped by the SUT source operator when the record enters the
        system (Definition 2's anchor); ``None`` until ingested.
    trace:
        Optional lifecycle trace attached by the observability sampler
        (:mod:`repro.obs.trace`); ``None`` for all but 1-in-N cohorts.
        When a cohort splits, exactly one part keeps the trace.
    """

    __slots__ = (
        "key", "value", "event_time", "weight", "stream", "ingest_time",
        "trace",
    )

    def __init__(
        self,
        key: int,
        value: float,
        event_time: float,
        weight: float = 1.0,
        stream: str = PURCHASES,
        ingest_time: Optional[float] = None,
        trace: Optional[object] = None,
    ) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if stream not in STREAMS:
            raise ValueError(f"unknown stream {stream!r}; expected one of {STREAMS}")
        self.key = key
        self.value = value
        self.event_time = event_time
        self.weight = weight
        self.stream = stream
        self.ingest_time = ingest_time
        self.trace = trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Record(key={self.key}, value={self.value!r}, "
            f"event_time={self.event_time:.3f}, weight={self.weight:g}, "
            f"stream={self.stream!r}, ingest_time={self.ingest_time!r})"
        )


class OutputRecord:
    """A result tuple emitted by the SUT's output (sink) operator.

    Carries both latency anchors:

    - ``event_time``: the *maximum event-time of all contributing inputs*
      (Definition 3 / 4 of the paper), so buffering time inside a window
      is excluded from event-time latency;
    - ``processing_time``: the maximum ingest-time of all contributing
      inputs (Definition 4).

    The driver computes latencies at emission:
    ``event_latency = emit_time - event_time`` and
    ``processing_latency = emit_time - processing_time``.
    """

    __slots__ = (
        "key",
        "value",
        "event_time",
        "processing_time",
        "emit_time",
        "weight",
        "window_end",
        "traces",
    )

    def __init__(
        self,
        key: int,
        value: float,
        event_time: float,
        processing_time: float,
        emit_time: float,
        weight: float = 1.0,
        window_end: float = float("nan"),
        traces: Optional[List[object]] = None,
    ) -> None:
        self.key = key
        self.value = value
        self.event_time = event_time
        self.processing_time = processing_time
        self.emit_time = emit_time
        self.weight = weight
        self.window_end = window_end
        # Lifecycle traces of sampled input cohorts that contributed to
        # this output (None unless tracing is on AND a traced cohort
        # landed in this output's window+key).
        self.traces = traces

    @property
    def event_time_latency(self) -> float:
        """Definition 1: emission time minus (max contributing) event-time."""
        return self.emit_time - self.event_time

    @property
    def processing_time_latency(self) -> float:
        """Definition 2: emission time minus (max contributing) ingest-time."""
        return self.emit_time - self.processing_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OutputRecord(key={self.key}, value={self.value!r}, "
            f"event_latency={self.event_time_latency:.3f}, "
            f"processing_latency={self.processing_time_latency:.3f}, "
            f"weight={self.weight:g})"
        )


def total_weight(records: Iterable[Record]) -> float:
    """Sum of cohort weights = number of real events represented."""
    return sum(r.weight for r in records)


def split_cohort(record: Record, parts: int) -> List[Record]:
    """Split a cohort into ``parts`` equal-weight cohorts (same times).

    Used when a cohort must be divided across ingestion boundaries (e.g.
    partially admitted by a rate limiter).  Weights are divided exactly;
    the split is lossless with respect to total weight.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    share = record.weight / parts
    return [
        Record(
            key=record.key,
            value=record.value,
            event_time=record.event_time,
            weight=share,
            stream=record.stream,
            ingest_time=record.ingest_time,
            # The trace follows exactly one part so each traced event
            # has a single end-to-end carrier.
            trace=record.trace if i == 0 else None,
        )
        for i in range(parts)
    ]
