"""The benchmark driver: full separation of driver and SUT.

Section III-C: "We choose to isolate the benchmark driver, i.e., the
data generator, queues, and measurements from the SUT. ... we measure
throughput at the queues between the data generator and the SUT and
measure latency at the sink operator of the SUT."

The driver owns everything except the engine:

- the generator fleet and their queues (driver nodes);
- the throughput monitor (at the queues) and the latency collector
  (fed by the sink callback);
- the failure rules: a dropped queue connection or an engine failure
  halts the trial with a "cannot sustain" verdict;
- the warmup policy ("We use 25% of the input data as a warmup"): all
  reported statistics exclude outputs emitted before the warmup end.

The engine only ever receives ``(queues, sink)`` -- it cannot observe or
influence measurement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.generator import (
    DataGenerator,
    GeneratorConfig,
    build_generator_fleet,
)
from repro.autoscale.metrics import RescaleMetrics
from repro.core.latency import EVENT_TIME, PROCESSING_TIME, LatencyCollector
from repro.core.metrics import StatSummary
from repro.core.queues import QueueSet
from repro.core.throughput import ThroughputMonitor
from repro.detect.metrics import DetectionMetrics
from repro.engines.base import StreamingEngine
from repro.engines.operators.sink import Sink
from repro.faults.metrics import RecoveryMetrics
from repro.faults.schedule import (
    DriverNodeSlow,
    DriverQueueLoss,
    FaultEvent,
    GeneratorCrash,
)
from repro.metrology.skew import SkewModel
from repro.metrology.watchdog import AttemptRecord
from repro.obs.context import ObsContext, ObsReport
from repro.sim.failures import (
    ConnectionDropped,
    MeasurementFault,
    SutFailure,
)
from repro.sim.resources import ResourceMonitor
from repro.sim.simulator import Simulator
from repro.workloads.profiles import RateProfile


@dataclass
class TrialResult:
    """Everything measured in one benchmark trial.

    Latency summaries and the ingest rate exclude the warmup period;
    the raw collectors/monitors are kept for figure generation.
    """

    engine: str
    workers: int
    query_kind: str
    offered_profile: RateProfile
    duration_s: float
    warmup_s: float
    failure: Optional[str]
    failure_time: float
    event_latency: StatSummary
    processing_latency: StatSummary
    mean_ingest_rate: float
    collector: LatencyCollector
    throughput: ThroughputMonitor
    resources: Optional[ResourceMonitor]
    diagnostics: Dict[str, float] = field(default_factory=dict)
    recovery: Optional[List[RecoveryMetrics]] = None
    """Per-fault recovery metrology (populated when the trial injected
    faults; ``None`` for fault-free trials)."""
    observability: Optional[ObsReport] = None
    """Metrics registry series and lifecycle traces (populated when the
    trial ran with an :class:`~repro.obs.context.ObsSpec`)."""
    attempts: Optional[List[AttemptRecord]] = None
    """Per-attempt history when the trial ran under the watchdog retry
    runner (``None`` for unwatched trials)."""
    autoscale: Optional[List["RescaleMetrics"]] = None
    """Per-scaling-event time-to-resustain metrology (populated when the
    trial ran with an :class:`~repro.autoscale.policy.AutoscaleSpec`;
    ``None`` for fixed-size trials)."""
    detection: Optional["DetectionMetrics"] = None
    """Detection-quality metrology (populated when the trial ran with an
    :class:`~repro.detect.plane.DetectorSpec`; ``None`` otherwise)."""

    @property
    def failed(self) -> bool:
        return self.failure is not None

    @property
    def measurement_start(self) -> float:
        return self.warmup_s

    def describe(self) -> str:
        status = f"FAILED: {self.failure}" if self.failed else "completed"
        return (
            f"{self.engine} / {self.workers} workers / {self.query_kind}: "
            f"{status}; ingest {self.mean_ingest_rate / 1e6:.3f} M/s; "
            f"event latency {self.event_latency.row()}"
        )


class BenchmarkDriver:
    """Runs one trial: generators + queues + one engine + measurement."""

    def __init__(
        self,
        sim: Simulator,
        engine: StreamingEngine,
        generators: List[DataGenerator],
        duration_s: float,
        warmup_fraction: float = 0.25,
        throughput_interval_s: float = 1.0,
        queues: Optional[QueueSet] = None,
        keep_outputs: bool = False,
        obs: Optional[ObsContext] = None,
        skew: Optional[SkewModel] = None,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.sim = sim
        self.engine = engine
        self.generators = generators
        # The SUT-facing queues are normally the generators' own; a
        # mediator stage (the broker ablation) interposes its own queues.
        self.queues = queues or QueueSet([g.queue for g in generators])
        self.duration_s = duration_s
        self.warmup_s = duration_s * warmup_fraction
        self.skew = skew
        self.collector = LatencyCollector(keep_outputs=keep_outputs, skew=skew)
        self.obs = obs
        # With tracing on, the sink callback routes through a thin shim
        # that finalises traces; without obs the collector is attached
        # directly -- the measured hot path is byte-identical to before.
        if obs is not None and obs.sampler is not None:
            self.sink = Sink(self._collect_traced)
        else:
            self.sink = Sink(self.collector.collect)
        self.monitor = ThroughputMonitor(
            sim, self.queues, interval_s=throughput_interval_s
        )
        if obs is not None:
            self._bind_driver_gauges(obs.registry)
        self._watchdog = sim.every(1.0, self._check_engine)
        self._failure: Optional[SutFailure] = None
        # Driver-side fault log: mirrors the engine's fault_log shape so
        # recovery metrology and the obs timeline consume both alike.
        self.fault_log: List[Dict[str, float]] = []
        self._rebalances = 0
        self._offered_shortfall_frac = 0.0

    def _collect_traced(self, outputs) -> None:
        """Sink callback when tracing: complete any riding traces, then
        forward to the latency collector unchanged."""
        log = self.obs.trace_log
        for output in outputs:
            traces = output.traces
            if traces:
                for trace in traces:
                    trace.mark("emitted", output.emit_time)
                    log.on_complete(trace)
                output.traces = None
        self.collector.collect(outputs)

    def _bind_driver_gauges(self, registry) -> None:
        """Publish driver-side instruments: per-queue depth/throughput
        and the aggregate ingestion watermark lag.  All are polled
        gauges -- nothing is pushed from the hot path."""
        for queue in self.queues:
            name = queue.name
            registry.gauge(f"queue.depth{{{name}}}").bind(
                lambda q=queue: q.queued_weight
            )
            registry.gauge(f"queue.pushed_weight{{{name}}}").bind(
                lambda q=queue: q.pushed_weight
            )
            registry.gauge(f"queue.pulled_weight{{{name}}}").bind(
                lambda q=queue: q.pulled_weight
            )
        registry.gauge("driver.queue_depth_total").bind(
            lambda: self.queues.total_queued_weight
        )
        registry.gauge("driver.shed_weight").bind(
            lambda: self.queues.total_shed_weight
        )
        registry.gauge("driver.lost_weight").bind(
            lambda: self.queues.total_lost_weight
        )
        registry.gauge("driver.oldest_wait_s").bind(
            lambda: self.queues.max_oldest_wait(self.sim.now)
        )
        registry.gauge("driver.watermark_lag_s").bind(self._watermark_lag)
        registry.gauge("driver.offered_rate").bind(
            lambda: sum(
                g.profile.rate_at(self.sim.now) * g.share
                for g in self.generators
            )
        )
        registry.gauge("sink.emitted_weight").bind(
            lambda: self.sink.emitted_weight
        )

    def _watermark_lag(self) -> float:
        """How far the SUT's ingestion watermark trails the generation
        frontier (0 before any generation)."""
        frontier = max(
            (q.frontier_event_time for q in self.queues), default=float("-inf")
        )
        watermark = self.queues.watermark
        if frontier == float("-inf") or watermark == float("-inf"):
            return 0.0
        return max(0.0, frontier - watermark)

    def _check_engine(self, sim: Simulator) -> None:
        """Halt the run as soon as the SUT has failed (Section VI-A)."""
        if self.engine.failed:
            self._failure = self.engine.failure
            sim.stop()

    # -- driver-side fault injection --------------------------------------

    def inject_fault(self, event: FaultEvent) -> None:
        """Apply one *driver-side* fault (``event.driver_side`` is True).

        These injure the measurement plane -- generators and driver
        queues -- never the SUT; the engine keeps running against
        whatever the wounded instrument still offers it.
        """
        if self._failure is not None:
            return
        if isinstance(event, GeneratorCrash):
            self._crash_generator(event.instance)
        elif isinstance(event, DriverQueueLoss):
            self._lose_queue(event.queue_index)
        elif isinstance(event, DriverNodeSlow):
            self._slow_generator(event.instance, event.factor, event.duration_s)
        else:
            raise TypeError(
                f"not a driver-side fault event: {event!r}"
            )

    def _log_driver_fault(self, kind: str, **fields: float) -> None:
        entry: Dict[str, float] = {"kind": kind, "at_s": self.sim.now}
        entry.update(fields)
        self.fault_log.append(entry)
        if self.obs is not None:
            self.obs.add_event(f"fault.{kind}", self.sim.now, **fields)

    def _crash_generator(self, instance: int) -> None:
        index = instance % len(self.generators)
        generator = self.generators[index]
        if generator.crashed:
            return
        generator.crash()
        self._log_driver_fault("gencrash", instance=float(index))
        # The fleet supervisor notices the dead instance only after the
        # detection window, then rebalances its share over survivors.
        self.sim.schedule(
            generator.config.rebalance_detection_s, self._rebalance_generators
        )

    def _rebalance_generators(self) -> None:
        survivors = [g for g in self.generators if not g.crashed]
        for generator in self.generators:
            if generator.crashed:
                # The dead queue's frontier is frozen; retiring it lets
                # the fleet watermark advance once it drains.
                generator.queue.retire()
        if not survivors:
            # Nothing left to carry the load; the watchdog's progress
            # check is the backstop for a fully dead fleet.
            self._log_driver_fault("rebalance", survivors=0.0)
            return
        target_share = 1.0 / len(survivors)
        achieved = 0.0
        for generator in survivors:
            generator.set_share(target_share)
            achieved += generator.share
        # Over-provisioning check: with headroom factor f, up to
        # (1 - 1/f) of the fleet may die before survivors can no longer
        # re-attain the offered rate.  The shortfall is first-class in
        # diagnostics -- a silently lowered offered rate is exactly the
        # measurement lie this fault exists to expose.
        shortfall = max(0.0, 1.0 - achieved)
        self._rebalances += 1
        self._offered_shortfall_frac = max(
            self._offered_shortfall_frac, shortfall
        )
        self._log_driver_fault(
            "rebalance",
            survivors=float(len(survivors)),
            share=target_share,
            shortfall_frac=shortfall,
        )

    def _lose_queue(self, queue_index: int) -> None:
        queue = self.queues.queues[queue_index % len(self.queues)]
        lost = queue.lose_queued()
        self._log_driver_fault("queueloss", lost_weight=lost)

    def _slow_generator(
        self, instance: int, factor: float, duration_s: float
    ) -> None:
        index = instance % len(self.generators)
        self.generators[index].slow(self.sim.now + duration_s, factor)
        self._log_driver_fault(
            "driverslow",
            instance=float(index),
            factor=factor,
            duration_s=duration_s,
        )

    def _record_fatal(self, failure: SutFailure) -> None:
        """Log a trial-ending driver-observed failure into the fault
        log / obs timeline, mirroring how engines log fatal faults
        before aborting (PR 4): an aborted trial must keep its
        telemetry, including the event that killed it."""
        if isinstance(failure, ConnectionDropped):
            kind = "overflow"
        elif isinstance(failure, MeasurementFault):
            kind = "watchdog"
        else:
            kind = "driver-abort"
        at_s = failure.at_time
        if at_s != at_s:
            at_s = self.sim.now
        entry: Dict[str, float] = {"kind": kind, "at_s": at_s, "fatal": 1.0}
        self.fault_log.append(entry)
        if self.obs is not None:
            self.obs.add_event(f"fault.{kind}", at_s, fatal=1.0)

    def run(self) -> TrialResult:
        """Execute the trial and assemble the result."""
        for generator in self.generators:
            generator.start()
        self.engine.start(self.queues, self.sink)
        try:
            self.sim.run_until(self.duration_s)
        except SutFailure as failure:
            # Raised by a queue push (connection drop) or a watchdog
            # trip: the driver halts the experiment, keeping the fatal
            # event in the fault log so partial diagnostics survive.
            self._failure = failure
            self._record_fatal(failure)
        finally:
            self.engine.stop()
            for generator in self.generators:
                generator.stop()
            self.monitor.stop()
            self._watchdog.stop()
        if self._failure is None and self.engine.failed:
            self._failure = self.engine.failure
        failure_msg = str(self._failure) if self._failure else None
        failure_time = (
            self._failure.at_time if self._failure is not None else float("nan")
        )
        summaries_start = time.perf_counter()
        event_latency = self.collector.summary(EVENT_TIME, self.warmup_s)
        processing_latency = self.collector.summary(
            PROCESSING_TIME, self.warmup_s
        )
        mean_ingest_rate = self.monitor.mean_ingest_rate(self.warmup_s)
        metrology_s = time.perf_counter() - summaries_start
        diagnostics: Dict[str, float] = dict(self.engine.diagnostics())
        diagnostics.update(self.collector.perf_counters())
        diagnostics.update(self.monitor.perf_counters())
        diagnostics["driver.summary_s"] = metrology_s
        # Driver-side weight-conservation ledger: everything generated
        # is still queued, ingested by the SUT, shed by the degradation
        # policy, or lost to a driver fault
        # (pushed == pulled + queued + shed + lost).
        diagnostics["driver.pushed_weight"] = self.queues.total_pushed_weight
        diagnostics["driver.pulled_weight"] = self.queues.total_pulled_weight
        diagnostics["driver.queued_weight"] = self.queues.total_queued_weight
        diagnostics["driver.shed_weight"] = self.queues.total_shed_weight
        diagnostics["driver.lost_weight"] = self.queues.total_lost_weight
        diagnostics["driver.faults_injected"] = float(len(self.fault_log))
        if self._rebalances:
            diagnostics["driver.rebalances"] = float(self._rebalances)
            diagnostics["driver.offered_shortfall_frac"] = (
                self._offered_shortfall_frac
            )
        observability = self.obs.finalize() if self.obs is not None else None
        return TrialResult(
            engine=self.engine.name,
            workers=self.engine.cluster.workers,
            query_kind=self.engine.query.kind,
            offered_profile=self.generators[0].profile,
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
            failure=failure_msg,
            failure_time=failure_time,
            event_latency=event_latency,
            processing_latency=processing_latency,
            mean_ingest_rate=mean_ingest_rate,
            collector=self.collector,
            throughput=self.monitor,
            resources=self.engine.resources,
            diagnostics=diagnostics,
            observability=observability,
        )
