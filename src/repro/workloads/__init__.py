"""Rovio-inspired online-gaming workload (paper Section V).

Two streams (Listing 1): ``PURCHASES(userID, gemPackID, price, time)``
and ``ADS(userID, gemPackID, time)``; two query templates: a sliding
windowed aggregation (``SUM(price) GROUP BY gemPackID``) and a windowed
join of purchases with ads on ``(userID, gemPackID)``.

This subpackage defines the event schemas and wire sizes, the key
distributions (normal by default, as in Section VI-A; single-key for the
skew experiment), the query specifications, and the data-arrival rate
profiles (constant, and the fluctuating profile of Experiment 5).
"""

from repro.workloads.disorder import DisorderSpec
from repro.workloads.events import (
    AD_EVENT_BYTES,
    JOIN_RESULT_BYTES,
    PURCHASE_EVENT_BYTES,
    AGG_RESULT_BYTES,
    event_bytes,
)
from repro.workloads.keys import (
    KeyDistribution,
    NormalKeys,
    SingleKey,
    UniformKeys,
    ZipfKeys,
)
from repro.workloads.profiles import (
    ConstantRate,
    FluctuatingRate,
    RateProfile,
    StepRate,
    fig6_profile,
)
from repro.workloads.queries import (
    Query,
    WindowSpec,
    WindowedAggregationQuery,
    WindowedJoinQuery,
)

__all__ = [
    "AD_EVENT_BYTES",
    "DisorderSpec",
    "AGG_RESULT_BYTES",
    "ConstantRate",
    "FluctuatingRate",
    "JOIN_RESULT_BYTES",
    "KeyDistribution",
    "NormalKeys",
    "PURCHASE_EVENT_BYTES",
    "Query",
    "RateProfile",
    "SingleKey",
    "StepRate",
    "UniformKeys",
    "WindowSpec",
    "WindowedAggregationQuery",
    "WindowedJoinQuery",
    "ZipfKeys",
    "event_bytes",
    "fig6_profile",
]
