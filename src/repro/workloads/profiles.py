"""Data-arrival rate profiles.

The generator produces events "with constant speed throughout the
experiment" (Section III-C) in the steady-state experiments --
:class:`ConstantRate`.  Experiment 5 studies fluctuating workloads:
"We start the benchmark with a workload of 0.84 M/s then decrease it to
0.28 M/s and increase again after a while" -- :func:`fig6_profile`.

A profile maps simulated time to the *total* generation rate in
events/second; the driver divides it evenly across generator instances.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


class RateProfile(ABC):
    """Total target generation rate as a function of simulated time."""

    @abstractmethod
    def rate_at(self, t: float) -> float:
        """Events per second at simulated time ``t`` (>= 0)."""

    def scaled(self, factor: float) -> "ScaledRate":
        """This profile with every rate multiplied by ``factor``.

        Used for the paper's "90%-workload" runs (Tables II and IV show
        max-throughput and 90%-throughput latencies side by side).
        """
        return ScaledRate(self, factor)

    def peak(self, horizon_s: float, resolution_s: float = 1.0) -> float:
        """Maximum rate over ``[0, horizon_s]``.

        The base implementation samples on a fixed ``resolution_s`` grid
        and therefore **can miss features narrower than the grid** (a
        sub-second flash-crowd spike between two samples).  Profiles
        whose shape admits it override this with an exact analytic
        answer -- driver-queue capacity is provisioned from ``peak``, so
        an under-estimate here means queues sized too small for the
        very burst the profile exists to model.
        """
        steps = max(1, int(horizon_s / resolution_s))
        return max(self.rate_at(i * resolution_s) for i in range(steps + 1))


@dataclass(frozen=True)
class ConstantRate(RateProfile):
    """A fixed events/second rate."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")

    def rate_at(self, t: float) -> float:
        return self.rate

    def peak(self, horizon_s: float, resolution_s: float = 1.0) -> float:
        return self.rate


@dataclass(frozen=True)
class ScaledRate(RateProfile):
    """Another profile multiplied by a constant factor."""

    base: RateProfile
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError(f"factor must be >= 0, got {self.factor}")

    def rate_at(self, t: float) -> float:
        return self.base.rate_at(t) * self.factor

    def peak(self, horizon_s: float, resolution_s: float = 1.0) -> float:
        # Exact whenever the base's peak is exact (factor >= 0, so
        # scaling commutes with max).
        return self.base.peak(horizon_s, resolution_s) * self.factor


class StepRate(RateProfile):
    """Piecewise-constant rate: a list of ``(start_time, rate)`` steps.

    Steps must be in increasing time order; the first step should start
    at 0.  The rate holds until the next step begins.
    """

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("need at least one (start_time, rate) step")
        times = [t for t, _ in steps]
        if times != sorted(times):
            raise ValueError("steps must be in increasing time order")
        if any(rate < 0 for _, rate in steps):
            raise ValueError("rates must be >= 0")
        self.steps: List[Tuple[float, float]] = [
            (float(t), float(r)) for t, r in steps
        ]

    def rate_at(self, t: float) -> float:
        rate = self.steps[0][1]
        for start, step_rate in self.steps:
            if t >= start:
                rate = step_rate
            else:
                break
        return rate

    def peak(self, horizon_s: float, resolution_s: float = 1.0) -> float:
        """Exact: the max over every step active within ``[0, horizon]``.

        A step narrower than the sampling grid (a sub-second spike) is
        invisible to the sampled base implementation; here every step
        that *starts* by the horizon contributes, however short it is.
        """
        best = self.steps[0][1]  # rate_at(t) before the first step
        for start, rate in self.steps:
            if start > horizon_s:
                break
            best = max(best, rate)
        return best


class AdaptiveRate(RateProfile):
    """A mutable profile driven by an online controller.

    The generator reads ``profile.rate_at(sim.now)`` every tick, so a
    controller (the AIMD sustainable-throughput probe,
    :mod:`repro.recovery.aimd`) can steer the offered load *during* a
    trial by calling :meth:`set_rate`.  ``ceiling`` bounds the rate for
    the trial's whole horizon -- driver-queue capacity is provisioned
    from :meth:`peak` before the run, so the controller must never be
    allowed to out-run the queues it is probing with.
    """

    def __init__(self, initial: float, ceiling: float) -> None:
        if initial < 0:
            raise ValueError(f"initial rate must be >= 0, got {initial}")
        if ceiling < initial:
            raise ValueError(
                f"ceiling ({ceiling}) must be >= initial rate ({initial})"
            )
        self.ceiling = float(ceiling)
        self._rate = float(initial)
        self.changes: List[Tuple[float, float]] = []
        """Every ``set_rate`` as ``(time, rate)`` -- the controller's
        trajectory, exported with search results."""

    @property
    def rate(self) -> float:
        return self._rate

    def set_rate(self, rate: float, at_time: float) -> None:
        self._rate = min(max(0.0, float(rate)), self.ceiling)
        self.changes.append((float(at_time), self._rate))

    def rate_at(self, t: float) -> float:
        return self._rate

    def peak(self, horizon_s: float, resolution_s: float = 1.0) -> float:
        return self.ceiling


class FluctuatingRate(RateProfile):
    """High / low / high rate with configurable phase lengths.

    Generalises Experiment 5's spike pattern.  The profile starts at
    ``high``, drops to ``low`` at ``drop_at``, and recovers to ``high``
    at ``recover_at``.
    """

    def __init__(
        self,
        high: float,
        low: float,
        drop_at: float,
        recover_at: float,
    ) -> None:
        if low > high:
            raise ValueError(f"low ({low}) must be <= high ({high})")
        if not 0 <= drop_at < recover_at:
            raise ValueError("need 0 <= drop_at < recover_at")
        self._step = StepRate([(0.0, high), (drop_at, low), (recover_at, high)])
        self.high = high
        self.low = low
        self.drop_at = drop_at
        self.recover_at = recover_at

    def rate_at(self, t: float) -> float:
        return self._step.rate_at(t)

    def peak(self, horizon_s: float, resolution_s: float = 1.0) -> float:
        return self._step.peak(horizon_s, resolution_s)


@dataclass(frozen=True)
class DiurnalRate(RateProfile):
    """Sinusoidal day curve: millions of users waking up and going home.

    The rate swings between ``low`` (the trough, at ``phase_s``) and
    ``high`` (the crest, half a period later) with period ``period_s``.
    This is the canonical autoscaling workload -- the offered load
    changes slowly enough that a policy tracking obs-registry signals
    can provision ahead of the curve.
    """

    low: float
    high: float
    period_s: float = 86_400.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(
                f"need 0 <= low <= high, got low={self.low} high={self.high}"
            )
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")

    def rate_at(self, t: float) -> float:
        cycle = (t + self.phase_s) / self.period_s
        return self.low + (self.high - self.low) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * cycle)
        )

    def peak(self, horizon_s: float, resolution_s: float = 1.0) -> float:
        """Exact: ``high`` if a crest falls in ``[0, horizon]``, else the
        larger endpoint (the only interior local maxima are crests)."""
        first_crest = ((0.5 - self.phase_s / self.period_s) % 1.0) * self.period_s
        if first_crest <= horizon_s:
            return self.high
        return max(self.rate_at(0.0), self.rate_at(horizon_s))


class FlashCrowdRate(RateProfile):
    """Baseline load plus seeded rectangular spike bursts.

    ``spikes`` flash crowds hit within ``[0, horizon_s]``: the horizon is
    cut into equal segments and each segment gets one burst of
    ``spike_duration_s`` at rate ``spike`` with a seeded start, so bursts
    never overlap and the whole shape is a pure function of the seed.
    Bursts may be far narrower than any sampling grid -- :meth:`peak` is
    exact regardless.
    """

    def __init__(
        self,
        base: float,
        spike: float,
        horizon_s: float,
        spikes: int = 2,
        spike_duration_s: float = 8.0,
        seed: int = 0,
    ) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if spike < base:
            raise ValueError(f"spike ({spike}) must be >= base ({base})")
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
        if spikes < 1:
            raise ValueError(f"spikes must be >= 1, got {spikes}")
        segment = horizon_s / spikes
        if not 0 < spike_duration_s <= segment:
            raise ValueError(
                f"spike_duration_s must be in (0, horizon_s/spikes="
                f"{segment}], got {spike_duration_s}"
            )
        self.base = float(base)
        self.spike = float(spike)
        self.horizon_s = float(horizon_s)
        self.spike_duration_s = float(spike_duration_s)
        self.seed = int(seed)
        rng = np.random.default_rng([int(seed), spikes])
        self.bursts: List[Tuple[float, float]] = []
        """Each flash crowd as ``(start, end)``, in time order."""
        for index in range(spikes):
            slack = segment - spike_duration_s
            start = index * segment + float(rng.uniform(0.0, slack))
            self.bursts.append((start, start + spike_duration_s))

    def rate_at(self, t: float) -> float:
        for start, end in self.bursts:
            if start <= t < end:
                return self.spike
            if t < start:
                break
        return self.base

    def peak(self, horizon_s: float, resolution_s: float = 1.0) -> float:
        """Exact: a burst counts the moment it starts by the horizon."""
        for start, _ in self.bursts:
            if start <= horizon_s:
                return self.spike
        return self.base


def fig6_profile(duration_s: float = 300.0) -> FluctuatingRate:
    """The exact Experiment 5 profile: 0.84 M/s -> 0.28 M/s -> 0.84 M/s.

    The paper does not give the phase boundaries; we drop at one third
    and recover at two thirds of the run, which reproduces the published
    latency shapes (Figure 6).
    """
    return FluctuatingRate(
        high=0.84e6,
        low=0.28e6,
        drop_at=duration_s / 3.0,
        recover_at=2.0 * duration_s / 3.0,
    )
