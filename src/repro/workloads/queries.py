"""Query specifications (paper Listing 1).

Two templates drive every experiment in the paper:

- ``WindowedAggregationQuery``: ``SELECT SUM(price) FROM PURCHASES
  [Range r, Slide s] GROUP BY gemPackID`` -- the paper's default is an
  (8s, 4s) sliding window; Experiment 3 uses (60s, 60s).
- ``WindowedJoinQuery``: purchases joined with ads on
  ``(userID, gemPackID)`` over the same window, with controllable
  selectivity (the paper lowered selectivity so sinks/network would not
  mask the engines' behaviour -- Experiment 2).

A query is a declarative spec; each engine compiles it into its own
operator pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.core.records import ADS, PURCHASES
from repro.workloads.events import DEFAULT_GEM_PACK_COUNT
from repro.workloads.keys import KeyDistribution, NormalKeys


@dataclass(frozen=True)
class WindowSpec:
    """A sliding event-time window: ``Range size_s, Slide slide_s``.

    ``slide_s == size_s`` degenerates to a tumbling window (Experiment 3
    uses a (60s, 60s) tumbling window).
    """

    size_s: float
    slide_s: float

    def __post_init__(self) -> None:
        if self.size_s <= 0 or self.slide_s <= 0:
            raise ValueError(
                f"window size and slide must be positive, got "
                f"({self.size_s}, {self.slide_s})"
            )
        if self.slide_s > self.size_s:
            raise ValueError(
                "slide larger than size would drop events "
                f"(size={self.size_s}, slide={self.slide_s})"
            )

    @property
    def windows_per_event(self) -> int:
        """How many sliding windows each event belongs to.

        The small epsilon absorbs float drift when the slide divides the
        size exactly (e.g. size 17, slide 17/7: the quotient may land a
        hair above the true integer and ceil would overcount).
        """
        return int(math.ceil(self.size_s / self.slide_s - 1e-9))

    @property
    def is_tumbling(self) -> bool:
        return self.slide_s == self.size_s

    def window_index_range(self, event_time: float) -> Tuple[int, int]:
        """Inclusive range of window indices containing ``event_time``.

        Window ``i`` covers ``(i * slide - size, i * slide]`` -- i.e. it
        *ends* at ``i * slide`` and events are assigned to windows by
        event-time, matching the paper's Figure 1 where the (5, 605]
        window closes at t=605.

        An event at time ``t`` is in window ``i`` iff
        ``i*slide - size < t <= i*slide``, i.e.
        ``ceil(t/slide) <= i <= ceil((t+size)/slide) - 1``.

        The epsilon mirrors :attr:`windows_per_event`: when ``t`` (or
        ``t + size``) lands exactly on a window boundary, the float
        quotient may come out a hair above the true integer and ceil
        would shift the range by one whole window (e.g. size = slide =
        0.8, t = 1.6: ``(t + size) / slide`` evaluates to
        3.0000000000000004).
        """
        first = int(math.ceil(event_time / self.slide_s - 1e-9))
        last = int(
            math.ceil((event_time + self.size_s) / self.slide_s - 1e-9) - 1
        )
        return first, last

    def window_end(self, index: int) -> float:
        return index * self.slide_s

    def window_start(self, index: int) -> float:
        return index * self.slide_s - self.size_s

    def describe(self) -> str:
        kind = "tumbling" if self.is_tumbling else "sliding"
        return f"({self.size_s:g}s, {self.slide_s:g}s) {kind} window"


PAPER_DEFAULT_WINDOW = WindowSpec(size_s=8.0, slide_s=4.0)
"""The (8s, 4s) window used by Experiments 1, 2, 6, 8."""

LARGE_WINDOW = WindowSpec(size_s=60.0, slide_s=60.0)
"""The large (60s, 60s) window of Experiment 3."""


@dataclass(frozen=True)
class Query:
    """Base query spec: window + key distribution."""

    window: WindowSpec = PAPER_DEFAULT_WINDOW
    keys: KeyDistribution = field(
        default_factory=lambda: NormalKeys(DEFAULT_GEM_PACK_COUNT)
    )

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def streams(self) -> Tuple[str, ...]:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class WindowedAggregationQuery(Query):
    """SELECT SUM(price) FROM PURCHASES [Range r, Slide s] GROUP BY gemPackID."""

    @property
    def streams(self) -> Tuple[str, ...]:
        return (PURCHASES,)

    @property
    def kind(self) -> str:
        return "aggregation"

    def describe(self) -> str:
        return f"windowed SUM(price) by gemPackID over {self.window.describe()}"


@dataclass(frozen=True)
class WindowedJoinQuery(Query):
    """PURCHASES join ADS on (userID, gemPackID) over a sliding window.

    ``selectivity`` is the expected number of join outputs per ingested
    purchase cohort-event; the paper decreased it so result traffic does
    not saturate sinks ("we decreased the selectivity of the input
    streams", Experiment 2).  The default, 0.016, places the join's
    network saturation just below the aggregation's, as in Table III.

    ``purchases_share`` sets how the total ingest rate is split between
    the purchases and ads streams (the paper does not report the split;
    an even split is the natural default).
    """

    selectivity: float = 0.016
    purchases_share: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity:
            raise ValueError(f"selectivity must be >= 0, got {self.selectivity}")
        if not 0.0 < self.purchases_share < 1.0:
            raise ValueError(
                f"purchases_share must be in (0, 1), got {self.purchases_share}"
            )

    @property
    def streams(self) -> Tuple[str, ...]:
        return (PURCHASES, ADS)

    @property
    def kind(self) -> str:
        return "join"

    def describe(self) -> str:
        return (
            f"windowed join purchases*ads on (userID, gemPackID) over "
            f"{self.window.describe()}, selectivity={self.selectivity:g}"
        )
