"""Out-of-order event generation (paper future work, Section VI-D).

The paper's evaluation assumes in-order streams (generator timestamps
are monotone per queue); it explicitly defers "out-of-order and late
arriving data management" to future work.  This module implements that
extension: a :class:`DisorderSpec` makes the generator emit a fraction
of each tick's events with *lagged* event times, as if they had been
delayed on their way from the source (the mobile device of the paper's
ATM/gaming examples) to the generator.

With disorder, the ingestion watermark (max event-time pulled) is a
heuristic that overtakes late events; engines then either drop the
stragglers from closed windows or hold windows open for an *allowed
lateness* (``EngineConfig.allowed_lateness_s``) -- trading latency for
completeness.  The framework measures both sides of that trade:
late-drop weight in the engine diagnostics, window completeness in the
extension benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

UNIFORM = "uniform"
EXPONENTIAL = "exponential"
DISTRIBUTIONS = (UNIFORM, EXPONENTIAL)


@dataclass(frozen=True)
class DisorderSpec:
    """How much of the stream arrives late, and by how much.

    ``fraction`` of every generation tick's weight is emitted with an
    event-time lag sampled from the configured distribution, capped at
    ``max_delay_s`` (bounded disorder, the common real-world contract).
    """

    fraction: float = 0.1
    max_delay_s: float = 2.0
    distribution: str = UNIFORM

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.max_delay_s <= 0:
            raise ValueError(
                f"max_delay_s must be positive, got {self.max_delay_s}"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )

    def sample_delay(self, rng: np.random.Generator) -> float:
        """Draw one event-time lag in (0, max_delay_s]."""
        if self.distribution == UNIFORM:
            return float(rng.uniform(0.0, self.max_delay_s))
        # Exponential with mean max_delay/3, truncated at the bound:
        # most stragglers are mildly late, a few push the limit.
        return float(
            min(self.max_delay_s, rng.exponential(self.max_delay_s / 3.0))
        )
