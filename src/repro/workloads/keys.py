"""Key distributions for the synthetic streams.

Section VI-A: "We generate events with normal distribution on key field."
:class:`NormalKeys` is therefore the default.  Experiment 4 studies
"extreme skew, namely their ability to handle data of a single key" --
:class:`SingleKey`.  Uniform and Zipf distributions are provided for
sweeps beyond the paper.

A distribution maps a key-space size to integer keys in
``[0, num_keys)``.  ``sample`` returns ``n`` keys; ``hot_fraction``
reports the probability mass of the most popular key, which the engine
models use to locate the keyed-stage bottleneck under skew.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


class KeyDistribution(ABC):
    """Distribution over integer keys ``0 .. num_keys - 1``."""

    def __init__(self, num_keys: int) -> None:
        if num_keys < 1:
            raise ValueError(f"num_keys must be >= 1, got {num_keys}")
        self.num_keys = int(num_keys)

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` keys as an int array."""

    @abstractmethod
    def pmf(self) -> np.ndarray:
        """Per-key probability masses (length ``num_keys``, sums to 1).

        Used by the generator's *dense* mode, which emits one weighted
        cohort per key per tick instead of sampling keys -- removing
        sampling noise at benchmark scale (see
        :mod:`repro.core.generator`).
        """

    def hot_fraction(self) -> float:
        """Probability mass of the single most popular key."""
        return float(self.pmf().max())

    @property
    def name(self) -> str:
        return type(self).__name__


class NormalKeys(KeyDistribution):
    """Keys drawn from a (truncated, discretised) normal distribution.

    The normal is centred on the middle of the key space with standard
    deviation ``spread_fraction * num_keys``; draws outside the key space
    are clipped to the boundary keys (mirroring a bounded catalog of gem
    packs with popularity concentrated in the middle of the catalog).
    """

    def __init__(self, num_keys: int, spread_fraction: float = 0.15) -> None:
        super().__init__(num_keys)
        if spread_fraction <= 0:
            raise ValueError("spread_fraction must be positive")
        self.spread_fraction = float(spread_fraction)
        self._pmf = self._compute_pmf()

    def _compute_pmf(self) -> np.ndarray:
        centre = (self.num_keys - 1) / 2.0
        sigma = self.spread_fraction * self.num_keys

        def cdf(x: float) -> float:
            return 0.5 * (1.0 + math.erf((x - centre) / (sigma * math.sqrt(2.0))))

        # Key i gets the mass of (i - 0.5, i + 0.5]; the boundary keys
        # absorb the clipped tails, matching sample()'s np.clip.
        masses = np.array(
            [cdf(i + 0.5) - cdf(i - 0.5) for i in range(self.num_keys)]
        )
        masses[0] += cdf(-0.5)
        masses[-1] += 1.0 - cdf(self.num_keys - 0.5)
        return masses / masses.sum()

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        centre = (self.num_keys - 1) / 2.0
        sigma = self.spread_fraction * self.num_keys
        draws = rng.normal(loc=centre, scale=sigma, size=n)
        return np.clip(np.rint(draws), 0, self.num_keys - 1).astype(np.int64)

    def pmf(self) -> np.ndarray:
        return self._pmf


class UniformKeys(KeyDistribution):
    """Uniform keys: the no-skew baseline."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.integers(0, self.num_keys, size=n, dtype=np.int64)

    def pmf(self) -> np.ndarray:
        return np.full(self.num_keys, 1.0 / self.num_keys)


class SingleKey(KeyDistribution):
    """All events carry one key: the paper's extreme-skew workload.

    Under this distribution the keyed stage of Flink and Storm runs on a
    single slot and the deployment stops scaling (Experiment 4).
    """

    def __init__(self, num_keys: int = 1, key: int = 0) -> None:
        super().__init__(max(num_keys, 1))
        if not 0 <= key < self.num_keys:
            raise ValueError(f"key {key} outside [0, {self.num_keys})")
        self.key = int(key)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.key, dtype=np.int64)

    def pmf(self) -> np.ndarray:
        masses = np.zeros(self.num_keys)
        masses[self.key] = 1.0
        return masses


class ZipfKeys(KeyDistribution):
    """Zipf-distributed keys (extension beyond the paper's experiments).

    ``exponent`` > 1 controls skew; rank-1 key is the hottest.  Useful
    for sweeping the space between the paper's normal-distribution and
    single-key extremes.
    """

    def __init__(self, num_keys: int, exponent: float = 1.5) -> None:
        super().__init__(num_keys)
        if exponent <= 1.0:
            raise ValueError("Zipf exponent must be > 1")
        self.exponent = float(exponent)
        ranks = np.arange(1, self.num_keys + 1, dtype=np.float64)
        weights = ranks**-self.exponent
        self._probs = weights / weights.sum()

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self.num_keys, size=n, p=self._probs).astype(np.int64)

    def pmf(self) -> np.ndarray:
        return self._probs.copy()
