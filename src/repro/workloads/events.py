"""Event schemas and wire sizes.

The paper does not publish exact serialized sizes, but it reports that
the network (1 Gb/s) saturates at ~1.2 M events/s for the aggregation
query (Experiment 1).  1e9 / 8 / 104 = 1.202 M events/s, so we model
events as 104 bytes on the wire; this single constant makes the paper's
observed network bound *emerge* from the data-plane model rather than
being hard-coded.

Join results are wider than aggregation results (the join emits matched
purchase tuples enriched with both timestamps), which is why the join's
network saturation point (1.19 M/s, Table III) falls slightly below the
aggregation's: result traffic shares the plane with ingest traffic.
"""

from __future__ import annotations

from repro.core.records import ADS, PURCHASES

PURCHASE_EVENT_BYTES = 104
"""Serialized PURCHASES(userID, gemPackID, price, time) event size."""

AD_EVENT_BYTES = 104
"""Serialized ADS(userID, gemPackID, time) event size."""

AGG_RESULT_BYTES = 48
"""Serialized (gemPackID, SUM(price), window) aggregation result size."""

JOIN_RESULT_BYTES = 64
"""Serialized (userID, gemPackID, price, p.time, a.time) join result."""

_STREAM_BYTES = {PURCHASES: PURCHASE_EVENT_BYTES, ADS: AD_EVENT_BYTES}


def event_bytes(stream: str) -> int:
    """Wire size of one event of the given stream."""
    try:
        return _STREAM_BYTES[stream]
    except KeyError:
        raise ValueError(f"unknown stream {stream!r}") from None


DEFAULT_GEM_PACK_COUNT = 64
"""Number of distinct gem packs (grouping keys) in the synthetic catalog.

The paper does not report its key-space size.  We default to a modest
catalog so that the generator's dense mode (one weighted cohort per key
per tick) stays cheap; at the paper's event rates every key is hot
regardless of catalog size, so the latency anchors (max event-time per
key per window) are insensitive to this constant."""

DEFAULT_USER_COUNT = 100_000
"""Number of distinct users in the synthetic population."""

MIN_GEM_PACK_PRICE = 0.99
MAX_GEM_PACK_PRICE = 99.99
"""Gem-pack price range used by the synthetic purchase generator."""
