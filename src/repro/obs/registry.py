"""The metrics registry: named counters, gauges, and histograms.

Per-stage visibility (the SProBench / ShuffleBench lesson): aggregate
trial numbers hide backpressure and shuffle pathologies, so operators,
queues and backpressure mechanisms publish named instruments here and
a single periodic sampler snapshots them into
:class:`~repro.core.metrics.TimeSeries` at ``metrics_interval_s``
granularity.

Instrument kinds:

- :class:`Counter`  -- monotonic accumulator (``add``); sampled as a
  cumulative series, differentiable into a rate at analysis time.
- :class:`Gauge`    -- instantaneous value; either set imperatively
  (``set``) or bound to a zero-argument callable that the sampler
  polls (``bind``), so queue depths and watermark lags need no pushes
  on the hot path.
- :class:`Histogram` -- fixed log-spaced bins over positive values
  (latencies, sizes); counts only, no per-sample storage.

Naming convention is ``component.metric`` with an optional
``component.metric{label}`` instance suffix, e.g.
``queue.depth{gen0}`` or ``op.window.buffered_weight``.  The registry
is flat; grouping happens at export.

Nothing here is on the hot path when observability is off: engines
hold ``obs = None`` and skip publishing entirely.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.core.metrics import TimeSeries


class Counter:
    """Monotonic accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float) -> None:
        self.value += amount

    def read(self) -> float:
        return self.value


class Gauge:
    """Instantaneous value: pushed via ``set`` or polled via ``bind``."""

    __slots__ = ("name", "value", "_fn")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.value = value

    def bind(self, fn: Callable[[], float]) -> "Gauge":
        self._fn = fn
        return self

    def read(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self.value


class Histogram:
    """Log-spaced histogram over positive values.

    ``lo``/``hi`` bound the instrumented range; values outside clamp to
    the edge bins (an underflow/overflow count, not an error).  Only
    bin counts (weighted) are stored -- O(bins) memory regardless of
    sample volume.
    """

    __slots__ = ("name", "lo", "hi", "bins", "counts", "_log_lo", "_log_step",
                 "total_weight", "sum_value")

    def __init__(
        self, name: str, lo: float = 1e-4, hi: float = 1e3, bins: int = 48
    ) -> None:
        if not (0 < lo < hi) or bins < 1:
            raise ValueError(f"bad histogram range [{lo}, {hi}] x {bins}")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.counts = [0.0] * bins
        self._log_lo = math.log(lo)
        self._log_step = (math.log(hi) - self._log_lo) / bins
        self.total_weight = 0.0
        self.sum_value = 0.0

    def observe(self, value: float, weight: float = 1.0) -> None:
        if value <= self.lo:
            idx = 0
        elif value >= self.hi:
            idx = self.bins - 1
        else:
            idx = int((math.log(value) - self._log_lo) / self._log_step)
            if idx >= self.bins:  # float edge at exactly hi
                idx = self.bins - 1
        self.counts[idx] += weight
        self.total_weight += weight
        self.sum_value += value * weight

    @property
    def mean(self) -> float:
        if self.total_weight <= 0:
            return float("nan")
        return self.sum_value / self.total_weight

    def quantile(self, q: float) -> float:
        """Approximate weighted quantile: the geometric midpoint of the
        first bin whose cumulative weight reaches ``q * total``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.total_weight <= 0:
            return float("nan")
        target = q * self.total_weight
        cum = 0.0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                mid = self._log_lo + (i + 0.5) * self._log_step
                return math.exp(mid)
        return self.hi

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "counts": list(self.counts),
            "total_weight": self.total_weight,
            "mean": None if self.total_weight <= 0 else self.mean,
            "p50": None if self.total_weight <= 0 else self.quantile(0.5),
            "p99": None if self.total_weight <= 0 else self.quantile(0.99),
        }


class MetricsRegistry:
    """Flat namespace of instruments plus the periodic sampler.

    ``counter``/``gauge``/``histogram`` are get-or-create, so every
    component can resolve its instruments once at wiring time and the
    hot path touches only the returned object.  :meth:`sample` (driven
    by ``sim.every(interval)``) snapshots every counter and gauge into
    a per-instrument :class:`TimeSeries`.
    """

    def __init__(self, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.sample_count = 0
        self._sample_hooks: List[Any] = []

    # -- instrument factories (get-or-create) ---------------------------

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, **kwargs: Any) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name, **kwargs)
        return inst

    # -- sampling -------------------------------------------------------

    def sample(self, now: float) -> None:
        """Snapshot all counters and gauges at simulated time ``now``."""
        self.sample_count += 1
        for name, counter in self.counters.items():
            series = self.series.get(name)
            if series is None:
                series = self.series[name] = TimeSeries()
            series.append(now, counter.value)
        for name, gauge in self.gauges.items():
            series = self.series.get(name)
            if series is None:
                series = self.series[name] = TimeSeries()
            series.append(now, gauge.read())
        for hook in self._sample_hooks:
            hook(now)

    def add_sample_hook(self, hook: Any) -> None:
        """Call ``hook(now)`` after every sample snapshot.

        This is the seam controllers hang off: the autoscaler reads the
        just-sampled signals and decides on the **simulated** sampling
        clock, so decisions are deterministic and replayable -- there is
        no other clock a registry consumer can observe.
        """
        self._sample_hooks.append(hook)

    def install(self, sim: Any) -> None:
        """Register the periodic sampler on a simulator."""
        sim.every(self.interval_s, lambda s: self.sample(s.now))

    # -- export ---------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(
            set(self.counters) | set(self.gauges) | set(self.histograms)
        )

    def latest(self, name: str) -> float:
        """Current value of a counter or gauge (NaN if unknown)."""
        if name in self.counters:
            return self.counters[name].value
        if name in self.gauges:
            return self.gauges[name].read()
        return float("nan")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "interval_s": self.interval_s,
            "samples": self.sample_count,
            "final": {name: self.latest(name) for name in
                      sorted(set(self.counters) | set(self.gauges))},
            "series": {
                name: {"t": s.times.tolist(), "v": s.values.tolist()}
                for name, s in sorted(self.series.items())
            },
            "histograms": {
                name: h.to_dict()
                for name, h in sorted(self.histograms.items())
            },
        }
        return payload
