"""Sampled event-lifecycle tracing.

Aggregate trial statistics (Tables I-IV) say *how much* latency there
is; a trace says *where* it comes from.  A deterministic 1-in-N sampler
attaches an :class:`EventTrace` to generator cohorts; the trace rides
the :class:`~repro.core.records.Record` through the pipeline and
collects timestamped **marks** at every lifecycle boundary:

- ``created``   -- generation (the event-time anchor, Definition 1);
- ``enqueued``  -- push into the driver queue (Section III-B);
- ``ingested``  -- pulled by the SUT source operator (Definition 2's
  anchor);
- ``closed``    -- the first containing window closes;
- ``emitted``   -- the output carrying this event leaves the sink.

Consecutive marks delimit **spans** (``enqueue``, ``queue_wait``,
``window_buffer``, ``emit``) that partition the traced event's
event-time latency exactly: the span durations telescope to
``emitted - created``, so a complete trace *decomposes* Definition 1's
latency into wait/buffer/compute components without ever re-measuring
it.  Engines may insert extra marks (e.g. Storm's executor queues);
spans just become finer.

Design constraints (the hot path must not notice tracing):

- when sampling is off, no trace objects exist anywhere -- the only
  residual cost is ``record.trace is None`` checks at the lifecycle
  boundaries;
- the sampler is deterministic (a cohort counter, not an RNG draw), so
  trials are bit-for-bit reproducible at any sample rate;
- a split cohort hands its trace to the first split part, so every
  trace follows exactly one carrier end to end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

# Canonical mark names, in lifecycle order.
CREATED = "created"
ENQUEUED = "enqueued"
INGESTED = "ingested"
CLOSED = "closed"
EMITTED = "emitted"

# Span names derived from canonical consecutive mark pairs.
SPAN_NAMES = {
    (CREATED, ENQUEUED): "enqueue",
    (ENQUEUED, INGESTED): "queue_wait",
    (INGESTED, CLOSED): "window_buffer",
    (CLOSED, EMITTED): "emit",
}


class EventTrace:
    """The lifecycle record of one sampled generator cohort."""

    __slots__ = (
        "trace_id",
        "key",
        "stream",
        "weight",
        "marks",
        "dropped",
        "annotations",
    )

    def __init__(
        self, trace_id: int, key: int, stream: str, weight: float
    ) -> None:
        self.trace_id = trace_id
        self.key = key
        self.stream = stream
        self.weight = weight
        self.marks: List[Tuple[str, float]] = []
        self.dropped = False
        self.annotations: List[Dict[str, Any]] = []

    def mark(self, name: str, at_time: float) -> None:
        """Record one lifecycle boundary crossing.

        Marks must be appended in non-decreasing time order; the guard
        clamps float jitter (an emit scheduled with a zero delay can
        land a ulp before the close mark) rather than raising, because a
        trace must never be able to fail a trial.
        """
        if self.marks and at_time < self.marks[-1][1]:
            at_time = self.marks[-1][1]
        self.marks.append((name, at_time))

    def drop(self) -> None:
        """The carrier record was discarded (late arrival); the trace
        will never complete."""
        self.dropped = True

    @property
    def created_at(self) -> float:
        return self.marks[0][1] if self.marks else float("nan")

    @property
    def last_time(self) -> float:
        return self.marks[-1][1] if self.marks else float("nan")

    @property
    def complete(self) -> bool:
        return bool(self.marks) and self.marks[-1][0] == EMITTED

    def spans(self) -> List[Tuple[str, float, float]]:
        """``(name, start, end)`` spans between consecutive marks.

        Contiguous and non-overlapping by construction; canonical mark
        pairs get their taxonomy name, anything else ``a->b``.
        """
        out = []
        for (a, t0), (b, t1) in zip(self.marks, self.marks[1:]):
            out.append((SPAN_NAMES.get((a, b), f"{a}->{b}"), t0, t1))
        return out

    def span_durations(self) -> Dict[str, float]:
        durations: Dict[str, float] = {}
        for name, t0, t1 in self.spans():
            durations[name] = durations.get(name, 0.0) + (t1 - t0)
        return durations

    @property
    def event_time_latency(self) -> float:
        """Definition 1 latency of the traced event itself: sink
        emission minus generation time (NaN until complete)."""
        if not self.complete:
            return float("nan")
        return self.marks[-1][1] - self.marks[0][1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "key": self.key,
            "stream": self.stream,
            "weight": self.weight,
            "complete": self.complete,
            "dropped": self.dropped,
            "event_time_latency_s": (
                None if not self.complete else self.event_time_latency
            ),
            "marks": [{"name": n, "t": t} for n, t in self.marks],
            "spans": [
                {"name": n, "start": t0, "end": t1, "duration_s": t1 - t0}
                for n, t0, t1 in self.spans()
            ],
            "annotations": list(self.annotations),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "->".join(name for name, _ in self.marks)
        return f"EventTrace(id={self.trace_id}, key={self.key}, {path})"


class TraceSampler:
    """Deterministic 1-in-N sampler over generator cohorts.

    ``sample_rate`` is the paper-style "1 in N" denominator: rate 1
    traces every cohort, rate 1000 every thousandth, rate 0 disables
    sampling (the factory then returns ``None`` so callers keep a plain
    ``is None`` fast path).  The counter is global across generator
    instances to keep the sampled stream stable under fleet-size
    changes of the *same* total cohort sequence.
    """

    __slots__ = ("sample_rate", "_counter", "_next_id", "log")

    def __init__(self, sample_rate: int, log: "TraceLog") -> None:
        if sample_rate < 1:
            raise ValueError(
                f"sample_rate must be >= 1 (use None for no sampler), "
                f"got {sample_rate}"
            )
        self.sample_rate = int(sample_rate)
        self._counter = 0
        self._next_id = 0
        self.log = log

    def maybe_trace(
        self, key: int, stream: str, weight: float, event_time: float
    ) -> Optional[EventTrace]:
        """Return a started trace for every N-th cohort, else None."""
        self._counter += 1
        if self._counter < self.sample_rate:
            return None
        self._counter = 0
        return self.take(key, stream, weight, event_time)

    # -- batched fast path ------------------------------------------------
    #
    # A per-cohort ``maybe_trace`` call costs a Python method call even
    # for the (sample_rate - 1)-in-N cohorts that are not sampled.  Hot
    # emit loops instead read ``due_in()`` once, count down a local int,
    # call ``take`` only when it reaches zero, and ``sync`` the counter
    # back afterwards -- bit-for-bit the same sampling decisions.

    def due_in(self) -> int:
        """Cohorts left until the next sampled one (always >= 1)."""
        return self.sample_rate - self._counter

    def take(
        self, key: int, stream: str, weight: float, event_time: float
    ) -> EventTrace:
        """Unconditionally start a trace for the current cohort."""
        trace = EventTrace(self._next_id, key, stream, weight)
        self._next_id += 1
        trace.mark(CREATED, event_time)
        self.log.on_start(trace)
        return trace

    def sync(self, countdown: int) -> None:
        """Restore the counter after a batched countdown loop: the
        caller's local countdown was ``due_in()`` cohorts from firing
        when it started and resets to ``sample_rate`` on each fire."""
        self._counter = self.sample_rate - countdown


class TraceLog:
    """Driver-side store of every started trace plus timeline events.

    Engines and the fault machinery post timeline **events** (fault
    injections, recovery milestones); at export time each trace is
    annotated with the events that fall inside its lifetime, so a
    latency excursion in a trace points at the fault that caused it.
    """

    def __init__(self, max_traces: int = 100_000) -> None:
        self.max_traces = max_traces
        self.started: List[EventTrace] = []
        self.completed: List[EventTrace] = []
        self.events: List[Dict[str, Any]] = []
        self.overflow = 0

    def on_start(self, trace: EventTrace) -> None:
        if len(self.started) >= self.max_traces:
            self.overflow += 1
            return
        self.started.append(trace)

    def on_complete(self, trace: EventTrace) -> None:
        self.completed.append(trace)

    def add_event(self, kind: str, at_time: float, **fields: Any) -> None:
        event: Dict[str, Any] = {"kind": kind, "t": float(at_time)}
        event.update(fields)
        self.events.append(event)

    def annotate(self) -> None:
        """Attach timeline events to the traces whose lifetime contains
        them (called once, at trial teardown)."""
        if not self.events:
            return
        for trace in self.started:
            if not trace.marks:
                continue
            t0, t1 = trace.created_at, trace.last_time
            trace.annotations = [
                e for e in self.events if t0 <= e["t"] <= t1
            ]

    @property
    def started_count(self) -> int:
        return len(self.started) + self.overflow

    @property
    def completed_count(self) -> int:
        return len(self.completed)

    def to_dict(self, max_export: int = 200) -> Dict[str, Any]:
        """JSON payload: counts, timeline events, and up to
        ``max_export`` completed traces (full mark/span detail)."""
        return {
            "started": self.started_count,
            "completed": self.completed_count,
            "dropped": sum(1 for t in self.started if t.dropped),
            "overflow": self.overflow,
            "events": list(self.events),
            "traces": [t.to_dict() for t in self.completed[:max_export]],
        }
