"""Observability wiring: spec -> context -> report.

:class:`ObsSpec` is the user-facing switch (part of
:class:`~repro.core.experiment.ExperimentSpec`, settable from the CLI
via ``--trace-sample-rate`` / ``--metrics-interval``).
:class:`ObsContext` is the live per-trial object threaded through the
driver, engine, and operators; it owns the
:class:`~repro.obs.registry.MetricsRegistry`, the
:class:`~repro.obs.trace.TraceSampler`, and the
:class:`~repro.obs.trace.TraceLog`.

Everything downstream treats the context as optional: ``obs`` is
``None`` when observability is off, and the sampler is ``None`` when
only metrics are on, so the per-event cost of a disabled feature is
one attribute load and an ``is None`` branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceLog, TraceSampler


@dataclass(frozen=True)
class ObsSpec:
    """What to observe during a trial.

    ``trace_sample_rate`` is 1-in-N over generator cohorts; 0 disables
    tracing.  ``metrics_interval_s`` is the registry sampling period.
    ``max_traces`` bounds trace memory; ``max_export`` bounds the JSON
    payload.
    """

    trace_sample_rate: int = 0
    metrics_interval_s: float = 1.0
    max_traces: int = 100_000
    max_export: int = 200

    def __post_init__(self) -> None:
        if self.trace_sample_rate < 0:
            raise ValueError(
                f"trace_sample_rate must be >= 0, "
                f"got {self.trace_sample_rate}"
            )
        if self.metrics_interval_s <= 0:
            raise ValueError(
                f"metrics_interval_s must be positive, "
                f"got {self.metrics_interval_s}"
            )

    @property
    def tracing_enabled(self) -> bool:
        return self.trace_sample_rate > 0


class ObsContext:
    """Live observability state for one trial."""

    def __init__(self, spec: ObsSpec) -> None:
        self.spec = spec
        self.registry = MetricsRegistry(interval_s=spec.metrics_interval_s)
        self.trace_log = TraceLog(max_traces=spec.max_traces)
        self.sampler: Optional[TraceSampler] = (
            TraceSampler(spec.trace_sample_rate, self.trace_log)
            if spec.tracing_enabled
            else None
        )

    @classmethod
    def build(cls, sim: Any, spec: Optional[ObsSpec]) -> Optional["ObsContext"]:
        """Create and install a context, or None when obs is off."""
        if spec is None:
            return None
        ctx = cls(spec)
        ctx.registry.install(sim)
        return ctx

    def add_event(self, kind: str, at_time: float, **fields: Any) -> None:
        """Post a timeline event (fault injected, recovery milestone)."""
        self.trace_log.add_event(kind, at_time, **fields)

    def finalize(self) -> "ObsReport":
        """Trial teardown: annotate traces with timeline events and
        freeze into a report."""
        self.trace_log.annotate()
        return ObsReport(
            spec=self.spec, registry=self.registry, trace_log=self.trace_log
        )


@dataclass
class ObsReport:
    """The frozen observability outcome of one trial (rides on
    :class:`~repro.core.driver.TrialResult`)."""

    spec: ObsSpec
    registry: MetricsRegistry
    trace_log: TraceLog

    @property
    def completed_traces(self):
        return self.trace_log.completed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_sample_rate": self.spec.trace_sample_rate,
            "metrics_interval_s": self.spec.metrics_interval_s,
            "metrics": self.registry.to_dict(),
            "tracing": self.trace_log.to_dict(
                max_export=self.spec.max_export
            ),
        }
