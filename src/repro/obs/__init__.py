"""Observability: metrics registry + sampled event-lifecycle tracing.

See DESIGN.md section 9.  The public surface:

- :class:`ObsSpec` / :class:`ObsContext` / :class:`ObsReport` -- wiring
  (spec on the experiment, context threaded through a trial, report on
  the result);
- :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments;
- :class:`EventTrace` / :class:`TraceSampler` / :class:`TraceLog` --
  the 1-in-N lifecycle tracer.
"""

from repro.obs.context import ObsContext, ObsReport, ObsSpec
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    CLOSED,
    CREATED,
    EMITTED,
    ENQUEUED,
    INGESTED,
    EventTrace,
    TraceLog,
    TraceSampler,
)

__all__ = [
    "ObsContext",
    "ObsReport",
    "ObsSpec",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventTrace",
    "TraceLog",
    "TraceSampler",
    "CREATED",
    "ENQUEUED",
    "INGESTED",
    "CLOSED",
    "EMITTED",
]
