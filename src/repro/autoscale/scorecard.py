"""Cross-engine elasticity scorecard: engines x policies x workloads.

The chaos soak (:mod:`repro.recovery.chaos`) asks "does the SUT survive
faults?"; this harness asks the SProBench-style follow-up -- given a
diurnal curve or a flash crowd, how fast does each engine's *policy +
rescale mechanics* pipeline restore sustainable throughput, and what
does the elasticity cost in node-seconds and delivery-guarantee
exposure?

Each cell runs one engine under one scaling policy against one rate
profile, starting from a deliberately small cluster.  Offered load is
parameterized *relative to the engine's own single-worker capacity*
(derived from its cost model -- a pure function of the config), so
every engine sees the same relative overload: a flash crowd at
``peak_fraction`` times what one worker sustains.  Absolute rates would
make the weakest engine drown while the strongest never scales.

Invariants checked on every cell (reusing the chaos checks):

1. conservation ledgers balance through every scale event;
2. delivery-guarantee accounting holds (exactly-once engines lose and
   duplicate nothing across rescales; at-least-once loses nothing;
   at-most-once duplicates nothing);
3. a surviving trial ends with bounded queue backlog (the autoscaler
   actually caught up, it is not quietly diverging);
4. the cluster never leaves ``[min_workers, max_workers]``.

Same determinism contract as the chaos soak: one seed yields a
byte-identical scorecard JSON, serial or parallel, live or resumed from
a journal -- the report absorbs per-trial *digests* in fixed grid
order, never raw results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.autoscale.policy import POLICY_NAMES, AutoscaleSpec
from repro.core.driver import TrialResult
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.generator import GeneratorConfig
import repro.engines.ext  # noqa: F401  (registers heron/samza in ENGINES)
from repro.engines import engine_class
from repro.metrology.journal import TrialJournal
from repro.recovery.chaos import (
    DEFAULT_ENGINES,
    ChaosConfig,
    _clean,
    _nan,
    _round6,
    check_invariants,
)
from repro.sched.pool import TrialScheduler, TrialTask
from repro.sim.cluster import paper_cluster
from repro.sim.network import DataPlane, NetworkSpec
from repro.sim.simulator import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.profiles import DiurnalRate, FlashCrowdRate, RateProfile
from repro.workloads.queries import WindowedAggregationQuery

#: The two workload shapes every (engine, policy) cell is driven with.
PROFILE_NAMES = ("diurnal", "flash-crowd")


@dataclass(frozen=True)
class ElasticityConfig:
    """One elasticity sweep: engines x policies x rate profiles."""

    seed: int = 0
    engines: Tuple[str, ...] = DEFAULT_ENGINES
    policies: Tuple[str, ...] = POLICY_NAMES
    profiles: Tuple[str, ...] = PROFILE_NAMES
    duration_s: float = 120.0
    workers: int = 1
    """Initial (deliberately small) cluster size."""
    min_workers: int = 1
    max_workers: int = 6
    cooldown_s: float = 12.0
    base_fraction: float = 0.4
    """Trough offered load, as a fraction of the engine's single-worker
    sustained capacity."""
    peak_fraction: float = 2.0
    """Crest offered load, same units.  Must exceed 1.0 (else nothing
    ever needs to scale) and stay within what ``max_workers`` sustains."""
    spike_duration_s: float = 25.0
    generator_instances: int = 2
    latency_bound_s: float = 20.0
    """End-of-trial queue backlog age tolerated on surviving cells."""

    def __post_init__(self) -> None:
        if not self.engines:
            raise ValueError("need at least one engine")
        for policy in self.policies:
            if policy not in POLICY_NAMES:
                raise ValueError(
                    f"unknown policy {policy!r}; pick from {POLICY_NAMES}"
                )
        if not self.policies:
            raise ValueError("need at least one policy")
        for profile in self.profiles:
            if profile not in PROFILE_NAMES:
                raise ValueError(
                    f"unknown profile {profile!r}; pick from {PROFILE_NAMES}"
                )
        if not self.profiles:
            raise ValueError("need at least one profile")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0 < self.base_fraction <= 1:
            raise ValueError(
                f"base_fraction must be in (0, 1], got {self.base_fraction}"
            )
        if self.peak_fraction <= 1:
            raise ValueError(
                "peak_fraction must exceed 1 (one worker's capacity), "
                f"got {self.peak_fraction}"
            )
        if not 0 < self.spike_duration_s < self.duration_s:
            raise ValueError(
                "spike_duration_s must be in (0, duration_s), "
                f"got {self.spike_duration_s}"
            )

    def autoscale_spec(self, policy: str) -> AutoscaleSpec:
        return AutoscaleSpec(
            policy=policy,
            min_workers=self.min_workers,
            max_workers=self.max_workers,
            cooldown_s=self.cooldown_s,
        )


def single_worker_capacity(engine: str) -> float:
    """The engine's sustained events/s on one worker, from its cost
    model.  A pure function of the engine name (throwaway simulator,
    nothing runs), so parallel workers re-derive it bit-identically."""
    sim = Simulator()
    rng = RngRegistry(seed=1)
    instance = engine_class(engine)(
        sim=sim,
        cluster=paper_cluster(1),
        query=WindowedAggregationQuery(),
        plane=DataPlane(sim, NetworkSpec()),
        rng=rng.stream("capacity-probe"),
    )
    return instance._capacity_events_per_s()


def profile_for(
    name: str, engine: str, config: ElasticityConfig
) -> RateProfile:
    """The rate profile for one cell, scaled to the engine's capacity."""
    capacity = single_worker_capacity(engine)
    base = config.base_fraction * capacity
    peak = config.peak_fraction * capacity
    if name == "diurnal":
        # One full "day" compressed into the trial: trough at both ends,
        # crest mid-trial, so the tail drains and scales back in.
        return DiurnalRate(low=base, high=peak, period_s=config.duration_s)
    # Flash crowd: one seeded burst inside the first half, leaving the
    # second half to catch up and scale back in.
    return FlashCrowdRate(
        base=base,
        spike=peak,
        horizon_s=config.duration_s / 2.0,
        spikes=1,
        spike_duration_s=config.spike_duration_s,
        seed=config.seed,
    )


def _trial_spec(
    engine: str, policy: str, profile_name: str, config: ElasticityConfig
) -> ExperimentSpec:
    return ExperimentSpec(
        engine=engine,
        query=WindowedAggregationQuery(),
        workers=config.workers,
        profile=profile_for(profile_name, engine, config),
        duration_s=config.duration_s,
        seed=config.seed,
        generator=GeneratorConfig(instances=config.generator_instances),
        monitor_resources=False,
        autoscale=config.autoscale_spec(policy),
    )


def check_elasticity_invariants(
    result: TrialResult, config: ElasticityConfig, label: str
) -> List[str]:
    """Chaos invariants (ledgers, guarantees, bounded end backlog) plus
    the autoscale-specific ones (cluster stays inside the bounds)."""
    violations = check_invariants(
        result, ChaosConfig(latency_bound_s=config.latency_bound_s), label
    )
    workers_end = result.diagnostics.get("cluster_workers", float("nan"))
    if workers_end == workers_end and not (
        config.min_workers <= workers_end <= config.max_workers
    ):
        violations.append(
            f"{label}: cluster ended at {workers_end:.0f} workers, "
            f"outside [{config.min_workers}, {config.max_workers}]"
        )
    for event in result.autoscale or []:
        if event.to_workers > config.max_workers or (
            event.kind == "scale-in" and event.to_workers < config.min_workers
        ):
            violations.append(
                f"{label}: {event.kind} targeted {event.to_workers:.0f} "
                f"workers, outside [{config.min_workers}, "
                f"{config.max_workers}]"
            )
    return violations


def trial_digest(
    result: TrialResult, config: ElasticityConfig, violations: List[str]
) -> Dict[str, object]:
    """Everything the scorecard needs from one cell, JSON-safe.  The
    scorecard absorbs digests (never raw results), so journal-replayed
    cells aggregate bit-for-bit like live ones."""
    d = result.diagnostics
    events = []
    for m in result.autoscale or []:
        events.append(
            {
                "kind": m.kind,
                "resustained": bool(m.resustained),
                "detect_s": _clean(m.detect_s),
                "provision_s": _clean(m.provision_s),
                "migrate_s": _clean(m.migrate_s),
                "catchup_s": _clean(m.catchup_s),
                "time_to_resustain_s": _clean(m.time_to_resustain_s),
                "migrated_bytes": float(m.migrated_bytes),
            }
        )
    return {
        "failed": bool(result.failed),
        "end_queue_delay_s": (
            0.0
            if result.failed
            else float(result.throughput.queue_delay_at_end())
        ),
        "scale_outs": float(d.get("autoscale.scale_outs", 0.0)),
        "scale_ins": float(d.get("autoscale.scale_ins", 0.0)),
        "decisions": float(d.get("autoscale.decisions", 0.0)),
        "blocked": float(d.get("autoscale.blocked", 0.0)),
        "cost_node_seconds": float(d.get("autoscale.cost_node_seconds", 0.0)),
        "fixed_cost_node_seconds": float(
            config.max_workers * config.duration_s
        ),
        "workers_end": float(d.get("cluster_workers", 0.0)),
        "rescale_pause_s": float(d.get("rescale_pause_total_s", 0.0)),
        "lost_weight": float(d.get("lost_weight", 0.0)),
        "duplicated_weight": float(d.get("duplicated_weight", 0.0)),
        "events": events,
        "violations": list(violations),
    }


@dataclass
class ElasticityScorecard:
    """Aggregated elasticity behaviour of one (engine, policy) cell
    across the workload profiles."""

    engine: str
    policy: str
    trials: int = 0
    survived: int = 0
    failed: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    decisions: int = 0
    blocked: int = 0
    resustained: int = 0
    unresustained: int = 0
    detect_s_sum: float = 0.0
    provision_s_sum: float = 0.0
    migrate_s_sum: float = 0.0
    catchup_s_sum: float = 0.0
    resustain_s_max: float = 0.0
    migrated_bytes: float = 0.0
    rescale_pause_s: float = 0.0
    cost_node_seconds: float = 0.0
    fixed_cost_node_seconds: float = 0.0
    lost_weight: float = 0.0
    duplicated_weight: float = 0.0
    end_queue_delay_s_max: float = 0.0
    violations: List[str] = field(default_factory=list)

    def absorb_digest(self, digest: Dict[str, object]) -> None:
        """Fold one cell digest in; live and journal-replayed cells go
        through this same method (byte-identical resume)."""
        self.trials += 1
        if digest["failed"]:
            self.failed += 1
        else:
            self.survived += 1
            self.end_queue_delay_s_max = max(
                self.end_queue_delay_s_max, float(digest["end_queue_delay_s"])
            )
        self.scale_outs += int(digest["scale_outs"])
        self.scale_ins += int(digest["scale_ins"])
        self.decisions += int(digest["decisions"])
        self.blocked += int(digest["blocked"])
        self.cost_node_seconds += float(digest["cost_node_seconds"])
        self.fixed_cost_node_seconds += float(digest["fixed_cost_node_seconds"])
        self.rescale_pause_s += float(digest["rescale_pause_s"])
        self.lost_weight += float(digest["lost_weight"])
        self.duplicated_weight += float(digest["duplicated_weight"])
        for event in digest["events"]:
            self.migrated_bytes += float(event["migrated_bytes"])
            if event["resustained"]:
                self.resustained += 1
                self.resustain_s_max = max(
                    self.resustain_s_max, _nan(event["time_to_resustain_s"])
                )
                for leg, bucket in (
                    ("detect_s", "detect_s_sum"),
                    ("provision_s", "provision_s_sum"),
                    ("migrate_s", "migrate_s_sum"),
                    ("catchup_s", "catchup_s_sum"),
                ):
                    value = _nan(event[leg])
                    if value == value:
                        setattr(
                            self, bucket, getattr(self, bucket) + value
                        )
            else:
                self.unresustained += 1
        self.violations.extend(digest["violations"])

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "policy": self.policy,
            "trials": self.trials,
            "survived": self.survived,
            "failed": self.failed,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "decisions": self.decisions,
            "blocked": self.blocked,
            "resustained": self.resustained,
            "unresustained": self.unresustained,
            "detect_s_sum": _round6(self.detect_s_sum),
            "provision_s_sum": _round6(self.provision_s_sum),
            "migrate_s_sum": _round6(self.migrate_s_sum),
            "catchup_s_sum": _round6(self.catchup_s_sum),
            "resustain_s_max": _round6(self.resustain_s_max),
            "migrated_bytes": _round6(self.migrated_bytes),
            "rescale_pause_s": _round6(self.rescale_pause_s),
            "cost_node_seconds": _round6(self.cost_node_seconds),
            "fixed_cost_node_seconds": _round6(self.fixed_cost_node_seconds),
            "cost_saving_fraction": _round6(
                1.0 - self.cost_node_seconds / self.fixed_cost_node_seconds
                if self.fixed_cost_node_seconds
                else 0.0
            ),
            "lost_weight": _round6(self.lost_weight),
            "duplicated_weight": _round6(self.duplicated_weight),
            "end_queue_delay_s_max": _round6(self.end_queue_delay_s_max),
            "violations": sorted(self.violations),
        }


@dataclass
class ElasticityReport:
    """Everything one elasticity sweep produced."""

    config: ElasticityConfig
    scorecards: Dict[Tuple[str, str], ElasticityScorecard]

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for card in self.scorecards.values():
            out.extend(card.violations)
        return sorted(out)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.config.seed,
            "duration_s": self.config.duration_s,
            "workers": self.config.workers,
            "min_workers": self.config.min_workers,
            "max_workers": self.config.max_workers,
            "cooldown_s": self.config.cooldown_s,
            "base_fraction": self.config.base_fraction,
            "peak_fraction": self.config.peak_fraction,
            "profiles": list(self.config.profiles),
            "scorecards": {
                f"{engine}/{policy}": card.to_dict()
                for (engine, policy), card in sorted(self.scorecards.items())
            },
            "violations": self.violations,
        }

    def to_json(self) -> str:
        """Canonical serialisation -- byte-identical for equal seeds."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """ASCII scorecard table."""
        header = (
            f"{'engine/policy':<16} {'ok':>3} {'out':>4} {'in':>4} "
            f"{'resus':>5} {'never':>5} {'ttr-max':>8} {'pause(s)':>8} "
            f"{'cost(ns)':>9} {'saved':>6} {'viol':>4}"
        )
        lines = [header, "-" * len(header)]
        for (engine, policy), card in sorted(self.scorecards.items()):
            d = card.to_dict()
            saved = d["cost_saving_fraction"] or 0.0
            lines.append(
                f"{engine + '/' + policy:<16} {card.survived:>3} "
                f"{card.scale_outs:>4} {card.scale_ins:>4} "
                f"{card.resustained:>5} {card.unresustained:>5} "
                f"{d['resustain_s_max'] or 0:>8.2f} "
                f"{d['rescale_pause_s'] or 0:>8.2f} "
                f"{card.cost_node_seconds:>9.0f} "
                f"{saved:>6.1%} "
                f"{len(card.violations):>4}"
            )
        status = "PASS" if self.ok else "FAIL"
        lines.append("-" * len(header))
        lines.append(
            f"{status}: {len(self.scorecards)} cells x "
            f"{len(self.config.profiles)} profiles, seed {self.config.seed}, "
            f"{len(self.violations)} invariant violations"
        )
        if not self.ok:
            lines.extend(f"  ! {violation}" for violation in self.violations)
        return "\n".join(lines)


def elasticity_fingerprint(config: ElasticityConfig) -> str:
    """Journal identity: a resumed sweep must replay cells only from a
    journal written by the *same* sweep.  Scheduler parallelism is
    deliberately absent -- serial and parallel runs of one config are
    the same experiment (byte-identical scorecards)."""
    return f"elasticity|{config!r}"


def _cell_label(engine: str, policy: str, profile: str) -> str:
    return f"{engine}/{policy}/{profile}"


def _elasticity_cell_task(payload) -> Dict[str, object]:
    """Scheduler worker body: one (engine, policy, profile) cell.  The
    spec is re-derived from the config (pure), so the digest is
    bit-identical to what the serial loop would produce."""
    config, engine, policy, profile = payload
    label = _cell_label(engine, policy, profile)
    result = run_experiment(_trial_spec(engine, policy, profile, config))
    violations = check_elasticity_invariants(result, config, label)
    return trial_digest(result, config, violations)


def run_elasticity(
    config: ElasticityConfig = ElasticityConfig(),
    progress=None,
    journal: Optional[TrialJournal] = None,
    workers: int = 1,
) -> ElasticityReport:
    """Run the sweep: every engine under every policy against every
    profile, checking invariants on every cell.  ``progress`` (if
    given) receives a status line per cell.  With a ``journal``,
    completed cells persist as digests and replay on resume.

    ``workers > 1`` fans cells out over a
    :class:`~repro.sched.TrialScheduler` process pool (scheduler
    parallelism; the simulated cluster sizes itself).  Execution order
    changes, nothing else: digests are absorbed in fixed grid order, so
    the JSON is byte-identical to the serial sweep.
    """
    scorecards: Dict[Tuple[str, str], ElasticityScorecard] = {
        (engine, policy): ElasticityScorecard(engine=engine, policy=policy)
        for engine in config.engines
        for policy in config.policies
    }
    grid: List[Tuple[str, str, str]] = []  # (label, engine, policy)
    tasks: List[TrialTask] = []
    for engine in config.engines:
        for policy in config.policies:
            for profile in config.profiles:
                label = _cell_label(engine, policy, profile)
                grid.append((label, engine, policy))
                tasks.append(
                    TrialTask(
                        key=label,
                        fn=_elasticity_cell_task,
                        payload=(config, engine, policy, profile),
                    )
                )

    def status_line(label: str, digest, replayed: str) -> str:
        status = "FAILED" if digest["failed"] else "ok"
        count = len(digest["violations"])
        return (
            f"{label}: {status}{replayed} "
            f"({digest['scale_outs']:.0f} out / {digest['scale_ins']:.0f} in)"
            + (f" ({count} violations)" if count else "")
        )

    on_result = on_replay = None
    if progress is not None:
        on_result = lambda label, digest: progress(  # noqa: E731
            status_line(label, digest, "")
        )
        on_replay = lambda label, digest: progress(  # noqa: E731
            status_line(label, digest, " (journal)")
        )
    scheduler = TrialScheduler(workers=workers, journal=journal)
    digests = scheduler.run(tasks, on_result=on_result, on_replay=on_replay)
    # Absorb in fixed grid order: float accumulation is order-sensitive,
    # so completion order must never leak into the report.
    for label, engine, policy in grid:
        scorecards[(engine, policy)].absorb_digest(digests[label])
    return ElasticityReport(config=config, scorecards=scorecards)
